(* Tests for the paper's core contribution (lib/core): ISP strategies,
   class partitions, the second-stage CP game (Definitions 2 and 3,
   Theorem 3) and the monopoly analysis (Sec. III, Theorem 4). *)

open Po_core
open Po_model

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f
let prop t = QCheck_alcotest.to_alcotest t
let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

let priced () = Po_workload.Scenario.three_cp_priced ()
let ensemble ?(n = 80) seed = Po_workload.Ensemble.paper_ensemble ~n ~seed ()

(* ------------------------------------------------------------------ *)
(* Strategy                                                           *)
(* ------------------------------------------------------------------ *)

let test_strategy_validation () =
  Alcotest.check_raises "kappa > 1"
    (Invalid_argument "Strategy.make: kappa outside [0, 1]") (fun () ->
      ignore (Strategy.make ~kappa:1.5 ~c:0.));
  Alcotest.check_raises "negative c" (Invalid_argument "Strategy.make: c < 0")
    (fun () -> ignore (Strategy.make ~kappa:0.5 ~c:(-1.)))

let test_strategy_predicates () =
  Alcotest.(check bool) "public option" true
    (Strategy.is_public_option Strategy.public_option);
  Alcotest.(check bool) "kappa=0 is neutral" true
    (Strategy.is_neutral (Strategy.make ~kappa:0. ~c:0.9));
  Alcotest.(check bool) "c=0 is neutral" true
    (Strategy.is_neutral (Strategy.make ~kappa:0.7 ~c:0.));
  Alcotest.(check bool) "charged split is not neutral" false
    (Strategy.is_neutral (Strategy.make ~kappa:0.7 ~c:0.2))

let test_strategy_ordering () =
  let a = Strategy.make ~kappa:0.2 ~c:0.9 in
  let b = Strategy.make ~kappa:0.3 ~c:0.1 in
  Alcotest.(check bool) "lexicographic" true (Strategy.compare a b < 0);
  Alcotest.(check bool) "equal" true
    (Strategy.equal a (Strategy.make ~kappa:0.2 ~c:0.9))

let test_strategy_grid () =
  let g = Strategy.grid ~kappas:[| 0.; 1. |] ~cs:[| 0.; 0.5; 1. |] () in
  Alcotest.(check int) "cartesian size" 6 (Array.length g)

(* ------------------------------------------------------------------ *)
(* Partition                                                          *)
(* ------------------------------------------------------------------ *)

let test_partition_basics () =
  let p = Partition.of_premium_indicator [| true; false; true |] in
  Alcotest.(check int) "premium count" 2 (Partition.premium_count p);
  Alcotest.(check int) "ordinary count" 1 (Partition.ordinary_count p);
  Alcotest.(check bool) "membership" true (Partition.in_premium p 0);
  Alcotest.(check (array int)) "premium indices" [| 0; 2 |]
    (Partition.premium_indices p);
  Alcotest.(check (array int)) "ordinary indices" [| 1 |]
    (Partition.ordinary_indices p)

let test_partition_members_preserve_order () =
  let cps = priced () in
  let p = Partition.of_premium_pred cps (fun cp -> cp.Cp.v >= 0.5) in
  let prem = Partition.premium_members p cps in
  Alcotest.(check int) "two premium" 2 (Array.length prem);
  Alcotest.(check string) "google first" "google" prem.(0).Cp.label;
  Alcotest.(check string) "netflix second" "netflix" prem.(1).Cp.label

let test_partition_move_functional () =
  let p = Partition.all_ordinary 3 in
  let q = Partition.move p 1 ~premium:true in
  Alcotest.(check int) "original untouched" 0 (Partition.premium_count p);
  Alcotest.(check bool) "moved" true (Partition.in_premium q 1)

let test_partition_key () =
  let p = Partition.of_premium_indicator [| true; false |] in
  Alcotest.(check string) "key" "PO" (Partition.key p)

let test_partition_immutability_from_source () =
  let src = [| true; false |] in
  let p = Partition.of_premium_indicator src in
  src.(1) <- true;
  Alcotest.(check bool) "copied on construction" false (Partition.in_premium p 1)

(* ------------------------------------------------------------------ *)
(* Cp_game: degenerate strategies                                     *)
(* ------------------------------------------------------------------ *)

let test_game_kappa0_all_ordinary () =
  let cps = priced () in
  let o = Cp_game.solve ~nu:3. ~strategy:Strategy.public_option cps in
  Alcotest.(check int) "no premium members" 0
    (Partition.premium_count o.Cp_game.partition);
  Alcotest.(check bool) "converged" true o.Cp_game.converged;
  check_float "no revenue" 0. o.Cp_game.psi

let test_game_kappa1_affordable_set () =
  (* With kappa=1 the ordinary class has zero capacity, so exactly the
     CPs with v > c join premium (paper's trivial profile). *)
  let cps = priced () in
  let o = Cp_game.solve ~nu:3. ~strategy:(Strategy.make ~kappa:1. ~c:0.4) cps in
  Alcotest.(check bool) "google in premium (v=0.8)" true
    (Partition.in_premium o.Cp_game.partition 0);
  Alcotest.(check bool) "netflix in premium (v=0.5)" true
    (Partition.in_premium o.Cp_game.partition 1);
  Alcotest.(check bool) "skype out (v=0.2)" false
    (Partition.in_premium o.Cp_game.partition 2);
  check_float "skype starved" 0. o.Cp_game.theta.(2)

let test_game_price_above_all_v () =
  let cps = priced () in
  let o = Cp_game.solve ~nu:3. ~strategy:(Strategy.make ~kappa:1. ~c:0.95) cps in
  Alcotest.(check int) "nobody can afford premium" 0
    (Partition.premium_count o.Cp_game.partition);
  check_float "zero revenue" 0. o.Cp_game.psi;
  check_float "zero consumer surplus" 0. o.Cp_game.phi

let test_game_free_premium () =
  (* c = 0: the split is PMP with two free classes; revenue is zero. *)
  let cps = priced () in
  let o = Cp_game.solve ~nu:3. ~strategy:(Strategy.make ~kappa:0.5 ~c:0.) cps in
  check_float "free premium yields no revenue" 0. o.Cp_game.psi;
  Alcotest.(check bool) "converged" true o.Cp_game.converged

let test_game_zero_capacity () =
  let cps = priced () in
  let o = Cp_game.solve ~nu:0. ~strategy:(Strategy.make ~kappa:0.5 ~c:0.3) cps in
  check_float "no surplus at zero capacity" 0. o.Cp_game.phi;
  check_float "no revenue at zero capacity" 0. o.Cp_game.psi

(* ------------------------------------------------------------------ *)
(* Cp_game: equilibrium properties                                    *)
(* ------------------------------------------------------------------ *)

let test_game_outcome_accounting () =
  let cps = priced () in
  let strategy = Strategy.make ~kappa:0.6 ~c:0.3 in
  let o = Cp_game.solve ~nu:3. ~strategy cps in
  (* Psi = c * lambda_premium by definition. *)
  check_close 1e-9 "psi accounting" (0.3 *. o.Cp_game.lambda_premium)
    o.Cp_game.psi;
  (* Phi recomputed from the per-CP profile. *)
  let phi =
    Array.to_list
      (Array.mapi
         (fun i (cp : Cp.t) -> cp.Cp.phi *. cp.Cp.alpha *. o.Cp_game.rho.(i))
         cps)
    |> List.fold_left ( +. ) 0.
  in
  check_close 1e-9 "phi accounting" phi o.Cp_game.phi;
  (* Carried traffic fits in each class's capacity. *)
  Alcotest.(check bool) "ordinary load within capacity" true
    (o.Cp_game.lambda_ordinary <= (0.4 *. 3.) +. 1e-6);
  Alcotest.(check bool) "premium load within capacity" true
    (o.Cp_game.lambda_premium <= (0.6 *. 3.) +. 1e-6)

let test_game_solution_is_competitive () =
  let cps = ensemble 3 in
  List.iter
    (fun (kappa, c, nu) ->
      let strategy = Strategy.make ~kappa ~c in
      let o = Cp_game.solve ~nu ~strategy cps in
      Alcotest.(check bool)
        (Printf.sprintf "converged at (%g, %g, %g)" kappa c nu)
        true o.Cp_game.converged;
      let audit =
        match o.Cp_game.concept with
        | Cp_game.Competitive eps ->
            (* Audit with the eps the solver settled at, plus room for the
               one-CP displacement the eps-equilibrium concept allows. *)
            Cp_game.check_competitive
              ~rel_tol:((2. *. eps) +. Cp_game.default_hysteresis)
              ~nu ~strategy cps o.Cp_game.partition
        | Cp_game.Expost_nash ->
            Cp_game.check_nash ~tol:1e-7 ~nu ~strategy cps
              o.Cp_game.partition
      in
      match audit with
      | Ok () -> ()
      | Error (_, e) ->
          Alcotest.failf "not an equilibrium at (%g, %g, %g): %s" kappa c nu e)
    [ (0.5, 0.3, 5.); (0.3, 0.6, 10.); (0.8, 0.2, 2.); (1., 0.5, 8.);
      (0.6, 0.4, 15.) ]

let test_game_warm_start_agrees () =
  let cps = ensemble 5 in
  let strategy = Strategy.make ~kappa:0.7 ~c:0.35 in
  let cold = Cp_game.solve ~nu:6. ~strategy cps in
  let warm = Cp_game.solve ~init:cold.Cp_game.partition ~nu:6. ~strategy cps in
  Alcotest.(check bool) "warm start stays at equilibrium" true
    (Partition.equal cold.Cp_game.partition warm.Cp_game.partition)

let test_game_outcome_reproducible () =
  let cps = ensemble 7 in
  let strategy = Strategy.make ~kappa:0.5 ~c:0.4 in
  let o = Cp_game.solve ~nu:4. ~strategy cps in
  let rebuilt =
    Cp_game.outcome_of_partition ~nu:4. ~strategy cps o.Cp_game.partition
  in
  check_close 1e-9 "phi reproducible" o.Cp_game.phi rebuilt.Cp_game.phi;
  check_close 1e-9 "psi reproducible" o.Cp_game.psi rebuilt.Cp_game.psi

let test_game_nash_solver () =
  let cps = priced () in
  let strategy = Strategy.make ~kappa:0.6 ~c:0.3 in
  let o = Cp_game.solve_nash ~nu:3. ~strategy cps in
  Alcotest.(check bool) "nash search converged" true o.Cp_game.converged;
  match
    Cp_game.check_nash ~tol:1e-7 ~nu:3. ~strategy cps o.Cp_game.partition
  with
  | Ok () -> ()
  | Error (_, e) -> Alcotest.fail e

let test_game_nash_detects_deviation () =
  (* Park everyone in ordinary under a tempting premium class: the Nash
     audit must flag a profitable deviation. *)
  let cps = priced () in
  let strategy = Strategy.make ~kappa:0.9 ~c:0.01 in
  let all_ordinary = Partition.all_ordinary 3 in
  match Cp_game.check_nash ~nu:1. ~strategy cps all_ordinary with
  | Ok () -> Alcotest.fail "expected a profitable deviation"
  | Error _ -> ()

let slow_test_nash_competitive_concordance () =
  (* The paper treats Definitions 2 and 3 as interchangeable for large
     populations; the two solvers should deliver near-identical welfare. *)
  let cps = ensemble ~n:80 211 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  List.iter
    (fun (kappa, c, frac) ->
      let strategy = Strategy.make ~kappa ~c in
      let nu = frac *. sat in
      let competitive = Cp_game.solve ~nu ~strategy cps in
      let nash = Cp_game.solve_nash ~nu ~strategy cps in
      let scale = Float.max competitive.Cp_game.phi 1e-9 in
      Alcotest.(check bool)
        (Printf.sprintf
           "Phi concordance at (%g, %g, %.2f sat): competitive %.3f vs             nash %.3f"
           kappa c frac competitive.Cp_game.phi nash.Cp_game.phi)
        true
        (Float.abs (competitive.Cp_game.phi -. nash.Cp_game.phi)
        <= 0.05 *. scale);
      Alcotest.(check bool) "Psi concordance" true
        (Float.abs (competitive.Cp_game.psi -. nash.Cp_game.psi)
        <= 0.05 *. Float.max competitive.Cp_game.psi 1e-2))
    [ (0.5, 0.3, 0.3); (1., 0.4, 0.5); (0.7, 0.2, 0.8) ]

let test_class_solution_zero_capacity () =
  let sol = Cp_game.class_solution ~nu_class:0. (priced ()) in
  check_float "cap zero" 0. sol.Equilibrium.cap;
  Array.iter (fun th -> check_float "starved" 0. th) sol.Equilibrium.theta

let prop_game_converges_on_random_points =
  QCheck.Test.make ~name:"CP game converges across random strategy points"
    ~count:25
    QCheck.(
      triple (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_range 0.5 25.))
    (fun (kappa, c, nu) ->
      let cps = ensemble 40 in
      let o = Cp_game.solve ~nu ~strategy:(Strategy.make ~kappa ~c) cps in
      o.Cp_game.converged)

let prop_game_psi_nonnegative =
  QCheck.Test.make ~name:"Psi and Phi are non-negative" ~count:25
    QCheck.(
      triple (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_range 0.1 30.))
    (fun (kappa, c, nu) ->
      let cps = ensemble 40 in
      let o = Cp_game.solve ~nu ~strategy:(Strategy.make ~kappa ~c) cps in
      o.Cp_game.psi >= 0. && o.Cp_game.phi >= 0.)

(* ------------------------------------------------------------------ *)
(* Monopoly (Sec. III)                                                *)
(* ------------------------------------------------------------------ *)

let test_monopoly_price_sweep_linear_regime () =
  (* Fig. 4: Psi = c * nu while the premium class stays saturated. *)
  let cps = ensemble ~n:120 11 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.3 *. sat in
  let points =
    Monopoly.price_sweep ~kappa:1. ~nu ~cs:[| 0.05; 0.1; 0.2 |] cps
  in
  Array.iter
    (fun (p : Monopoly.price_point) ->
      check_close (0.01 *. nu)
        (Printf.sprintf "Psi = c*nu at c=%g" p.Monopoly.c)
        (p.Monopoly.c *. nu) p.Monopoly.psi)
    points

let test_monopoly_revenue_collapses_at_high_price () =
  let cps = ensemble ~n:120 11 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let sweep =
    Monopoly.price_sweep ~kappa:1. ~nu:(0.5 *. sat) ~cs:[| 0.3; 0.999 |] cps
  in
  Alcotest.(check bool) "revenue collapses near max v" true
    (sweep.(1).Monopoly.psi < 0.2 *. sweep.(0).Monopoly.psi)

let test_monopoly_theorem4 () =
  let cps = ensemble ~n:100 13 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  List.iter
    (fun (nu_frac, c) ->
      match
        Monopoly.check_theorem4 ~nu:(nu_frac *. sat) ~c
          ~kappas:[| 0.; 0.2; 0.5; 0.8 |] cps
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ (0.2, 0.3); (0.6, 0.5); (0.9, 0.2) ]

let test_monopoly_optimal_price_beats_grid () =
  let cps = ensemble ~n:80 17 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.7 *. sat in
  let best = Monopoly.optimal_price ~nu cps in
  let sweep =
    Monopoly.price_sweep ~kappa:1. ~nu
      ~cs:(Po_num.Grid.linspace 0.02 1. 15)
      cps
  in
  Array.iter
    (fun (p : Monopoly.price_point) ->
      if p.Monopoly.psi > best.Monopoly.psi +. 1e-6 then
        Alcotest.failf "grid point c=%g beats the optimiser (%g > %g)"
          p.Monopoly.c p.Monopoly.psi best.Monopoly.psi)
    sweep

let test_monopoly_regimes () =
  let cps = ensemble ~n:80 19 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.85 *. sat in
  let neutral = Monopoly.regime_outcome ~nu Monopoly.Neutral cps in
  check_float "neutral has no revenue" 0. neutral.Cp_game.psi;
  let fixed =
    Monopoly.regime_outcome ~nu
      (Monopoly.Fixed (Strategy.make ~kappa:1. ~c:0.4))
      cps
  in
  Alcotest.(check bool) "fixed strategy collects revenue" true
    (fixed.Cp_game.psi > 0.);
  let capped = Monopoly.regime_outcome ~nu (Monopoly.Capped 0.3) cps in
  Alcotest.(check bool) "capped kappa stays within the cap" true
    (Strategy.kappa capped.Cp_game.strategy <= 0.3 +. 1e-9)

let test_monopoly_capacity_sweep_length () =
  let cps = ensemble ~n:60 23 in
  let nus = Po_num.Grid.linspace 1. 20. 7 in
  let outcomes =
    Monopoly.capacity_sweep ~strategy:(Strategy.make ~kappa:0.5 ~c:0.3) ~nus
      cps
  in
  Alcotest.(check int) "one outcome per capacity" 7 (Array.length outcomes);
  Array.iter
    (fun (o : Cp_game.outcome) ->
      Alcotest.(check bool) "each converged" true o.Cp_game.converged)
    outcomes

let slow_test_monopoly_misalignment_at_abundance () =
  (* The paper's central monopoly finding: at abundant capacity the
     revenue-optimal price reduces consumer surplus below the neutral
     level. *)
  let cps = ensemble ~n:200 29 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.85 *. sat in
  let best = Monopoly.optimal_price ~nu cps in
  let neutral = Cp_game.solve ~nu ~strategy:Strategy.public_option cps in
  Alcotest.(check bool)
    (Printf.sprintf "Phi(optimal c)=%g < Phi(neutral)=%g" best.Monopoly.phi
       neutral.Cp_game.phi)
    true
    (best.Monopoly.phi < neutral.Cp_game.phi)

let () =
  Alcotest.run "po_game"
    [ ( "strategy",
        [ quick "validation" test_strategy_validation;
          quick "predicates" test_strategy_predicates;
          quick "ordering" test_strategy_ordering;
          quick "grid" test_strategy_grid ] );
      ( "partition",
        [ quick "basics" test_partition_basics;
          quick "members preserve order" test_partition_members_preserve_order;
          quick "move functional" test_partition_move_functional;
          quick "key" test_partition_key;
          quick "copies source" test_partition_immutability_from_source ] );
      ( "cp_game degenerate",
        [ quick "kappa=0" test_game_kappa0_all_ordinary;
          quick "kappa=1 affordable set" test_game_kappa1_affordable_set;
          quick "price above all v" test_game_price_above_all_v;
          quick "free premium" test_game_free_premium;
          quick "zero capacity" test_game_zero_capacity ] );
      ( "cp_game equilibrium",
        [ quick "accounting" test_game_outcome_accounting;
          slow "competitive equilibrium" test_game_solution_is_competitive;
          quick "warm start" test_game_warm_start_agrees;
          quick "outcome reproducible" test_game_outcome_reproducible;
          quick "nash solver" test_game_nash_solver;
          quick "nash detects deviation" test_game_nash_detects_deviation;
          slow "nash/competitive concordance" slow_test_nash_competitive_concordance;
          quick "zero-capacity class" test_class_solution_zero_capacity;
          prop prop_game_converges_on_random_points;
          prop prop_game_psi_nonnegative ] );
      ( "monopoly",
        [ quick "linear regime" test_monopoly_price_sweep_linear_regime;
          quick "collapse at high price" test_monopoly_revenue_collapses_at_high_price;
          quick "theorem 4" test_monopoly_theorem4;
          slow "optimal price beats grid" test_monopoly_optimal_price_beats_grid;
          quick "regimes" test_monopoly_regimes;
          quick "capacity sweep" test_monopoly_capacity_sweep_length;
          slow "misalignment at abundance"
            slow_test_monopoly_misalignment_at_abundance ] ) ]
