(* Fault-tolerance suite (DESIGN.md §10): the typed error channel, the
   deterministic fault-injection sites, the hardened pool's failure
   semantics, the crash-safe writer, and jobs-invariance of checkpoint
   journals across an injected crash and resume. *)

open Po_guard

let with_disarm f = Fun.protect ~finally:(fun () -> Faultinject.disarm ()) f
let spec ?solver ?worker ?write ?timeout ?slow ?flaky () =
  { Faultinject.solver; worker; write; timeout; slow; flaky }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then rm_rf dir;
  dir

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* ------------------------------------------------------------------ *)
(* Po_error                                                           *)
(* ------------------------------------------------------------------ *)

let test_error_context () =
  let e =
    Po_error.v
      ~context:[ ("figure", "fig4"); ("chunk", "3") ]
      (Po_error.Non_convergence { residual = 0.5; iterations = 7 })
  in
  Alcotest.(check string)
    "context frames render"
    "did not converge after 7 iterations (residual 0.5) [figure=fig4 chunk=3]"
    (Po_error.to_string e);
  (match
     Po_error.capture (fun () ->
         Po_error.with_context
           [ ("outer", "a") ]
           (fun () ->
             Po_error.fail ~context:[ ("inner", "b") ]
               (Po_error.No_bracket "x")))
   with
  | Error { context = [ ("outer", "a"); ("inner", "b") ]; _ } -> ()
  | Error e -> Alcotest.failf "wrong frames: %s" (Po_error.to_string e)
  | Ok () -> Alcotest.fail "expected a typed error");
  Alcotest.(check bool)
    "capture passes values through" true
    (Po_error.capture (fun () -> true) = Ok true);
  match Po_error.capture (fun () -> failwith "raw") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "capture must not swallow untyped exceptions"

(* ------------------------------------------------------------------ *)
(* Faultinject                                                        *)
(* ------------------------------------------------------------------ *)

let test_spec_parse () =
  (match Faultinject.parse "solver@3,worker@1" with
  | Ok { solver = Some 3; worker = Some 1; write = None; _ } -> ()
  | Ok s -> Alcotest.failf "mis-parsed: %s" (Faultinject.to_string s)
  | Error e -> Alcotest.fail e);
  (match Faultinject.parse " write@2 " with
  | Ok { write = Some 2; solver = None; worker = None; _ } -> ()
  | Ok s -> Alcotest.failf "mis-parsed: %s" (Faultinject.to_string s)
  | Error e -> Alcotest.fail e);
  (match Faultinject.parse "worker@0" with
  | Ok { worker = Some 0; _ } -> ()
  | Ok s -> Alcotest.failf "mis-parsed: %s" (Faultinject.to_string s)
  | Error e -> Alcotest.fail e);
  (match Faultinject.parse "timeout@2,slow@1,flaky@3:2" with
  | Ok { timeout = Some 2; slow = Some 1; flaky = Some (3, 2); _ } -> ()
  | Ok s -> Alcotest.failf "mis-parsed: %s" (Faultinject.to_string s)
  | Error e -> Alcotest.fail e);
  let rejects s =
    match Faultinject.parse s with
    | Ok _ -> Alcotest.failf "accepted bad spec %S" s
    | Error _ -> ()
  in
  rejects "";
  rejects "solver@0";
  rejects "write@-1";
  rejects "disk@3";
  rejects "solver";
  rejects "solver@x";
  rejects "timeout@-1";
  rejects "slow@x";
  rejects "flaky@1";
  rejects "flaky@1:0";
  rejects "flaky@-1:2";
  rejects "flaky@1:2:3"

let test_spec_roundtrip () =
  let s = spec ~solver:2 ~worker:0 ~write:5 ~timeout:1 ~slow:3 ~flaky:(2, 4) () in
  match Faultinject.parse (Faultinject.to_string s) with
  | Ok s' ->
      Alcotest.(check string)
        "round trip" (Faultinject.to_string s) (Faultinject.to_string s')
  | Error e -> Alcotest.fail e

let test_fire_counters () =
  with_disarm (fun () ->
      Alcotest.(check bool)
        "disarmed never fires" false
        (Faultinject.fire Faultinject.Solver ~key:0);
      Faultinject.arm (spec ~solver:2 ~worker:4 ());
      Alcotest.(check bool)
        "solver call 1 of 2 passes" false
        (Faultinject.fire Faultinject.Solver ~key:0);
      Alcotest.(check bool)
        "solver call 2 of 2 fires" true
        (Faultinject.fire Faultinject.Solver ~key:0);
      Alcotest.(check bool)
        "solver fires exactly once" false
        (Faultinject.fire Faultinject.Solver ~key:0);
      Alcotest.(check bool)
        "worker keyed by chunk index, not a counter" true
        (Faultinject.fire Faultinject.Worker ~key:4);
      Alcotest.(check bool)
        "other chunks pass" false
        (Faultinject.fire Faultinject.Worker ~key:3);
      Faultinject.arm (spec ~solver:1 ());
      Alcotest.(check bool)
        "re-arming resets the counters" true
        (Faultinject.fire Faultinject.Solver ~key:0))

(* ------------------------------------------------------------------ *)
(* Solver fault site through the model layer                          *)
(* ------------------------------------------------------------------ *)

let test_solver_site () =
  with_disarm (fun () ->
      let cps = Po_workload.Scenario.three_cp () in
      (* nu = 0.01 is deep in the congested regime for this scenario
         (fig3 sweeps it from exactly there), so the solve reaches the
         guarded path. *)
      (match Po_model.Equilibrium.solve_checked ~nu:0.01 cps with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "disarmed solve failed: %s" (Po_error.to_string e));
      Faultinject.arm (spec ~solver:1 ());
      match Po_model.Equilibrium.solve_checked ~nu:0.01 cps with
      | Error
          { kind = Po_error.Non_convergence _;
            context = ("injected", "solver") :: _
          } ->
          ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "armed solver site did not fire")

(* ------------------------------------------------------------------ *)
(* Hardened pool                                                      *)
(* ------------------------------------------------------------------ *)

let test_injected_worker_crash () =
  with_disarm (fun () ->
      Po_par.Pool.with_pool ~domains:3 (fun pool ->
          Faultinject.arm (spec ~worker:2 ());
          (* 40 elements in chunks of 4: logical chunk 2 dies, whatever
             the worker count. *)
          (match
             Po_error.capture (fun () ->
                 Po_par.Pool.chain_map ~chunk_size:4 (Some pool)
                   ~step:(fun _ x -> x * 2)
                   (Array.init 40 Fun.id))
           with
          | Error { kind = Po_error.Worker_crash { chunk = 2; _ }; context }
            ->
              Alcotest.(check bool)
                "injected frame present" true
                (List.mem ("injected", "worker") context)
          | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
          | Ok _ -> Alcotest.fail "armed worker site did not fire");
          Faultinject.disarm ();
          (* No deadlock, and the pool is reusable after the failure. *)
          Alcotest.(check (array int))
            "pool alive after injected crash"
            (Array.init 40 (fun i -> i * 2))
            (Po_par.Pool.chain_map ~chunk_size:4 (Some pool)
               ~step:(fun _ x -> x * 2)
               (Array.init 40 Fun.id))))

let test_typed_error_passthrough () =
  (* A typed error raised inside mapped work keeps its own kind and gains
     the logical chunk frame; it is not double-wrapped as Worker_crash. *)
  Po_par.Pool.with_pool ~domains:3 (fun pool ->
      match
        Po_error.capture (fun () ->
            Po_par.Pool.chunk_map ~chunk_size:4 (Some pool)
              ~f:(fun x ->
                if x = 9 then
                  Po_error.fail
                    (Po_error.Non_convergence { residual = 1.; iterations = 3 })
                else x)
              (Array.init 40 Fun.id))
      with
      | Error
          { kind = Po_error.Non_convergence { iterations = 3; _ }; context }
        ->
          Alcotest.(check bool)
            "chunk frame stamped" true
            (List.mem ("chunk", "2") context)
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "typed error did not propagate")

let test_spawn_degradation () =
  (* Ask for far more domains than the runtime can host: create must
     degrade to however many workers spawned, warn once through
     Po_guard.Warnings, and still run work correctly. *)
  let warnings = ref [] in
  Warnings.set_handler (fun msg -> warnings := msg :: !warnings);
  Fun.protect
    ~finally:(fun () -> Warnings.set_handler prerr_endline)
    (fun () ->
      Po_par.Pool.with_pool ~domains:100_000 (fun pool ->
          Alcotest.(check bool)
            "pool degraded below the request" true
            (Po_par.Pool.domains pool < 100_000);
          Alcotest.(check bool)
            "degradation warned" true
            (List.exists (has_prefix "Pool.create") !warnings);
          Alcotest.(check (array int))
            "degraded pool still maps correctly"
            (Array.init 100 (fun i -> i + 1))
            (Po_par.Pool.parallel_map pool
               (fun x -> x + 1)
               (Array.init 100 Fun.id))))

(* ------------------------------------------------------------------ *)
(* Crash-safe writer                                                  *)
(* ------------------------------------------------------------------ *)

let test_write_atomic () =
  with_disarm (fun () ->
      let dir = fresh_dir "po_guard_writer" in
      let path = Filename.concat dir (Filename.concat "deep" "out.txt") in
      Po_report.Writer.write_atomic ~path "first";
      Alcotest.(check string) "written whole" "first" (read_file path);
      Faultinject.arm (spec ~write:1 ());
      (match
         Po_error.capture (fun () -> Po_report.Writer.write_atomic ~path "torn")
       with
      | Error { kind = Po_error.Io_failure _; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok () -> Alcotest.fail "armed write site did not fire");
      (* The fault fires inside the crash window (temp written, rename
         pending): the destination must still hold the old content. *)
      Alcotest.(check string)
        "old content survives a failed write" "first" (read_file path);
      Faultinject.disarm ();
      Po_report.Writer.write_atomic ~path "second";
      Alcotest.(check string) "writer recovers" "second" (read_file path))

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                *)
(* ------------------------------------------------------------------ *)

let bits = Array.map Int64.bits_of_float

let check_bits msg expected got =
  Alcotest.(check (array int64)) msg (bits expected) (bits got)

module Common = Po_experiments.Common

(* Warm-start-sensitive step: each value depends on the previous one
   within its chunk, so replayed chunks must be bit-exact for the whole
   sweep to be. *)
let chained_step prev x =
  (0.5 *. Option.value prev ~default:1.) +. sqrt (x +. 1.)

let test_checkpoint_resume_jobs_invariant () =
  with_disarm (fun () ->
      let dir = fresh_dir "po_guard_ck" in
      let xs = Array.init 33 float_of_int in
      let ck resume = Some { Common.dir; resume } in
      let clean =
        Common.with_figure_scope "guardck" (fun () ->
            Common.sweep_chained ~chunk_size:4
              { Common.quick_params with checkpoint = None }
              ~step:chained_step xs)
      in
      (* Interrupted run on 2 domains: chunk 5 crashes; chunks claimed
         before it complete and journal. *)
      Faultinject.arm (spec ~worker:5 ());
      (match
         Po_error.capture (fun () ->
             Common.with_figure_scope "guardck" (fun () ->
                 Common.sweep_chained ~chunk_size:4
                   { Common.quick_params with jobs = 2; checkpoint = ck false }
                   ~step:chained_step xs))
       with
      | Error { kind = Po_error.Worker_crash { chunk = 5; _ }; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "armed worker site did not fire");
      Faultinject.disarm ();
      Alcotest.(check bool)
        "journal survives the crash" true
        (Array.exists (has_prefix "guardck") (Sys.readdir dir));
      (* Resume on 1 domain: journalled chunks replay, the rest compute
         fresh; the sweep must equal the uninterrupted run bit for bit
         even though the two runs used different worker counts. *)
      let fresh_calls = ref 0 in
      let counted prev x =
        incr fresh_calls;
        chained_step prev x
      in
      let resumed =
        Common.with_figure_scope "guardck" (fun () ->
            Common.sweep_chained ~chunk_size:4
              { Common.quick_params with jobs = 1; checkpoint = ck true }
              ~step:counted xs)
      in
      check_bits "resumed sweep bit-identical" clean resumed;
      Alcotest.(check bool)
        "journalled chunks were not recomputed" true
        (!fresh_calls < Array.length xs);
      Alcotest.(check bool)
        "the crashed chunk was recomputed" true (!fresh_calls >= 4);
      (* Success removes the figure's journals. *)
      Alcotest.(check bool)
        "journals cleaned after success" false
        (Array.exists (has_prefix "guardck") (Sys.readdir dir)))

let test_corrupt_journal_recomputes () =
  with_disarm (fun () ->
      let dir = fresh_dir "po_guard_ck_corrupt" in
      let xs = Array.init 12 float_of_int in
      let params resume =
        { Common.quick_params with checkpoint = Some { Common.dir; resume } }
      in
      let clean =
        Common.with_figure_scope "guardbad" (fun () ->
            Common.sweep_chained ~chunk_size:4 (params false)
              ~step:chained_step xs)
      in
      (* Crash on chunk 1 to leave a real journal (chunk 0 completed),
         then vandalise its tail: a garbage line, a v2 line with a wrong
         digest, one with a wrong length prefix, and a torn half-line.
         Loading must stop at the first bad line, warn, physically
         truncate the file to the surviving prefix, and recompute the
         lost chunks. *)
      Faultinject.arm (spec ~worker:1 ());
      (match
         Po_error.capture (fun () ->
             Common.with_figure_scope "guardbad" (fun () ->
                 Common.sweep_chained ~chunk_size:4 (params false)
                   ~step:chained_step xs))
       with
      | Error { kind = Po_error.Worker_crash { chunk = 1; _ }; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "armed worker site did not fire");
      Faultinject.disarm ();
      let journal =
        match
          Array.find_opt (has_prefix "guardbad") (Sys.readdir dir)
        with
        | Some f -> Filename.concat dir f
        | None -> Alcotest.fail "no journal left by the crashed run"
      in
      let good_prefix = read_file journal in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 journal
      in
      output_string oc
        "not a journal line\n\
         v2 1 4 0123456789abcdef 0102\n\
         v2 2 8 0000000000000000 0102\n\
         v2 2";
      close_out oc;
      let warnings_before = Warnings.count () in
      (* Resume with a crash armed on the last chunk: the load truncates
         the journal, chunk 1 recomputes and re-journals, chunk 2
         crashes — leaving the rewritten journal behind for
         inspection. *)
      Faultinject.arm (spec ~worker:2 ());
      (match
         Po_error.capture (fun () ->
             Common.with_figure_scope "guardbad" (fun () ->
                 Common.sweep_chained ~chunk_size:4 (params true)
                   ~step:chained_step xs))
       with
      | Error { kind = Po_error.Worker_crash { chunk = 2; _ }; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "armed worker site did not fire");
      Faultinject.disarm ();
      Alcotest.(check bool)
        "torn tail was reported" true
        (Warnings.count () > warnings_before);
      (* The load rewrote the journal to its valid prefix before the
         resumed sweep appended the recomputed chunk, so the surviving
         file starts with exactly the prefix and holds no wreckage. *)
      let rewritten = read_file journal in
      Alcotest.(check bool)
        "journal was truncated to the valid prefix" true
        (String.length rewritten >= String.length good_prefix
        && String.sub rewritten 0 (String.length good_prefix) = good_prefix);
      let contains_garbage =
        let needle = "not a journal line" in
        let n = String.length needle and m = String.length rewritten in
        let rec scan i =
          i + n <= m && (String.sub rewritten i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "no garbage survives the rewrite" false
        contains_garbage;
      let resumed =
        Common.with_figure_scope "guardbad" (fun () ->
            Common.sweep_chained ~chunk_size:4 (params true)
              ~step:chained_step xs)
      in
      check_bits "corrupt journal entries fall back to recompute" clean
        resumed)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "po_guard"
    [ ("po_error", [ quick "context frames" test_error_context ]);
      ( "faultinject",
        [ quick "spec parse" test_spec_parse;
          quick "spec round trip" test_spec_roundtrip;
          quick "fire semantics" test_fire_counters;
          quick "solver site" test_solver_site ] );
      ( "pool",
        [ quick "injected worker crash" test_injected_worker_crash;
          quick "typed error passthrough" test_typed_error_passthrough;
          quick "spawn degradation" test_spawn_degradation ] );
      ("writer", [ quick "atomic write" test_write_atomic ]);
      ( "checkpoint",
        [ quick "resume is jobs-invariant"
            test_checkpoint_resume_jobs_invariant;
          quick "corrupt journal recomputes" test_corrupt_journal_recomputes
        ] ) ]
