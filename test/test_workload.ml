(* Tests for the workload generators (lib/workload). *)

open Po_model
open Po_workload

let quick name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Paper ensemble                                                     *)
(* ------------------------------------------------------------------ *)

let test_ensemble_size_and_ids () =
  let cps = Ensemble.paper_ensemble ~n:50 ~seed:1 () in
  Alcotest.(check int) "size" 50 (Array.length cps);
  Array.iteri (fun i cp -> Alcotest.(check int) "sequential id" i cp.Cp.id) cps

let test_ensemble_deterministic () =
  let a = Ensemble.paper_ensemble ~n:30 ~seed:5 () in
  let b = Ensemble.paper_ensemble ~n:30 ~seed:5 () in
  Array.iteri
    (fun i cp ->
      check_close 0. "same alpha" cp.Cp.alpha b.(i).Cp.alpha;
      check_close 0. "same v" cp.Cp.v b.(i).Cp.v;
      check_close 0. "same phi" cp.Cp.phi b.(i).Cp.phi)
    a

let test_ensemble_seed_sensitivity () =
  let a = Ensemble.paper_ensemble ~n:30 ~seed:5 () in
  let b = Ensemble.paper_ensemble ~n:30 ~seed:6 () in
  Alcotest.(check bool) "different seeds differ" true
    (Array.exists2 (fun x y -> x.Cp.alpha <> y.Cp.alpha) a b)

let test_ensemble_prefix_stability () =
  (* Per-attribute streams: growing the population extends it without
     disturbing earlier CPs. *)
  let small = Ensemble.paper_ensemble ~n:20 ~seed:9 () in
  let large = Ensemble.paper_ensemble ~n:40 ~seed:9 () in
  Array.iteri
    (fun i cp ->
      check_close 0. "alpha stable" cp.Cp.alpha large.(i).Cp.alpha;
      check_close 0. "theta stable" cp.Cp.theta_hat large.(i).Cp.theta_hat)
    small

let test_ensemble_ranges () =
  let cps = Ensemble.paper_ensemble ~n:500 ~seed:3 () in
  Array.iter
    (fun (cp : Cp.t) ->
      if not (cp.Cp.alpha > 0. && cp.Cp.alpha <= 1.) then
        Alcotest.fail "alpha out of range";
      if not (cp.Cp.theta_hat > 0. && cp.Cp.theta_hat <= 1.) then
        Alcotest.fail "theta_hat out of range";
      if not (cp.Cp.v >= 0. && cp.Cp.v <= 1.) then
        Alcotest.fail "v out of range";
      if cp.Cp.phi < 0. then Alcotest.fail "phi negative")
    cps

let test_ensemble_saturation_matches_paper () =
  (* E[sum alpha theta_hat] = n/4; the paper quotes ~250 for n = 1000. *)
  let cps = Ensemble.paper_ensemble ~n:1000 ~seed:42 () in
  check_close 25. "saturation near 250" 250. (Ensemble.saturation_nu cps)

let test_ensemble_phi_coupled_bounded_by_beta () =
  (* In the main-text setting, phi_i <= beta_i <= 10. *)
  let cps = Ensemble.paper_ensemble ~n:300 ~seed:7 () in
  Array.iter
    (fun (cp : Cp.t) ->
      if cp.Cp.phi > 10. then Alcotest.fail "phi exceeds the beta bound")
    cps

let test_ensemble_phi_settings_differ () =
  let a = Ensemble.paper_ensemble ~n:50 ~seed:11 () in
  let b =
    Ensemble.paper_ensemble ~n:50 ~phi:Ensemble.Independent ~seed:11 ()
  in
  (* Same CP characteristics (the appendix keeps decisions identical)... *)
  Array.iteri
    (fun i cp -> check_close 0. "same v" cp.Cp.v b.(i).Cp.v)
    a;
  (* ...but different utility draws. *)
  Alcotest.(check bool) "phi differs" true
    (Array.exists2 (fun x y -> x.Cp.phi <> y.Cp.phi) a b)

let test_total_value_bounds_phi () =
  let cps = Ensemble.paper_ensemble ~n:100 ~seed:13 () in
  let bound = Ensemble.total_value cps in
  let phi =
    Po_model.Surplus.consumer_at ~nu:(Ensemble.saturation_nu cps) cps
  in
  check_close (1e-6 *. bound) "Phi at saturation equals the bound" bound phi

(* ------------------------------------------------------------------ *)
(* Heavy-tailed ensemble                                              *)
(* ------------------------------------------------------------------ *)

let test_heavy_tailed_valid () =
  let cps = Ensemble.heavy_tailed_ensemble ~n:200 ~seed:17 () in
  Alcotest.(check int) "size" 200 (Array.length cps);
  Array.iter
    (fun (cp : Cp.t) ->
      if not (cp.Cp.alpha > 0. && cp.Cp.alpha <= 1.) then
        Alcotest.fail "alpha out of range";
      if cp.Cp.theta_hat <= 0. then Alcotest.fail "theta_hat <= 0")
    cps

let test_heavy_tailed_skew () =
  (* Zipf popularity: the top CP should dominate the median by a large
     factor. *)
  let cps = Ensemble.heavy_tailed_ensemble ~n:200 ~seed:17 () in
  let alphas = Array.map (fun cp -> cp.Cp.alpha) cps in
  let top = Po_num.Stats.max alphas in
  let med = Po_num.Stats.median alphas in
  Alcotest.(check bool)
    (Printf.sprintf "top %.3f >> median %.4f" top med)
    true
    (top > 20. *. med)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                          *)
(* ------------------------------------------------------------------ *)

let test_three_cp_labels () =
  let cps = Scenario.three_cp () in
  Alcotest.(check (list string)) "labels"
    [ "google"; "netflix"; "skype" ]
    (Array.to_list (Array.map (fun cp -> cp.Cp.label) cps))

let test_three_cp_priced_has_business_params () =
  let cps = Scenario.three_cp_priced () in
  Array.iter
    (fun (cp : Cp.t) ->
      Alcotest.(check bool) "v set" true (cp.Cp.v > 0.);
      Alcotest.(check bool) "phi set" true (cp.Cp.phi > 0.))
    cps

let test_archetype_mix_counts () =
  let cps = Scenario.archetype_mix ~google:2 ~netflix:3 ~skype:4 ~seed:1 () in
  Alcotest.(check int) "total" 9 (Array.length cps);
  let count label =
    Array.fold_left
      (fun acc cp -> if cp.Cp.label = label then acc + 1 else acc)
      0 cps
  in
  Alcotest.(check int) "google" 2 (count "google");
  Alcotest.(check int) "netflix" 3 (count "netflix");
  Alcotest.(check int) "skype" 4 (count "skype")

let test_archetype_mix_jitters () =
  let cps = Scenario.archetype_mix ~google:5 ~netflix:0 ~skype:0 ~seed:2 () in
  let distinct =
    Array.to_list (Array.map (fun cp -> cp.Cp.theta_hat) cps)
    |> List.sort_uniq Float.compare |> List.length
  in
  Alcotest.(check bool) "jitter makes CPs distinct" true (distinct > 1)

let test_archetype_mix_alpha_clamped () =
  let cps = Scenario.archetype_mix ~google:20 ~netflix:0 ~skype:0 ~seed:3 () in
  Array.iter
    (fun (cp : Cp.t) ->
      Alcotest.(check bool) "alpha <= 1" true (cp.Cp.alpha <= 1.))
    cps

(* ------------------------------------------------------------------ *)
(* Io (CSV round trip)                                                *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  let cps = Ensemble.paper_ensemble ~n:25 ~seed:3 () in
  match Io.to_csv cps with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
      match Io.of_csv doc with
      | Error e -> Alcotest.fail e
      | Ok back ->
          Alcotest.(check int) "same size" (Array.length cps)
            (Array.length back);
          Array.iteri
            (fun i cp ->
              check_close 0. "alpha" cp.Cp.alpha back.(i).Cp.alpha;
              check_close 0. "theta_hat" cp.Cp.theta_hat
                back.(i).Cp.theta_hat;
              check_close 0. "v" cp.Cp.v back.(i).Cp.v;
              check_close 0. "phi" cp.Cp.phi back.(i).Cp.phi;
              Alcotest.(check string) "label" cp.Cp.label back.(i).Cp.label;
              (* Demand behaviour preserved, not just parameters. *)
              check_close 1e-12 "demand at 0.5"
                (Demand.eval cp.Cp.demand 0.5)
                (Demand.eval back.(i).Cp.demand 0.5))
            cps)

let test_io_rejects_non_exponential () =
  let cps =
    [| Cp.make ~id:0 ~alpha:0.5 ~theta_hat:1. ~demand:Demand.linear () |]
  in
  match Io.to_csv cps with
  | Ok _ -> Alcotest.fail "linear demand should not serialise"
  | Error _ -> ()

let test_io_rejects_bad_header () =
  match Io.of_csv "nope\n1,2,3\n" with
  | Ok _ -> Alcotest.fail "bad header accepted"
  | Error _ -> ()

let test_io_rejects_bad_row () =
  let doc = "id,label,alpha,theta_hat,beta,v,phi\n0,x,2.0,1,1,0,0\n" in
  (* alpha = 2 is outside (0, 1]. *)
  match Io.of_csv doc with
  | Ok _ -> Alcotest.fail "invalid alpha accepted"
  | Error _ -> ()

let test_io_file_roundtrip () =
  let cps = Ensemble.paper_ensemble ~n:10 ~seed:5 () in
  let dir = Filename.temp_file "po_io" "" in
  Sys.remove dir;
  let path = Filename.concat dir "pop.csv" in
  (match Io.write_file ~path cps with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Io.read_file ~path with
  | Ok back -> Alcotest.(check int) "size" 10 (Array.length back)
  | Error e -> Alcotest.fail e

let prop_ensemble_usable_in_solver =
  QCheck.Test.make ~name:"every ensemble solves cleanly" ~count:20
    QCheck.(pair small_int (float_range 0.5 30.))
    (fun (seed, nu) ->
      let cps = Ensemble.paper_ensemble ~n:40 ~seed () in
      let sol = Po_model.Equilibrium.solve ~nu cps in
      Array.for_all Float.is_finite sol.Po_model.Equilibrium.theta)

let () =
  Alcotest.run "po_workload"
    [ ( "paper ensemble",
        [ quick "size and ids" test_ensemble_size_and_ids;
          quick "deterministic" test_ensemble_deterministic;
          quick "seed sensitivity" test_ensemble_seed_sensitivity;
          quick "prefix stability" test_ensemble_prefix_stability;
          quick "attribute ranges" test_ensemble_ranges;
          quick "saturation ~ n/4" test_ensemble_saturation_matches_paper;
          quick "phi coupled to beta" test_ensemble_phi_coupled_bounded_by_beta;
          quick "phi settings differ" test_ensemble_phi_settings_differ;
          quick "total value bound" test_total_value_bounds_phi;
          prop prop_ensemble_usable_in_solver ] );
      ( "heavy tailed",
        [ quick "valid" test_heavy_tailed_valid;
          quick "skew" test_heavy_tailed_skew ] );
      ( "io",
        [ quick "roundtrip" test_io_roundtrip;
          quick "rejects non-exponential" test_io_rejects_non_exponential;
          quick "rejects bad header" test_io_rejects_bad_header;
          quick "rejects bad row" test_io_rejects_bad_row;
          quick "file roundtrip" test_io_file_roundtrip ] );
      ( "scenarios",
        [ quick "three cp labels" test_three_cp_labels;
          quick "priced params" test_three_cp_priced_has_business_params;
          quick "mix counts" test_archetype_mix_counts;
          quick "mix jitters" test_archetype_mix_jitters;
          quick "alpha clamped" test_archetype_mix_alpha_clamped ] ) ]
