(* Fixture-driven tests for po_lint: embedded snippets that must trigger
   each rule R1-R6, clean snippets that must not, suppression-comment and
   allowlist handling, typed-tree fixtures for the interprocedural rules
   R7-R10 (type-checked in process against the repo's real libraries),
   call-graph unit tests, and whole-tree runs asserting the repository
   itself lints clean under both stages. *)

open Po_lint

let rules_found diags =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Diagnostic.rule) diags)

let check_rules msg expected diags =
  Alcotest.(check (list string)) msg expected (rules_found diags)

let lint ?(file = "lib/fixture/snippet.ml") ?has_mli src =
  Lint.lint_source ~file ?has_mli src

(* ------------------------------------------------------------------ *)
(* R1: polymorphic compare / float equality                           *)
(* ------------------------------------------------------------------ *)

let test_r1_bare_compare () =
  check_rules "Array.sort compare flagged" [ "R1" ]
    (lint "let f xs = Array.sort compare xs");
  check_rules "Stdlib.compare flagged" [ "R1" ]
    (lint "let c = Stdlib.compare");
  check_rules "List.sort_uniq compare flagged" [ "R1" ]
    (lint "let f xs = List.sort_uniq compare xs")

let test_r1_float_equality () =
  check_rules "= on float literal" [ "R1" ] (lint "let f x = x = 1.0");
  check_rules "<> on float literal" [ "R1" ] (lint "let f x = x <> 0.5");
  check_rules "= on float annotation" [ "R1" ]
    (lint "let f x y = (x : float) = y");
  check_rules "= on infinity" [ "R1" ]
    (lint "let f x = x = Float.infinity");
  check_rules "= on nan is flagged" [ "R1" ] (lint "let f x = x = nan");
  check_rules "= on float arithmetic" [ "R1" ]
    (lint "let f x y = x = y +. 1.")

let test_r1_clean () =
  check_rules "Float.compare is the fix" []
    (lint "let f xs = Array.sort Float.compare xs");
  check_rules "Float.equal is the fix" []
    (lint "let f x = Float.equal x 1.0");
  check_rules "int equality untouched" [] (lint "let f n = n = 1");
  check_rules "string equality untouched" []
    (lint {|let f s = s = "x"|});
  check_rules "module-qualified compare untouched" []
    (lint "let f a b = String.compare a b");
  check_rules "defining a compare is not using one" []
    (lint "let compare a b = Float.compare a b")

(* ------------------------------------------------------------------ *)
(* R2: nondeterminism sources                                         *)
(* ------------------------------------------------------------------ *)

let test_r2_sources () =
  check_rules "Random.self_init" [ "R2" ]
    (lint "let () = Random.self_init ()");
  check_rules "Random.int (ambient state)" [ "R2" ]
    (lint "let f () = Random.int 10");
  check_rules "Sys.time" [ "R2" ] (lint "let t () = Sys.time ()");
  check_rules "Unix.gettimeofday" [ "R2" ]
    (lint "let t () = Unix.gettimeofday ()");
  check_rules "Hashtbl.iter" [ "R2" ]
    (lint "let f h = Hashtbl.iter (fun _ v -> ignore v) h");
  check_rules "Hashtbl.fold" [ "R2" ]
    (lint "let dump h acc = Hashtbl.fold (fun _ v l -> v :: l) h acc")

let test_r2_whitelisted_cache_ops () =
  check_rules "find_opt/add caches are fine" []
    (lint
       "let memo h k f = match Hashtbl.find_opt h k with Some v -> v | \
        None -> let v = f k in Hashtbl.add h k v; v");
  check_rules "explicit Random.State is fine" []
    (lint "let f st = Random.State.int st 10")

let test_r2_exempt_under_test () =
  check_rules "R2 does not apply under test/" []
    (lint ~file:"test/fixture.ml" "let t () = Sys.time ()");
  check_rules "R1 still applies under test/" [ "R1" ]
    (lint ~file:"test/fixture.ml" "let f x = x = 1.0")

(* ------------------------------------------------------------------ *)
(* R3: exception swallowing                                           *)
(* ------------------------------------------------------------------ *)

let test_r3 () =
  check_rules "with _ ->" [ "R3" ]
    (lint "let f g = try g () with _ -> 0");
  check_rules "with _ -> () " [ "R3" ]
    (lint "let f g = try g () with _ -> ()");
  check_rules "wildcard among specific handlers" [ "R3" ]
    (lint "let f g = try g () with Not_found -> 1 | _ -> 0");
  check_rules "specific handler is fine" []
    (lint "let f g = try g () with Not_found -> 0")

(* ------------------------------------------------------------------ *)
(* R4: console output inside lib/                                     *)
(* ------------------------------------------------------------------ *)

let test_r4 () =
  check_rules "Printf.printf in lib/" [ "R4" ]
    (lint ~file:"lib/core/fixture.ml" {|let f () = Printf.printf "x"|});
  check_rules "print_string in lib/" [ "R4" ]
    (lint ~file:"lib/core/fixture.ml" {|let f () = print_string "x"|});
  check_rules "Format.printf in lib/" [ "R4" ]
    (lint ~file:"lib/core/fixture.ml" {|let f () = Format.printf "x"|});
  check_rules "Printf.sprintf is pure, fine" []
    (lint ~file:"lib/core/fixture.ml" {|let f () = Printf.sprintf "x"|});
  (* The daemon layer is NOT an output layer: its access log must go
     through Po_report.Writer, so raw console output in lib/serve is a
     violation like anywhere else in lib/. *)
  check_rules "print in the serve daemon layer" [ "R4" ]
    (lint ~file:"lib/serve/fixture.ml" {|let f () = print_endline "access"|});
  check_rules "eprintf in the serve daemon layer" [ "R4" ]
    (lint ~file:"lib/serve/fixture.ml" {|let f () = Printf.eprintf "x"|});
  check_rules "printing from bin/ is fine" []
    (lint ~file:"bin/fixture.ml" {|let f () = print_string "x"|});
  check_rules "lib/report is the output layer, exempt" []
    (lint ~file:"lib/report/fixture.ml" {|let f () = print_string "x"|})

(* ------------------------------------------------------------------ *)
(* R5: missing .mli                                                   *)
(* ------------------------------------------------------------------ *)

let test_r5 () =
  check_rules "lib module without .mli" [ "R5" ]
    (lint ~file:"lib/core/fixture.ml" ~has_mli:false "let x = 1");
  check_rules "lib module with .mli" []
    (lint ~file:"lib/core/fixture.ml" ~has_mli:true "let x = 1");
  check_rules "bin module needs no .mli" []
    (lint ~file:"bin/fixture.ml" ~has_mli:false "let x = 1")

(* ------------------------------------------------------------------ *)
(* R6: raw file writes                                                *)
(* ------------------------------------------------------------------ *)

let test_r6 () =
  check_rules "open_out in lib/" [ "R6" ]
    (lint ~file:"lib/core/fixture.ml" {|let f p = open_out p|});
  check_rules "open_out_bin in bin/" [ "R6" ]
    (lint ~file:"bin/fixture.ml" {|let f p = open_out_bin p|});
  check_rules "open_out_gen in bench/" [ "R6" ]
    (lint ~file:"bench/fixture.ml"
       {|let f p = open_out_gen [ Open_append ] 0o644 p|});
  check_rules "Sys.mkdir" [ "R6" ]
    (lint ~file:"lib/core/fixture.ml" {|let f p = Sys.mkdir p 0o755|});
  check_rules "Unix.mkdir" [ "R6" ]
    (lint ~file:"bin/fixture.ml" {|let f p = Unix.mkdir p 0o755|});
  check_rules "open_in is a read, fine" []
    (lint ~file:"lib/core/fixture.ml" {|let f p = open_in p|});
  check_rules "lib/report is the writer layer, exempt" []
    (lint ~file:"lib/report/fixture.ml" {|let f p = open_out p|});
  check_rules "test/ writes fixtures freely" []
    (lint ~file:"test/fixture.ml" {|let f p = open_out p|})

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)
(* ------------------------------------------------------------------ *)

let test_suppression_same_line () =
  check_rules "trailing allow comment silences" []
    (lint
       "let t () = Sys.time () (* polint: allow R2 -- fixture needs the \
        clock *)")

let test_suppression_line_above () =
  check_rules "allow comment above silences" []
    (lint
       "(* polint: allow R2 -- fixture needs the clock *)\n\
        let t () = Sys.time ()")

let test_suppression_wrong_rule () =
  check_rules "allow for another rule does not silence" [ "R2" ]
    (lint
       "let t () = Sys.time () (* polint: allow R1 -- wrong rule on \
        purpose *)")

let test_suppression_out_of_range () =
  check_rules "allow two lines up does not silence" [ "R2" ]
    (lint
       "(* polint: allow R2 -- too far away *)\n\
        let unrelated = 1\n\
        let t () = Sys.time ()")

let test_suppression_multiple_rules () =
  check_rules "one comment may allow several rules" []
    (lint ~file:"lib/core/fixture.ml"
       "(* polint: allow R2, R4 -- fixture exercises both *)\n\
        let t () = Printf.printf \"%f\" (Sys.time ())")

let test_suppression_malformed () =
  check_rules "missing justification is reported" [ "R2"; "suppress" ]
    (lint "let t () = Sys.time () (* polint: allow R2 *)");
  check_rules "missing rule id is reported" [ "R2"; "suppress" ]
    (lint "let t () = Sys.time () (* polint: allow because reasons *)");
  check_rules "unknown directive is reported" [ "suppress" ]
    (lint "let x = 1 (* polint: ignore R2 *)")

let test_suppression_unknown_rule_id () =
  (* 'allow R99' names a rule that does not exist: a parse diagnostic
     (drivers exit 2), never a silent no-op justification word. *)
  check_rules "unknown rule id in a directive is a parse error"
    [ "R2"; "suppress" ]
    (lint "let t () = Sys.time () (* polint: allow R99 -- typo *)");
  check_rules "known alongside unknown still reports" [ "suppress" ]
    (lint "let x = 1 (* polint: allow R1, R99 -- typo *)")

(* ------------------------------------------------------------------ *)
(* Allowlist                                                          *)
(* ------------------------------------------------------------------ *)

let allowlist_exn text =
  match Suppress.allowlist_of_string ~src:"inline" text with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_allowlist_exact_file () =
  let allowlist =
    allowlist_exn "R2 lib/fixture/snippet.ml fixture is exempt\n"
  in
  check_rules "exact path exempts" []
    (Lint.lint_source ~file:"lib/fixture/snippet.ml" ~allowlist
       "let t () = Sys.time ()");
  check_rules "other files stay covered" [ "R2" ]
    (Lint.lint_source ~file:"lib/fixture/other.ml" ~allowlist
       "let t () = Sys.time ()")

let test_allowlist_subtree () =
  let allowlist = allowlist_exn "R4 lib/fixture/ whole subtree exempt\n" in
  check_rules "subtree prefix exempts" []
    (Lint.lint_source ~file:"lib/fixture/deep/mod.ml" ~allowlist
       {|let f () = print_string "x"|});
  check_rules "exempts only the listed rule" [ "R2" ]
    (Lint.lint_source ~file:"lib/fixture/deep/mod.ml" ~allowlist
       "let t () = Sys.time ()")

let test_allowlist_rejects_garbage () =
  (match Suppress.allowlist_of_string ~src:"inline" "R99 foo.ml reason\n" with
  | Ok _ -> Alcotest.fail "unknown rule id accepted"
  | Error _ -> ());
  match Suppress.allowlist_of_string ~src:"inline" "R2 foo.ml\n" with
  | Ok _ -> Alcotest.fail "entry without justification accepted"
  | Error _ -> ()

let test_allowlist_typed_rules_accepted () =
  (* R7-R10 are first-class catalogue entries: allowlist lines naming
     them parse and match. *)
  let allowlist = allowlist_exn "R7 lib/fixture/racy.ml fixture reason\n" in
  Alcotest.(check bool) "R7 entry parsed and matches" true
    (Suppress.allows allowlist ~rule:Rule.R7 ~file:"lib/fixture/racy.ml")

let test_allowlist_comments_and_blanks () =
  let allowlist =
    allowlist_exn "# header\n\nR2 bench/x.ml reason text # trailing\n"
  in
  Alcotest.(check bool) "entry parsed" true
    (Suppress.allows allowlist ~rule:Rule.R2 ~file:"bench/x.ml")

(* ------------------------------------------------------------------ *)
(* Parse failures                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse_error_reported () =
  check_rules "unparsable file yields a parse diagnostic" [ "parse" ]
    (lint "let let let")

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_envelope () =
  let diags = lint "let f x = x = 1.0" in
  let json = Diagnostic.list_to_json diags in
  let has_fragment frag =
    let fl = String.length frag and jl = String.length json in
    let rec scan i =
      i + fl <= jl && (String.equal (String.sub json i fl) frag || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool)
    "schema tag" true
    (has_fragment {|"schema":"polint-v1"|});
  Alcotest.(check bool) "count field" true (has_fragment {|"count":1|});
  Alcotest.(check bool) "rule field" true (has_fragment {|"rule":"R1"|});
  Alcotest.(check bool)
    "file field" true
    (has_fragment {|"file":"lib/fixture/snippet.ml"|})

(* ------------------------------------------------------------------ *)
(* Typed-stage fixtures (R7-R10)                                      *)
(* ------------------------------------------------------------------ *)

(* Tests run from _build/default/test; the checkout is the topmost
   ancestor directory that carries a dune-project (the _build mirror has
   one too, hence "topmost"). *)
let repo_root () =
  let rec climb dir best =
    let best =
      if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
      else best
    in
    let parent = Filename.dirname dir in
    if String.equal parent dir then best else climb parent best
  in
  climb (Sys.getcwd ()) None

let repo_root_exn () =
  match repo_root () with
  | Some root -> root
  | None -> Alcotest.fail "no dune-project found above the test cwd"

(* The .objs/byte directories of the current build: cmi load path for
   in-process type checking of fixtures that reference the repo's real
   libraries (Po_par, Po_obs, ...). *)
let fixture_load_dirs =
  lazy
    (let root = repo_root_exn () in
     let build = Filename.concat (Filename.concat root "_build") "default" in
     let out = ref [] in
     let rec walk dir =
       match Sys.readdir dir with
       | entries ->
           Array.sort String.compare entries;
           Array.iter
             (fun entry ->
               let path = Filename.concat dir entry in
               if Sys.is_directory path then
                 if Filename.check_suffix entry ".objs" then begin
                   let byte = Filename.concat path "byte" in
                   if Sys.file_exists byte && Sys.is_directory byte then
                     out := byte :: !out
                 end
                 else walk path)
             entries
       | exception Sys_error _ -> ()
     in
     walk (Filename.concat build "lib");
     List.rev !out)

let typecheck ~file source =
  Cmt_loader.typecheck_impl ~load_dirs:(Lazy.force fixture_load_dirs) ~file
    source

let typed_lint ?rules ?allowlist ~file source =
  Lint.lint_typed_units ?rules ?allowlist [ typecheck ~file source ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    i + nl <= hl
    && (String.equal (String.sub hay i nl) needle || scan (i + 1))
  in
  scan 0

let witness_mentions needle (d : Diagnostic.t) =
  List.exists (contains ~needle) d.Diagnostic.witness

(* R7: a closure handed to a Pool combinator writes shared state. *)

let test_r7_direct_capture () =
  let diags =
    typed_lint ~file:"lib/fixture/racy.ml"
      "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
       let racy pool xs =\n\
      \  Po_par.Pool.parallel_map pool (fun x -> Hashtbl.replace table x x; \
       x) xs\n"
  in
  check_rules "direct captured write flagged" [ "R7" ] diags;
  let d = List.hd diags in
  Alcotest.(check bool)
    "witness names the pool call site" true
    (witness_mentions "Pool.parallel_map call in Racy.racy" d);
  Alcotest.(check bool)
    "message names the mutation" true
    (contains ~needle:"Hashtbl.replace" d.Diagnostic.message)

let test_r7_reachable_mutation () =
  let diags =
    typed_lint ~file:"lib/fixture/racy2.ml"
      "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
       let bump x = Hashtbl.replace table x x\n\
       let indirect pool xs =\n\
      \  Po_par.Pool.parallel_map pool (fun x -> bump x; x) xs\n"
  in
  check_rules "write one call away still flagged" [ "R7" ] diags;
  let d = List.hd diags in
  Alcotest.(check int) "flagged at the mutating line" 2 d.Diagnostic.line;
  Alcotest.(check bool)
    "witness chain passes through the helper" true
    (witness_mentions "Racy2.bump" d)

let test_r7_atomic_and_serial_clean () =
  check_rules "Atomic counters are domain-safe" []
    (typed_lint ~file:"lib/fixture/atomics.ml"
       "let hits = Atomic.make 0\n\
        let fine pool xs =\n\
       \  Po_par.Pool.parallel_map pool (fun x -> Atomic.incr hits; x) xs\n");
  check_rules "the same write outside any pool closure is fine" []
    (typed_lint ~file:"lib/fixture/serial.ml"
       "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
        let serial xs = Array.map (fun x -> Hashtbl.replace table x x; x) \
        xs\n")

let test_r7_scope_and_suppression () =
  (* R7 does not apply under test/ . *)
  check_rules "test/ fixtures may race on purpose" []
    (typed_lint ~file:"test/fixture/racy.ml"
       "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
        let racy pool xs =\n\
       \  Po_par.Pool.parallel_map pool (fun x -> Hashtbl.replace table x \
        x; x) xs\n");
  (* An inline justification silences the finding at its line. *)
  check_rules "inline allow R7 silences" []
    (typed_lint ~file:"lib/fixture/racy3.ml"
       "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
        let racy pool xs =\n\
       \  Po_par.Pool.parallel_map pool\n\
       \    (fun x ->\n\
       \      (* polint: allow R7 -- fixture: externally synchronized *)\n\
       \      Hashtbl.replace table x x;\n\
       \      x)\n\
       \    xs\n")

(* R8: discarded convergence evidence. *)

let r8_fixture =
  "type outcome = { converged : bool; value : float }\n\
   let ensure_converged o = if o.converged then o else failwith \"diverged\"\n\
   let solve (x : float) = { converged = true; value = x }\n\
   let solve_checked x : (outcome, string) result =\n\
  \  Ok (ensure_converged (solve x))\n\
   let bad_figure () = (solve 1.0).value\n\
   let good_figure () = (ensure_converged (solve 2.0)).value\n\
   let discarding () =\n\
  \  match solve_checked 3.0 with Ok o -> o.value | Error _ -> 0.0\n\
   let propagating () =\n\
  \  match solve_checked 4.0 with\n\
  \  | Ok o -> Ok o.value\n\
  \  | Error _ as e -> e\n"

let test_r8_raising_solver_and_discards () =
  let diags = typed_lint ~file:"lib/experiments/fixfig.ml" r8_fixture in
  check_rules "only R8 fires" [ "R8" ] diags;
  Alcotest.(check int)
    "exactly the unchecked call and the wildcard Error arm" 2
    (List.length diags);
  let lines = List.sort Int.compare (List.map (fun d -> d.Diagnostic.line) diags) in
  Alcotest.(check (list int))
    "flagged lines: bad_figure's solve, discarding's Error arm" [ 6; 9 ]
    lines

let test_r8_out_of_scope_layers () =
  (* The same code inside the solver layer (lib/core) or a benchmark is
     the contract, not a violation — sub-rule (a) watches the
     figure/driver boundary only. *)
  check_rules "solver layer threads raw outcomes freely"
    []
    (typed_lint ~file:"lib/core/fixsolver.ml"
       "type outcome = { converged : bool; value : float }\n\
        let solve (x : float) = { converged = true; value = x }\n\
        let solve_checked x : (outcome, string) result = Ok (solve x)\n\
        let inner () = (solve 1.0).value\n");
  check_rules "bench/ times raw solver calls by design" []
    (typed_lint ~file:"bench/fixbench.ml" r8_fixture)

(* R9: typed float-compare. *)

let test_r9_typed_compares () =
  let diags =
    typed_lint ~file:"lib/fixture/floaty.ml"
      "type pt = { x : float; tag : int }\n\
       let eq_pt (a : pt) b = a = b\n\
       let sort_floats (xs : float list) = List.sort compare xs\n\
       let lt_applied (a : float) b = a < b\n\
       let int_eq (a : int) b = a = b\n"
  in
  check_rules "only R9 fires" [ "R9" ] diags;
  let lines = List.sort Int.compare (List.map (fun d -> d.Diagnostic.line) diags) in
  Alcotest.(check (list int))
    "= on a float-carrying record and a float-instantiated compare; \
     applied < specializes to the IEEE primitive and int = is safe"
    [ 2; 3 ] lines;
  Alcotest.(check bool)
    "message renders the offending type" true
    (List.exists
       (fun (d : Diagnostic.t) -> contains ~needle:"pt" d.Diagnostic.message)
       diags)

let test_r9_supersedes_r1_in_run () =
  (* Under --typed, R1's syntactic heuristic stands down for R9; the
     retirement is observable through Lint.run on the real tree, which
     must stay clean either way (exercised by test_tree_typed_clean). A
     unit-level proxy: the same float compare is reported as R9, not R1,
     when linted through the typed stage. *)
  let diags =
    typed_lint ~file:"lib/fixture/super.ml" "let f (x : float) y = x = y\n"
  in
  check_rules "typed stage reports R9" [ "R9" ] diags

(* R10: span/metrics hygiene. *)

let test_r10_uncovered_entry () =
  let diags =
    typed_lint ~file:"lib/experiments/fixmetric.ml"
      "let emit () = Po_obs.Metrics.incr (Po_obs.Metrics.counter \
       \"fixture_hits\")\n\
       let bare_entry () = emit ()\n\
       let scoped_entry () = Po_obs.Trace.with_span \"fixture\" (fun () -> \
       emit ())\n"
  in
  check_rules "only R10 fires" [ "R10" ] diags;
  Alcotest.(check int) "only the unscoped entry point" 1 (List.length diags);
  let d = List.hd diags in
  Alcotest.(check int) "flagged at bare_entry" 2 d.Diagnostic.line;
  Alcotest.(check bool)
    "message names the entry point" true
    (contains ~needle:"bare_entry" d.Diagnostic.message);
  Alcotest.(check bool)
    "witness reaches the emitter" true
    (witness_mentions "Fixmetric.emit" d)

let test_r10_scope () =
  check_rules "metrics outside lib/experiments are not R10's business" []
    (typed_lint ~file:"lib/obs/fixprobe.ml"
       "let emit () = Po_obs.Metrics.incr (Po_obs.Metrics.counter \
        \"fixture_hits\")\n\
        let bare_entry () = emit ()\n")

(* ------------------------------------------------------------------ *)
(* Call graph                                                         *)
(* ------------------------------------------------------------------ *)

let graph_fixture =
  "let rec ping n = if n = 0 then 0 else pong (n - 1)\n\
   and pong n = if n = 0 then 1 else ping (n - 1)\n\
   module F (X : sig val seed : int end) = struct\n\
  \  let payload () = X.seed + 1\n\
   end\n\
   module Arg = struct let seed = 41 end\n\
   module App = F (Arg)\n\
   let use_functor () = App.payload ()\n"

let build_graph ~file source = Callgraph.build [ typecheck ~file source ]

let test_callgraph_cycles () =
  let g = build_graph ~file:"lib/fixture/graph.ml" graph_fixture in
  Alcotest.(check bool) "ping is a node" true
    (Option.is_some (Callgraph.find g "Graph.ping"));
  Alcotest.(check bool) "pong calls ping" true
    (List.mem "Graph.pong" (Callgraph.callers g "Graph.ping"));
  Alcotest.(check bool) "ping calls pong" true
    (List.mem "Graph.ping" (Callgraph.callers g "Graph.pong"));
  (* BFS over the cycle terminates and reaches both ends. *)
  let parents =
    Callgraph.reach_with_parents g
      ~skip:(fun _ -> false)
      ~roots:[ "Graph.ping" ]
  in
  Alcotest.(check bool) "reaches pong through the cycle" true
    (Hashtbl.mem parents "Graph.pong");
  let chain = Callgraph.chain g ~parents "Graph.pong" in
  Alcotest.(check bool) "witness chain is root-first" true
    (match chain with
    | first :: _ -> contains ~needle:"Graph.ping" first
    | [] -> false)

let test_callgraph_functor_application () =
  let g = build_graph ~file:"lib/fixture/graph.ml" graph_fixture in
  (* [module App = F (Arg)] aliases App to F, so a reference through the
     application lands on the functor body's node. *)
  Alcotest.(check bool) "functor body is a node" true
    (Option.is_some (Callgraph.find g "Graph.F.payload"));
  Alcotest.(check bool) "App.payload resolves into the functor body" true
    (List.mem "Graph.use_functor" (Callgraph.callers g "Graph.F.payload"))

let test_callgraph_cross_library_edges () =
  (* The real build tree: edges must cross wrapped-library boundaries
     (dune's Po_core__Cp_game mangling resolved to canonical names). *)
  let root = repo_root_exn () in
  let build_dir = Filename.concat (Filename.concat root "_build") "default" in
  let units, _notes = Cmt_loader.load ~root ~build_dir in
  let units = List.filter (fun u -> not (Cmt_loader.generated u)) units in
  let have prefix =
    List.exists
      (fun (u : Cmt_loader.unit_info) ->
        String.starts_with ~prefix u.Cmt_loader.file)
      units
  in
  if not (have "lib/core/" && have "lib/experiments/") then
    Alcotest.skip ()
  else begin
    let g = Callgraph.build units in
    let callers = Callgraph.callers g "Po_core.Cp_game.solve" in
    Alcotest.(check bool)
      "Cp_game.solve has callers from outside po_core" true
      (List.exists
         (fun id -> String.starts_with ~prefix:"Po_experiments." id)
         callers)
  end

(* ------------------------------------------------------------------ *)
(* Whole tree                                                         *)
(* ------------------------------------------------------------------ *)

let run_report ?typed ?paths ?jobs () =
  match Lint.run ~root:(repo_root_exn ()) ?typed ?paths ?jobs () with
  | Error msg -> Alcotest.fail msg
  | Ok r -> r

let test_repo_tree_clean () =
  let r = run_report () in
  Alcotest.(check (list string))
    "the repository lints clean (parsetree stage)" []
    (List.map Diagnostic.to_string r.Lint.diagnostics)

let test_repo_tree_typed_clean () =
  let r =
    run_report ~typed:true ~paths:[ "lib"; "bin"; "bench" ] ()
  in
  Alcotest.(check (list string))
    "the repository lints clean under the typed stage" []
    (List.map Diagnostic.to_string r.Lint.diagnostics);
  Alcotest.(check bool)
    "the typed pass actually analyzed units" true
    (r.Lint.typed_units > 0);
  Alcotest.(check (list string))
    "no stale allowlist entries" []
    (List.map
       (fun (e : Suppress.allow_entry) -> e.Suppress.path)
       r.Lint.stale_allows);
  Alcotest.(check (list string))
    "no stale inline suppressions" []
    (List.map
       (fun (f, l) -> Printf.sprintf "%s:%d" f l)
       r.Lint.stale_directives)

let test_jobs_invariant_output () =
  let serial = Lint.lint_tree ~root:(repo_root_exn ()) [ "lib" ] in
  let parallel = Lint.lint_tree ~root:(repo_root_exn ()) ~jobs:3 [ "lib" ] in
  Alcotest.(check (list string))
    "jobs=3 produces byte-identical findings"
    (List.map Diagnostic.to_string serial)
    (List.map Diagnostic.to_string parallel)

(* The repository's own allowlist exempts the observability clock
   (lib/obs/clock.ml) from R2; that exemption must not leak — ambient
   clock reads anywhere else in the library tree still fire.  Guards the
   Po_obs.Clock funnel: code that wants time must call through it, and
   R2 keeps enforcing that everywhere the allowlist does not name. *)
let test_allowlist_clock_exemption_is_narrow () =
  let repo_allowlist =
    match
      Suppress.load_allowlist
        (Filename.concat (repo_root_exn ()) "polint.allow")
    with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  check_rules "the obs clock itself is exempt" []
    (Lint.lint_source ~file:"lib/obs/clock.ml" ~allowlist:repo_allowlist
       "let now_s () = Unix.gettimeofday ()");
  check_rules "ambient clock use in lib/model still fires" [ "R2" ]
    (Lint.lint_source ~file:"lib/model/fixture.ml" ~allowlist:repo_allowlist
       "let t () = Unix.gettimeofday ()");
  check_rules "ambient clock use elsewhere in lib/obs still fires" [ "R2" ]
    (Lint.lint_source ~file:"lib/obs/trace.ml" ~allowlist:repo_allowlist
       "let t () = Sys.time ()")

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "po_lint"
    [ ( "R1",
        [ quick "bare compare" test_r1_bare_compare;
          quick "float equality" test_r1_float_equality;
          quick "clean snippets" test_r1_clean ] );
      ( "R2",
        [ quick "nondeterminism sources" test_r2_sources;
          quick "whitelisted cache ops" test_r2_whitelisted_cache_ops;
          quick "test/ exemption" test_r2_exempt_under_test ] );
      ("R3", [ quick "wildcard handlers" test_r3 ]);
      ("R4", [ quick "console output in lib/" test_r4 ]);
      ("R5", [ quick "missing mli" test_r5 ]);
      ("R6", [ quick "raw file writes" test_r6 ]);
      ( "suppressions",
        [ quick "same line" test_suppression_same_line;
          quick "line above" test_suppression_line_above;
          quick "wrong rule" test_suppression_wrong_rule;
          quick "out of range" test_suppression_out_of_range;
          quick "multiple rules" test_suppression_multiple_rules;
          quick "malformed" test_suppression_malformed;
          quick "unknown rule id" test_suppression_unknown_rule_id ] );
      ( "allowlist",
        [ quick "exact file" test_allowlist_exact_file;
          quick "subtree" test_allowlist_subtree;
          quick "rejects garbage" test_allowlist_rejects_garbage;
          quick "typed rules accepted" test_allowlist_typed_rules_accepted;
          quick "comments and blanks" test_allowlist_comments_and_blanks ]
      );
      ("parse", [ quick "syntax error" test_parse_error_reported ]);
      ("json", [ quick "polint-v1 envelope" test_json_envelope ]);
      ( "R7",
        [ quick "direct captured write" test_r7_direct_capture;
          quick "reachable mutation" test_r7_reachable_mutation;
          quick "atomic and serial clean" test_r7_atomic_and_serial_clean;
          quick "scope and suppression" test_r7_scope_and_suppression ] );
      ( "R8",
        [ quick "raising solver and discards"
            test_r8_raising_solver_and_discards;
          quick "out-of-scope layers" test_r8_out_of_scope_layers ] );
      ( "R9",
        [ quick "typed compares" test_r9_typed_compares;
          quick "supersedes R1" test_r9_supersedes_r1_in_run ] );
      ( "R10",
        [ quick "uncovered entry" test_r10_uncovered_entry;
          quick "scope" test_r10_scope ] );
      ( "callgraph",
        [ quick "cycles" test_callgraph_cycles;
          quick "functor application" test_callgraph_functor_application;
          quick "cross-library edges" test_callgraph_cross_library_edges ]
      );
      ( "tree",
        [ quick "repository lints clean" test_repo_tree_clean;
          quick "typed stage lints clean" test_repo_tree_typed_clean;
          quick "jobs-invariant output" test_jobs_invariant_output;
          quick "clock exemption is narrow"
            test_allowlist_clock_exemption_is_narrow ] ) ]
