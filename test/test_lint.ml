(* Fixture-driven tests for po_lint: embedded snippets that must trigger
   each rule R1-R6, clean snippets that must not, suppression-comment and
   allowlist handling, and a whole-tree run asserting the repository
   itself lints clean. *)

open Po_lint

let rules_found diags =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Diagnostic.rule) diags)

let check_rules msg expected diags =
  Alcotest.(check (list string)) msg expected (rules_found diags)

let lint ?(file = "lib/fixture/snippet.ml") ?has_mli src =
  Lint.lint_source ~file ?has_mli src

(* ------------------------------------------------------------------ *)
(* R1: polymorphic compare / float equality                           *)
(* ------------------------------------------------------------------ *)

let test_r1_bare_compare () =
  check_rules "Array.sort compare flagged" [ "R1" ]
    (lint "let f xs = Array.sort compare xs");
  check_rules "Stdlib.compare flagged" [ "R1" ]
    (lint "let c = Stdlib.compare");
  check_rules "List.sort_uniq compare flagged" [ "R1" ]
    (lint "let f xs = List.sort_uniq compare xs")

let test_r1_float_equality () =
  check_rules "= on float literal" [ "R1" ] (lint "let f x = x = 1.0");
  check_rules "<> on float literal" [ "R1" ] (lint "let f x = x <> 0.5");
  check_rules "= on float annotation" [ "R1" ]
    (lint "let f x y = (x : float) = y");
  check_rules "= on infinity" [ "R1" ]
    (lint "let f x = x = Float.infinity");
  check_rules "= on nan is flagged" [ "R1" ] (lint "let f x = x = nan");
  check_rules "= on float arithmetic" [ "R1" ]
    (lint "let f x y = x = y +. 1.")

let test_r1_clean () =
  check_rules "Float.compare is the fix" []
    (lint "let f xs = Array.sort Float.compare xs");
  check_rules "Float.equal is the fix" []
    (lint "let f x = Float.equal x 1.0");
  check_rules "int equality untouched" [] (lint "let f n = n = 1");
  check_rules "string equality untouched" []
    (lint {|let f s = s = "x"|});
  check_rules "module-qualified compare untouched" []
    (lint "let f a b = String.compare a b");
  check_rules "defining a compare is not using one" []
    (lint "let compare a b = Float.compare a b")

(* ------------------------------------------------------------------ *)
(* R2: nondeterminism sources                                         *)
(* ------------------------------------------------------------------ *)

let test_r2_sources () =
  check_rules "Random.self_init" [ "R2" ]
    (lint "let () = Random.self_init ()");
  check_rules "Random.int (ambient state)" [ "R2" ]
    (lint "let f () = Random.int 10");
  check_rules "Sys.time" [ "R2" ] (lint "let t () = Sys.time ()");
  check_rules "Unix.gettimeofday" [ "R2" ]
    (lint "let t () = Unix.gettimeofday ()");
  check_rules "Hashtbl.iter" [ "R2" ]
    (lint "let f h = Hashtbl.iter (fun _ v -> ignore v) h");
  check_rules "Hashtbl.fold" [ "R2" ]
    (lint "let dump h acc = Hashtbl.fold (fun _ v l -> v :: l) h acc")

let test_r2_whitelisted_cache_ops () =
  check_rules "find_opt/add caches are fine" []
    (lint
       "let memo h k f = match Hashtbl.find_opt h k with Some v -> v | \
        None -> let v = f k in Hashtbl.add h k v; v");
  check_rules "explicit Random.State is fine" []
    (lint "let f st = Random.State.int st 10")

let test_r2_exempt_under_test () =
  check_rules "R2 does not apply under test/" []
    (lint ~file:"test/fixture.ml" "let t () = Sys.time ()");
  check_rules "R1 still applies under test/" [ "R1" ]
    (lint ~file:"test/fixture.ml" "let f x = x = 1.0")

(* ------------------------------------------------------------------ *)
(* R3: exception swallowing                                           *)
(* ------------------------------------------------------------------ *)

let test_r3 () =
  check_rules "with _ ->" [ "R3" ]
    (lint "let f g = try g () with _ -> 0");
  check_rules "with _ -> () " [ "R3" ]
    (lint "let f g = try g () with _ -> ()");
  check_rules "wildcard among specific handlers" [ "R3" ]
    (lint "let f g = try g () with Not_found -> 1 | _ -> 0");
  check_rules "specific handler is fine" []
    (lint "let f g = try g () with Not_found -> 0")

(* ------------------------------------------------------------------ *)
(* R4: console output inside lib/                                     *)
(* ------------------------------------------------------------------ *)

let test_r4 () =
  check_rules "Printf.printf in lib/" [ "R4" ]
    (lint ~file:"lib/core/fixture.ml" {|let f () = Printf.printf "x"|});
  check_rules "print_string in lib/" [ "R4" ]
    (lint ~file:"lib/core/fixture.ml" {|let f () = print_string "x"|});
  check_rules "Format.printf in lib/" [ "R4" ]
    (lint ~file:"lib/core/fixture.ml" {|let f () = Format.printf "x"|});
  check_rules "Printf.sprintf is pure, fine" []
    (lint ~file:"lib/core/fixture.ml" {|let f () = Printf.sprintf "x"|});
  check_rules "printing from bin/ is fine" []
    (lint ~file:"bin/fixture.ml" {|let f () = print_string "x"|});
  check_rules "lib/report is the output layer, exempt" []
    (lint ~file:"lib/report/fixture.ml" {|let f () = print_string "x"|})

(* ------------------------------------------------------------------ *)
(* R5: missing .mli                                                   *)
(* ------------------------------------------------------------------ *)

let test_r5 () =
  check_rules "lib module without .mli" [ "R5" ]
    (lint ~file:"lib/core/fixture.ml" ~has_mli:false "let x = 1");
  check_rules "lib module with .mli" []
    (lint ~file:"lib/core/fixture.ml" ~has_mli:true "let x = 1");
  check_rules "bin module needs no .mli" []
    (lint ~file:"bin/fixture.ml" ~has_mli:false "let x = 1")

(* ------------------------------------------------------------------ *)
(* R6: raw file writes                                                *)
(* ------------------------------------------------------------------ *)

let test_r6 () =
  check_rules "open_out in lib/" [ "R6" ]
    (lint ~file:"lib/core/fixture.ml" {|let f p = open_out p|});
  check_rules "open_out_bin in bin/" [ "R6" ]
    (lint ~file:"bin/fixture.ml" {|let f p = open_out_bin p|});
  check_rules "open_out_gen in bench/" [ "R6" ]
    (lint ~file:"bench/fixture.ml"
       {|let f p = open_out_gen [ Open_append ] 0o644 p|});
  check_rules "Sys.mkdir" [ "R6" ]
    (lint ~file:"lib/core/fixture.ml" {|let f p = Sys.mkdir p 0o755|});
  check_rules "Unix.mkdir" [ "R6" ]
    (lint ~file:"bin/fixture.ml" {|let f p = Unix.mkdir p 0o755|});
  check_rules "open_in is a read, fine" []
    (lint ~file:"lib/core/fixture.ml" {|let f p = open_in p|});
  check_rules "lib/report is the writer layer, exempt" []
    (lint ~file:"lib/report/fixture.ml" {|let f p = open_out p|});
  check_rules "test/ writes fixtures freely" []
    (lint ~file:"test/fixture.ml" {|let f p = open_out p|})

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)
(* ------------------------------------------------------------------ *)

let test_suppression_same_line () =
  check_rules "trailing allow comment silences" []
    (lint
       "let t () = Sys.time () (* polint: allow R2 -- fixture needs the \
        clock *)")

let test_suppression_line_above () =
  check_rules "allow comment above silences" []
    (lint
       "(* polint: allow R2 -- fixture needs the clock *)\n\
        let t () = Sys.time ()")

let test_suppression_wrong_rule () =
  check_rules "allow for another rule does not silence" [ "R2" ]
    (lint
       "let t () = Sys.time () (* polint: allow R1 -- wrong rule on \
        purpose *)")

let test_suppression_out_of_range () =
  check_rules "allow two lines up does not silence" [ "R2" ]
    (lint
       "(* polint: allow R2 -- too far away *)\n\
        let unrelated = 1\n\
        let t () = Sys.time ()")

let test_suppression_multiple_rules () =
  check_rules "one comment may allow several rules" []
    (lint ~file:"lib/core/fixture.ml"
       "(* polint: allow R2, R4 -- fixture exercises both *)\n\
        let t () = Printf.printf \"%f\" (Sys.time ())")

let test_suppression_malformed () =
  check_rules "missing justification is reported" [ "R2"; "suppress" ]
    (lint "let t () = Sys.time () (* polint: allow R2 *)");
  check_rules "missing rule id is reported" [ "R2"; "suppress" ]
    (lint "let t () = Sys.time () (* polint: allow because reasons *)");
  check_rules "unknown directive is reported" [ "suppress" ]
    (lint "let x = 1 (* polint: ignore R2 *)")

(* ------------------------------------------------------------------ *)
(* Allowlist                                                          *)
(* ------------------------------------------------------------------ *)

let allowlist_exn text =
  match Suppress.allowlist_of_string ~src:"inline" text with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_allowlist_exact_file () =
  let allowlist =
    allowlist_exn "R2 lib/fixture/snippet.ml fixture is exempt\n"
  in
  check_rules "exact path exempts" []
    (Lint.lint_source ~file:"lib/fixture/snippet.ml" ~allowlist
       "let t () = Sys.time ()");
  check_rules "other files stay covered" [ "R2" ]
    (Lint.lint_source ~file:"lib/fixture/other.ml" ~allowlist
       "let t () = Sys.time ()")

let test_allowlist_subtree () =
  let allowlist = allowlist_exn "R4 lib/fixture/ whole subtree exempt\n" in
  check_rules "subtree prefix exempts" []
    (Lint.lint_source ~file:"lib/fixture/deep/mod.ml" ~allowlist
       {|let f () = print_string "x"|});
  check_rules "exempts only the listed rule" [ "R2" ]
    (Lint.lint_source ~file:"lib/fixture/deep/mod.ml" ~allowlist
       "let t () = Sys.time ()")

let test_allowlist_rejects_garbage () =
  (match Suppress.allowlist_of_string ~src:"inline" "R9 foo.ml reason\n" with
  | Ok _ -> Alcotest.fail "unknown rule id accepted"
  | Error _ -> ());
  match Suppress.allowlist_of_string ~src:"inline" "R2 foo.ml\n" with
  | Ok _ -> Alcotest.fail "entry without justification accepted"
  | Error _ -> ()

let test_allowlist_comments_and_blanks () =
  let allowlist =
    allowlist_exn "# header\n\nR2 bench/x.ml reason text # trailing\n"
  in
  Alcotest.(check bool) "entry parsed" true
    (Suppress.allows allowlist ~rule:Rule.R2 ~file:"bench/x.ml")

(* ------------------------------------------------------------------ *)
(* Parse failures                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse_error_reported () =
  check_rules "unparsable file yields a parse diagnostic" [ "parse" ]
    (lint "let let let")

(* ------------------------------------------------------------------ *)
(* Whole tree                                                         *)
(* ------------------------------------------------------------------ *)

(* Tests run from _build/default/test; the checkout is the topmost
   ancestor directory that carries a dune-project (the _build mirror has
   one too, hence "topmost"). *)
let repo_root () =
  let rec climb dir best =
    let best =
      if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
      else best
    in
    let parent = Filename.dirname dir in
    if String.equal parent dir then best else climb parent best
  in
  climb (Sys.getcwd ()) None

let test_repo_tree_clean () =
  match repo_root () with
  | None -> Alcotest.fail "no dune-project found above the test cwd"
  | Some root -> (
      match Lint.run ~root () with
      | Error msg -> Alcotest.fail msg
      | Ok diags ->
          Alcotest.(check (list string))
            "the repository lints clean" []
            (List.map Diagnostic.to_string diags))

(* The repository's own allowlist exempts the observability clock
   (lib/obs/clock.ml) from R2; that exemption must not leak — ambient
   clock reads anywhere else in the library tree still fire.  Guards the
   Po_obs.Clock funnel: code that wants time must call through it, and
   R2 keeps enforcing that everywhere the allowlist does not name. *)
let test_allowlist_clock_exemption_is_narrow () =
  let repo_allowlist =
    match repo_root () with
    | None -> Alcotest.fail "no dune-project found above the test cwd"
    | Some root -> (
        match
          Suppress.load_allowlist (Filename.concat root "polint.allow")
        with
        | Ok a -> a
        | Error e -> Alcotest.fail e)
  in
  check_rules "the obs clock itself is exempt" []
    (Lint.lint_source ~file:"lib/obs/clock.ml" ~allowlist:repo_allowlist
       "let now_s () = Unix.gettimeofday ()");
  check_rules "ambient clock use in lib/model still fires" [ "R2" ]
    (Lint.lint_source ~file:"lib/model/fixture.ml" ~allowlist:repo_allowlist
       "let t () = Unix.gettimeofday ()");
  check_rules "ambient clock use elsewhere in lib/obs still fires" [ "R2" ]
    (Lint.lint_source ~file:"lib/obs/trace.ml" ~allowlist:repo_allowlist
       "let t () = Sys.time ()")

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "po_lint"
    [ ( "R1",
        [ quick "bare compare" test_r1_bare_compare;
          quick "float equality" test_r1_float_equality;
          quick "clean snippets" test_r1_clean ] );
      ( "R2",
        [ quick "nondeterminism sources" test_r2_sources;
          quick "whitelisted cache ops" test_r2_whitelisted_cache_ops;
          quick "test/ exemption" test_r2_exempt_under_test ] );
      ("R3", [ quick "wildcard handlers" test_r3 ]);
      ("R4", [ quick "console output in lib/" test_r4 ]);
      ("R5", [ quick "missing mli" test_r5 ]);
      ("R6", [ quick "raw file writes" test_r6 ]);
      ( "suppressions",
        [ quick "same line" test_suppression_same_line;
          quick "line above" test_suppression_line_above;
          quick "wrong rule" test_suppression_wrong_rule;
          quick "out of range" test_suppression_out_of_range;
          quick "multiple rules" test_suppression_multiple_rules;
          quick "malformed" test_suppression_malformed ] );
      ( "allowlist",
        [ quick "exact file" test_allowlist_exact_file;
          quick "subtree" test_allowlist_subtree;
          quick "rejects garbage" test_allowlist_rejects_garbage;
          quick "comments and blanks" test_allowlist_comments_and_blanks ]
      );
      ("parse", [ quick "syntax error" test_parse_error_reported ]);
      ( "tree",
        [ quick "repository lints clean" test_repo_tree_clean;
          quick "clock exemption is narrow"
            test_allowlist_clock_exemption_is_narrow ] ) ]
