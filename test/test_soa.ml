(* Differential tests for the structure-of-arrays tier (DESIGN.md §12):
   the column solvers must be bit-identical to the record solvers on
   every input — random ensembles, heterogeneous archetype mixes,
   threshold ties, saturated and degenerate populations — the streaming
   chunked ensemble generator must reproduce the serial record draw bit
   for bit at any chunk size and jobs count, and the n = 10^5 tier must
   complete with bounded scratch. *)

open Po_model
open Po_core

let quick name f = Alcotest.test_case name `Quick f

(* Bit-level float equality: the contract is "bit-identical", not
   "close". *)
let check_bits name a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h <> %h" name a b

let check_bits_array name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" name i) x b.(i)) a

let check_solution name (a : Equilibrium.solution) (b : Equilibrium.solution) =
  check_bits_array (name ^ " theta") a.Equilibrium.theta b.Equilibrium.theta;
  check_bits_array (name ^ " demand") a.Equilibrium.demand b.Equilibrium.demand;
  check_bits_array (name ^ " rho") a.Equilibrium.rho b.Equilibrium.rho;
  check_bits (name ^ " per_capita_rate") a.Equilibrium.per_capita_rate
    b.Equilibrium.per_capita_rate;
  check_bits (name ^ " cap") a.Equilibrium.cap b.Equilibrium.cap;
  Alcotest.(check bool)
    (name ^ " congested")
    a.Equilibrium.congested b.Equilibrium.congested

let check_outcome name (a : Cp_game.outcome) (b : Cp_game.outcome) =
  Alcotest.(check string)
    (name ^ " partition")
    (Partition.key a.Cp_game.partition)
    (Partition.key b.Cp_game.partition);
  check_bits_array (name ^ " theta") a.Cp_game.theta b.Cp_game.theta;
  check_bits_array (name ^ " rho") a.Cp_game.rho b.Cp_game.rho;
  check_bits (name ^ " cap_o") a.Cp_game.cap_ordinary b.Cp_game.cap_ordinary;
  check_bits (name ^ " cap_p") a.Cp_game.cap_premium b.Cp_game.cap_premium;
  check_bits (name ^ " lambda_o") a.Cp_game.lambda_ordinary
    b.Cp_game.lambda_ordinary;
  check_bits (name ^ " lambda_p") a.Cp_game.lambda_premium
    b.Cp_game.lambda_premium;
  check_bits (name ^ " phi") a.Cp_game.phi b.Cp_game.phi;
  check_bits (name ^ " psi") a.Cp_game.psi b.Cp_game.psi;
  Alcotest.(check bool) (name ^ " converged") a.Cp_game.converged
    b.Cp_game.converged;
  Alcotest.(check int) (name ^ " iterations") a.Cp_game.iterations
    b.Cp_game.iterations

let check_columns name soa soa' =
  let n = Cp_soa.length soa in
  Alcotest.(check int) (name ^ " length") n (Cp_soa.length soa');
  for i = 0 to n - 1 do
    let cell col get =
      check_bits
        (Printf.sprintf "%s %s.(%d)" name col i)
        (get soa i) (get soa' i)
    in
    cell "alpha" Cp_soa.alpha;
    cell "theta_hat" Cp_soa.theta_hat;
    cell "beta" Cp_soa.beta;
    cell "v" Cp_soa.v;
    cell "phi" Cp_soa.phi
  done

let ensemble ?(n = 60) seed = Po_workload.Ensemble.paper_ensemble ~n ~seed ()

let nu_grid sat =
  [ 0.; 1e-6; 0.05 *. sat; 0.3 *. sat; 0.7 *. sat; 0.99 *. sat; sat;
    1.5 *. sat ]

(* Both record solvers and the SoA solver at every nu: three-way bit
   identity, not just SoA-vs-reference. *)
let check_population name cps =
  let soa = Cp_soa.of_cps cps in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  List.iter
    (fun nu ->
      let name = Printf.sprintf "%s nu=%g" name nu in
      let from_soa = Equilibrium.solve_soa ~nu soa in
      check_solution (name ^ " soa/ref") from_soa
        (Equilibrium.solve_reference ~nu cps);
      check_solution (name ^ " soa/opt") from_soa (Equilibrium.solve ~nu cps))
    (nu_grid sat)

(* ------------------------------------------------------------------ *)
(* Equilibrium: SoA vs record                                         *)
(* ------------------------------------------------------------------ *)

let test_eq_random () =
  List.iter
    (fun (seed, n) ->
      check_population (Printf.sprintf "seed=%d n=%d" seed n) (ensemble ~n seed))
    [ (1, 1); (2, 2); (3, 7); (11, 40); (12, 137); (13, 400); (14, 2000) ]

let test_eq_archetype_mixes () =
  (* Heterogeneous hand-built populations: the three paper archetypes
     interleaved with random CPs, in several proportions. *)
  List.iter
    (fun (seed, n) ->
      let random = ensemble ~n seed in
      let cps =
        Array.init n (fun i ->
            match i mod 5 with
            | 0 -> Cp.google i
            | 1 -> Cp.netflix i
            | 2 -> Cp.skype i
            | _ -> random.(i))
      in
      check_population (Printf.sprintf "mix seed=%d n=%d" seed n) cps)
    [ (21, 12); (22, 60); (23, 301) ]

let test_eq_ties () =
  (* Identical CPs produce exact threshold ties; the sorted order then
     depends on the index tie-break, which both representations must
     share. *)
  let base = ensemble ~n:8 31 in
  let cps =
    Array.init 64 (fun i ->
        let cp = base.(i mod 8) in
        Cp.make ~id:i ~alpha:cp.Cp.alpha ~theta_hat:cp.Cp.theta_hat
          ~demand:cp.Cp.demand ~v:cp.Cp.v ~phi:cp.Cp.phi ())
  in
  check_population "ties" cps

let test_eq_degenerate () =
  (* beta = 0 (throughput-insensitive demand, the curve's omega <= 0
     branch), extreme alpha/theta_hat spreads, and a single CP. *)
  let flat =
    Array.init 17 (fun i ->
        Cp.make ~id:i ~alpha:1. ~theta_hat:(float_of_int (1 + (i mod 3)))
          ~demand:(Demand.exponential ~beta:0.)
          ~v:0.5 ~phi:1. ())
  in
  check_population "beta=0" flat;
  let spread =
    Array.init 33 (fun i ->
        Cp.make ~id:i
          ~alpha:(if i mod 2 = 0 then 1e-9 else 1.)
          ~theta_hat:(if i mod 3 = 0 then 1e-6 else 1e6)
          ~demand:(Demand.exponential ~beta:(float_of_int (i mod 11)))
          ~v:(float_of_int i /. 33.)
          ~phi:(float_of_int (i mod 7))
          ())
  in
  check_population "spread" spread;
  check_population "single" (ensemble ~n:1 77)

let test_eq_weighted () =
  let cps = ensemble ~n:40 41 in
  let soa = Cp_soa.of_cps cps in
  let rng = Po_prng.Splitmix.of_int 410 in
  let weights =
    Array.init 40 (fun _ -> 0.1 +. Po_prng.Splitmix.float rng)
  in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  List.iter
    (fun nu ->
      check_solution
        (Printf.sprintf "weighted nu=%g" nu)
        (Equilibrium.solve_soa ~weights ~nu soa)
        (Equilibrium.solve ~weights ~nu cps))
    (nu_grid sat)

let test_eq_context_reuse () =
  let cps = ensemble ~n:90 51 in
  let soa = Cp_soa.of_cps cps in
  let context = Equilibrium.context_soa soa in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  List.iter
    (fun nu ->
      check_solution
        (Printf.sprintf "ctx reuse nu=%g" nu)
        (Equilibrium.solve_soa ~context ~nu soa)
        (Equilibrium.solve_reference ~nu cps))
    (nu_grid sat)

let test_surplus () =
  let cps = ensemble ~n:50 61 in
  let soa = Cp_soa.of_cps cps in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  check_bits "saturation_nu" (Cp_soa.saturation_nu soa) sat;
  check_bits "total_value" (Cp_soa.total_value soa)
    (Po_workload.Ensemble.total_value cps);
  let sol = Equilibrium.solve ~nu:(0.4 *. sat) cps in
  check_bits "consumer" (Surplus.consumer_soa soa sol)
    (Surplus.consumer cps sol)

(* ------------------------------------------------------------------ *)
(* CP game: SoA engine vs record engines                              *)
(* ------------------------------------------------------------------ *)

let game_points sat =
  [ (0.3, 0.2, 0.5 *. sat); (0.5, 0.5, 0.2 *. sat); (0.8, 1.5, 0.05 *. sat);
    (0., 0., 0.5 *. sat) ]

let test_game_differential () =
  List.iter
    (fun (seed, n) ->
      let cps = ensemble ~n seed in
      let soa = Cp_soa.of_cps cps in
      let sat = Po_workload.Ensemble.saturation_nu cps in
      List.iter
        (fun (kappa, c, nu) ->
          let strategy = Strategy.make ~kappa ~c in
          let name = Printf.sprintf "seed=%d n=%d (%g,%g,nu=%g)" seed n kappa c nu in
          let from_soa = Cp_game.solve_soa ~nu ~strategy soa in
          check_outcome (name ^ " soa/ref") from_soa
            (Cp_game.solve_reference ~nu ~strategy cps);
          check_outcome (name ^ " soa/opt") from_soa
            (Cp_game.solve ~nu ~strategy cps))
        (game_points sat))
    [ (4, 30); (42, 90) ]

let test_game_nash_differential () =
  let cps = ensemble ~n:14 43 in
  let soa = Cp_soa.of_cps cps in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  List.iter
    (fun (kappa, c, nu) ->
      let strategy = Strategy.make ~kappa ~c in
      check_outcome
        (Printf.sprintf "nash (%g,%g,nu=%g)" kappa c nu)
        (Cp_game.solve_nash_soa ~nu ~strategy soa)
        (Cp_game.solve_nash ~nu ~strategy cps))
    (game_points sat)

(* ------------------------------------------------------------------ *)
(* Streaming ensemble generation                                      *)
(* ------------------------------------------------------------------ *)

let test_ensemble_columns () =
  (* The chunked SoA draw must reproduce the serial record draw bit for
     bit, for both phi settings and chunk sizes that divide n, exceed n,
     and leave ragged tails. *)
  List.iter
    (fun phi ->
      List.iter
        (fun seed ->
          let n = 157 in
          let records =
            Cp_soa.of_cps (Po_workload.Ensemble.paper_ensemble ~n ~phi ~seed ())
          in
          List.iter
            (fun chunk ->
              check_columns
                (Printf.sprintf "seed=%d chunk=%d" seed chunk)
                records
                (Po_workload.Ensemble.paper_ensemble_soa ~n ~phi ~chunk ~seed
                   ()))
            [ 1; 7; 64; 157; 1000 ])
        [ 9; 10 ])
    [ Po_workload.Ensemble.Coupled_to_beta; Po_workload.Ensemble.Independent ]

let test_ensemble_jobs_invariant () =
  (* Chunk generation on a pool of any size yields the same columns as
     the serial draw. *)
  let n = 211 and seed = 19 in
  let serial = Po_workload.Ensemble.paper_ensemble_soa ~n ~chunk:32 ~seed () in
  List.iter
    (fun jobs ->
      let pool = Po_par.Pool.create ~domains:jobs () in
      Fun.protect
        ~finally:(fun () -> Po_par.Pool.shutdown pool)
        (fun () ->
          check_columns
            (Printf.sprintf "jobs=%d" jobs)
            serial
            (Po_workload.Ensemble.paper_ensemble_soa ~n ~chunk:32 ~pool ~seed
               ())))
    [ 1; 3 ]

let test_ensemble_fold_streams () =
  (* Folding chunk-wise visits every id exactly once, in order, and the
     chunks are the very rows of the assembled population; an index-order
     accumulation across chunks is bit-identical to the whole-population
     one. *)
  let n = 401 and seed = 23 in
  let whole = Po_workload.Ensemble.paper_ensemble_soa ~n ~seed () in
  let next, sum =
    Po_workload.Ensemble.fold_paper_chunks ~n ~chunk:100 ~seed
      ~init:(0, 0.)
      ~f:(fun (next, sum) ~first_id chunk ->
        Alcotest.(check int) "chunk starts at next id" next first_id;
        let sum = ref sum in
        for k = 0 to Cp_soa.length chunk - 1 do
          let i = first_id + k in
          check_bits
            (Printf.sprintf "row %d" i)
            (Cp_soa.alpha chunk k) (Cp_soa.alpha whole i);
          check_bits
            (Printf.sprintf "phi %d" i)
            (Cp_soa.phi chunk k) (Cp_soa.phi whole i);
          sum := !sum +. (Cp_soa.alpha chunk k *. Cp_soa.theta_hat chunk k)
        done;
        (first_id + Cp_soa.length chunk, !sum))
      ()
  in
  Alcotest.(check int) "all ids visited" n next;
  check_bits "streamed saturation_nu" sum (Cp_soa.saturation_nu whole)

(* ------------------------------------------------------------------ *)
(* Large-n smoke                                                      *)
(* ------------------------------------------------------------------ *)

let test_large_n_smoke () =
  (* n = 10^5: generation + one congested solve must complete well within
     a bounded heap — the population is 5 float columns (~4 MB), and the
     solver allocates O(n) beyond it.  A record population of this size
     would be ~10x that; the budget below fails if the SoA path ever
     regresses into materialising records. *)
  let n = 100_000 in
  let soa = Po_workload.Ensemble.paper_ensemble_soa ~n ~seed:7 () in
  let sat = Cp_soa.saturation_nu soa in
  let before = Gc.quick_stat () in
  let sol = Equilibrium.solve_soa ~nu:(0.3 *. sat) soa in
  let after = Gc.quick_stat () in
  Alcotest.(check bool) "congested" true sol.Equilibrium.congested;
  if not (Float.is_finite sol.Equilibrium.cap && sol.Equilibrium.cap > 0.) then
    Alcotest.failf "cap not positive finite: %h" sol.Equilibrium.cap;
  Alcotest.(check int) "theta rows" n (Array.length sol.Equilibrium.theta);
  (* Peak-heap growth, not cumulative allocation: the solve's transient
     scratch (boxed accumulators in the aggregate loops) is reclaimed by
     the minor collector and never accumulates.  What must stay O(n) is
     the live footprint — the context (~9 sorted columns incl. the sort
     scratch) plus the solution (3 columns), ~13n words.  40n words of
     headroom catches any regression that retains per-iteration state or
     materialises boxed records alongside the columns. *)
  let heap_growth = after.Gc.top_heap_words - before.Gc.top_heap_words in
  if heap_growth > 40 * n then
    Alcotest.failf "solve grew the heap by %d words (> 40n)" heap_growth

let () =
  Alcotest.run "po_soa"
    [ ( "equilibrium",
        [ quick "random ensembles bit-identical" test_eq_random;
          quick "archetype mixes bit-identical" test_eq_archetype_mixes;
          quick "threshold ties" test_eq_ties;
          quick "degenerate populations" test_eq_degenerate;
          quick "weighted systems" test_eq_weighted;
          quick "context reuse" test_eq_context_reuse;
          quick "surplus and aggregates" test_surplus ] );
      ( "cp_game",
        [ quick "competitive solver bit-identical" test_game_differential;
          quick "nash solver bit-identical" test_game_nash_differential ] );
      ( "ensemble",
        [ quick "chunked columns match serial records" test_ensemble_columns;
          quick "jobs-invariant generation" test_ensemble_jobs_invariant;
          quick "streaming fold covers the population"
            test_ensemble_fold_streams ] );
      ( "scale", [ quick "n=100000 bounded-memory solve" test_large_n_smoke ] )
    ]
