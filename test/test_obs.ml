(* Tests for the observability subsystem (lib/obs): metrics semantics,
   the counter determinism contract, trace export well-formedness, the
   JSON codec, bench-diff gating and the manifest — plus the satellite
   guarantees on Po_report.Writer.append_line and Po_guard.Warnings. *)

open Po_obs

let quick name f = Alcotest.test_case name `Quick f

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "po_obs_test_%d" (Unix.getpid ()))
  in
  Po_report.Writer.mkdir_p dir;
  f dir

(* Arm/observe/disarm around a thunk, leaving the registry clean for the
   next test: metrics state is process-global. *)
let observed f =
  Metrics.reset ();
  Metrics.arm ();
  Fun.protect ~finally:(fun () -> Metrics.disarm ()) f

(* ------------------------------------------------------------------ *)
(* Metrics semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_disarmed_noop () =
  let c = Metrics.counter "test.disarmed" in
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check (list (pair string int)))
    "disarmed updates vanish" []
    (List.filter (fun (n, _) -> n = "test.disarmed")
       (List.filter (fun (_, v) -> v <> 0) (Metrics.counters ())))

let test_metrics_counter_armed () =
  let c = Metrics.counter "test.counter" in
  observed (fun () ->
      Metrics.incr c;
      Metrics.add c 41);
  Alcotest.(check (option int))
    "counts while armed" (Some 42)
    (List.assoc_opt "test.counter" (Metrics.counters ()))

let test_metrics_gauge_max_merge () =
  let g = Metrics.gauge "test.gauge" in
  observed (fun () ->
      Metrics.set g 3.;
      Metrics.set g 7.;
      (* A second domain's shard participates through max. *)
      Domain.join (Domain.spawn (fun () -> Metrics.set g 5.)));
  match List.assoc_opt "test.gauge" (Metrics.snapshot ()) with
  | Some (Metrics.Gauge v) -> Alcotest.(check (float 0.)) "max wins" 7. v
  | _ -> Alcotest.fail "gauge missing from snapshot"

let test_metrics_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1.; 10. |] "test.hist" in
  observed (fun () -> List.iter (Metrics.observe h) [ 0.5; 5.; 500. ]);
  match List.assoc_opt "test.hist" (Metrics.snapshot ()) with
  | Some (Metrics.Histogram { bounds; counts; sum }) ->
      Alcotest.(check (array (float 0.))) "bounds" [| 1.; 10. |] bounds;
      Alcotest.(check (array int)) "one per bucket + overflow" [| 1; 1; 1 |]
        counts;
      Alcotest.(check (float 1e-12)) "sum" 505.5 sum
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_metrics_kind_clash () =
  let (_ : Metrics.counter) = Metrics.counter "test.clash" in
  match Metrics.gauge "test.clash" with
  | (_ : Metrics.gauge) -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ()

let test_metrics_reset () =
  let c = Metrics.counter "test.reset" in
  observed (fun () -> Metrics.incr c);
  Metrics.reset ();
  Alcotest.(check (option int))
    "reset zeroes" (Some 0)
    (List.assoc_opt "test.reset" (Metrics.counters ()))

let test_metrics_registration_idempotent () =
  let a = Metrics.counter "test.idem" in
  let b = Metrics.counter "test.idem" in
  observed (fun () ->
      Metrics.incr a;
      Metrics.incr b);
  Alcotest.(check (option int))
    "same slot" (Some 2)
    (List.assoc_opt "test.idem" (Metrics.counters ()))

(* ------------------------------------------------------------------ *)
(* Counter determinism across --jobs (the acceptance criterion)       *)
(* ------------------------------------------------------------------ *)

(* Counters are incremented only at jobs-invariant layers (per logical
   solve, per chunk of the fixed chunk layout), so a full figure
   generation must produce bit-identical counter snapshots at any
   worker count.  Gauges and timing histograms are exempt — this test
   deliberately reads only the counters section. *)
let figure_counters jobs =
  Metrics.reset ();
  Metrics.arm ();
  Fun.protect
    ~finally:(fun () -> Metrics.disarm ())
    (fun () ->
      ignore
        (Po_experiments.Fig04.generate
           ~params:{ Po_experiments.Common.quick_params with jobs }
           ());
      Metrics.counters ())

let test_counters_jobs_invariant () =
  let serial = figure_counters 1 in
  Alcotest.(check bool)
    "serial run counted something" true
    (List.exists (fun (_, v) -> v > 0) serial);
  Alcotest.(check (list (pair string int))) "jobs=4 identical" serial
    (figure_counters 4)

(* ------------------------------------------------------------------ *)
(* Tracer                                                             *)
(* ------------------------------------------------------------------ *)

let traced f =
  Trace.reset ();
  Trace.arm ();
  Fun.protect ~finally:(fun () -> Trace.disarm ()) f

let test_trace_disarmed_noop () =
  Trace.reset ();
  Trace.with_span "quiet" (fun () -> ());
  Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events ()))

let test_trace_nesting_and_ids () =
  traced (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.instant "mark"));
  match Trace.events () with
  | [ a; b; c ] ->
      (* Structural order is (tid, id): outer claimed id 0 first. *)
      Alcotest.(check string) "outer first" "outer" a.Trace.name;
      Alcotest.(check string) "inner second" "inner" b.Trace.name;
      Alcotest.(check string) "instant third" "mark" c.Trace.name;
      Alcotest.(check int) "outer is a root" (-1) a.Trace.parent;
      Alcotest.(check int) "inner nests under outer" a.Trace.id b.Trace.parent;
      Alcotest.(check int) "instant nests under outer" a.Trace.id c.Trace.parent
  | events ->
      Alcotest.failf "expected 3 events, got %d" (List.length events)

let test_trace_span_survives_raise () =
  traced (fun () ->
      (try Trace.with_span "raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      Trace.with_span "after" (fun () -> ()));
  match Trace.events () with
  | [ a; b ] ->
      Alcotest.(check string) "raising span recorded" "raiser" a.Trace.name;
      Alcotest.(check int) "stack unwound: after is a root" (-1)
        b.Trace.parent
  | events ->
      Alcotest.failf "expected 2 events, got %d" (List.length events)

let test_trace_export_parses_back () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "trace.json" in
      traced (fun () ->
          Trace.with_span "outer" (fun () -> Trace.with_span "inner" ignore));
      Trace.export ~other:[ ("note", Json.String "test") ] ~path ();
      let src = In_channel.with_open_bin path In_channel.input_all in
      match Json.of_string src with
      | Error msg -> Alcotest.failf "exported trace does not parse: %s" msg
      | Ok json -> (
          match Option.bind (Json.member "traceEvents" json) Json.to_list with
          | None -> Alcotest.fail "traceEvents missing"
          | Some events ->
              Alcotest.(check int) "two events" 2 (List.length events);
              let names =
                List.filter_map
                  (fun e -> Option.bind (Json.member "name" e) Json.to_str)
                  events
              in
              Alcotest.(check (list string))
                "names survive the round trip" [ "outer"; "inner" ] names;
              List.iter
                (fun e ->
                  Alcotest.(check (option string))
                    "complete event" (Some "X")
                    (Option.bind (Json.member "ph" e) Json.to_str))
                events;
              Alcotest.(check (option string))
                "otherData carried through" (Some "test")
                (Option.bind (Json.member "otherData" json) (fun o ->
                     Option.bind (Json.member "note" o) Json.to_str))))

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [ ("s", Json.String "a \"quoted\"\nline");
        ("n", Json.Number 1.5);
        ("i", Json.Number 42.);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Number 0.1; Json.Obj [] ]) ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan -> null" "null"
    (Json.to_string ~indent:0 (Json.Number Float.nan))

let test_json_parse_errors () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" src
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* bench-diff                                                         *)
(* ------------------------------------------------------------------ *)

let bench_file dir name ~solve_ns ~speedup =
  let path = Filename.concat dir name in
  Po_report.Writer.write_atomic ~path
    (Printf.sprintf
       {|{
  "schema": "po-bench-v1",
  "jobs": 4,
  "kernels": [
    {"name": "solve", "ns_per_run": %s},
    {"name": "stable", "ns_per_run": 100.0}
  ],
  "sweep_speedup": [
    {"figure": "fig5", "serial_s": 1.0, "parallel_s": 0.5, "speedup": %s}
  ]
}|}
       solve_ns speedup);
  path

let test_bench_diff_no_regression () =
  with_tmp_dir (fun dir ->
      let baseline = bench_file dir "base.json" ~solve_ns:"1000.0" ~speedup:"2.0" in
      let current = bench_file dir "cur.json" ~solve_ns:"1100.0" ~speedup:"1.9" in
      match Bench_diff.compare_files ~baseline ~current () with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check bool)
            "within thresholds" false
            (Bench_diff.has_regression r);
          Alcotest.(check int) "all rows compared" 3 (List.length r.rows))

let test_bench_diff_kernel_regression () =
  with_tmp_dir (fun dir ->
      let baseline = bench_file dir "base.json" ~solve_ns:"1000.0" ~speedup:"2.0" in
      let current = bench_file dir "cur.json" ~solve_ns:"2000.0" ~speedup:"2.0" in
      match Bench_diff.compare_files ~baseline ~current () with
      | Error msg -> Alcotest.fail msg
      | Ok r -> (
          match Bench_diff.regressions r with
          | [ row ] ->
              Alcotest.(check string) "the slow kernel" "solve" row.name;
              Alcotest.(check (float 1e-9)) "slowdown pct" 100. row.change_pct
          | rows ->
              Alcotest.failf "expected 1 regression, got %d" (List.length rows)))

let test_bench_diff_speedup_regression () =
  with_tmp_dir (fun dir ->
      let baseline = bench_file dir "base.json" ~solve_ns:"1000.0" ~speedup:"4.0" in
      let current = bench_file dir "cur.json" ~solve_ns:"1000.0" ~speedup:"1.0" in
      match Bench_diff.compare_files ~baseline ~current () with
      | Error msg -> Alcotest.fail msg
      | Ok r -> (
          match Bench_diff.regressions r with
          | [ row ] ->
              Alcotest.(check string) "the sweep row" "fig5" row.name;
              Alcotest.(check (float 1e-9)) "drop pct" 75. row.change_pct
          | rows ->
              Alcotest.failf "expected 1 regression, got %d" (List.length rows)))

let test_bench_diff_threshold_configurable () =
  with_tmp_dir (fun dir ->
      let baseline = bench_file dir "base.json" ~solve_ns:"1000.0" ~speedup:"2.0" in
      let current = bench_file dir "cur.json" ~solve_ns:"1100.0" ~speedup:"2.0" in
      let thresholds =
        { Bench_diff.max_slowdown_pct = 5.; max_speedup_drop_pct = 5. }
      in
      match Bench_diff.compare_files ~thresholds ~baseline ~current () with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check bool)
            "10% slowdown trips a 5% threshold" true
            (Bench_diff.has_regression r))

let test_bench_diff_null_never_gates () =
  with_tmp_dir (fun dir ->
      let baseline = bench_file dir "base.json" ~solve_ns:"1000.0" ~speedup:"2.0" in
      let current = bench_file dir "cur.json" ~solve_ns:"null" ~speedup:"null" in
      match Bench_diff.compare_files ~baseline ~current () with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check bool)
            "unreadable readings do not gate" false
            (Bench_diff.has_regression r))

let test_bench_diff_schema_mismatch () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "bad.json" in
      Po_report.Writer.write_atomic ~path {|{"schema": "po-bench-v2"}|};
      match Bench_diff.compare_files ~baseline:path ~current:path () with
      | Ok _ -> Alcotest.fail "schema mismatch must be an error"
      | Error _ -> ())

let test_bench_diff_disjoint_rows () =
  with_tmp_dir (fun dir ->
      let baseline = Filename.concat dir "base.json" in
      let current = Filename.concat dir "cur.json" in
      Po_report.Writer.write_atomic ~path:baseline
        {|{"schema": "po-bench-v1", "kernels": [{"name": "old", "ns_per_run": 1.0}]}|};
      Po_report.Writer.write_atomic ~path:current
        {|{"schema": "po-bench-v1", "kernels": [{"name": "new", "ns_per_run": 1.0}]}|};
      match Bench_diff.compare_files ~baseline ~current () with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check (list string)) "vanished" [ "old" ] r.only_baseline;
          Alcotest.(check (list string)) "appeared" [ "new" ] r.only_current;
          Alcotest.(check bool)
            "disjoint rows never gate" false
            (Bench_diff.has_regression r))

(* ------------------------------------------------------------------ *)
(* Manifest                                                           *)
(* ------------------------------------------------------------------ *)

let test_manifest_params_hash_stable () =
  let h = Manifest.params_hash ~n_cps:1000 ~seed:42 ~sweep_points:33 in
  Alcotest.(check string) "pure function of the params" h
    (Manifest.params_hash ~n_cps:1000 ~seed:42 ~sweep_points:33);
  Alcotest.(check bool)
    "sensitive to every field" false
    (h = Manifest.params_hash ~n_cps:1000 ~seed:43 ~sweep_points:33)

let test_manifest_json_shape () =
  let m =
    { Manifest.figure = "fig5"; git = "abc123"; params_hash = "deadbeef";
      jobs = 4; wall_s = 1.5; warnings = 0 }
  in
  let json = Manifest.to_json m in
  Alcotest.(check (option string))
    "figure" (Some "fig5")
    (Option.bind (Json.member "figure" json) Json.to_str);
  Alcotest.(check (option (float 0.)))
    "jobs" (Some 4.)
    (Option.bind (Json.member "jobs" json) Json.to_float)

(* ------------------------------------------------------------------ *)
(* Satellites: Writer.append_line, Warnings count/drain               *)
(* ------------------------------------------------------------------ *)

let test_append_line_preserves_existing_file () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "existing.txt" in
      (* A pre-existing non-journal file: append must extend it in
         place, not truncate or replace it. *)
      Po_report.Writer.write_atomic ~path "first line\n";
      Po_report.Writer.append_line ~path "second line";
      Po_report.Writer.append_line ~path "third line";
      let content = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string)
        "appended after the original content"
        "first line\nsecond line\nthird line\n" content)

let test_append_line_creates_missing_file () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat (Filename.concat dir "fresh") "new.txt" in
      Po_report.Writer.remove_if_exists path;
      Po_report.Writer.append_line ~path "only line";
      Alcotest.(check string)
        "created with the line" "only line\n"
        (In_channel.with_open_bin path In_channel.input_all))

let test_warnings_count_and_drain () =
  let before = Po_guard.Warnings.count () in
  Po_guard.Warnings.set_handler (fun _ -> ());
  Po_guard.Warnings.emit "degradation one";
  Po_guard.Warnings.emit "degradation two";
  Alcotest.(check int)
    "count tracks emissions" (before + 2)
    (Po_guard.Warnings.count ());
  let drained = Po_guard.Warnings.drain () in
  Alcotest.(check bool)
    "drain ends with the new messages in order" true
    (let n = List.length drained in
     n >= 2
     && List.filteri (fun i _ -> i >= n - 2) drained
        = [ "degradation one"; "degradation two" ]);
  Alcotest.(check (list string)) "drain clears" [] (Po_guard.Warnings.drain ());
  Alcotest.(check int)
    "count survives drain" (before + 2)
    (Po_guard.Warnings.count ())

let () =
  Alcotest.run "po_obs"
    [ ( "metrics",
        [ quick "disarmed is a no-op" test_metrics_disarmed_noop;
          quick "counter counts when armed" test_metrics_counter_armed;
          quick "gauges merge by max" test_metrics_gauge_max_merge;
          quick "histogram buckets" test_metrics_histogram_buckets;
          quick "kind clash raises" test_metrics_kind_clash;
          quick "reset zeroes" test_metrics_reset;
          quick "registration idempotent" test_metrics_registration_idempotent
        ] );
      ( "determinism",
        [ quick "figure counters identical across jobs"
            test_counters_jobs_invariant ] );
      ( "trace",
        [ quick "disarmed is a no-op" test_trace_disarmed_noop;
          quick "nesting and structural ids" test_trace_nesting_and_ids;
          quick "span survives a raise" test_trace_span_survives_raise;
          quick "export parses back" test_trace_export_parses_back ] );
      ( "json",
        [ quick "round trip" test_json_round_trip;
          quick "non-finite renders null" test_json_nonfinite_is_null;
          quick "malformed inputs rejected" test_json_parse_errors ] );
      ( "bench-diff",
        [ quick "no regression within thresholds" test_bench_diff_no_regression;
          quick "kernel slowdown gates" test_bench_diff_kernel_regression;
          quick "speedup drop gates" test_bench_diff_speedup_regression;
          quick "thresholds configurable" test_bench_diff_threshold_configurable;
          quick "null readings never gate" test_bench_diff_null_never_gates;
          quick "schema mismatch is an error" test_bench_diff_schema_mismatch;
          quick "disjoint rows reported, not gated" test_bench_diff_disjoint_rows
        ] );
      ( "manifest",
        [ quick "params hash stable and sensitive"
            test_manifest_params_hash_stable;
          quick "json shape" test_manifest_json_shape ] );
      ( "satellites",
        [ quick "append_line preserves an existing file"
            test_append_line_preserves_existing_file;
          quick "append_line creates a missing file"
            test_append_line_creates_missing_file;
          quick "warnings count and drain" test_warnings_count_and_drain ] )
    ]
