(* The domain pool: ordering, determinism across worker counts,
   exception propagation, and the chunked map_reduce contract. *)

module Pool = Po_par.Pool

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let float_array = Alcotest.(array (float 0.))
(* zero tolerance: the determinism contract is bit-for-bit *)

(* ------------------------------------------------------------------ *)
(* parallel_map / parallel_init                                       *)
(* ------------------------------------------------------------------ *)

let test_map_matches_serial () =
  let input = Array.init 1000 (fun i -> float_of_int (i - 500)) in
  let f x = (x *. x) +. sin x in
  let expected = Array.map f input in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.check float_array
            (Printf.sprintf "%d domains" domains)
            expected
            (Pool.parallel_map pool f input)))
    [ 1; 2; 8 ]

let test_map_uneven_work () =
  (* Element cost varies by two orders of magnitude: chunks finish out
     of order, results must not. *)
  let input = Array.init 64 (fun i -> i) in
  let f i =
    let iters = if i mod 7 = 0 then 200_000 else 1_000 in
    let acc = ref 0. in
    for k = 1 to iters do
      acc := !acc +. (1. /. float_of_int k)
    done;
    (float_of_int i, !acc)
  in
  let expected = Array.map f input in
  Pool.with_pool ~domains:4 (fun pool ->
      let got = Pool.parallel_map pool f input in
      Alcotest.check float_array "first components"
        (Array.map fst expected) (Array.map fst got);
      Alcotest.check float_array "second components"
        (Array.map snd expected) (Array.map snd got))

let test_init_matches_serial () =
  let f i = float_of_int (i * i) -. 3. in
  let expected = Array.init 257 f in
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.check float_array "init 257" expected
        (Pool.parallel_init pool 257 f))

let test_empty_and_singleton () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.parallel_map pool (fun x -> x + 1) [||]);
      Alcotest.(check (array int)) "singleton" [| 43 |]
        (Pool.parallel_map pool (fun x -> x + 1) [| 42 |]);
      Alcotest.(check (array int)) "init 0" [||]
        (Pool.parallel_init pool 0 (fun i -> i)))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~domains:4 (fun pool ->
      (try
         ignore
           (Pool.parallel_map pool
              (fun i -> if i = 57 then raise (Boom i) else i)
              (Array.init 200 Fun.id));
         Alcotest.fail "expected Boom to propagate"
       with
       | Po_guard.Po_error.Error
           { kind = Po_guard.Po_error.Worker_crash { chunk; exn = Boom i };
             _ } ->
           Alcotest.(check int) "payload survives" 57 i;
           Alcotest.(check bool) "chunk provenance recorded" true (chunk >= 0)
       );
      (* The pool stays usable after a failed operation. *)
      Alcotest.(check (array int)) "pool alive after failure"
        [| 0; 2; 4 |]
        (Pool.parallel_map pool (fun x -> 2 * x) [| 0; 1; 2 |]))

let test_shutdown_rejects_work () =
  let pool = Pool.create ~domains:4 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.parallel_map pool (fun x -> x) (Array.init 100 Fun.id)))

(* ------------------------------------------------------------------ *)
(* map_reduce                                                         *)
(* ------------------------------------------------------------------ *)

let test_map_reduce_order () =
  (* Identity map, list-append reduce: chunk results must come back in
     chunk-index order whatever computed them. *)
  let input = Array.init 103 Fun.id in
  Pool.with_pool ~domains:4 (fun pool ->
      let rng = Po_prng.Splitmix.of_int 1 in
      let got =
        Pool.map_reduce pool ~chunk_size:10 ~rng
          ~map:(fun _rng chunk -> Array.to_list chunk)
          ~reduce:(fun acc chunk -> acc @ chunk)
          ~init:[] input
      in
      Alcotest.(check (list int)) "concatenation preserves order"
        (Array.to_list input) got)

let test_map_reduce_deterministic () =
  (* Randomised chunk work: same seed => same result for any pool size,
     because streams attach to chunks, not domains. *)
  let input = Array.init 230 Fun.id in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        let rng = Po_prng.Splitmix.of_int 7 in
        Pool.map_reduce pool ~rng
          ~map:(fun rng chunk ->
            Array.fold_left
              (fun acc i ->
                acc +. (float_of_int i *. Po_prng.Splitmix.float rng))
              0. chunk)
          ~reduce:( +. ) ~init:0. input)
  in
  let serial = run 1 in
  Alcotest.(check (float 0.)) "2 domains" serial (run 2);
  Alcotest.(check (float 0.)) "8 domains" serial (run 8)

let test_map_reduce_empty () =
  Pool.with_pool ~domains:2 (fun pool ->
      let rng = Po_prng.Splitmix.of_int 3 in
      Alcotest.(check int) "empty input folds to init" 99
        (Pool.map_reduce pool ~rng
           ~map:(fun _ _ -> Alcotest.fail "map must not run")
           ~reduce:(fun _ _ -> Alcotest.fail "reduce must not run")
           ~init:99 [||]))

(* ------------------------------------------------------------------ *)
(* End-to-end: figures are identical for any jobs value               *)
(* ------------------------------------------------------------------ *)

let series_of_figure (figure : Po_experiments.Common.figure) =
  List.concat_map
    (fun (panel, series) ->
      List.map
        (fun s ->
          ( panel ^ "/" ^ Po_report.Series.label s,
            (Po_report.Series.xs s, Po_report.Series.ys s) ))
        series)
    figure.Po_experiments.Common.panels

let check_figure_jobs_invariant generate =
  let at jobs =
    series_of_figure
      (generate
         ~params:{ Po_experiments.Common.quick_params with jobs }
         ())
  in
  let reference = at 1 in
  List.iter
    (fun jobs ->
      let got = at jobs in
      Alcotest.(check int)
        (Printf.sprintf "series count (jobs=%d)" jobs)
        (List.length reference) (List.length got);
      List.iter2
        (fun (name, (xs, ys)) (name', (xs', ys')) ->
          Alcotest.(check string) "series name" name name';
          Alcotest.check float_array (name ^ " xs") xs xs';
          Alcotest.check float_array (name ^ " ys") ys ys')
        reference got)
    [ 2; 8 ]

let slow_test_fig4_jobs_invariant () =
  check_figure_jobs_invariant (fun ~params () ->
      Po_experiments.Fig04.generate ~params ())

let slow_test_fig7_jobs_invariant () =
  check_figure_jobs_invariant (fun ~params () ->
      Po_experiments.Fig07.generate ~params ())

let slow_test_welfare_jobs_invariant () =
  check_figure_jobs_invariant (fun ~params () ->
      Po_experiments.Welfare_fig.generate ~params ())

let test_ensemble_jobs_invariant () =
  let serial = Po_workload.Ensemble.paper_ensemble ~n:400 ~seed:11 () in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel =
        Po_workload.Ensemble.paper_ensemble ~n:400 ~pool ~seed:11 ()
      in
      Alcotest.(check int) "size" (Array.length serial)
        (Array.length parallel);
      Array.iteri
        (fun i (cp : Po_model.Cp.t) ->
          let cp' = parallel.(i) in
          if
            cp.Po_model.Cp.alpha <> cp'.Po_model.Cp.alpha
            || cp.Po_model.Cp.theta_hat <> cp'.Po_model.Cp.theta_hat
            || cp.Po_model.Cp.v <> cp'.Po_model.Cp.v
            || cp.Po_model.Cp.phi <> cp'.Po_model.Cp.phi
          then Alcotest.failf "CP %d differs across pool sizes" i)
        serial)

let () =
  Alcotest.run "po_par"
    [ ( "parallel_map",
        [ quick "matches Array.map at 1/2/8 domains" test_map_matches_serial;
          quick "uneven work keeps order" test_map_uneven_work;
          quick "parallel_init" test_init_matches_serial;
          quick "empty and singleton" test_empty_and_singleton;
          quick "exception propagation" test_exception_propagation;
          quick "shutdown" test_shutdown_rejects_work ] );
      ( "map_reduce",
        [ quick "merge order" test_map_reduce_order;
          quick "deterministic across domains" test_map_reduce_deterministic;
          quick "empty input" test_map_reduce_empty ] );
      ( "determinism",
        [ quick "ensemble identical with/without pool"
            test_ensemble_jobs_invariant;
          slow "fig4 identical at jobs 1/2/8" slow_test_fig4_jobs_invariant;
          slow "fig7 identical at jobs 1/2/8" slow_test_fig7_jobs_invariant;
          slow "welfare identical at jobs 1/2/8"
            slow_test_welfare_jobs_invariant ] ) ]
