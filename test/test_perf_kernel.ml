(* Differential tests for the optimized water-filling kernel (DESIGN.md
   §9): the sorted-prefix Equilibrium solver and the caching/warm-started
   CP-game engine must be bit-identical to the retained reference
   implementations on every input — random ensembles, weighted systems,
   degenerate classes, bracket hints good and bad — and every figure in
   the registry must be reproduced identically for any jobs count. *)

open Po_model
open Po_core

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* Bit-level float equality: the contract is "bit-identical", not
   "close". *)
let check_bits name a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h <> %h" name a b

let check_bits_array name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" name i) x b.(i)) a

let check_solution name (a : Equilibrium.solution) (b : Equilibrium.solution) =
  check_bits_array (name ^ " theta") a.Equilibrium.theta b.Equilibrium.theta;
  check_bits_array (name ^ " demand") a.Equilibrium.demand b.Equilibrium.demand;
  check_bits_array (name ^ " rho") a.Equilibrium.rho b.Equilibrium.rho;
  check_bits (name ^ " per_capita_rate") a.Equilibrium.per_capita_rate
    b.Equilibrium.per_capita_rate;
  check_bits (name ^ " cap") a.Equilibrium.cap b.Equilibrium.cap;
  Alcotest.(check bool)
    (name ^ " congested")
    a.Equilibrium.congested b.Equilibrium.congested

let ensemble ?(n = 60) seed = Po_workload.Ensemble.paper_ensemble ~n ~seed ()

let nu_grid cps =
  let sat = Po_workload.Ensemble.saturation_nu cps in
  [ 0.; 1e-6; 0.05 *. sat; 0.3 *. sat; 0.7 *. sat; 0.99 *. sat; sat;
    1.5 *. sat ]

(* ------------------------------------------------------------------ *)
(* Equilibrium: optimized vs reference                                 *)
(* ------------------------------------------------------------------ *)

let test_eq_differential_random () =
  List.iter
    (fun seed ->
      let cps = ensemble seed in
      List.iter
        (fun nu ->
          check_solution
            (Printf.sprintf "seed=%d nu=%g" seed nu)
            (Equilibrium.solve ~nu cps)
            (Equilibrium.solve_reference ~nu cps))
        (nu_grid cps))
    [ 1; 2; 3; 17; 99 ]

let test_eq_differential_weighted () =
  let cps = ensemble ~n:40 5 in
  let rng = Po_prng.Splitmix.of_int 23 in
  let weights =
    Array.init (Array.length cps) (fun _ ->
        0.25 +. Po_prng.Splitmix.float rng)
  in
  List.iter
    (fun nu ->
      check_solution
        (Printf.sprintf "weighted nu=%g" nu)
        (Equilibrium.solve ~weights ~nu cps)
        (Equilibrium.solve_reference ~weights ~nu cps))
    (nu_grid cps)

let test_eq_context_reuse () =
  (* A presorted context reused across many solves is the cp_game usage
     pattern; it must not leak state between nus. *)
  let cps = ensemble ~n:50 7 in
  let ctx = Equilibrium.context cps in
  List.iter
    (fun nu ->
      check_solution
        (Printf.sprintf "context nu=%g" nu)
        (Equilibrium.solve ~context:ctx ~nu cps)
        (Equilibrium.solve_reference ~nu cps))
    (nu_grid cps)

let test_eq_bracket_hints_transparent () =
  (* Any hint — tight, sloppy, not containing the root, reversed,
     non-finite — must yield the bit-identical solution. *)
  let cps = ensemble ~n:45 11 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.4 *. sat in
  let cold = Equilibrium.solve ~nu cps in
  let root = cold.Equilibrium.cap in
  List.iter
    (fun (label, bracket) ->
      check_solution
        ("bracket " ^ label)
        (Equilibrium.solve ~bracket ~nu cps)
        cold)
    [ ("tight", (root *. 0.99, root *. 1.01));
      ("one-sided lo", (root *. 0.5, Float.infinity));
      ("one-sided hi", (0., root *. 2.));
      ("above root", (root *. 2., root *. 3.));
      ("below root", (0., root *. 0.5));
      ("reversed", (root *. 2., root *. 0.5));
      ("negative", (-3., -1.));
      ("nan", (Float.nan, Float.nan));
      ("exact degenerate", (root, root)) ]

let test_eq_all_saturated () =
  (* nu >= unconstrained throughput: the uncongested branch, cap
     infinite. *)
  let cps = ensemble ~n:30 13 in
  let unconstrained =
    Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
  in
  List.iter
    (fun nu ->
      let sol = Equilibrium.solve ~nu cps in
      Alcotest.(check bool)
        (Printf.sprintf "uncongested at nu=%g" nu)
        false sol.Equilibrium.congested;
      check_bits "cap is infinite" Float.infinity sol.Equilibrium.cap;
      check_solution
        (Printf.sprintf "all-saturated nu=%g" nu)
        sol
        (Equilibrium.solve_reference ~nu cps))
    [ unconstrained; unconstrained *. 1.5; unconstrained +. 100. ]

let test_eq_single_cp () =
  let cp =
    Cp.make ~id:0 ~alpha:0.7 ~theta_hat:2.5
      ~demand:(Demand.exponential ~beta:4.) ~v:0.5 ()
  in
  List.iter
    (fun nu ->
      check_solution
        (Printf.sprintf "single cp nu=%g" nu)
        (Equilibrium.solve ~nu [| cp |])
        (Equilibrium.solve_reference ~nu [| cp |]))
    [ 0.; 0.1; 0.5; 1.; 1.74; 2. ]

let test_eq_threshold_ties () =
  (* Identical theta_hat / w thresholds: the sort must break ties by
     original index so accumulation order — and the bits — are pinned. *)
  let tied =
    Array.init 12 (fun i ->
        Cp.make ~id:i ~alpha:(0.3 +. (0.05 *. float_of_int (i mod 5)))
          ~theta_hat:2.
          ~demand:(Demand.exponential ~beta:(0.5 +. float_of_int (i mod 4)))
          ())
  in
  List.iter
    (fun nu ->
      check_solution
        (Printf.sprintf "ties nu=%g" nu)
        (Equilibrium.solve ~nu tied)
        (Equilibrium.solve_reference ~nu tied))
    [ 0.; 0.5; 1.; 2.; 4.; 8. ]

let test_eq_empty_and_zero () =
  check_solution "empty population"
    (Equilibrium.solve ~nu:3. [||])
    (Equilibrium.solve_reference ~nu:3. [||]);
  let cps = ensemble ~n:20 29 in
  let zero = Equilibrium.solve ~nu:0. cps in
  check_bits "zero capacity pins cap to 0" 0. zero.Equilibrium.cap;
  Array.iteri
    (fun i theta -> check_bits (Printf.sprintf "theta.(%d)" i) 0. theta)
    zero.Equilibrium.theta;
  check_solution "zero capacity" zero (Equilibrium.solve_reference ~nu:0. cps)

(* ------------------------------------------------------------------ *)
(* CP game: caching/warm-started engine vs cold reference engine       *)
(* ------------------------------------------------------------------ *)

let check_outcome name (a : Cp_game.outcome) (b : Cp_game.outcome) =
  Alcotest.(check string)
    (name ^ " partition")
    (Partition.key a.Cp_game.partition)
    (Partition.key b.Cp_game.partition);
  check_bits_array (name ^ " theta") a.Cp_game.theta b.Cp_game.theta;
  check_bits_array (name ^ " rho") a.Cp_game.rho b.Cp_game.rho;
  check_bits (name ^ " cap_o") a.Cp_game.cap_ordinary b.Cp_game.cap_ordinary;
  check_bits (name ^ " cap_p") a.Cp_game.cap_premium b.Cp_game.cap_premium;
  check_bits (name ^ " lambda_o") a.Cp_game.lambda_ordinary
    b.Cp_game.lambda_ordinary;
  check_bits (name ^ " lambda_p") a.Cp_game.lambda_premium
    b.Cp_game.lambda_premium;
  check_bits (name ^ " phi") a.Cp_game.phi b.Cp_game.phi;
  check_bits (name ^ " psi") a.Cp_game.psi b.Cp_game.psi;
  Alcotest.(check bool) (name ^ " converged") a.Cp_game.converged
    b.Cp_game.converged;
  Alcotest.(check int) (name ^ " iterations") a.Cp_game.iterations
    b.Cp_game.iterations

let game_points cps =
  let sat = Po_workload.Ensemble.saturation_nu cps in
  [ (0.5, 0.3, 0.2 *. sat); (0.3, 0.6, 0.5 *. sat); (0.8, 0.2, 0.05 *. sat);
    (1., 0.5, 0.4 *. sat); (0., 0.3, 0.3 *. sat); (0.6, 0.4, 1.2 *. sat) ]

let test_game_differential () =
  List.iter
    (fun seed ->
      let cps = ensemble ~n:50 seed in
      List.iter
        (fun (kappa, c, nu) ->
          let strategy = Strategy.make ~kappa ~c in
          check_outcome
            (Printf.sprintf "seed=%d (%g,%g,nu=%g)" seed kappa c nu)
            (Cp_game.solve ~nu ~strategy cps)
            (Cp_game.solve_reference ~nu ~strategy cps))
        (game_points cps))
    [ 4; 42 ]

let test_game_differential_small () =
  (* Tiny populations exercise the tolerant phase and the Nash fallback,
     where the engine's caches see the most reuse. *)
  List.iter
    (fun n ->
      let cps = ensemble ~n (100 + n) in
      List.iter
        (fun (kappa, c, nu) ->
          let strategy = Strategy.make ~kappa ~c in
          check_outcome
            (Printf.sprintf "n=%d (%g,%g,nu=%g)" n kappa c nu)
            (Cp_game.solve ~nu ~strategy cps)
            (Cp_game.solve_reference ~nu ~strategy cps))
        (game_points cps))
    [ 1; 2; 3; 7 ]

let test_game_nash_differential () =
  let cps = ensemble ~n:25 8 in
  List.iter
    (fun (kappa, c, nu) ->
      let strategy = Strategy.make ~kappa ~c in
      check_outcome
        (Printf.sprintf "nash (%g,%g,nu=%g)" kappa c nu)
        (Cp_game.solve_nash ~nu ~strategy cps)
        (Cp_game.solve_nash_reference ~nu ~strategy cps))
    (game_points cps)

let test_game_zero_capacity () =
  let cps = ensemble ~n:15 31 in
  let strategy = Strategy.make ~kappa:0.5 ~c:0.3 in
  check_outcome "nu=0"
    (Cp_game.solve ~nu:0. ~strategy cps)
    (Cp_game.solve_reference ~nu:0. ~strategy cps)

(* ------------------------------------------------------------------ *)
(* Chained sweeps: chunk layout independent of the pool                *)
(* ------------------------------------------------------------------ *)

let test_chain_map_matches_serial () =
  let input = Array.init 103 (fun i -> float_of_int i /. 7.) in
  let step prev x =
    match prev with None -> x | Some p -> (0.5 *. p) +. x
  in
  let serial = Po_par.Pool.chain_map None ~step input in
  List.iter
    (fun domains ->
      Po_par.Pool.with_pool ~domains (fun pool ->
          check_bits_array
            (Printf.sprintf "chain_map %d domains" domains)
            serial
            (Po_par.Pool.chain_map (Some pool) ~step input)))
    [ 1; 2; 8 ];
  (* Chunk boundaries: with chunk_size 10, element 10 starts a fresh
     chain and must not see element 9. *)
  let chunked = Po_par.Pool.chain_map ~chunk_size:10 None ~step input in
  check_bits "chunk restart" input.(10) chunked.(10)

let test_monopoly_sweeps_pool_invariant () =
  let cps = ensemble ~n:40 3 in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let cs = Po_num.Grid.linspace 0. 1. 23 in
  let nus = Po_num.Grid.linspace 1e-3 (2. *. sat) 23 in
  let strategy = Strategy.make ~kappa:0.5 ~c:0.3 in
  let prices = Monopoly.price_sweep ~nu:(0.4 *. sat) ~cs cps in
  let caps = Monopoly.capacity_sweep ~strategy ~nus cps in
  Po_par.Pool.with_pool ~domains:4 (fun pool ->
      Array.iteri
        (fun i (p : Monopoly.price_point) ->
          check_bits
            (Printf.sprintf "price psi.(%d)" i)
            p.Monopoly.psi
            (Monopoly.price_sweep ~pool ~nu:(0.4 *. sat) ~cs cps).(i)
              .Monopoly.psi)
        prices;
      Array.iteri
        (fun i (o : Cp_game.outcome) ->
          check_outcome
            (Printf.sprintf "capacity point %d" i)
            o
            (Monopoly.capacity_sweep ~pool ~strategy ~nus cps).(i))
        caps)

(* ------------------------------------------------------------------ *)
(* Figure registry: every figure identical for any jobs count          *)
(* ------------------------------------------------------------------ *)

let series_of_figure (figure : Po_experiments.Common.figure) =
  List.concat_map
    (fun (panel, series) ->
      List.map
        (fun s ->
          ( panel ^ "/" ^ Po_report.Series.label s,
            (Po_report.Series.xs s, Po_report.Series.ys s) ))
        series)
    figure.Po_experiments.Common.panels

let slow_test_registry_jobs_invariant () =
  List.iter
    (fun (entry : Po_experiments.Registry.entry) ->
      let at jobs =
        series_of_figure
          (entry.Po_experiments.Registry.generate
             ~params:{ Po_experiments.Common.quick_params with jobs }
             ())
      in
      let reference = at 1 and got = at 3 in
      Alcotest.(check int)
        (entry.Po_experiments.Registry.id ^ " series count")
        (List.length reference) (List.length got);
      List.iter2
        (fun (name, (xs, ys)) (name', (xs', ys')) ->
          let name = entry.Po_experiments.Registry.id ^ "/" ^ name in
          Alcotest.(check string) (name ^ " label") name
            (entry.Po_experiments.Registry.id ^ "/" ^ name');
          check_bits_array (name ^ " xs") xs xs';
          check_bits_array (name ^ " ys") ys ys')
        reference got)
    Po_experiments.Registry.entries

let () =
  Alcotest.run "po_perf_kernel"
    [ ( "equilibrium",
        [ quick "random ensembles bit-identical" test_eq_differential_random;
          quick "weighted systems bit-identical" test_eq_differential_weighted;
          quick "context reuse" test_eq_context_reuse;
          quick "bracket hints are transparent"
            test_eq_bracket_hints_transparent;
          quick "all-saturated ensembles" test_eq_all_saturated;
          quick "single CP" test_eq_single_cp;
          quick "threshold ties" test_eq_threshold_ties;
          quick "empty and zero capacity" test_eq_empty_and_zero ] );
      ( "cp_game",
        [ quick "random ensembles bit-identical" test_game_differential;
          quick "small populations bit-identical"
            test_game_differential_small;
          quick "nash solver bit-identical" test_game_nash_differential;
          quick "zero capacity" test_game_zero_capacity ] );
      ( "sweeps",
        [ quick "chain_map pool-invariant" test_chain_map_matches_serial;
          quick "monopoly sweeps pool-invariant"
            test_monopoly_sweeps_pool_invariant ] );
      ( "figures",
        [ slow "whole registry identical at jobs 1/3"
            slow_test_registry_jobs_invariant ] ) ]
