(* Tests for the ecosystem model (lib/model): demand families, CPs, the
   rate-equilibrium solver (Theorem 1 / Lemma 1), allocation mechanisms
   and the paper's axioms, and welfare accounting. *)

open Po_model

let quick name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

let three_cp () = Po_workload.Scenario.three_cp ()

let small_ensemble seed =
  Po_workload.Ensemble.paper_ensemble ~n:60 ~seed ()

(* ------------------------------------------------------------------ *)
(* Demand                                                             *)
(* ------------------------------------------------------------------ *)

let test_demand_exponential_shape () =
  let d = Demand.exponential ~beta:5. in
  check_float "full throughput" 1. (Demand.eval d 1.);
  check_float "zero throughput" 0. (Demand.eval d 0.);
  (* Paper: at beta = 5 a 10% throughput drop roughly halves demand. *)
  check_close 0.05 "half demand at omega = 0.9" 0.57 (Demand.eval d 0.9)

let test_demand_exponential_ordering () =
  let weak = Demand.exponential ~beta:0.1 in
  let strong = Demand.exponential ~beta:10. in
  List.iter
    (fun omega ->
      if Demand.eval strong omega > Demand.eval weak omega +. 1e-12 then
        Alcotest.failf "sensitive demand should be lower at omega=%g" omega)
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_demand_beta_zero_inelastic () =
  let d = Demand.exponential ~beta:0. in
  check_float "always 1" 1. (Demand.eval d 0.3)

let test_demand_clamps () =
  let d = Demand.linear in
  check_float "clamps above" 1. (Demand.eval d 7.);
  check_float "clamps below" 0. (Demand.eval d (-2.))

let test_demand_eval_throughput () =
  let d = Demand.linear in
  check_float "normalises by theta_hat" 0.5
    (Demand.eval_throughput d ~theta_hat:10. 5.)

let test_demand_families_satisfy_assumption1 () =
  List.iter
    (fun d ->
      match Demand.check_assumption1 d with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ Demand.exponential ~beta:0.5; Demand.exponential ~beta:10.;
      Demand.inelastic; Demand.linear; Demand.power ~gamma:2.;
      Demand.affine_floor ~floor:0.25 ]

let test_step_demand_fails_assumption1 () =
  match Demand.check_assumption1 (Demand.step ~threshold:0.5) with
  | Ok () -> Alcotest.fail "step demand should fail the continuity audit"
  | Error _ -> ()

let test_decreasing_custom_fails () =
  let bad = Demand.of_fun ~name:"bad" (fun omega -> 1. -. (0.5 *. omega)) in
  match Demand.check_assumption1 bad with
  | Ok () -> Alcotest.fail "decreasing demand should fail"
  | Error _ -> ()

let prop_exponential_monotone =
  QCheck.Test.make ~name:"exponential demand is non-decreasing" ~count:200
    QCheck.(triple (float_range 0. 10.) (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (beta, w1, w2) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      let d = Demand.exponential ~beta in
      Demand.eval d lo <= Demand.eval d hi +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Cp                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cp_validation () =
  let demand = Demand.inelastic in
  Alcotest.check_raises "alpha 0" (Invalid_argument "Cp.make: alpha outside (0, 1]")
    (fun () -> ignore (Cp.make ~id:0 ~alpha:0. ~theta_hat:1. ~demand ()));
  Alcotest.check_raises "alpha > 1" (Invalid_argument "Cp.make: alpha outside (0, 1]")
    (fun () -> ignore (Cp.make ~id:0 ~alpha:1.5 ~theta_hat:1. ~demand ()));
  Alcotest.check_raises "theta_hat 0" (Invalid_argument "Cp.make: theta_hat <= 0")
    (fun () -> ignore (Cp.make ~id:0 ~alpha:0.5 ~theta_hat:0. ~demand ()))

let test_cp_rho_caps () =
  let cp = Cp.google 0 in
  check_float "rho at cap" 1. (Cp.rho cp ~theta:5.);
  check_float "lambda_hat" 1. (Cp.lambda_hat_per_capita cp)

let test_cp_updates () =
  let cp = Cp.with_phi (Cp.with_v (Cp.google 0) 0.7) 0.2 in
  check_float "v" 0.7 cp.Cp.v;
  check_float "phi" 0.2 cp.Cp.phi

let test_archetypes_match_paper () =
  let g = Cp.google 0 and n = Cp.netflix 1 and s = Cp.skype 2 in
  check_float "google alpha" 1. g.Cp.alpha;
  check_float "google theta_hat" 1. g.Cp.theta_hat;
  check_float "netflix alpha" 0.3 n.Cp.alpha;
  check_float "netflix theta_hat" 10. n.Cp.theta_hat;
  check_float "skype alpha" 0.5 s.Cp.alpha;
  check_float "skype theta_hat" 3. s.Cp.theta_hat

(* ------------------------------------------------------------------ *)
(* Equilibrium (Theorem 1, Lemma 1)                                   *)
(* ------------------------------------------------------------------ *)

let test_equilibrium_unconstrained () =
  let cps = three_cp () in
  let sol = Equilibrium.solve ~nu:100. cps in
  Alcotest.(check bool) "not congested" false sol.Equilibrium.congested;
  Array.iteri
    (fun i (cp : Cp.t) ->
      check_float "theta = theta_hat" cp.Cp.theta_hat sol.Equilibrium.theta.(i))
    cps

let test_equilibrium_work_conservation () =
  let cps = three_cp () in
  List.iter
    (fun nu ->
      let sol = Equilibrium.solve ~nu cps in
      check_close 1e-6
        (Printf.sprintf "aggregate = nu at nu=%g" nu)
        nu sol.Equilibrium.per_capita_rate)
    [ 0.5; 1.; 2.; 3.; 5. ]

let test_equilibrium_zero_capacity () =
  let sol = Equilibrium.solve ~nu:0. (three_cp ()) in
  Array.iter (fun th -> check_float "zero throughput" 0. th) sol.Equilibrium.theta;
  Alcotest.(check bool) "congested" true sol.Equilibrium.congested

let test_equilibrium_empty_population () =
  let sol = Equilibrium.solve ~nu:5. [||] in
  check_float "no rate" 0. sol.Equilibrium.per_capita_rate

let test_equilibrium_matches_paper_fig3 () =
  (* At saturation (nu = 5.5) everyone is unconstrained. *)
  let cps = three_cp () in
  let sol = Equilibrium.solve ~nu:5.5 cps in
  check_close 1e-6 "google" 1. sol.Equilibrium.theta.(0);
  check_close 1e-3 "netflix" 10. sol.Equilibrium.theta.(1);
  check_close 1e-6 "skype" 3. sol.Equilibrium.theta.(2)

let test_equilibrium_demand_ordering () =
  (* The paper's Fig. 3 observation: google's demand recovers first, then
     skype, netflix last. *)
  let cps = three_cp () in
  let recovered i =
    let rec scan nu =
      if nu > 7. then 7.
      else if (Equilibrium.solve ~nu cps).Equilibrium.demand.(i) > 0.9 then nu
      else scan (nu +. 0.05)
    in
    scan 0.05
  in
  let g = recovered 0 and n = recovered 1 and s = recovered 2 in
  Alcotest.(check bool)
    (Printf.sprintf "google (%.2f) < skype (%.2f) < netflix (%.2f)" g s n)
    true
    (g < s && s < n)

let test_equilibrium_weights () =
  (* Double-weight CPs reach a higher cap before their theta_hat binds. *)
  let cps =
    [| Cp.make ~id:0 ~alpha:1. ~theta_hat:10. ~demand:Demand.inelastic ();
       Cp.make ~id:1 ~alpha:1. ~theta_hat:10. ~demand:Demand.inelastic () |]
  in
  let sol = Equilibrium.solve ~weights:[| 2.; 1. |] ~nu:6. cps in
  check_close 1e-6 "weighted split 4/2" 4. sol.Equilibrium.theta.(0);
  check_close 1e-6 "weighted split 4/2" 2. sol.Equilibrium.theta.(1)

let test_equilibrium_rejects_bad_weights () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Equilibrium: weight <= 0") (fun () ->
      ignore (Equilibrium.solve ~weights:[| 0. |] ~nu:1. [| Cp.google 0 |]))

let test_solve_absolute_scale_invariance () =
  let cps = three_cp () in
  let a = Equilibrium.solve_absolute ~m:100. ~mu:250. cps in
  let b = Equilibrium.solve_absolute ~m:4000. ~mu:10000. cps in
  Array.iteri
    (fun i th -> check_close 1e-9 "same theta" th b.Equilibrium.theta.(i))
    a.Equilibrium.theta

let prop_equilibrium_monotone_in_nu =
  QCheck.Test.make ~name:"theta is non-decreasing in nu (Lemma 1)" ~count:60
    QCheck.(pair (float_range 0.1 5.) (float_range 0.1 5.))
    (fun (nu1, nu2) ->
      let lo = Float.min nu1 nu2 and hi = Float.max nu1 nu2 in
      let cps = three_cp () in
      let a = Equilibrium.solve ~nu:lo cps in
      let b = Equilibrium.solve ~nu:hi cps in
      Array.for_all2
        (fun x y -> x <= y +. 1e-7)
        a.Equilibrium.theta b.Equilibrium.theta)

let prop_equilibrium_unique_from_any_ensemble =
  QCheck.Test.make
    ~name:"work conservation holds across random ensembles (Theorem 1)"
    ~count:40
    QCheck.(pair small_int (float_range 0.5 30.))
    (fun (seed, nu) ->
      let cps = small_ensemble seed in
      let sol = Equilibrium.solve ~nu cps in
      let saturation = Po_workload.Ensemble.saturation_nu cps in
      let expected = Float.min nu saturation in
      Float.abs (sol.Equilibrium.per_capita_rate -. expected)
      <= 1e-5 *. Float.max 1. expected)

(* ------------------------------------------------------------------ *)
(* Alloc axioms                                                       *)
(* ------------------------------------------------------------------ *)

let audit_nus = Po_num.Grid.linspace 0.2 8. 12

let test_maxmin_satisfies_axioms () =
  match Alloc.check_all Maxmin.mechanism ~nus:audit_nus (three_cp ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_alphafair_satisfies_axioms () =
  List.iter
    (fun alpha ->
      match
        Alloc.check_all
          (Alphafair.mechanism ~weights:[| 1.; 2.; 0.5 |] ~alpha ())
          ~nus:audit_nus (three_cp ())
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 0.5; 1.; 2.; Float.infinity ]

let test_priority_satisfies_axioms () =
  match
    Alloc.check_all (Priority.mechanism ()) ~nus:audit_nus (three_cp ())
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_axiom_checker_catches_violations () =
  (* A mechanism that over-allocates violates Axiom 1; one that wastes
     capacity violates Axiom 2. *)
  let greedy =
    { Alloc.name = "greedy";
      solve =
        (fun ~nu cps ->
          ignore nu;
          let n = Array.length cps in
          let theta = Array.map (fun (cp : Cp.t) -> 2. *. cp.Cp.theta_hat) cps in
          { Equilibrium.theta; demand = Array.make n 1.;
            rho = Array.copy theta; per_capita_rate = 0.; congested = false;
            cap = Float.infinity }) }
  in
  (match Alloc.check_axiom1 greedy ~nu:1. (three_cp ()) with
  | Ok () -> Alcotest.fail "axiom 1 violation not caught"
  | Error _ -> ());
  let lazy_mech =
    { Alloc.name = "lazy";
      solve =
        (fun ~nu cps ->
          ignore nu;
          let n = Array.length cps in
          { Equilibrium.theta = Array.make n 0.; demand = Array.make n 0.;
            rho = Array.make n 0.; per_capita_rate = 0.; congested = true;
            cap = 0. }) }
  in
  match Alloc.check_axiom2 lazy_mech ~nu:1. (three_cp ()) with
  | Ok () -> Alcotest.fail "axiom 2 violation not caught"
  | Error _ -> ()

let test_axiom3_checker_catches_nonmonotone () =
  (* Throughput that shrinks with capacity must be flagged. *)
  let perverse =
    { Alloc.name = "perverse";
      solve =
        (fun ~nu cps ->
          let n = Array.length cps in
          let theta = Array.make n (1. /. (1. +. nu)) in
          { Equilibrium.theta; demand = Array.make n 1.;
            rho = Array.copy theta; per_capita_rate = 0.; congested = true;
            cap = 0. }) }
  in
  match Alloc.check_axiom3 perverse ~nus:[| 1.; 2. |] (three_cp ()) with
  | Ok () -> Alcotest.fail "axiom 3 violation not caught"
  | Error _ -> ()

let test_priority_order_matters () =
  let cps = three_cp () in
  let forward = Priority.solve ~order:[| 0; 1; 2 |] ~nu:1. cps in
  let backward = Priority.solve ~order:[| 2; 1; 0 |] ~nu:1. cps in
  (* Google (alpha=1, theta_hat=1) fits within nu=1 fully when first. *)
  check_float "google full when first" 1. forward.Equilibrium.theta.(0);
  Alcotest.(check bool) "google throttled when last" true
    (backward.Equilibrium.theta.(0) < 1.)

let test_priority_rejects_bad_order () =
  Alcotest.check_raises "duplicate order"
    (Invalid_argument "Priority: duplicate order index") (fun () ->
      ignore (Priority.solve ~order:[| 0; 0; 1 |] ~nu:1. (three_cp ())))

let prop_maxmin_axiom2_random =
  QCheck.Test.make ~name:"max-min work conservation on random ensembles"
    ~count:30
    QCheck.(pair small_int (float_range 0.2 20.))
    (fun (seed, nu) ->
      match Alloc.check_axiom2 Maxmin.mechanism ~nu (small_ensemble seed) with
      | Ok () -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Maxmin helpers                                                     *)
(* ------------------------------------------------------------------ *)

let test_maxmin_cap_semantics () =
  let cps = three_cp () in
  Alcotest.(check bool) "finite cap when congested" true
    (Float.is_finite (Maxmin.cap ~nu:1. cps));
  Alcotest.(check bool) "infinite cap when unconstrained" true
    (Float.equal (Maxmin.cap ~nu:50. cps) Float.infinity)

let test_maxmin_rho_of_entrant () =
  let cps = [| Cp.google 0 |] in
  let entrant = Cp.skype 1 in
  let rho = Maxmin.rho_of_entrant ~nu:1. cps ~entrant in
  Alcotest.(check bool) "entrant gets positive throughput" true (rho > 0.);
  (* The entrant's rho reflects the post-entry equilibrium. *)
  let joint = Equilibrium.solve ~nu:1. [| Cp.google 0; Cp.skype 1 |] in
  check_close 1e-9 "matches joint solve" joint.Equilibrium.rho.(1) rho

(* ------------------------------------------------------------------ *)
(* Surplus (Theorem 2)                                                *)
(* ------------------------------------------------------------------ *)

let priced () = Po_workload.Scenario.three_cp_priced ()

let test_surplus_formula () =
  let cps = priced () in
  let sol = Equilibrium.solve ~nu:10. cps in
  (* Unconstrained: Phi = sum phi alpha theta_hat. *)
  let expected =
    Array.fold_left
      (fun acc (cp : Cp.t) -> acc +. (cp.Cp.phi *. cp.Cp.alpha *. cp.Cp.theta_hat))
      0. cps
  in
  check_close 1e-6 "unconstrained Phi" expected (Surplus.consumer cps sol)

let test_surplus_monotone_theorem2 () =
  let cps = priced () in
  let prev = ref (-1.) in
  List.iter
    (fun nu ->
      let phi = Surplus.consumer_at ~nu cps in
      if phi < !prev -. 1e-9 then
        Alcotest.failf "Phi decreased at nu=%g" nu;
      prev := phi)
    [ 0.2; 0.5; 1.; 2.; 3.; 4.; 5.; 6. ]

let test_surplus_strictly_increasing_when_congested () =
  let cps = priced () in
  let a = Surplus.consumer_at ~nu:1. cps in
  let b = Surplus.consumer_at ~nu:2. cps in
  Alcotest.(check bool) "strict increase below saturation" true (b > a)

let test_isp_surplus () =
  let cps = priced () in
  let sol = Equilibrium.solve ~nu:10. cps in
  let expected = 0.5 *. sol.Equilibrium.per_capita_rate in
  check_close 1e-9 "Psi = c * carried" expected (Surplus.isp ~c:0.5 cps sol)

let test_cp_utilities_sign () =
  let cps = priced () in
  let sol = Equilibrium.solve ~nu:10. cps in
  let utilities = Surplus.cp_utilities ~c:0.6 cps sol in
  (* google v=0.8 > 0.6 gains; skype v=0.2 < 0.6 loses. *)
  Alcotest.(check bool) "google gains" true (utilities.(0) > 0.);
  Alcotest.(check bool) "skype loses" true (utilities.(2) < 0.)

let test_utilization () =
  let cps = priced () in
  let sol = Equilibrium.solve ~nu:2. cps in
  check_close 1e-6 "full when congested" 1. (Surplus.utilization ~nu:2. sol);
  let sol = Equilibrium.solve ~nu:100. cps in
  Alcotest.(check bool) "partial when unconstrained" true
    (Surplus.utilization ~nu:100. sol < 1.)

let test_surplus_alignment_guard () =
  let cps = priced () in
  let sol = Equilibrium.solve ~nu:2. cps in
  Alcotest.check_raises "mismatched arrays"
    (Invalid_argument "Surplus: solution does not match CP array") (fun () ->
      ignore (Surplus.consumer [| Cp.google 0 |] sol))

let prop_phi_nondecreasing_random =
  QCheck.Test.make
    ~name:"Phi non-decreasing in nu on random ensembles (Theorem 2)"
    ~count:30
    QCheck.(triple small_int (float_range 0.5 20.) (float_range 0.5 20.))
    (fun (seed, nu1, nu2) ->
      let lo = Float.min nu1 nu2 and hi = Float.max nu1 nu2 in
      let cps = small_ensemble seed in
      Surplus.consumer_at ~nu:lo cps
      <= Surplus.consumer_at ~nu:hi cps +. 1e-7)

let () =
  Alcotest.run "po_model"
    [ ( "demand",
        [ quick "exponential shape" test_demand_exponential_shape;
          quick "beta ordering" test_demand_exponential_ordering;
          quick "beta=0 inelastic" test_demand_beta_zero_inelastic;
          quick "clamps" test_demand_clamps;
          quick "eval_throughput" test_demand_eval_throughput;
          quick "families pass assumption 1" test_demand_families_satisfy_assumption1;
          quick "step fails assumption 1" test_step_demand_fails_assumption1;
          quick "decreasing custom fails" test_decreasing_custom_fails;
          prop prop_exponential_monotone ] );
      ( "cp",
        [ quick "validation" test_cp_validation;
          quick "rho caps" test_cp_rho_caps;
          quick "updates" test_cp_updates;
          quick "archetypes" test_archetypes_match_paper ] );
      ( "equilibrium",
        [ quick "unconstrained" test_equilibrium_unconstrained;
          quick "work conservation" test_equilibrium_work_conservation;
          quick "zero capacity" test_equilibrium_zero_capacity;
          quick "empty population" test_equilibrium_empty_population;
          quick "fig3 saturation" test_equilibrium_matches_paper_fig3;
          quick "fig3 demand ordering" test_equilibrium_demand_ordering;
          quick "weights" test_equilibrium_weights;
          quick "rejects bad weights" test_equilibrium_rejects_bad_weights;
          quick "scale invariance" test_solve_absolute_scale_invariance;
          prop prop_equilibrium_monotone_in_nu;
          prop prop_equilibrium_unique_from_any_ensemble ] );
      ( "alloc",
        [ quick "max-min axioms" test_maxmin_satisfies_axioms;
          quick "alpha-fair axioms" test_alphafair_satisfies_axioms;
          quick "priority axioms" test_priority_satisfies_axioms;
          quick "checker catches violations" test_axiom_checker_catches_violations;
          quick "checker catches non-monotone" test_axiom3_checker_catches_nonmonotone;
          quick "priority order matters" test_priority_order_matters;
          quick "priority rejects bad order" test_priority_rejects_bad_order;
          prop prop_maxmin_axiom2_random ] );
      ( "maxmin",
        [ quick "cap semantics" test_maxmin_cap_semantics;
          quick "rho of entrant" test_maxmin_rho_of_entrant ] );
      ( "surplus",
        [ quick "formula" test_surplus_formula;
          quick "monotone (Theorem 2)" test_surplus_monotone_theorem2;
          quick "strict under congestion" test_surplus_strictly_increasing_when_congested;
          quick "isp surplus" test_isp_surplus;
          quick "cp utilities sign" test_cp_utilities_sign;
          quick "utilization" test_utilization;
          quick "alignment guard" test_surplus_alignment_guard;
          prop prop_phi_nondecreasing_random ] ) ]
