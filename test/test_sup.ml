(* Supervised-execution suite (DESIGN.md §13): cooperative budgets and
   cancellation, deterministic bounded retries under transient faults,
   the circuit breaker's graceful degradation, the per-chunk watchdog,
   fault-spec merge precedence, pool reuse after repeated crashes, and
   concurrent Warnings access from worker domains. *)

open Po_guard

let with_disarm f = Fun.protect ~finally:(fun () -> Faultinject.disarm ()) f

let spec ?solver ?worker ?write ?timeout ?slow ?flaky () =
  { Faultinject.solver; worker; write; timeout; slow; flaky }

let silence_warnings f =
  Warnings.set_handler ignore;
  Fun.protect
    ~finally:(fun () -> Warnings.set_handler prerr_endline)
    f

(* Bit-level equality: the retry contract is bit-identity, not
   approximate agreement. *)
let check_bits msg expected actual =
  Alcotest.(check (array int64))
    msg
    (Array.map Int64.bits_of_float expected)
    (Array.map Int64.bits_of_float actual)

let chained_step prev x =
  (0.5 *. Option.value prev ~default:1.) +. sqrt (x +. 1.)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    i + n <= m && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Budget                                                             *)
(* ------------------------------------------------------------------ *)

let test_budget_deadline () =
  match
    Po_error.capture (fun () ->
        let b = Po_sup.Budget.start ~deadline:0.005 () in
        Po_obs.Clock.sleep_s 0.02;
        Alcotest.(check bool) "expired" true (Po_sup.Budget.expired b);
        (match Po_sup.Budget.remaining b with
        | Some r -> Alcotest.(check (float 0.)) "remaining clamps to 0" 0. r
        | None -> Alcotest.fail "bounded budget reports no remaining");
        Po_sup.Budget.check b)
  with
  | Error { kind = Po_error.Deadline_exceeded { elapsed; budget }; _ } ->
      Alcotest.(check bool) "elapsed past budget" true (elapsed >= budget);
      Alcotest.(check (float 1e-9)) "allowance recorded" 0.005 budget
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok () -> Alcotest.fail "expired budget did not raise"

let test_budget_cancel () =
  let b = Po_sup.Budget.start () in
  Po_sup.Budget.check b;
  Alcotest.(check bool) "not cancelled yet" false (Po_sup.Budget.cancelled b);
  Po_sup.Budget.cancel b ~reason:"user interrupt";
  Po_sup.Budget.cancel b ~reason:"second call is idempotent";
  Alcotest.(check bool) "cancelled" true (Po_sup.Budget.cancelled b);
  match Po_error.capture (fun () -> Po_sup.Budget.check b) with
  | Error { kind = Po_error.Cancelled reason; _ } ->
      Alcotest.(check string) "first reason wins" "user interrupt" reason
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok () -> Alcotest.fail "cancelled budget did not raise"

let test_budget_unbounded () =
  let b = Po_sup.Budget.start () in
  Po_sup.Budget.check b;
  Alcotest.(check bool) "never expires" false (Po_sup.Budget.expired b);
  (match Po_sup.Budget.remaining b with
  | None -> ()
  | Some _ -> Alcotest.fail "unbounded budget reports remaining");
  Po_sup.Budget.check_opt None

let test_budget_validation () =
  match
    Po_error.capture (fun () -> Po_sup.Budget.start ~deadline:0. ())
  with
  | Error { kind = Po_error.Invalid_scenario _; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok _ -> Alcotest.fail "non-positive deadline accepted"

(* ------------------------------------------------------------------ *)
(* Policy, breaker, watchdog state machines                           *)
(* ------------------------------------------------------------------ *)

let test_policy_validation () =
  Alcotest.(check bool)
    "default is inactive" false
    (Po_sup.Supervise.is_active Po_sup.Supervise.default);
  Alcotest.(check bool)
    "retries activate" true
    (Po_sup.Supervise.is_active (Po_sup.Supervise.v ~retries:1 ()));
  Alcotest.(check bool)
    "a watchdog activates" true
    (Po_sup.Supervise.is_active (Po_sup.Supervise.v ~chunk_timeout:1. ()));
  let rejects label f =
    match Po_error.capture f with
    | Error { kind = Po_error.Invalid_scenario _; _ } -> ()
    | Error e ->
        Alcotest.failf "%s: wrong error: %s" label (Po_error.to_string e)
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  rejects "negative retries" (fun () ->
      Po_sup.Supervise.v ~retries:(-1) ());
  rejects "zero breaker threshold" (fun () ->
      Po_sup.Supervise.v ~breaker_threshold:0 ());
  rejects "non-positive chunk timeout" (fun () ->
      Po_sup.Supervise.v ~chunk_timeout:0. ())

let test_breaker_machine () =
  let b = Po_sup.Breaker.create ~threshold:2 in
  Alcotest.(check bool) "starts closed" false (Po_sup.Breaker.tripped b);
  Alcotest.(check bool)
    "first failure stays closed" false
    (Po_sup.Breaker.record_failure b);
  Po_sup.Breaker.record_success b;
  Alcotest.(check int)
    "success resets the streak" 0
    (Po_sup.Breaker.consecutive_failures b);
  ignore (Po_sup.Breaker.record_failure b);
  Alcotest.(check bool)
    "threshold-th consecutive failure trips" true
    (Po_sup.Breaker.record_failure b);
  Alcotest.(check bool) "open" true (Po_sup.Breaker.tripped b);
  Po_sup.Breaker.record_success b;
  Alcotest.(check bool)
    "an open breaker stays open" true
    (Po_sup.Breaker.tripped b);
  Po_sup.Breaker.reset b;
  Alcotest.(check bool) "reset closes it" false (Po_sup.Breaker.tripped b)

let test_watchdog_machine () =
  let w = Po_sup.Watchdog.create ~limit:0.5 in
  Po_sup.Watchdog.check w ~chunk:3 ~elapsed:0.4;
  Po_sup.Watchdog.check_opt None ~chunk:3 ~elapsed:99.;
  match
    Po_error.capture (fun () ->
        Po_sup.Watchdog.check w ~chunk:3 ~elapsed:0.6)
  with
  | Error { kind = Po_error.Chunk_timeout { chunk = 3; elapsed; limit }; _ }
    ->
      Alcotest.(check (float 1e-9)) "elapsed recorded" 0.6 elapsed;
      Alcotest.(check (float 1e-9)) "limit recorded" 0.5 limit
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok () -> Alcotest.fail "over-limit chunk not flagged"

let test_retryable_classification () =
  let yes k = Alcotest.(check bool) "retryable" true (Po_sup.Supervise.retryable k)
  and no k = Alcotest.(check bool) "not retryable" false (Po_sup.Supervise.retryable k) in
  yes (Po_error.Worker_crash { chunk = 0; exn = Not_found });
  yes (Po_error.Chunk_timeout { chunk = 0; elapsed = 1.; limit = 0.5 });
  no (Po_error.Deadline_exceeded { elapsed = 1.; budget = 0.5 });
  no (Po_error.Cancelled "reason");
  no (Po_error.No_bracket "no sign change");
  no (Po_error.Non_convergence { residual = 1.; iterations = 7 });
  no (Po_error.Invalid_scenario "bad weights");
  no (Po_error.Io_failure { path = "/x"; reason = "enospc" })

(* ------------------------------------------------------------------ *)
(* Deterministic retries                                              *)
(* ------------------------------------------------------------------ *)

(* flaky@2:2 crashes chunk 2 twice, then succeeds; with [retries = 2]
   every run must complete and be bit-identical to the fault-free
   sweep for any worker count. *)
let test_flaky_retry_bit_identity () =
  with_disarm (fun () ->
      let xs = Array.init 37 float_of_int in
      let clean =
        Po_par.Pool.chain_map ~chunk_size:5 None ~step:chained_step xs
      in
      let faulted jobs =
        Faultinject.arm (spec ~flaky:(2, 2) ());
        let run pool =
          Po_par.Pool.chain_map ~chunk_size:5
            ~sup:(Po_sup.Supervise.v ~retries:2 ())
            pool ~step:chained_step xs
        in
        let r =
          if jobs <= 1 then run None
          else Po_par.Pool.with_pool ~domains:jobs (fun p -> run (Some p))
        in
        Faultinject.disarm ();
        r
      in
      check_bits "retried run matches fault-free (jobs 1)" clean (faulted 1);
      check_bits "retried run matches fault-free (jobs 4)" clean (faulted 4))

let test_retries_exhausted_fail_typed () =
  with_disarm (fun () ->
      let xs = Array.init 12 float_of_int in
      (* A persistent crash outlives any retry count; without
         degradation the sweep must fail with the typed crash. *)
      Faultinject.arm (spec ~worker:1 ());
      match
        Po_error.capture (fun () ->
            Po_par.Pool.chunk_map ~chunk_size:4
              ~sup:
                (Po_sup.Supervise.v ~retries:2 ~degrade:false
                   ~breaker_threshold:10 ())
              None ~f:sqrt xs)
      with
      | Error { kind = Po_error.Worker_crash { chunk = 1; _ }; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "persistent crash survived retries")

(* ------------------------------------------------------------------ *)
(* Circuit breaker and graceful degradation                           *)
(* ------------------------------------------------------------------ *)

let test_breaker_degrades_and_completes () =
  with_disarm (fun () ->
      silence_warnings (fun () ->
          let xs = Array.init 20 float_of_int in
          let clean =
            Po_par.Pool.chain_map ~chunk_size:4 None ~step:chained_step xs
          in
          (* Three transient crashes at chunk 1: two attempts trip the
             breaker (threshold 2), the third fails once more in the
             degraded phase, then the retry completes the figure. *)
          Faultinject.arm (spec ~flaky:(1, 3) ());
          let before = Warnings.count () in
          let r =
            Po_par.Pool.chain_map ~chunk_size:4
              ~sup:(Po_sup.Supervise.v ~retries:1 ~breaker_threshold:2 ())
              None ~step:chained_step xs
          in
          check_bits "degraded figure completes bit-identically" clean r;
          Alcotest.(check bool)
            "breaker warning emitted" true
            (Warnings.count () > before);
          Alcotest.(check bool)
            "warning names the breaker" true
            (List.exists
               (fun m -> contains m "circuit breaker")
               (Warnings.drain ()))))

let test_timeout_site_degrades () =
  with_disarm (fun () ->
      silence_warnings (fun () ->
          let xs = Array.init 20 float_of_int in
          let clean = Array.map sqrt xs in
          (* timeout@1 reports chunk 1 stuck on every parallel attempt;
             degradation must absorb it because the degraded serial
             phase is not subject to the watchdog. *)
          Faultinject.arm (spec ~timeout:1 ());
          let r =
            Po_par.Pool.chunk_map ~chunk_size:4
              ~sup:
                (Po_sup.Supervise.v ~retries:1 ~breaker_threshold:2
                   ~chunk_timeout:30. ())
              None ~f:sqrt xs
          in
          check_bits "figure survives a stuck chunk" clean r))

let test_timeout_fails_fast_without_degrade () =
  with_disarm (fun () ->
      let xs = Array.init 12 float_of_int in
      Faultinject.arm (spec ~timeout:1 ());
      match
        Po_error.capture (fun () ->
            Po_par.Pool.chunk_map ~chunk_size:4
              ~sup:(Po_sup.Supervise.v ~degrade:false ~chunk_timeout:30. ())
              None ~f:sqrt xs)
      with
      | Error { kind = Po_error.Chunk_timeout { chunk = 1; _ }; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
      | Ok _ -> Alcotest.fail "armed timeout site did not fire")

let test_watchdog_flags_slow_chunk () =
  with_disarm (fun () ->
      silence_warnings (fun () ->
          let xs = Array.init 12 float_of_int in
          let clean = Array.map sqrt xs in
          (* slow@1 really sleeps past the watchdog limit, exercising
             the elapsed-time path end to end; the breaker then routes
             the chunk to the degraded phase, where the slow site is
             suppressed. *)
          Faultinject.arm (spec ~slow:1 ());
          let before = Warnings.count () in
          let r =
            Po_par.Pool.chunk_map ~chunk_size:4
              ~sup:
                (Po_sup.Supervise.v ~breaker_threshold:1 ~chunk_timeout:0.02
                   ())
              None ~f:sqrt xs
          in
          check_bits "slow chunk recovered" clean r;
          Alcotest.(check bool)
            "degradation warned" true
            (Warnings.count () > before)))

(* ------------------------------------------------------------------ *)
(* Deadlines and cancellation through the sweep and the solvers       *)
(* ------------------------------------------------------------------ *)

let test_sweep_deadline_surfaces () =
  let xs = Array.init 40 float_of_int in
  let b = Po_sup.Budget.start ~deadline:0.005 () in
  Po_obs.Clock.sleep_s 0.02;
  match
    Po_error.capture (fun () ->
        Po_par.Pool.chain_map ~chunk_size:4
          ~sup:(Po_sup.Supervise.v ~budget:b ())
          None ~step:chained_step xs)
  with
  | Error { kind = Po_error.Deadline_exceeded _; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok _ -> Alcotest.fail "expired budget did not stop the sweep"

let test_sweep_cancellation () =
  let xs = Array.init 40 float_of_int in
  let b = Po_sup.Budget.start () in
  let step prev x =
    if x >= 4. then Po_sup.Budget.cancel b ~reason:"operator abort";
    chained_step prev x
  in
  match
    Po_error.capture (fun () ->
        Po_par.Pool.chain_map ~chunk_size:4
          ~sup:(Po_sup.Supervise.v ~budget:b ())
          None ~step xs)
  with
  | Error { kind = Po_error.Cancelled reason; _ } ->
      Alcotest.(check string) "reason travels" "operator abort" reason
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok _ -> Alcotest.fail "cancellation did not stop the sweep"

let test_equilibrium_budget_frames () =
  let cps =
    Po_experiments.Common.ensemble Po_experiments.Common.quick_params
  in
  let nu = 0.5 *. Po_workload.Ensemble.saturation_nu cps in
  let b = Po_sup.Budget.start ~deadline:0.004 () in
  Po_obs.Clock.sleep_s 0.02;
  match
    Po_error.capture (fun () ->
        Po_model.Equilibrium.solve ~budget:b ~nu cps)
  with
  | Error { kind = Po_error.Deadline_exceeded _; context } ->
      Alcotest.(check bool)
        "solver frame attached" true
        (List.mem_assoc "solver" context)
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok _ -> Alcotest.fail "expired budget did not stop the solve"

let test_cp_game_budget_frames () =
  let cps =
    Po_experiments.Common.ensemble Po_experiments.Common.quick_params
  in
  let nu = 0.5 *. Po_workload.Ensemble.saturation_nu cps in
  let strategy = Po_core.Strategy.make ~kappa:0.4 ~c:0.3 in
  let b = Po_sup.Budget.start ~deadline:0.004 () in
  Po_obs.Clock.sleep_s 0.02;
  match
    Po_error.capture (fun () ->
        Po_core.Cp_game.solve ~budget:b ~nu ~strategy cps)
  with
  | Error { kind = Po_error.Deadline_exceeded _; context } ->
      Alcotest.(check bool)
        "game solver frames attached" true
        (List.mem_assoc "solver" context
        && List.mem_assoc "strategy" context)
  | Error e -> Alcotest.failf "wrong error: %s" (Po_error.to_string e)
  | Ok _ -> Alcotest.fail "expired budget did not stop the game solve"

let test_completed_run_unchanged_by_budget () =
  let cps =
    Po_experiments.Common.ensemble Po_experiments.Common.quick_params
  in
  let nu = 0.5 *. Po_workload.Ensemble.saturation_nu cps in
  let free = Po_model.Equilibrium.solve ~nu cps in
  let b = Po_sup.Budget.start ~deadline:3600. () in
  let bounded = Po_model.Equilibrium.solve ~budget:b ~nu cps in
  check_bits "a generous budget never changes the output" free.theta
    bounded.theta

(* ------------------------------------------------------------------ *)
(* Fault-spec merge precedence (--inject vs PONET_INJECT)             *)
(* ------------------------------------------------------------------ *)

let test_merge_precedence () =
  let parse s =
    match Faultinject.parse s with
    | Ok v -> v
    | Error m -> Alcotest.failf "parse %S: %s" s m
  in
  (* base = environment (PONET_INJECT), override = the --inject flag:
     sites named by the flag win; sites it leaves unset fall back to
     the environment. *)
  let base = parse "worker@1,flaky@2:3,slow@4" in
  let override = parse "worker@5,timeout@0" in
  let m = Faultinject.merge ~base ~override in
  Alcotest.(check (option int)) "flag wins per site" (Some 5) m.worker;
  Alcotest.(check (option int)) "flag-only site kept" (Some 0) m.timeout;
  Alcotest.(check (option (pair int int)))
    "env fills unset sites" (Some (2, 3)) m.flaky;
  Alcotest.(check (option int)) "env-only site kept" (Some 4) m.slow;
  Alcotest.(check (option int)) "absent stays absent" None m.solver;
  Alcotest.(check (option int)) "absent stays absent" None m.write;
  (* The merged spec round-trips through the concrete syntax. *)
  let reparsed = parse (Faultinject.to_string m) in
  Alcotest.(check (option int)) "roundtrip worker" m.worker reparsed.worker;
  Alcotest.(check (option (pair int int)))
    "roundtrip flaky" m.flaky reparsed.flaky

(* ------------------------------------------------------------------ *)
(* Pool robustness under repeated crashes; concurrent Warnings        *)
(* ------------------------------------------------------------------ *)

let test_pool_reuse_after_repeated_crashes () =
  with_disarm (fun () ->
      let xs = Array.init 23 float_of_int in
      let expected = Array.map sqrt xs in
      let exercise domains =
        Po_par.Pool.with_pool ~domains (fun p ->
            for _round = 1 to 3 do
              Faultinject.arm (spec ~worker:1 ());
              (match
                 Po_error.capture (fun () ->
                     Po_par.Pool.chunk_map ~chunk_size:4 (Some p) ~f:sqrt xs)
               with
              | Error { kind = Po_error.Worker_crash { chunk = 1; _ }; _ } ->
                  ()
              | Error e ->
                  Alcotest.failf "wrong error: %s" (Po_error.to_string e)
              | Ok _ -> Alcotest.fail "armed worker site did not fire");
              Faultinject.disarm ();
              check_bits "pool still computes after the crash" expected
                (Po_par.Pool.chunk_map ~chunk_size:4 (Some p) ~f:sqrt xs)
            done)
      in
      (* Serial degenerate pool, then strictly more jobs than the
         machine recommends — oversubscription must not change the
         failure or recovery semantics. *)
      exercise 1;
      exercise (Po_par.Pool.default_domains () + 2))

let test_concurrent_warnings_from_workers () =
  silence_warnings (fun () ->
      ignore (Warnings.drain ());
      let before = Warnings.count () in
      let drained = Atomic.make 0 in
      let xs = Array.init 64 Fun.id in
      Po_par.Pool.with_pool ~domains:4 (fun p ->
          ignore
            (Po_par.Pool.chunk_map ~chunk_size:1 (Some p)
               ~f:(fun i ->
                 Warnings.emit (Printf.sprintf "w%d" i);
                 if i mod 8 = 0 then
                   ignore
                     (Atomic.fetch_and_add drained
                        (List.length (Warnings.drain ())));
                 i)
               xs));
      let tail = List.length (Warnings.drain ()) in
      Alcotest.(check int)
        "every emission counted" 64
        (Warnings.count () - before);
      Alcotest.(check int)
        "drains partition the emissions" 64
        (Atomic.get drained + tail))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "po_sup"
    [ ( "budget",
        [ quick "deadline expiry is typed" test_budget_deadline;
          quick "cancellation wins and is idempotent" test_budget_cancel;
          quick "unbounded budget never expires" test_budget_unbounded;
          quick "non-positive deadline rejected" test_budget_validation ] );
      ( "policy",
        [ quick "validation and activation" test_policy_validation;
          quick "breaker state machine" test_breaker_machine;
          quick "watchdog state machine" test_watchdog_machine;
          quick "retryable classification" test_retryable_classification ] );
      ( "retries",
        [ quick "flaky retries are bit-identical"
            test_flaky_retry_bit_identity;
          quick "persistent crash still fails typed"
            test_retries_exhausted_fail_typed ] );
      ( "breaker",
        [ quick "trip degrades and completes the figure"
            test_breaker_degrades_and_completes;
          quick "stuck chunk degrades" test_timeout_site_degrades;
          quick "no-degrade fails fast with chunk timeout"
            test_timeout_fails_fast_without_degrade;
          quick "watchdog flags a genuinely slow chunk"
            test_watchdog_flags_slow_chunk ] );
      ( "deadline",
        [ quick "sweep deadline surfaces typed" test_sweep_deadline_surfaces;
          quick "sweep cancellation surfaces typed" test_sweep_cancellation;
          quick "equilibrium budget carries frames"
            test_equilibrium_budget_frames;
          quick "cp game budget carries frames" test_cp_game_budget_frames;
          quick "completing runs are budget-invariant"
            test_completed_run_unchanged_by_budget ] );
      ( "inject",
        [ quick "flag wins per site, env fills unset"
            test_merge_precedence ] );
      ( "pool",
        [ quick "reuse after repeated crashes"
            test_pool_reuse_after_repeated_crashes;
          quick "concurrent warnings from workers"
            test_concurrent_warnings_from_workers ] ) ]
