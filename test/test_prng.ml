(* Tests for the deterministic PRNG substrate (lib/prng). *)

open Po_prng

let quick name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Splitmix                                                           *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let a = Splitmix.of_int 7 and b = Splitmix.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Splitmix.next_int64 a)
      (Splitmix.next_int64 b)
  done

let test_different_seeds_differ () =
  let a = Splitmix.of_int 1 and b = Splitmix.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Splitmix.next_int64 a <> Splitmix.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_independent () =
  let a = Splitmix.of_int 3 in
  ignore (Splitmix.next_int64 a);
  let b = Splitmix.copy a in
  Alcotest.(check int64)
    "copy continues identically" (Splitmix.next_int64 a)
    (Splitmix.next_int64 b)

let test_split_decorrelates () =
  let parent = Splitmix.of_int 9 in
  let child = Splitmix.split parent in
  (* The child stream should not equal the parent's continuation. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Splitmix.next_int64 parent = Splitmix.next_int64 child then incr same
  done;
  Alcotest.(check int) "no collisions in 50 draws" 0 !same

let test_float_range () =
  let rng = Splitmix.of_int 11 in
  for _ = 1 to 1000 do
    let u = Splitmix.float rng in
    if u < 0. || u >= 1. then Alcotest.fail "float outside [0, 1)"
  done

let test_float_mean () =
  let rng = Splitmix.of_int 13 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Splitmix.float rng
  done;
  Alcotest.(check (float 0.02)) "mean near 1/2" 0.5 (!acc /. float_of_int n)

let test_int_bounds_and_coverage () =
  let rng = Splitmix.of_int 17 in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let k = Splitmix.int rng 7 in
    if k < 0 || k >= 7 then Alcotest.fail "int out of range";
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 then
        Alcotest.failf "bucket %d badly undersampled (%d/7000)" i c)
    counts

let test_int_rejects_nonpositive () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Splitmix.int: n <= 0")
    (fun () -> ignore (Splitmix.int (Splitmix.of_int 1) 0))

let test_uniform_bounds () =
  let rng = Splitmix.of_int 19 in
  for _ = 1 to 100 do
    let x = Splitmix.uniform rng ~lo:(-2.) ~hi:3. in
    if x < -2. || x >= 3. then Alcotest.fail "uniform out of range"
  done

let test_bool_mixes () =
  let rng = Splitmix.of_int 23 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Splitmix.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

(* ------------------------------------------------------------------ *)
(* Dist                                                               *)
(* ------------------------------------------------------------------ *)

let sample_mean n f =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_exponential_mean () =
  let rng = Splitmix.of_int 31 in
  let m = sample_mean 20000 (fun () -> Dist.exponential rng ~rate:2.) in
  Alcotest.(check (float 0.02)) "mean 1/rate" 0.5 m

let test_exponential_positive () =
  let rng = Splitmix.of_int 37 in
  for _ = 1 to 1000 do
    if Dist.exponential rng ~rate:1. < 0. then Alcotest.fail "negative draw"
  done

let test_normal_moments () =
  let rng = Splitmix.of_int 41 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Dist.normal rng ~mu:3. ~sigma:2.) in
  Alcotest.(check (float 0.1)) "mean" 3. (Po_num.Stats.mean samples);
  Alcotest.(check (float 0.1)) "std" 2. (Po_num.Stats.std samples)

let test_lognormal_positive () =
  let rng = Splitmix.of_int 43 in
  for _ = 1 to 500 do
    if Dist.lognormal rng ~mu:0. ~sigma:1. <= 0. then
      Alcotest.fail "non-positive lognormal"
  done

let test_pareto_support () =
  let rng = Splitmix.of_int 47 in
  for _ = 1 to 1000 do
    if Dist.pareto rng ~shape:2. ~scale:1.5 < 1.5 then
      Alcotest.fail "pareto below scale"
  done

let test_pareto_mean () =
  let rng = Splitmix.of_int 53 in
  (* Mean of Pareto(shape a, scale s) is a s / (a - 1) for a > 1. *)
  let m = sample_mean 50000 (fun () -> Dist.pareto rng ~shape:3. ~scale:1.) in
  Alcotest.(check (float 0.05)) "mean 1.5" 1.5 m

let test_zipf_rank_ordering () =
  let rng = Splitmix.of_int 59 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20000 do
    let r = Dist.zipf rng ~n:10 ~s:1.2 in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true
    (counts.(0) > counts.(4) && counts.(4) > counts.(9))

let test_zipf_s_zero_uniform () =
  let rng = Splitmix.of_int 61 in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let r = Dist.zipf rng ~n:4 ~s:0. in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  Array.iter
    (fun c ->
      if c < 1600 || c > 2400 then Alcotest.fail "s=0 should be uniform")
    counts

let test_categorical_respects_weights () =
  let rng = Splitmix.of_int 67 in
  let counts = Array.make 3 0 in
  for _ = 1 to 9000 do
    let i = Dist.categorical rng ~weights:[| 1.; 2.; 6. |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "ordering follows weights" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  Alcotest.(check bool) "heaviest near 2/3" true
    (counts.(2) > 5400 && counts.(2) < 6600)

let test_categorical_zero_weight_excluded () =
  let rng = Splitmix.of_int 71 in
  for _ = 1 to 500 do
    if Dist.categorical rng ~weights:[| 0.; 1.; 0. |] <> 1 then
      Alcotest.fail "zero-weight bucket drawn"
  done

let test_categorical_rejects_bad_weights () =
  let rng = Splitmix.of_int 73 in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dist.categorical: negative weight") (fun () ->
      ignore (Dist.categorical rng ~weights:[| 1.; -1. |]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.categorical: zero total weight") (fun () ->
      ignore (Dist.categorical rng ~weights:[| 0.; 0. |]))

let test_bernoulli_extremes () =
  let rng = Splitmix.of_int 79 in
  for _ = 1 to 200 do
    if Dist.bernoulli rng ~p:0. then Alcotest.fail "p=0 returned true";
    if not (Dist.bernoulli rng ~p:1.) then Alcotest.fail "p=1 returned false"
  done

let test_shuffle_is_permutation () =
  let rng = Splitmix.of_int 83 in
  let arr = Array.init 20 (fun i -> i) in
  Dist.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

let test_shuffle_moves_something () =
  let rng = Splitmix.of_int 89 in
  let arr = Array.init 50 (fun i -> i) in
  Dist.shuffle rng arr;
  Alcotest.(check bool) "not identity" true
    (Array.exists (fun i -> arr.(i) <> i) (Array.init 50 (fun i -> i)))

let test_nested_uniform_bounds () =
  let rng = Splitmix.of_int 97 in
  for _ = 1 to 1000 do
    let x = Dist.nested_uniform rng ~hi:10. in
    if x < 0. || x >= 10. then Alcotest.fail "nested uniform out of range"
  done

let test_nested_uniform_mean () =
  let rng = Splitmix.of_int 101 in
  (* E[U[0, U[0, h]]] = h / 4. *)
  let m = sample_mean 40000 (fun () -> Dist.nested_uniform rng ~hi:10.) in
  Alcotest.(check (float 0.1)) "mean h/4" 2.5 m

let prop_int_in_range =
  QCheck.Test.make ~name:"Splitmix.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Splitmix.of_int seed in
      let k = Splitmix.int rng n in
      k >= 0 && k < n)

let () =
  Alcotest.run "po_prng"
    [ ( "splitmix",
        [ quick "determinism" test_determinism;
          quick "seeds differ" test_different_seeds_differ;
          quick "copy" test_copy_independent;
          quick "split decorrelates" test_split_decorrelates;
          quick "float range" test_float_range;
          quick "float mean" test_float_mean;
          quick "int bounds/coverage" test_int_bounds_and_coverage;
          quick "int rejects" test_int_rejects_nonpositive;
          quick "uniform bounds" test_uniform_bounds;
          quick "bool mixes" test_bool_mixes;
          prop prop_int_in_range ] );
      ( "dist",
        [ quick "exponential mean" test_exponential_mean;
          quick "exponential positive" test_exponential_positive;
          quick "normal moments" test_normal_moments;
          quick "lognormal positive" test_lognormal_positive;
          quick "pareto support" test_pareto_support;
          quick "pareto mean" test_pareto_mean;
          quick "zipf ordering" test_zipf_rank_ordering;
          quick "zipf s=0 uniform" test_zipf_s_zero_uniform;
          quick "categorical weights" test_categorical_respects_weights;
          quick "categorical zero excluded" test_categorical_zero_weight_excluded;
          quick "categorical rejects" test_categorical_rejects_bad_weights;
          quick "bernoulli extremes" test_bernoulli_extremes;
          quick "shuffle permutation" test_shuffle_is_permutation;
          quick "shuffle moves" test_shuffle_moves_something;
          quick "nested uniform bounds" test_nested_uniform_bounds;
          quick "nested uniform mean" test_nested_uniform_mean ] ) ]
