(* Unit and property tests for the numerics substrate (lib/num). *)

open Po_num

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Roots                                                              *)
(* ------------------------------------------------------------------ *)

let test_bisect_linear () =
  let r = Roots.bisect ~f:(fun x -> x -. 3.) ~lo:0. ~hi:10. () in
  Alcotest.(check bool) "converged" true r.Roots.converged;
  check_float "root" 3. r.Roots.root

let test_bisect_cubic () =
  let r = Roots.bisect ~f:(fun x -> (x ** 3.) -. 2.) ~lo:0. ~hi:2. () in
  check_close 1e-8 "cube root of 2" (2. ** (1. /. 3.)) r.Roots.root

let test_bisect_endpoint_root () =
  let r = Roots.bisect ~f:(fun x -> x) ~lo:0. ~hi:1. () in
  check_float "root at endpoint" 0. r.Roots.root

let test_bisect_no_bracket () =
  Alcotest.check_raises "same sign raises"
    (Roots.No_bracket "Roots.bisect: f(0)=1 and f(1)=2 have same sign")
    (fun () -> ignore (Roots.bisect ~f:(fun x -> x +. 1.) ~lo:0. ~hi:1. ()))

let test_bisect_discontinuous () =
  (* Sign change across a jump: bisection still localises it. *)
  let f x = if x < Float.pi then -1. else 1. in
  let r = Roots.bisect ~f ~lo:0. ~hi:10. () in
  check_close 1e-8 "jump location" Float.pi r.Roots.root

let test_brent_polynomial () =
  let f x = ((x -. 1.) *. (x -. 4.)) +. 0.5 in
  let r = Roots.brent ~f ~lo:0. ~hi:2. () in
  Alcotest.(check bool) "converged" true r.Roots.converged;
  check_close 1e-8 "residual small" 0. r.Roots.value

let test_brent_matches_bisect () =
  let f x = exp x -. 5. in
  let b = Roots.bisect ~tol:1e-12 ~f ~lo:0. ~hi:3. () in
  let br = Roots.brent ~tol:1e-12 ~f ~lo:0. ~hi:3. () in
  check_close 1e-9 "same root" b.Roots.root br.Roots.root

let test_brent_fewer_evals () =
  let count = ref 0 in
  let f x =
    incr count;
    (x *. x) -. 2.
  in
  ignore (Roots.brent ~tol:1e-12 ~f ~lo:0. ~hi:2. ());
  let brent_evals = !count in
  count := 0;
  ignore (Roots.bisect ~tol:1e-12 ~f ~lo:0. ~hi:2. ());
  Alcotest.(check bool)
    (Printf.sprintf "brent (%d) cheaper than bisect (%d)" brent_evals !count)
    true
    (brent_evals < !count)

let test_secant () =
  let r = Roots.secant ~f:(fun x -> (x *. x) -. 9.) ~x0:1. ~x1:5. () in
  Alcotest.(check bool) "converged" true r.Roots.converged;
  check_close 1e-6 "root 3" 3. r.Roots.root

let test_expand_bracket () =
  let lo, hi = Roots.expand_bracket ~f:(fun x -> x -. 50.) ~lo:0. ~hi:1. () in
  Alcotest.(check bool) "brackets the root" true (lo <= 50. && hi >= 50.)

let test_expand_bracket_fails () =
  Alcotest.(check bool) "raises No_bracket" true
    (try
       ignore
         (Roots.expand_bracket ~max_expand:5
            ~f:(fun x -> (x *. x) +. 1.)
            ~lo:0. ~hi:1. ());
       false
     with Roots.No_bracket _ -> true)

let test_monotone_level_interior () =
  let r =
    Roots.find_monotone_level ~f:sqrt ~level:2. ~lo:0. ~hi:100. ()
  in
  check_close 1e-8 "sqrt x = 2" 4. r.Roots.root

let test_monotone_level_clamps () =
  let f x = x in
  let low = Roots.find_monotone_level ~f ~level:(-1.) ~lo:0. ~hi:1. () in
  check_float "clamps below" 0. low.Roots.root;
  let high = Roots.find_monotone_level ~f ~level:5. ~lo:0. ~hi:1. () in
  check_float "clamps above" 1. high.Roots.root

let prop_monotone_level_solves =
  QCheck.Test.make ~name:"find_monotone_level solves monotone equations"
    ~count:200
    QCheck.(pair (float_bound_exclusive 1.) (float_bound_exclusive 10.))
    (fun (a, b) ->
      let a = a +. 0.1 and b = b +. 0.1 in
      let f x = (a *. x) +. (x ** 3.) in
      let level = f b *. 0.5 in
      let r = Roots.find_monotone_level ~f ~level ~lo:0. ~hi:b () in
      Float.abs (f r.Roots.root -. level) < 1e-6 *. (1. +. level))

(* ------------------------------------------------------------------ *)
(* Grid                                                               *)
(* ------------------------------------------------------------------ *)

let test_linspace_basic () =
  let g = Grid.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length g);
  check_float "first" 0. g.(0);
  check_float "last" 1. g.(4);
  check_float "middle" 0.5 g.(2)

let test_linspace_single () =
  let g = Grid.linspace 7. 9. 1 in
  Alcotest.(check int) "length" 1 (Array.length g);
  check_float "value" 7. g.(0)

let test_linspace_exact_endpoint () =
  let g = Grid.linspace 0. 0.3 7 in
  check_float "endpoint exact" 0.3 g.(6)

let test_logspace () =
  let g = Grid.logspace 1. 100. 3 in
  check_close 1e-9 "geometric middle" 10. g.(1)

let test_logspace_rejects_nonpositive () =
  Alcotest.check_raises "rejects 0"
    (Invalid_argument "Grid.logspace: bounds must be > 0") (fun () ->
      ignore (Grid.logspace 0. 1. 3))

let test_arange () =
  let g = Grid.arange 0. 1. 0.25 in
  Alcotest.(check int) "length" 4 (Array.length g);
  check_float "last below stop" 0.75 g.(3)

let test_midpoints () =
  let m = Grid.midpoints [| 0.; 2.; 6. |] in
  Alcotest.(check int) "length" 2 (Array.length m);
  check_float "first" 1. m.(0);
  check_float "second" 4. m.(1)

let test_index_of_nearest () =
  let g = [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "nearest to 1.4" 1 (Grid.index_of_nearest g 1.4);
  Alcotest.(check int) "nearest to -5" 0 (Grid.index_of_nearest g (-5.));
  Alcotest.(check int) "tie goes low" 0 (Grid.index_of_nearest g 0.5)

let prop_linspace_monotone =
  QCheck.Test.make ~name:"linspace is strictly increasing" ~count:100
    QCheck.(pair (float_range (-100.) 100.) (int_range 2 50))
    (fun (a, n) ->
      let g = Grid.linspace a (a +. 10.) n in
      let ok = ref true in
      for i = 1 to n - 1 do
        if g.(i) <= g.(i - 1) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

let test_fixpoint_contraction () =
  let r = Fixpoint.iterate ~f:(fun x -> (0.5 *. x) +. 1.) ~init:0. () in
  Alcotest.(check bool) "converged" true r.Fixpoint.converged;
  check_close 1e-8 "fixed point 2" 2. r.Fixpoint.point

let test_fixpoint_cosine () =
  let r = Fixpoint.iterate ~f:cos ~init:1. () in
  check_close 1e-8 "Dottie number" 0.7390851332151607 r.Fixpoint.point

let test_fixpoint_damping_stabilises () =
  (* x -> 3.2 x (1 - x) has an oscillating 2-cycle undamped; heavy damping
     converges to the interior fixed point 1 - 1/3.2. *)
  let f x = 3.2 *. x *. (1. -. x) in
  let undamped = Fixpoint.iterate ~max_iter:400 ~f ~init:0.3 () in
  let damped = Fixpoint.iterate ~max_iter:400 ~damping:0.3 ~f ~init:0.3 () in
  Alcotest.(check bool) "undamped cycles" false undamped.Fixpoint.converged;
  Alcotest.(check bool) "damped converges" true damped.Fixpoint.converged;
  check_close 1e-6 "fixed point" (1. -. (1. /. 3.2)) damped.Fixpoint.point

let test_fixpoint_vec () =
  let f v = [| (0.5 *. v.(0)) +. 1.; 0.9 *. v.(1) |] in
  let r = Fixpoint.iterate_vec ~f ~init:[| 0.; 5. |] () in
  Alcotest.(check bool) "converged" true r.Fixpoint.converged;
  check_close 1e-7 "component 0" 2. r.Fixpoint.point.(0);
  check_close 1e-7 "component 1" 0. r.Fixpoint.point.(1)

let test_fixpoint_vec_dimension_guard () =
  Alcotest.check_raises "dimension change rejected"
    (Invalid_argument "Fixpoint.iterate_vec: map changed dimension")
    (fun () ->
      ignore (Fixpoint.iterate_vec ~f:(fun _ -> [| 0. |]) ~init:[| 0.; 0. |] ()))

let test_iterate_until_stable () =
  let f = function [] -> [] | _ :: tl -> tl in
  let r =
    Fixpoint.iterate_until_stable ~equal:( = ) ~f ~init:[ 1; 2; 3 ] ()
  in
  Alcotest.(check bool) "converged" true r.Fixpoint.converged;
  Alcotest.(check (list int)) "empties the list" [] r.Fixpoint.point

let test_detect_cycle () =
  Alcotest.(check (option int))
    "period 2" (Some 2)
    (Fixpoint.detect_cycle ~equal:( = ) [ 1; 2; 1; 2 ]);
  Alcotest.(check (option int))
    "no cycle" None
    (Fixpoint.detect_cycle ~equal:( = ) [ 1; 2; 3; 4 ]);
  Alcotest.(check (option int)) "empty" None (Fixpoint.detect_cycle ~equal:( = ) [])

(* ------------------------------------------------------------------ *)
(* Optimize                                                           *)
(* ------------------------------------------------------------------ *)

let test_golden_section () =
  let r =
    Optimize.golden_section_max ~f:(fun x -> -.((x -. 2.) ** 2.)) ~lo:0.
      ~hi:5. ()
  in
  check_close 1e-6 "argmax" 2. r.Optimize.x;
  check_close 1e-9 "max" 0. r.Optimize.fx

let test_grid_max () =
  let r = Optimize.grid_max ~f:(fun x -> -.Float.abs (x -. 0.5)) ~grid:(Grid.linspace 0. 1. 11) () in
  check_float "argmax on grid" 0.5 r.Optimize.x

let test_grid_max_first_tie () =
  let r = Optimize.grid_max ~f:(fun _ -> 1.) ~grid:[| 1.; 2.; 3. |] () in
  check_float "first maximiser wins ties" 1. r.Optimize.x

let test_refine_grid_max () =
  let f x = -.((x -. 0.137) ** 2.) in
  let r = Optimize.refine_grid_max ~levels:5 ~f ~lo:0. ~hi:1. () in
  check_close 1e-4 "refined argmax" 0.137 r.Optimize.x

let test_refine_grid_max_discontinuous () =
  (* A step objective: refinement still finds the top shelf. *)
  let f x = if x > 0.8 then 2. else if x > 0.3 then 1. else 0. in
  let r = Optimize.refine_grid_max ~f ~lo:0. ~hi:1. () in
  check_float "top shelf value" 2. r.Optimize.fx

let test_refine_grid_max2 () =
  let f x y = -.((x -. 0.3) ** 2.) -. ((y -. 0.7) ** 2.) in
  let r =
    Optimize.refine_grid_max2 ~levels:4 ~f ~lo1:0. ~hi1:1. ~lo2:0. ~hi2:1. ()
  in
  check_close 1e-3 "x" 0.3 r.Optimize.x1;
  check_close 1e-3 "y" 0.7 r.Optimize.x2

let test_nelder_mead_rosenbrock () =
  let f v =
    let x = v.(0) and y = v.(1) in
    (100. *. ((y -. (x *. x)) ** 2.)) +. ((1. -. x) ** 2.)
  in
  let x, value = Optimize.nelder_mead ~max_iter:5000 ~f ~init:[| -1.; 1. |] () in
  Alcotest.(check bool)
    (Printf.sprintf "near optimum (got %g at [%g, %g])" value x.(0) x.(1))
    true (value < 1e-6)

let test_maximize_nelder_mead () =
  (* In 1-D a simplex can come to rest straddling the peak with equal end
     values, so only ask for step-size accuracy on the argmax. *)
  let f v = -.((v.(0) -. 3.) ** 2.) +. 5. in
  let x, value = Optimize.maximize_nelder_mead ~f ~init:[| 0. |] () in
  check_close 0.15 "argmax" 3. x.(0);
  check_close 0.02 "max value" 5. value

let prop_golden_section_quadratics =
  QCheck.Test.make ~name:"golden section finds quadratic maxima" ~count:100
    (QCheck.float_range 0.5 4.5) (fun peak ->
      let f x = -.((x -. peak) ** 2.) in
      let r = Optimize.golden_section_max ~f ~lo:0. ~hi:5. () in
      Float.abs (r.Optimize.x -. peak) < 1e-5)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_mean_variance () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_close 1e-9 "sample variance" (32. /. 7.) (Stats.variance xs)

let test_variance_degenerate () =
  check_float "single sample" 0. (Stats.variance [| 42. |]);
  check_float "empty" 0. (Stats.variance [||])

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "median interpolates" 2.5 (Stats.median xs);
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 4. (Stats.quantile xs 1.);
  check_float "q25" 1.75 (Stats.quantile xs 0.25)

(* Regression for the polint R1 fix: quantile sorts with Float.compare,
   which totally orders nan (first), so quantiles of data containing nan
   are a function of the multiset alone, not of the input order.  The
   old polymorphic-compare sort gave order-dependent answers on nan. *)
let test_quantile_nan_order_independent () =
  let a = [| Float.nan; 3.; 1.; 2. |] in
  let b = [| 3.; 2.; Float.nan; 1. |] in
  let c = [| 1.; Float.nan; 2.; 3. |] in
  (* nan sorts first: sorted = [nan; 1; 2; 3], median = (1 + 2) / 2. *)
  check_float "median of shuffle a" 1.5 (Stats.median a);
  check_float "median of shuffle b" 1.5 (Stats.median b);
  check_float "median of shuffle c" 1.5 (Stats.median c);
  check_float "q1 unaffected by leading nan" 3. (Stats.quantile a 1.);
  check_float "nan-free data unchanged" 2.5 (Stats.median [| 4.; 1.; 3.; 2. |])

let test_summarize () =
  let s = Stats.summarize [| 3.; 1.; 2. |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "min" 1. s.Stats.min;
  check_float "max" 3. s.Stats.max;
  check_float "median" 2. s.Stats.median

let test_pearson () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close 1e-9 "perfect correlation" 1.
    (Stats.pearson xs (Array.map (fun x -> (2. *. x) +. 1.) xs));
  check_close 1e-9 "perfect anticorrelation" (-1.)
    (Stats.pearson xs (Array.map (fun x -> -.x) xs));
  check_float "constant series" 0. (Stats.pearson xs [| 1.; 1.; 1.; 1. |])

let test_weighted_mean () =
  check_float "weighted" 2.75
    (Stats.weighted_mean ~values:[| 2.; 5. |] ~weights:[| 3.; 1. |])

let test_max_downward_gap () =
  check_float "monotone has none" 0. (Stats.max_downward_gap [| 1.; 2.; 3. |]);
  check_float "single drop" 2. (Stats.max_downward_gap [| 1.; 3.; 1.; 4. |]);
  check_float "drop from running max" 4.
    (Stats.max_downward_gap [| 5.; 2.; 1.; 6. |]);
  check_float "short array" 0. (Stats.max_downward_gap [| 1. |])

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantiles lie within [min, max]" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-50.) 50.)) (float_bound_inclusive 1.))
    (fun (l, q) ->
      let xs = Array.of_list l in
      let v = Stats.quantile xs q in
      v >= Stats.min xs -. 1e-9 && v <= Stats.max xs +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Interp                                                             *)
(* ------------------------------------------------------------------ *)

let test_interp_eval () =
  let t = Interp.of_points ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 10.; 0. |] in
  check_float "knot" 10. (Interp.eval t 1.);
  check_float "midpoint" 5. (Interp.eval t 0.5);
  check_float "clamps left" 0. (Interp.eval t (-3.));
  check_float "clamps right" 0. (Interp.eval t 5.)

let test_interp_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Interp.of_points: abscissae not strictly increasing")
    (fun () -> ignore (Interp.of_points ~xs:[| 1.; 1. |] ~ys:[| 0.; 0. |]))

let test_interp_derivative () =
  let t = Interp.of_points ~xs:[| 0.; 2. |] ~ys:[| 0.; 6. |] in
  check_float "slope" 3. (Interp.derivative t 1.)

let test_inverse_monotone () =
  let t = Interp.of_points ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 4.; 8. |] in
  (match Interp.inverse_monotone t 2. with
  | Some x -> check_float "inverse" 0.5 x
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check (option (float 1e-9)))
    "out of range" None
    (Interp.inverse_monotone t 9.)

let test_inverse_monotone_decreasing () =
  let t = Interp.of_points ~xs:[| 0.; 1. |] ~ys:[| 10.; 0. |] in
  match Interp.inverse_monotone t 5. with
  | Some x -> check_float "decreasing inverse" 0.5 x
  | None -> Alcotest.fail "expected Some"

let prop_interp_agrees_at_knots =
  QCheck.Test.make ~name:"interpolant reproduces its knots" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-10.) 10.))
    (fun ys_l ->
      let ys = Array.of_list ys_l in
      let xs = Array.init (Array.length ys) float_of_int in
      let t = Interp.of_points ~xs ~ys in
      Array.for_all2 (fun x y -> Float.abs (Interp.eval t x -. y) < 1e-12) xs ys)

(* ------------------------------------------------------------------ *)
(* Ode                                                                *)
(* ------------------------------------------------------------------ *)

let test_ode_exponential_decay () =
  (* y' = -y, y(0) = 1: y(1) = 1/e.  RK4 at dt = 0.1 is accurate to
     ~1e-6. *)
  let f ~t:_ y = [| -.y.(0) |] in
  let y = Ode.integrate_to ~f ~t0:0. ~t1:1. ~steps:10 [| 1. |] in
  check_close 1e-6 "1/e" (exp (-1.)) y.(0)

let test_ode_harmonic_oscillator () =
  (* (x, v)' = (v, -x): energy x^2 + v^2 is conserved; x(2pi) = x(0). *)
  let f ~t:_ y = [| y.(1); -.y.(0) |] in
  let y =
    Ode.integrate_to ~f ~t0:0. ~t1:(2. *. Float.pi) ~steps:200 [| 1.; 0. |]
  in
  check_close 1e-4 "period closes in x" 1. y.(0);
  check_close 1e-4 "period closes in v" 0. y.(1)

let test_ode_trajectory_shape () =
  let f ~t:_ y = [| 1. +. (0. *. y.(0)) |] in
  let traj = Ode.integrate ~f ~t0:0. ~t1:1. ~steps:4 ~y0:[| 0. |] in
  Alcotest.(check int) "steps + 1 samples" 5 (Array.length traj);
  let t_last, y_last = traj.(4) in
  check_close 1e-12 "final time" 1. t_last;
  check_close 1e-9 "integrates dy = dt" 1. y_last.(0)

let test_ode_post_applied () =
  (* Renormalisation after every step keeps the state on the simplex even
     though the raw dynamics drift off it. *)
  let f ~t:_ y = Array.map (fun _ -> 1.) y in
  let post y =
    let total = Array.fold_left ( +. ) 0. y in
    Array.map (fun v -> v /. total) y
  in
  let y = Ode.integrate_to ~post ~f ~t0:0. ~t1:1. ~steps:7 [| 0.2; 0.8 |] in
  check_close 1e-12 "stays normalised" 1. (y.(0) +. y.(1))

let test_ode_until () =
  let f ~t:_ y = [| -.y.(0) |] in
  let y, converged =
    Ode.integrate_until ~f ~dt:0.1 ~stop:(fun y -> y.(0) < 0.5) [| 1. |]
  in
  Alcotest.(check bool) "converged" true converged;
  Alcotest.(check bool) "crossed threshold" true (y.(0) < 0.5);
  let _, gave_up =
    Ode.integrate_until ~max_steps:3 ~f ~dt:0.1
      ~stop:(fun y -> y.(0) < 0.)
      [| 1. |]
  in
  Alcotest.(check bool) "cap respected" false gave_up

let test_ode_dimension_guard () =
  Alcotest.check_raises "dimension change"
    (Invalid_argument "Ode: derivative changed dimension") (fun () ->
      ignore (Ode.rk4_step ~f:(fun ~t:_ _ -> [| 0. |]) ~t:0. ~dt:0.1 [| 0.; 0. |]))

(* ------------------------------------------------------------------ *)
(* Quadrature                                                         *)
(* ------------------------------------------------------------------ *)

let test_trapezoid_linear_exact () =
  check_close 1e-12 "linear exact" 0.5
    (Quadrature.trapezoid ~f:(fun x -> x) ~lo:0. ~hi:1. ~n:4)

let test_simpson_cubic_exact () =
  check_close 1e-12 "cubic exact" 0.25
    (Quadrature.simpson ~f:(fun x -> x ** 3.) ~lo:0. ~hi:1. ~n:4)

let test_adaptive_simpson_sine () =
  check_close 1e-8 "integral of sin on [0, pi]" 2.
    (Quadrature.adaptive_simpson ~f:sin ~lo:0. ~hi:Float.pi ())

let test_trapezoid_sampled () =
  check_close 1e-12 "sampled triangle" 1.
    (Quadrature.trapezoid_sampled ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 1.; 0. |])

let test_trapezoid_sampled_rejects_decreasing () =
  Alcotest.check_raises "decreasing xs"
    (Invalid_argument "Quadrature.trapezoid_sampled: decreasing abscissae")
    (fun () ->
      ignore
        (Quadrature.trapezoid_sampled ~xs:[| 1.; 0. |] ~ys:[| 0.; 0. |]))

let prop_simpson_beats_trapezoid =
  QCheck.Test.make ~name:"simpson at least as accurate as trapezoid on exp"
    ~count:50 (QCheck.float_range 0.5 3.) (fun hi ->
      let exact = exp hi -. 1. in
      let t = Quadrature.trapezoid ~f:exp ~lo:0. ~hi ~n:16 in
      let s = Quadrature.simpson ~f:exp ~lo:0. ~hi ~n:16 in
      Float.abs (s -. exact) <= Float.abs (t -. exact) +. 1e-12)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "po_num"
    [ ( "roots",
        [ quick "bisect linear" test_bisect_linear;
          quick "bisect cubic" test_bisect_cubic;
          quick "bisect endpoint" test_bisect_endpoint_root;
          quick "bisect no bracket" test_bisect_no_bracket;
          quick "bisect discontinuous" test_bisect_discontinuous;
          quick "brent polynomial" test_brent_polynomial;
          quick "brent matches bisect" test_brent_matches_bisect;
          quick "brent fewer evals" test_brent_fewer_evals;
          quick "secant" test_secant;
          quick "expand bracket" test_expand_bracket;
          quick "expand bracket fails" test_expand_bracket_fails;
          quick "monotone level interior" test_monotone_level_interior;
          quick "monotone level clamps" test_monotone_level_clamps;
          prop prop_monotone_level_solves ] );
      ( "grid",
        [ quick "linspace basic" test_linspace_basic;
          quick "linspace single" test_linspace_single;
          quick "linspace endpoint" test_linspace_exact_endpoint;
          quick "logspace" test_logspace;
          quick "logspace rejects" test_logspace_rejects_nonpositive;
          quick "arange" test_arange;
          quick "midpoints" test_midpoints;
          quick "index of nearest" test_index_of_nearest;
          prop prop_linspace_monotone ] );
      ( "fixpoint",
        [ quick "contraction" test_fixpoint_contraction;
          quick "cosine" test_fixpoint_cosine;
          quick "damping stabilises" test_fixpoint_damping_stabilises;
          quick "vector" test_fixpoint_vec;
          quick "dimension guard" test_fixpoint_vec_dimension_guard;
          quick "until stable" test_iterate_until_stable;
          quick "detect cycle" test_detect_cycle ] );
      ( "optimize",
        [ quick "golden section" test_golden_section;
          quick "grid max" test_grid_max;
          quick "grid max ties" test_grid_max_first_tie;
          quick "refine grid" test_refine_grid_max;
          quick "refine grid discontinuous" test_refine_grid_max_discontinuous;
          quick "refine grid 2d" test_refine_grid_max2;
          quick "nelder-mead rosenbrock" test_nelder_mead_rosenbrock;
          quick "maximize wrapper" test_maximize_nelder_mead;
          prop prop_golden_section_quadratics ] );
      ( "stats",
        [ quick "mean variance" test_mean_variance;
          quick "variance degenerate" test_variance_degenerate;
          quick "quantiles" test_quantiles;
          quick "quantile nan order-independence"
            test_quantile_nan_order_independent;
          quick "summarize" test_summarize;
          quick "pearson" test_pearson;
          quick "weighted mean" test_weighted_mean;
          quick "max downward gap" test_max_downward_gap;
          prop prop_quantile_bounds ] );
      ( "interp",
        [ quick "eval" test_interp_eval;
          quick "rejects unsorted" test_interp_rejects_unsorted;
          quick "derivative" test_interp_derivative;
          quick "inverse monotone" test_inverse_monotone;
          quick "inverse decreasing" test_inverse_monotone_decreasing;
          prop prop_interp_agrees_at_knots ] );
      ( "ode",
        [ quick "exponential decay" test_ode_exponential_decay;
          quick "harmonic oscillator" test_ode_harmonic_oscillator;
          quick "trajectory shape" test_ode_trajectory_shape;
          quick "post applied" test_ode_post_applied;
          quick "integrate until" test_ode_until;
          quick "dimension guard" test_ode_dimension_guard ] );
      ( "quadrature",
        [ quick "trapezoid linear" test_trapezoid_linear_exact;
          quick "simpson cubic" test_simpson_cubic_exact;
          quick "adaptive sine" test_adaptive_simpson_sine;
          quick "sampled" test_trapezoid_sampled;
          quick "sampled rejects" test_trapezoid_sampled_rejects_decreasing;
          prop prop_simpson_beats_trapezoid ] ) ]
