(* Integration tests: every figure experiment generates well-formed
   series at quick parameters, the registry is complete, and the claim
   audits pass. *)

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let params = Po_experiments.Common.quick_params

let check_figure (figure : Po_experiments.Common.figure) =
  Alcotest.(check bool) "has panels" true (figure.Po_experiments.Common.panels <> []);
  List.iter
    (fun (panel_name, series) ->
      if series = [] then Alcotest.failf "panel %s is empty" panel_name;
      List.iter
        (fun s ->
          if Po_report.Series.length s = 0 then
            Alcotest.failf "panel %s has an empty series" panel_name;
          Array.iter
            (fun y ->
              if not (Float.is_finite y) then
                Alcotest.failf "panel %s has a non-finite value" panel_name)
            (Po_report.Series.ys s))
        series)
    figure.Po_experiments.Common.panels

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  Alcotest.(check (list string)) "paper order then extensions"
    [ "fig2"; "fig3"; "fig4"; "fig5"; "fig7"; "fig8"; "fig9"; "fig10";
      "fig11"; "fig12"; "tcp"; "posize"; "welfare"; "invest"; "mm1";
      "pmp"; "red"; "hetero"; "nisp"; "tandem"; "xl" ]
    (Po_experiments.Registry.ids ())

let test_registry_find () =
  Alcotest.(check bool) "find known" true
    (Po_experiments.Registry.find "fig4" <> None);
  Alcotest.(check bool) "missing id" true
    (Po_experiments.Registry.find "fig6" = None)

(* ------------------------------------------------------------------ *)
(* Individual figures                                                 *)
(* ------------------------------------------------------------------ *)

let test_fig2 () =
  let f = Po_experiments.Fig02.generate ~params () in
  check_figure f;
  (* Six beta curves in one panel. *)
  Alcotest.(check int) "six curves" 6
    (List.length (List.assoc "demand" f.Po_experiments.Common.panels))

let test_fig3 () =
  let f = Po_experiments.Fig03.generate ~params () in
  check_figure f;
  Alcotest.(check int) "two panels" 2
    (List.length f.Po_experiments.Common.panels);
  (* Throughput curves end at the archetype caps. *)
  let throughput = List.assoc "throughput" f.Po_experiments.Common.panels in
  let last s =
    let ys = Po_report.Series.ys s in
    ys.(Array.length ys - 1)
  in
  Alcotest.(check (float 1e-3)) "google saturates at 1" 1.
    (last (List.nth throughput 0));
  Alcotest.(check (float 0.05)) "netflix saturates at 10" 10.
    (last (List.nth throughput 1))

let test_fig4 () =
  let f = Po_experiments.Fig04.generate ~params () in
  check_figure f;
  (* The Psi curve starts in the linear regime: Psi(c_1) = c_1 * nu for
     the scarcest capacity. *)
  let psi = List.assoc "Psi" f.Po_experiments.Common.panels in
  let scarce = List.nth psi 0 in
  let xs = Po_report.Series.xs scarce and ys = Po_report.Series.ys scarce in
  Alcotest.(check (float 0.4)) "linear start (nu=20)" (xs.(1) *. 20.) ys.(1)

let test_fig5 () =
  let f = Po_experiments.Fig05.generate ~params () in
  check_figure f;
  Alcotest.(check int) "nine strategy curves" 9
    (List.length (List.assoc "Psi" f.Po_experiments.Common.panels))

let slow_test_fig7 () =
  let f = Po_experiments.Fig07.generate ~params () in
  check_figure f;
  let shares = List.assoc "market_share" f.Po_experiments.Common.panels in
  List.iter
    (fun s ->
      Array.iter
        (fun m ->
          if m < -1e-9 || m > 1. +. 1e-9 then
            Alcotest.failf "market share %g outside [0,1]" m)
        (Po_report.Series.ys s))
    shares

let slow_test_fig8 () = check_figure (Po_experiments.Fig08.generate ~params ())

let test_fig9_fig10_phi_only () =
  let f9 = Po_experiments.Appendix.fig9 ~params () in
  check_figure f9;
  Alcotest.(check (list string)) "only Phi" [ "Phi" ]
    (List.map fst f9.Po_experiments.Common.panels);
  let f10 = Po_experiments.Appendix.fig10 ~params () in
  Alcotest.(check (list string)) "only Phi" [ "Phi" ]
    (List.map fst f10.Po_experiments.Common.panels)

let slow_test_fig11_fig12 () =
  check_figure (Po_experiments.Appendix.fig11 ~params ());
  check_figure (Po_experiments.Appendix.fig12 ~params ())

let slow_test_tcp_fig () = check_figure (Po_experiments.Tcp_fig.generate ~params ())

let slow_test_extension_figs () =
  check_figure (Po_experiments.Mm1_fig.generate ~params ());
  check_figure (Po_experiments.Hetero_fig.generate ~params ())

let slow_test_welfare_fig () =
  let f = Po_experiments.Welfare_fig.generate ~params () in
  check_figure f;
  (* total = consumer + isp + cp pointwise *)
  let panel = List.assoc "decomposition" f.Po_experiments.Common.panels in
  let by label =
    Po_report.Series.ys
      (List.find (fun s -> Po_report.Series.label s = label) panel)
  in
  let consumer = by "consumer" and isp = by "isp" and cp = by "cp"
  and total = by "total" in
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 1e-6)) "components sum"
        (consumer.(i) +. isp.(i) +. cp.(i))
        t)
    total

(* ------------------------------------------------------------------ *)
(* Rendering / CSV round trips                                        *)
(* ------------------------------------------------------------------ *)

let test_render_and_csv () =
  let f = Po_experiments.Fig02.generate ~params () in
  let text = Po_experiments.Common.render ~plots:true f in
  Alcotest.(check bool) "render mentions id" true
    (String.length text > 0
    &&
    let rec find i =
      i + 4 <= String.length text
      && (String.sub text i 4 = "fig2" || find (i + 1))
    in
    find 0);
  let dir = Filename.temp_file "po_fig" "" in
  Sys.remove dir;
  let written = Po_experiments.Common.csv_files ~dir f in
  Alcotest.(check int) "one csv per panel" 1 (List.length written);
  List.iter
    (fun path ->
      Alcotest.(check bool) "file exists" true (Sys.file_exists path))
    written

(* ------------------------------------------------------------------ *)
(* Claim audits                                                       *)
(* ------------------------------------------------------------------ *)

let claim (check : unit -> Po_experiments.Claims.check) () =
  let c = check () in
  if not c.Po_experiments.Claims.passed then
    Alcotest.failf "%s: %s" c.Po_experiments.Claims.claim
      c.Po_experiments.Claims.detail

let () =
  Alcotest.run "po_experiments"
    [ ( "registry",
        [ quick "complete" test_registry_complete;
          quick "find" test_registry_find ] );
      ( "figures",
        [ quick "fig2" test_fig2;
          quick "fig3" test_fig3;
          quick "fig4" test_fig4;
          quick "fig5" test_fig5;
          slow "fig7" slow_test_fig7;
          slow "fig8" slow_test_fig8;
          quick "fig9/fig10" test_fig9_fig10_phi_only;
          slow "fig11/fig12" slow_test_fig11_fig12;
          slow "tcp" slow_test_tcp_fig;
          slow "mm1/hetero" slow_test_extension_figs;
          slow "welfare" slow_test_welfare_fig ] );
      ( "output",
        [ quick "render and csv" test_render_and_csv ] );
      ( "claims",
        [ slow "theorem 4" (claim (fun () -> Po_experiments.Claims.theorem4 ~params ()));
          slow "theorem 5" (claim (fun () -> Po_experiments.Claims.theorem5 ~params ()));
          slow "lemma 4" (claim (fun () -> Po_experiments.Claims.lemma4 ~params ()));
          slow "theorem 6" (claim (fun () -> Po_experiments.Claims.theorem6 ~params ()));
          slow "regime ordering" (claim (fun () -> Po_experiments.Claims.regime_ordering ~params ()));
          slow "tcp vs max-min" (claim (fun () -> Po_experiments.Claims.tcp_maxmin ~params ())) ] ) ]
