(* Tests for the extension modules: Public-Option sizing, welfare
   decomposition, investment incentives, consumer-side pricing
   (subsidies), the M/M/1 ablation, and the RED queue discipline. *)

open Po_core

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f
let check_close tol = Alcotest.(check (float tol))

let ensemble ?(n = 80) seed = Po_workload.Ensemble.paper_ensemble ~n ~seed ()
let saturation = Po_workload.Ensemble.saturation_nu

(* ------------------------------------------------------------------ *)
(* Po_sizing                                                          *)
(* ------------------------------------------------------------------ *)

let slow_test_sizing_small_share_effective () =
  let cps = ensemble ~n:60 7 in
  let nu = 0.85 *. saturation cps in
  let eff =
    Po_sizing.effectiveness ~levels:1 ~points:7 ~nu
      ~po_shares:[| 0.1; 0.3; 0.5 |] cps
  in
  (match eff.Po_sizing.minimum_effective_share with
  | Some share ->
      Alcotest.(check bool)
        (Printf.sprintf "a small share (%.2f) suffices" share)
        true (share <= 0.3)
  | None -> Alcotest.fail "no effective Public Option share found");
  (* Each equilibrium must beat the unregulated baseline. *)
  Array.iter
    (fun (p : Po_sizing.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "PO share %.2f beats unregulated" p.Po_sizing.po_share)
        true
        (p.Po_sizing.phi >= eff.Po_sizing.phi_unregulated -. 1e-6))
    eff.Po_sizing.sweep

let test_sizing_rejects_bad_share () =
  let cps = ensemble 7 in
  Alcotest.check_raises "share out of range"
    (Invalid_argument "Po_sizing.sweep: share outside (0, 1)") (fun () ->
      ignore (Po_sizing.sweep ~nu:10. ~po_shares:[| 1. |] cps))

(* ------------------------------------------------------------------ *)
(* Welfare                                                            *)
(* ------------------------------------------------------------------ *)

let test_welfare_components_sum () =
  let cps = ensemble 11 in
  let o =
    Cp_game.solve ~nu:(0.4 *. saturation cps)
      ~strategy:(Strategy.make ~kappa:0.6 ~c:0.3) cps
  in
  let w = Welfare.of_outcome cps o in
  check_close 1e-9 "total = parts" w.Welfare.total
    (w.Welfare.consumer +. w.Welfare.isp +. w.Welfare.cp)

let test_welfare_neutral_isp_zero () =
  let cps = ensemble 13 in
  let o =
    Cp_game.solve ~nu:(0.4 *. saturation cps)
      ~strategy:Strategy.public_option cps
  in
  let w = Welfare.of_outcome cps o in
  check_close 1e-9 "neutral ISP earns nothing" 0. w.Welfare.isp

let test_welfare_transfer_neutrality () =
  (* Fix the allocation (same partition, same rates): charging c shifts
     welfare from CPs to the ISP but leaves the total unchanged. *)
  let cps = ensemble 17 in
  let nu = 0.4 *. saturation cps in
  let strategy = Strategy.make ~kappa:0.6 ~c:0.3 in
  let o = Cp_game.solve ~nu ~strategy cps in
  let w = Welfare.of_outcome cps o in
  let free =
    Cp_game.outcome_of_partition ~nu
      ~strategy:(Strategy.make ~kappa:0.6 ~c:0.)
      cps o.Cp_game.partition
  in
  let w_free = Welfare.of_outcome cps free in
  check_close 1e-9 "same allocation, same total" w_free.Welfare.total
    w.Welfare.total;
  check_close 1e-9 "transfer equals the revenue"
    (w_free.Welfare.cp -. w.Welfare.cp)
    w.Welfare.isp

let test_welfare_arithmetic () =
  let a = { Welfare.consumer = 1.; isp = 2.; cp = 3.; total = 6. } in
  let b = Welfare.scale 2. a in
  check_close 1e-12 "scale" 12. b.Welfare.total;
  let c = Welfare.add a b in
  check_close 1e-12 "add" 18. c.Welfare.total

let slow_test_welfare_duopoly_weighting () =
  let cps = ensemble ~n:60 19 in
  let nu = 0.4 *. saturation cps in
  let cfg =
    Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3) ()
  in
  let eq = Duopoly.solve cfg cps in
  let w = Welfare.of_duopoly cps eq in
  check_close 1e-6 "consumer component matches population Phi"
    eq.Duopoly.phi w.Welfare.consumer;
  check_close 1e-6 "isp component matches population Psi"
    (eq.Duopoly.psi_i +. eq.Duopoly.psi_j)
    w.Welfare.isp

let slow_test_welfare_regime_table () =
  let cps = ensemble ~n:60 23 in
  let nu = 0.85 *. saturation cps in
  let table = Welfare.regime_table ~levels:1 ~points:5 ~nu cps in
  Alcotest.(check int) "three regimes" 3 (List.length table);
  List.iter
    (fun (_, w) ->
      Alcotest.(check bool) "components non-negative" true
        (w.Welfare.consumer >= 0. && w.Welfare.isp >= 0. && w.Welfare.cp >= 0.))
    table

(* ------------------------------------------------------------------ *)
(* Investment                                                         *)
(* ------------------------------------------------------------------ *)

let slow_test_investment_monopoly_saturation () =
  (* Choi-Kim price effect: the optimal premium price falls with capacity
     and the optimised revenue saturates — the marginal return of
     investment vanishes for the monopolist. *)
  let cps = ensemble ~n:100 29 in
  let sat = saturation cps in
  let curve =
    Investment.monopoly_revenue_curve ~levels:2 ~points:15
      ~nus:[| 0.3 *. sat; 0.6 *. sat; 1.2 *. sat |] cps
  in
  let price i = curve.(i).Investment.optimal_price in
  Alcotest.(check bool)
    (Printf.sprintf "optimal price falls (%.2f -> %.2f)" (price 0) (price 2))
    true
    (price 2 < price 0);
  Alcotest.(check bool) "early expansion pays" true
    (Investment.monopoly_expansion_profitable ~levels:2 ~points:15
       ~nu_lo:(0.3 *. sat) ~nu_hi:(0.6 *. sat) cps);
  Alcotest.(check bool) "late expansion no longer pays" false
    (Investment.monopoly_expansion_profitable ~levels:2 ~points:15
       ~nu_lo:(0.6 *. sat) ~nu_hi:(1.2 *. sat) cps)

let slow_test_investment_duopoly_decline () =
  (* Against a Public Option, ISP I's optimised revenue genuinely declines
     past its peak (the paper's Fig. 7 inversion). *)
  let cps = ensemble ~n:60 29 in
  let sat = saturation cps in
  let curve =
    Investment.duopoly_revenue_curve ~levels:1 ~points:9
      ~nus:[| 0.45 *. sat; 0.9 *. sat |] cps
  in
  Alcotest.(check bool)
    (Printf.sprintf "revenue declines with expansion (%.2f -> %.2f)"
       curve.(0).Investment.psi curve.(1).Investment.psi)
    true
    (curve.(1).Investment.psi < curve.(0).Investment.psi)

let slow_test_investment_competition_share () =
  let cps = ensemble ~n:60 31 in
  let curve =
    Investment.competition_share_curve ~nu:(0.5 *. saturation cps)
      ~gammas:[| 0.25; 0.5; 0.75 |] cps
  in
  Array.iter
    (fun (p : Investment.competition_point) ->
      check_close 0.02
        (Printf.sprintf "share tracks capacity at gamma=%g" p.Investment.gamma)
        p.Investment.gamma p.Investment.market_share)
    curve

(* ------------------------------------------------------------------ *)
(* Consumer-side pricing (Oligopoly ?prices)                          *)
(* ------------------------------------------------------------------ *)

let test_prices_shift_market () =
  (* Two identical neutral ISPs: a positive consumer price on ISP 0 must
     cost it market share; a symmetric price changes nothing. *)
  let cps = ensemble 37 in
  let cfg =
    Oligopoly.homogeneous ~nu:(0.4 *. saturation cps) ~n:2
      ~strategy:Strategy.public_option ()
  in
  let base = Oligopoly.solve cfg cps in
  check_close 1e-3 "symmetric baseline" 0.5 base.Oligopoly.shares.(0);
  let phi_scale = base.Oligopoly.phi_star in
  let taxed =
    Oligopoly.solve ~prices:[| 0.2 *. phi_scale; 0. |] cfg cps
  in
  Alcotest.(check bool)
    (Printf.sprintf "priced ISP loses share (%.3f < 0.5)"
       taxed.Oligopoly.shares.(0))
    true
    (taxed.Oligopoly.shares.(0) < 0.5 -. 0.02);
  let both =
    Oligopoly.solve ~prices:[| 0.1 *. phi_scale; 0.1 *. phi_scale |] cfg cps
  in
  check_close 0.02 "symmetric prices keep the split" 0.5
    both.Oligopoly.shares.(0)

let test_subsidy_attracts_consumers () =
  let cps = ensemble 41 in
  let cfg =
    Oligopoly.homogeneous ~nu:(0.4 *. saturation cps) ~n:2
      ~strategy:Strategy.public_option ()
  in
  let base = Oligopoly.solve cfg cps in
  let subsidised =
    Oligopoly.solve ~prices:[| -0.2 *. base.Oligopoly.phi_star; 0. |] cfg cps
  in
  Alcotest.(check bool)
    (Printf.sprintf "subsidised ISP gains share (%.3f > 0.5)"
       subsidised.Oligopoly.shares.(0))
    true
    (subsidised.Oligopoly.shares.(0) > 0.5 +. 0.02)

let test_prices_length_guard () =
  let cps = ensemble 43 in
  let cfg =
    Oligopoly.homogeneous ~nu:10. ~n:2 ~strategy:Strategy.public_option ()
  in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Oligopoly.solve: prices length mismatch") (fun () ->
      ignore (Oligopoly.solve ~prices:[| 0. |] cfg cps))

(* ------------------------------------------------------------------ *)
(* M/M/1 ablation                                                     *)
(* ------------------------------------------------------------------ *)

let three_cp () = Po_workload.Scenario.three_cp_priced ()

let test_mm1_fixed_point_consistency () =
  let cps = three_cp () in
  let sol = Po_model.Mm1.solve ~nu:3. cps in
  (* lambda = offered load at the fixed-point quality. *)
  let offered =
    Array.to_list cps
    |> List.mapi (fun i (cp : Po_model.Cp.t) ->
           cp.Po_model.Cp.alpha *. sol.Po_model.Mm1.demand.(i)
           *. cp.Po_model.Cp.theta_hat)
    |> List.fold_left ( +. ) 0.
  in
  check_close 1e-6 "fixed point" offered sol.Po_model.Mm1.lambda;
  Alcotest.(check bool) "stable below capacity" true
    (sol.Po_model.Mm1.lambda < 3.);
  Alcotest.(check bool) "no collapse" false sol.Po_model.Mm1.collapse

let test_mm1_monotone_in_capacity () =
  let cps = three_cp () in
  let prev = ref (-1.) in
  List.iter
    (fun nu ->
      let phi =
        Po_model.Mm1.consumer_surplus cps (Po_model.Mm1.solve ~nu cps)
      in
      if phi < !prev -. 1e-9 then
        Alcotest.failf "M/M/1 welfare decreased at nu=%g" nu;
      prev := phi)
    [ 0.5; 1.; 2.; 4.; 8.; 16. ]

let test_mm1_collapse_with_inelastic_demand () =
  (* Fully inelastic users never back off: offered load above capacity
     means open-loop collapse. *)
  let cps =
    [| Po_model.Cp.make ~id:0 ~alpha:1. ~theta_hat:5.
         ~demand:Po_model.Demand.inelastic () |]
  in
  let sol = Po_model.Mm1.solve ~nu:2. cps in
  Alcotest.(check bool) "collapse flagged" true sol.Po_model.Mm1.collapse;
  Alcotest.(check bool) "infinite delay" true
    (Float.equal sol.Po_model.Mm1.delay Float.infinity)

let test_mm1_quality_bounds () =
  let cps = three_cp () in
  List.iter
    (fun nu ->
      let sol = Po_model.Mm1.solve ~nu cps in
      let q = sol.Po_model.Mm1.quality in
      if q < 0. || q > 1. then Alcotest.failf "quality %g outside [0,1]" q)
    [ 0.5; 2.; 10. ]

let test_mm1_validation () =
  Alcotest.check_raises "nu <= 0" (Invalid_argument "Mm1.solve: nu <= 0")
    (fun () -> ignore (Po_model.Mm1.solve ~nu:0. (three_cp ())))

(* ------------------------------------------------------------------ *)
(* RED                                                                *)
(* ------------------------------------------------------------------ *)

let red_policy =
  Po_netsim.Link.Red { min_th = 2.; max_th = 6.; max_p = 0.5; weight = 1. }

let test_red_validation () =
  Alcotest.check_raises "thresholds"
    (Invalid_argument "Link.create: RED thresholds must satisfy 0 < min < max")
    (fun () ->
      ignore
        (Po_netsim.Link.create
           ~policy:
             (Po_netsim.Link.Red
                { min_th = 5.; max_th = 5.; max_p = 0.5; weight = 1. })
           ~capacity:1. ~buffer:10 ()))

let test_red_early_drops () =
  let l =
    Po_netsim.Link.create ~policy:red_policy ~capacity:100. ~buffer:100 ()
  in
  (* Fill past max_th with weight 1 so the EWMA is the instantaneous
     occupancy; then a roll below max_p must early-drop. *)
  for i = 0 to 6 do
    ignore (Po_netsim.Link.offer ~drop_roll:1.0 l ~now:0. ~flow_id:i)
  done;
  (match Po_netsim.Link.offer ~drop_roll:0.0 l ~now:0. ~flow_id:9 with
  | Po_netsim.Link.Dropped -> ()
  | _ -> Alcotest.fail "expected an early drop above max_th");
  Alcotest.(check int) "early drop counted" 1 (Po_netsim.Link.early_drops l)

let test_red_accepts_below_min_th () =
  let l =
    Po_netsim.Link.create ~policy:red_policy ~capacity:100. ~buffer:100 ()
  in
  (match Po_netsim.Link.offer ~drop_roll:0.0 l ~now:0. ~flow_id:0 with
  | Po_netsim.Link.Accepted _ -> ()
  | Po_netsim.Link.Dropped -> Alcotest.fail "empty queue must accept");
  Alcotest.(check int) "no early drops" 0 (Po_netsim.Link.early_drops l)

let test_red_ramp_probabilistic () =
  let l =
    Po_netsim.Link.create ~policy:red_policy ~capacity:100. ~buffer:100 ()
  in
  (* Occupancy 4 = halfway up the ramp: p = 0.25. *)
  for i = 0 to 3 do
    ignore (Po_netsim.Link.offer ~drop_roll:1.0 l ~now:0. ~flow_id:i)
  done;
  (match Po_netsim.Link.offer ~drop_roll:0.2 l ~now:0. ~flow_id:8 with
  | Po_netsim.Link.Dropped -> ()
  | _ -> Alcotest.fail "roll below ramp probability must drop");
  match Po_netsim.Link.offer ~drop_roll:0.9 l ~now:0. ~flow_id:9 with
  | Po_netsim.Link.Accepted _ -> ()
  | Po_netsim.Link.Dropped -> Alcotest.fail "roll above ramp probability must accept"

let slow_test_red_simulation_matches_model () =
  let cps = Po_workload.Scenario.three_cp () in
  let r =
    Po_netsim.Validate.compare
      ~queue_policy:
        (Po_netsim.Link.Red
           { min_th = 15.; max_th = 90.; max_p = 0.1; weight = 0.02 })
      ~nu:2.5 cps
  in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f < 0.3 under RED"
       r.Po_netsim.Validate.max_relative_error)
    true
    (r.Po_netsim.Validate.max_relative_error < 0.3)

let () =
  Alcotest.run "po_extensions"
    [ ( "po_sizing",
        [ slow "small share effective" slow_test_sizing_small_share_effective;
          quick "rejects bad share" test_sizing_rejects_bad_share ] );
      ( "welfare",
        [ quick "components sum" test_welfare_components_sum;
          quick "neutral isp zero" test_welfare_neutral_isp_zero;
          quick "transfer neutrality" test_welfare_transfer_neutrality;
          quick "arithmetic" test_welfare_arithmetic;
          slow "duopoly weighting" slow_test_welfare_duopoly_weighting;
          slow "regime table" slow_test_welfare_regime_table ] );
      ( "investment",
        [ slow "monopoly saturation" slow_test_investment_monopoly_saturation;
          slow "duopoly decline" slow_test_investment_duopoly_decline;
          slow "competition share" slow_test_investment_competition_share ] );
      ( "consumer pricing",
        [ quick "prices shift market" test_prices_shift_market;
          quick "subsidy attracts" test_subsidy_attracts_consumers;
          quick "length guard" test_prices_length_guard ] );
      ( "mm1",
        [ quick "fixed point" test_mm1_fixed_point_consistency;
          quick "monotone in capacity" test_mm1_monotone_in_capacity;
          quick "collapse" test_mm1_collapse_with_inelastic_demand;
          quick "quality bounds" test_mm1_quality_bounds;
          quick "validation" test_mm1_validation ] );
      ( "red",
        [ quick "validation" test_red_validation;
          quick "early drops" test_red_early_drops;
          quick "accepts below min_th" test_red_accepts_below_min_th;
          quick "probabilistic ramp" test_red_ramp_probabilistic;
          slow "simulation matches model" slow_test_red_simulation_matches_model ] ) ]
