(* Tests for the serve subsystem (lib/serve): wire-protocol round-trips
   and strict parsing, the extended params hash, the LRU solve cache,
   line framing (including oversized payloads), engine determinism and
   cache bit-identity, deadline errors, and an end-to-end daemon
   exercise over a real Unix-domain socket — admission control and
   graceful shutdown included. *)

open Po_serve

module Json = Po_obs.Json

let quick name f = Alcotest.test_case name `Quick f

let sc ?(n_cps = 25) ?(seed = 7) ?(nu_frac = 0.85) () =
  { Request.n_cps; seed; nu_frac }

(* ------------------------------------------------------------------ *)
(* Request round-trips                                                *)
(* ------------------------------------------------------------------ *)

let roundtrip t =
  match Request.of_json (Request.to_json t) with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e.Request.message)
  | Ok t' ->
      Alcotest.(check string)
        "round-trip preserves the request"
        (Json.to_string (Request.to_json t))
        (Json.to_string (Request.to_json t'))

let test_request_roundtrips () =
  List.iter roundtrip
    [ { Request.query = Request.Ping; deadline_s = None };
      { Request.query = Request.Stats; deadline_s = Some 1.5 };
      { Request.query = Request.Equilibrium (sc ()); deadline_s = None };
      { Request.query = Request.Surplus (sc ~nu_frac:0.625 ());
        deadline_s = Some 30. };
      { Request.query =
          Request.Regimes
            { sc = sc (); po_share = 0.25; levels = 3; points = 17 };
        deadline_s = None };
      { Request.query =
          Request.Welfare
            { sc = sc ~seed:11 (); po_share = 0.5; levels = 2; points = 7 };
        deadline_s = Some 0.25 };
      { Request.query =
          Request.Fig_point
            { fig = "fig4"; n_cps = 50; seed = 3; sweep_points = 5 };
        deadline_s = None } ]

let test_request_defaults () =
  match Request.of_line {|{"query":"regimes"}|} with
  | Error e -> Alcotest.fail e.Request.message
  | Ok { Request.query = Request.Regimes { sc; po_share; levels; points };
         deadline_s } ->
      Alcotest.(check int) "default n_cps" Request.default_scenario.Request.n_cps
        sc.Request.n_cps;
      Alcotest.(check int) "default seed" Request.default_scenario.Request.seed
        sc.Request.seed;
      Alcotest.(check (float 0.)) "default nu_frac" 0.85 sc.Request.nu_frac;
      Alcotest.(check (float 0.)) "default po_share" Request.default_po_share
        po_share;
      Alcotest.(check int) "default levels" Request.default_levels levels;
      Alcotest.(check int) "default points" Request.default_points points;
      Alcotest.(check bool) "no deadline" true (deadline_s = None)
  | Ok _ -> Alcotest.fail "parsed as the wrong query"

let check_invalid name line =
  match Request.of_line line with
  | Ok _ -> Alcotest.fail (name ^ ": accepted an invalid request")
  | Error e ->
      Alcotest.(check string) (name ^ " error code") "invalid_request"
        e.Request.code

let test_request_strictness () =
  check_invalid "malformed json" "not json at all";
  check_invalid "non-object" {|[1,2]|};
  check_invalid "missing query" {|{"params":{}}|};
  check_invalid "unknown query" {|{"query":"frobnicate"}|};
  check_invalid "unknown envelope key" {|{"query":"ping","extra":1}|};
  check_invalid "unknown param key"
    {|{"query":"regimes","params":{"n_cps":10,"bogus":1}}|};
  check_invalid "param on paramless query" {|{"query":"ping","params":{"n_cps":5}}|};
  check_invalid "non-integer n_cps"
    {|{"query":"equilibrium","params":{"n_cps":2.5}}|};
  check_invalid "n_cps out of range"
    {|{"query":"equilibrium","params":{"n_cps":0}}|};
  check_invalid "po_share out of range"
    {|{"query":"regimes","params":{"po_share":1.5}}|};
  check_invalid "levels out of range"
    {|{"query":"regimes","params":{"levels":6}}|};
  check_invalid "negative deadline" {|{"query":"ping","deadline_s":-1}|};
  (* Integral floats beyond 2^53 are not exact integers: int_of_float
     is unspecified there, so they must be typed rejections rather
     than silently becoming an arbitrary seed. *)
  check_invalid "seed beyond the float-exact range"
    {|{"query":"equilibrium","params":{"seed":1e300}}|};
  check_invalid "seed just past 2^53"
    {|{"query":"equilibrium","params":{"seed":9007199254740994}}|};
  check_invalid "fig without id" {|{"query":"fig_point"}|}

let test_response_roundtrip () =
  let ok = Ok (Json.Obj [ ("x", Json.Number 1.5) ]) in
  let err =
    Error
      (Request.error
         ~context:[ ("query", "regimes"); ("chunk", "3") ]
         "deadline_exceeded" "out of time")
  in
  List.iter
    (fun r ->
      match Request.response_of_line (Request.response_line r) with
      | Error msg -> Alcotest.fail msg
      | Ok r' ->
          Alcotest.(check string) "response round-trips"
            (Request.response_line r) (Request.response_line r'))
    [ ok; err ];
  match Request.response_of_line (Request.response_line err) with
  | Ok (Error e) ->
      Alcotest.(check (list (pair string string)))
        "context frames travel verbatim"
        [ ("query", "regimes"); ("chunk", "3") ]
        e.Request.context
  | _ -> Alcotest.fail "error response did not parse as an error"

(* ------------------------------------------------------------------ *)
(* Extended params hash                                               *)
(* ------------------------------------------------------------------ *)

let test_params_hash_wrapper () =
  Alcotest.(check string)
    "three-field arity is a thin wrapper over the kv form"
    (Po_obs.Manifest.params_hash ~n_cps:1000 ~seed:42 ~sweep_points:33)
    (Po_obs.Manifest.params_hash_kv
       [ ("n_cps", "1000"); ("seed", "42"); ("sweep_points", "33") ])

let test_params_hash_kv_order_independent () =
  Alcotest.(check string)
    "kv hash is independent of argument order"
    (Po_obs.Manifest.params_hash_kv [ ("a", "1"); ("b", "2"); ("kappa", "3") ])
    (Po_obs.Manifest.params_hash_kv [ ("kappa", "3"); ("a", "1"); ("b", "2") ])

let test_params_hash_kv_extends () =
  let base = [ ("n_cps", "10"); ("seed", "1") ] in
  Alcotest.(check bool)
    "an extra field (regime id) changes the digest" false
    (Po_obs.Manifest.params_hash_kv base
    = Po_obs.Manifest.params_hash_kv (("regime", "po") :: base))

let test_params_hash_kv_rejects () =
  let raises kv =
    match Po_obs.Manifest.params_hash_kv kv with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "duplicate keys raise" true
    (raises [ ("a", "1"); ("a", "2") ]);
  Alcotest.(check bool) "separator in key raises" true
    (raises [ ("a;b", "1") ]);
  Alcotest.(check bool) "equals in key raises" true (raises [ ("a=b", "1") ])

let test_params_canonical () =
  Alcotest.(check string) "sorted k=v; rendering, independent of order"
    "a=1;b=2;kappa=3"
    (Po_obs.Manifest.params_canonical
       [ ("kappa", "3"); ("a", "1"); ("b", "2") ])

let test_cache_key_contract () =
  let t q = { Request.query = q; deadline_s = None } in
  let regimes_q =
    Request.Regimes { sc = sc (); po_share = 0.5; levels = 2; points = 9 }
  in
  let welfare_q =
    Request.Welfare { sc = sc (); po_share = 0.5; levels = 2; points = 9 }
  in
  let regimes_key = Request.cache_key (t regimes_q) in
  (* The key must be the canonical parameter string itself, not a
     digest of it: a digest collision would silently replay the wrong
     scenario's cached bytes. *)
  (match regimes_key with
  | Some k ->
      Alcotest.(check bool)
        "key is the canonical k=v string, not a digest" true
        (String.contains k '=' && String.contains k ';')
  | None -> Alcotest.fail "regimes query must be cacheable");
  Alcotest.(check bool) "regimes and welfare never alias" false
    (regimes_key = Request.cache_key (t welfare_q));
  Alcotest.(check bool) "deadline excluded from the key" true
    (regimes_key
    = Request.cache_key { Request.query = regimes_q; deadline_s = Some 5. });
  Alcotest.(check bool) "ping is uncacheable" true
    (Request.cache_key (t Request.Ping) = None);
  Alcotest.(check bool) "stats is uncacheable" true
    (Request.cache_key (t Request.Stats) = None);
  Alcotest.(check bool) "scenario fields feed the key" false
    (Request.cache_key (t (Request.Equilibrium (sc ())))
    = Request.cache_key (t (Request.Equilibrium (sc ~seed:8 ()))))

(* ------------------------------------------------------------------ *)
(* LRU cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  Alcotest.(check (option string)) "find a" (Some "1") (Cache.find c "a");
  (* "b" is now least recently used; adding "c" evicts it. *)
  Cache.add c "c" "3";
  Alcotest.(check int) "size capped" 2 (Cache.size c);
  Alcotest.(check (option string)) "lru evicted" None (Cache.find c "b");
  Alcotest.(check (option string)) "recency kept a" (Some "1")
    (Cache.find c "a");
  Alcotest.(check (option string)) "new entry present" (Some "3")
    (Cache.find c "c")

let test_cache_replace_and_disable () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "k" "v1";
  Cache.add c "k" "v2";
  Alcotest.(check int) "replace keeps one entry" 1 (Cache.size c);
  Alcotest.(check (option string)) "latest value wins" (Some "v2")
    (Cache.find c "k");
  let off = Cache.create ~capacity:0 in
  Cache.add off "k" "v";
  Alcotest.(check (option string)) "capacity 0 disables" None
    (Cache.find off "k");
  Alcotest.(check int) "disabled cache stays empty" 0 (Cache.size off)

(* ------------------------------------------------------------------ *)
(* Line framing                                                       *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error (_, _, _) -> ());
      try Unix.close b with Unix.Unix_error (_, _, _) -> ())
    (fun () -> f a b)

let test_lineio_framing () =
  with_socketpair (fun a b ->
      let r = Lineio.reader b in
      (* Two pipelined lines in one write, one with CRLF framing. *)
      Lineio.write_line a "first";
      ignore (Unix.write_substring a "second\r\n" 0 8);
      (match Lineio.read_line r with
      | Lineio.Line l -> Alcotest.(check string) "first line" "first" l
      | _ -> Alcotest.fail "expected first line");
      (match Lineio.read_line r with
      | Lineio.Line l -> Alcotest.(check string) "crlf stripped" "second" l
      | _ -> Alcotest.fail "expected second line");
      Unix.close a;
      match Lineio.read_line r with
      | Lineio.Eof -> ()
      | _ -> Alcotest.fail "expected eof after close")

let test_lineio_oversized () =
  with_socketpair (fun a b ->
      let r = Lineio.reader b in
      let big = String.make 200 'x' in
      Lineio.write_line a big;
      match Lineio.read_line ~max_bytes:64 r with
      | Lineio.Oversized -> ()
      | Lineio.Line _ -> Alcotest.fail "oversized line was accepted"
      | Lineio.Eof -> Alcotest.fail "unexpected eof")

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let regimes_query =
  Request.Regimes { sc = sc (); po_share = 0.5; levels = 2; points = 9 }

let test_engine_deterministic_and_bit_identical () =
  let r1 = Engine.eval regimes_query in
  let r2 = Engine.eval regimes_query in
  Alcotest.(check string) "two evals render identical bytes"
    (Request.response_line r1) (Request.response_line r2);
  (* Field-level bit identity, not just textual: compare the IEEE bits
     of the consumer-surplus numbers behind both responses. *)
  let phi resp =
    match resp with
    | Error _ -> Alcotest.fail "regimes eval failed"
    | Ok json -> (
        match Json.member "regimes" json with
        | Some (Json.List (first :: _)) -> (
            match Json.member "phi" first with
            | Some (Json.Number v) -> v
            | _ -> Alcotest.fail "missing phi")
        | _ -> Alcotest.fail "missing regimes list")
  in
  Alcotest.(check int64) "phi bits identical"
    (Int64.bits_of_float (phi r1))
    (Int64.bits_of_float (phi r2))

let test_engine_matches_core () =
  (* The engine's regime comparison is the same solve as calling the
     core directly — the CLI/daemon value-identity guarantee. *)
  let out =
    Engine.regimes ~sc:(sc ()) ~po_share:0.5 ~levels:2 ~points:9 ()
  in
  let cps =
    Po_workload.Ensemble.paper_ensemble ~n:25 ~seed:7 ()
  in
  let nu = 0.85 *. Po_workload.Ensemble.saturation_nu cps in
  let direct =
    Po_core.Public_option.compare_regimes ~po_share:0.5 ~levels:2 ~points:9
      ~nu cps
  in
  List.iter2
    (fun (a : Po_core.Public_option.regime_result)
         (b : Po_core.Public_option.regime_result) ->
      Alcotest.(check int64) ("phi bits: " ^ a.Po_core.Public_option.label)
        (Int64.bits_of_float a.Po_core.Public_option.phi)
        (Int64.bits_of_float b.Po_core.Public_option.phi))
    out.Engine.results direct

let test_engine_deadline_error () =
  let budget = Po_sup.Budget.start ~deadline:1e-9 () in
  match Engine.eval ~budget regimes_query with
  | Ok _ -> Alcotest.fail "expired budget still produced a result"
  | Error e ->
      Alcotest.(check string) "typed code" "deadline_exceeded" e.Request.code;
      Alcotest.(check (option string)) "query context frame attached"
        (Some "regimes")
        (List.assoc_opt "query" e.Request.context)

let test_engine_unknown_figure () =
  match
    Engine.eval
      (Request.Fig_point { fig = "nope"; n_cps = 5; seed = 1; sweep_points = 2 })
  with
  | Ok _ -> Alcotest.fail "unknown figure accepted"
  | Error e ->
      Alcotest.(check string) "typed code" "invalid_scenario" e.Request.code

(* ------------------------------------------------------------------ *)
(* End-to-end daemon                                                  *)
(* ------------------------------------------------------------------ *)

let tmp_name stem =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d" stem (Unix.getpid ()))

let send_recv fd reader line =
  Lineio.write_line fd line;
  match Lineio.read_line reader with
  | Lineio.Line l -> l
  | Lineio.Eof -> Alcotest.fail "daemon closed the connection"
  | Lineio.Oversized -> Alcotest.fail "oversized response"

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Lineio.reader fd)

let counter_of_stats line name =
  match Request.response_of_line line with
  | Ok (Ok result) -> (
      match Json.member "counters" result with
      | Some counters -> (
          match Json.member name counters with
          | Some (Json.Number v) -> int_of_float v
          | _ -> Alcotest.fail ("stats missing counter " ^ name))
      | None -> Alcotest.fail "stats missing counters")
  | _ -> Alcotest.fail "stats query failed"

let test_server_end_to_end () =
  let socket_path = tmp_name "po_serve_sock" in
  let snapshot_path = tmp_name "po_serve_snap" in
  let server =
    Server.start
      { Server.default_config with
        Server.socket_path; domains = 2; cache_capacity = 16;
        snapshot_path = Some snapshot_path }
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let fd, reader = connect socket_path in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          (* Liveness. *)
          let pong = send_recv fd reader {|{"query":"ping"}|} in
          Alcotest.(check bool) "pong" true
            (match Request.response_of_line pong with
            | Ok (Ok j) -> Json.member "pong" j = Some (Json.Bool true)
            | _ -> false);
          (* A solve, its cache hit, and the one-shot engine answer must
             be three renderings of the same bytes. *)
          let q = {|{"query":"regimes","params":{"n_cps":25,"seed":7}}|} in
          let cold = send_recv fd reader q in
          let hot = send_recv fd reader q in
          Alcotest.(check string) "cache hit byte-identical" cold hot;
          Alcotest.(check string) "daemon matches one-shot engine" cold
            (Request.response_line (Engine.eval regimes_query));
          (* The hit was served from the cache, observably. *)
          let stats = send_recv fd reader {|{"query":"stats"}|} in
          Alcotest.(check bool) "cache_hits incremented" true
            (counter_of_stats stats "serve.cache_hits" >= 1);
          (* Malformed input answers a typed error on the same
             connection, which stays usable. *)
          let bad = send_recv fd reader "{oops" in
          Alcotest.(check bool) "typed invalid_request" true
            (match Request.response_of_line bad with
            | Ok (Error e) -> e.Request.code = "invalid_request"
            | _ -> false);
          let pong2 = send_recv fd reader {|{"query":"ping"}|} in
          Alcotest.(check bool) "connection survives a bad request" true
            (match Request.response_of_line pong2 with
            | Ok (Ok _) -> true
            | _ -> false)));
  (* Graceful shutdown: socket gone, metrics snapshot exported. *)
  Alcotest.(check bool) "socket removed on stop" false
    (Sys.file_exists socket_path);
  Alcotest.(check bool) "metrics snapshot exported" true
    (Sys.file_exists snapshot_path);
  (match Json.of_string (In_channel.with_open_text snapshot_path In_channel.input_all) with
  | Error msg -> Alcotest.fail ("snapshot unreadable: " ^ msg)
  | Ok j ->
      Alcotest.(check bool) "po-serve-metrics-v1 schema" true
        (Json.member "schema" j = Some (Json.String "po-serve-metrics-v1"));
      Alcotest.(check bool) "snapshot carries a manifest" true
        (Json.member "manifest" j <> None));
  Sys.remove snapshot_path

let test_server_oversized_request () =
  let socket_path = tmp_name "po_serve_big" in
  let server =
    Server.start
      { Server.default_config with
        Server.socket_path; domains = 1; max_request_bytes = 128 }
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let fd, reader = connect socket_path in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          Lineio.write_line fd (String.make 4096 'x');
          (match Lineio.read_line reader with
          | Lineio.Line l ->
              Alcotest.(check bool) "typed invalid_request for oversize" true
                (match Request.response_of_line l with
                | Ok (Error e) -> e.Request.code = "invalid_request"
                | _ -> false)
          | _ -> Alcotest.fail "no response to oversized request");
          (* Framing is lost, so the daemon closes afterwards. *)
          match Lineio.read_line reader with
          | Lineio.Eof -> ()
          | _ -> Alcotest.fail "connection not closed after oversize"))

let test_server_overload_sheds () =
  let socket_path = tmp_name "po_serve_full" in
  let server =
    Server.start
      { Server.default_config with
        Server.socket_path; domains = 1; queue_capacity = 1; batch_max = 1;
        hold_s = 0.3 }
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      (* First request parks the dispatcher in its hold; the queue
         (capacity 1) then fills, and the rest must shed with a typed
         overloaded response — not hang, not drop. *)
      let n = 5 in
      let replies = Array.make n "" in
      let worker i () =
        let fd, reader = connect socket_path in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
          (fun () ->
            replies.(i) <-
              send_recv fd reader
                (Printf.sprintf
                   {|{"query":"equilibrium","params":{"n_cps":%d}}|}
                   (10 + i)))
      in
      let first = Thread.create (worker 0) () in
      Thread.delay 0.1;
      let rest =
        Array.init (n - 1) (fun i -> Thread.create (worker (i + 1)) ())
      in
      Thread.join first;
      Array.iter Thread.join rest;
      let overloaded =
        Array.to_list replies
        |> List.filter (fun l ->
               match Request.response_of_line l with
               | Ok (Error e) -> e.Request.code = "overloaded"
               | _ -> false)
      in
      let answered =
        Array.to_list replies
        |> List.filter (fun l ->
               match Request.response_of_line l with
               | Ok (Ok _) -> true
               | _ -> false)
      in
      Alcotest.(check bool) "load is shed with typed responses" true
        (List.length overloaded >= 1);
      Alcotest.(check bool) "admitted requests still answered" true
        (List.length answered >= 1);
      Alcotest.(check int) "every request got exactly one response" n
        (List.length overloaded + List.length answered))

let test_server_deadline_over_wire () =
  let socket_path = tmp_name "po_serve_dl" in
  let server =
    Server.start
      { Server.default_config with Server.socket_path; domains = 1 }
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let fd, reader = connect socket_path in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          let l =
            send_recv fd reader
              {|{"query":"regimes","params":{"n_cps":200},"deadline_s":0.000001}|}
          in
          match Request.response_of_line l with
          | Ok (Error e) ->
              Alcotest.(check string) "typed deadline error"
                "deadline_exceeded" e.Request.code;
              Alcotest.(check (option string)) "context names the query"
                (Some "regimes")
                (List.assoc_opt "query" e.Request.context)
          | _ -> Alcotest.fail "expired deadline did not error"))

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ quick "request round-trips" test_request_roundtrips;
          quick "defaults mirror the CLI" test_request_defaults;
          quick "strict parsing rejects" test_request_strictness;
          quick "response round-trips" test_response_roundtrip ] );
      ( "params-hash",
        [ quick "wrapper equivalence" test_params_hash_wrapper;
          quick "order independence" test_params_hash_kv_order_independent;
          quick "extension changes digest" test_params_hash_kv_extends;
          quick "invalid keys rejected" test_params_hash_kv_rejects;
          quick "canonical rendering" test_params_canonical;
          quick "cache-key contract" test_cache_key_contract ] );
      ( "cache",
        [ quick "lru eviction" test_cache_lru_eviction;
          quick "replace and disable" test_cache_replace_and_disable ] );
      ( "lineio",
        [ quick "framing" test_lineio_framing;
          quick "oversized" test_lineio_oversized ] );
      ( "engine",
        [ quick "bit-identical evals" test_engine_deterministic_and_bit_identical;
          quick "matches the core solve" test_engine_matches_core;
          quick "deadline error" test_engine_deadline_error;
          quick "unknown figure" test_engine_unknown_figure ] );
      ( "daemon",
        [ quick "end to end" test_server_end_to_end;
          quick "oversized request" test_server_oversized_request;
          quick "overload sheds" test_server_overload_sheds;
          quick "deadline over the wire" test_server_deadline_over_wire ] ) ]
