(** Sampling from standard distributions on top of {!Splitmix}.

    The paper's ensemble draws CP attributes from uniform laws
    ([alpha, theta_hat, v ~ U[0,1]], [beta ~ U[0,10]], [phi ~ U[0,beta]] or
    the appendix's nested [U[0, U[0,10]]]); the network simulator uses
    exponential inter-arrivals and Pareto-ish heavy tails for sensitivity
    studies. *)

val uniform : Splitmix.t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)]. *)

val exponential : Splitmix.t -> rate:float -> float
(** Exponential with [rate > 0] (mean [1/rate]). *)

val normal : Splitmix.t -> mu:float -> sigma:float -> float
(** Gaussian via Box-Muller; [sigma >= 0]. *)

val lognormal : Splitmix.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with the given log-space parameters. *)

val pareto : Splitmix.t -> shape:float -> scale:float -> float
(** Pareto(I) with [shape > 0] and minimum value [scale > 0]. *)

val zipf : Splitmix.t -> n:int -> s:float -> int
(** Zipf rank in [{1, ..., n}] with exponent [s >= 0], by inversion of the
    generalized-harmonic CDF.  Cost is O(n) per draw (fine at our sizes). *)

val categorical : Splitmix.t -> weights:float array -> int
(** Index drawn proportionally to non-negative [weights] with positive
    sum. *)

val bernoulli : Splitmix.t -> p:float -> bool
(** [true] with probability [p] clamped to [[0,1]]. *)

val shuffle : Splitmix.t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val nested_uniform : Splitmix.t -> hi:float -> float
(** The appendix's two-level draw [U[0, U[0, hi]]]. *)
