let uniform rng ~lo ~hi = Splitmix.uniform rng ~lo ~hi

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate <= 0";
  (* 1 - u in (0, 1] avoids log 0. *)
  -.log (1. -. Splitmix.float rng) /. rate

let normal rng ~mu ~sigma =
  if sigma < 0. then invalid_arg "Dist.normal: sigma < 0";
  let u1 = 1. -. Splitmix.float rng in
  let u2 = Splitmix.float rng in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Dist.pareto: parameters must be > 0";
  scale /. ((1. -. Splitmix.float rng) ** (1. /. shape))

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n <= 0";
  if s < 0. then invalid_arg "Dist.zipf: s < 0";
  let h = ref 0. in
  for k = 1 to n do
    h := !h +. (1. /. (float_of_int k ** s))
  done;
  let target = Splitmix.float rng *. !h in
  let acc = ref 0. and rank = ref n in
  (try
     for k = 1 to n do
       acc := !acc +. (1. /. (float_of_int k ** s));
       if !acc >= target then begin
         rank := k;
         raise Exit
       end
     done
   with Exit -> ());
  !rank

let categorical rng ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0. then invalid_arg "Dist.categorical: negative weight";
        acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Dist.categorical: zero total weight";
  let target = Splitmix.float rng *. total in
  let acc = ref 0. and choice = ref (n - 1) in
  (try
     for i = 0 to n - 1 do
       acc := !acc +. weights.(i);
       if !acc >= target then begin
         choice := i;
         raise Exit
       end
     done
   with Exit -> ());
  !choice

let bernoulli rng ~p =
  let p = Float.min 1. (Float.max 0. p) in
  Splitmix.float rng < p

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

let nested_uniform rng ~hi =
  let cap = Splitmix.uniform rng ~lo:0. ~hi in
  Splitmix.uniform rng ~lo:0. ~hi:cap
