lib/prng/dist.mli: Splitmix
