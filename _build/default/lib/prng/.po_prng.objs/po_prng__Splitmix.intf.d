lib/prng/splitmix.mli:
