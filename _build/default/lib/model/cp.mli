(** Content providers (Sec. II).

    A CP [i] is described by its popularity [alpha_i in (0, 1]] (fraction
    of consumers that ever access it), its unconstrained per-user
    throughput [theta_hat_i > 0], a demand function, its per-unit-traffic
    revenue [v_i >= 0] (advertising, sales, subscriptions) and the per-unit
    utility [phi_i >= 0] its traffic yields to consumers. *)

type t = private {
  id : int;
  label : string;
  alpha : float;
  theta_hat : float;
  demand : Demand.t;
  v : float;
  phi : float;
}

val make :
  ?label:string -> ?v:float -> ?phi:float -> id:int -> alpha:float ->
  theta_hat:float -> demand:Demand.t -> unit -> t
(** Validates ranges: [alpha in (0, 1]], [theta_hat > 0], [v, phi >= 0].
    [v] and [phi] default to [0.]. *)

val with_v : t -> float -> t
val with_phi : t -> float -> t

val demand_at : t -> float -> float
(** [demand_at cp theta] is [d_i theta] with [theta] capped at
    [theta_hat]. *)

val rho : t -> theta:float -> float
(** Per-capita throughput over the CP's own user base (Eq. 5):
    [d_i(theta) * theta] with [theta] capped at [theta_hat]. *)

val lambda_per_capita : t -> theta:float -> float
(** Contribution to system per-capita throughput: [alpha_i * rho]. *)

val lambda_hat_per_capita : t -> float
(** Unconstrained per-capita throughput [alpha_i * theta_hat_i]
    (i.e. [lambda_hat_i / M]). *)

val google : int -> t
(** Sec. II-D archetype: extensively accessed, throughput-insensitive
    [(alpha, theta_hat, beta) = (1, 1, 0.1)]. *)

val netflix : int -> t
(** Archetype [(0.3, 10, 3)]: high-rate, throughput-sensitive video. *)

val skype : int -> t
(** Archetype [(0.5, 3, 5)]: medium-rate, extremely sensitive real-time. *)

val pp : Format.formatter -> t -> unit
