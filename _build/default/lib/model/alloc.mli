(** Rate-allocation mechanisms and the paper's axioms (Sec. II-B).

    A mechanism maps a per-capita system [(nu, cps)] to a rate equilibrium.
    The paper requires (Assumption 2) that mechanisms satisfy:

    - {b Axiom 1} (demand feasibility): [theta_i <= theta_hat_i];
    - {b Axiom 2} (work conservation):
      [lambda_N = min (mu, sum lambda_hat_i)];
    - {b Axiom 3} (monotonicity): more capacity never lowers any CP's
      achievable throughput;
    - {b Axiom 4} (independence of scale): only [nu = mu / M] matters.

    This module defines the mechanism abstraction and numerical auditors
    for each axiom, used both in tests and to vet custom mechanisms. *)

type t = {
  name : string;
  solve : nu:float -> Cp.t array -> Equilibrium.solution;
}

val solve_absolute : t -> m:float -> mu:float -> Cp.t array -> Equilibrium.solution
(** Absolute-system entry point: [solve ~nu:(mu /. m)].  [m > 0]. *)

val check_axiom1 : ?tol:float -> t -> nu:float -> Cp.t array -> (unit, string) result
(** Audits [theta_i <= theta_hat_i] at one capacity point. *)

val check_axiom2 : ?tol:float -> t -> nu:float -> Cp.t array -> (unit, string) result
(** Audits work conservation at one capacity point.  [tol] is relative to
    the constraint level. *)

val check_axiom3 :
  ?tol:float -> t -> nus:float array -> Cp.t array -> (unit, string) result
(** Audits componentwise monotonicity of achievable throughput across an
    increasing array of capacities. *)

val check_axiom4 :
  ?tol:float -> t -> m:float -> mu:float -> scales:float array ->
  Cp.t array -> (unit, string) result
(** Audits scale independence: the profile of [(scale*m, scale*mu)] matches
    that of [(m, mu)] for every scale factor. *)

val check_all :
  ?tol:float -> t -> nus:float array -> Cp.t array -> (unit, string) result
(** Runs axioms 1-3 over the capacity grid and axiom 4 at its median,
    stopping at the first violation. *)
