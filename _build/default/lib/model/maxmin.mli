(** Max-min fair allocation (Sec. II-D.2).

    The AIMD dynamics of TCP yield, to first approximation, a max-min fair
    split of the bottleneck among flows [Chiu & Jain]; the paper adopts
    max-min as its working mechanism.  Max-min is the [alpha -> infinity]
    member of the alpha-proportional-fair family and, with homogeneous
    flows, has the common-cap form [theta_i = min (theta_hat_i, cap)]. *)

val mechanism : Alloc.t
(** The max-min fair mechanism; satisfies Axioms 1-4 under Assumption 1. *)

val solve : nu:float -> Cp.t array -> Equilibrium.solution
(** Direct entry point, identical to [mechanism.solve]. *)

val cap : nu:float -> Cp.t array -> float
(** The equilibrium water level ([infinity] when the system is
    unconstrained); this is the throughput estimate a throughput-taking
    entrant uses under a competitive equilibrium (Assumption 3). *)

val rho_of_entrant : nu:float -> Cp.t array -> entrant:Cp.t -> float
(** Ex-post per-capita throughput [rho_i (nu, S + {i})] (Eq. 5) obtained by
    actually adding [entrant] to the system and re-solving; used by the
    Nash-deviation checks of Definition 2. *)
