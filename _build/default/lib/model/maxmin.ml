let solve ~nu cps = Equilibrium.solve ~nu cps

let mechanism = { Alloc.name = "max-min"; solve }

let cap ~nu cps = (solve ~nu cps).Equilibrium.cap

let rho_of_entrant ~nu cps ~entrant =
  let extended = Array.append cps [| entrant |] in
  let sol = solve ~nu extended in
  sol.Equilibrium.rho.(Array.length cps)
