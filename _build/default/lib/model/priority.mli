(** Strict-priority allocation.

    A centralised alternative to fair sharing (Sec. II-B mentions CBR/VBR
    flow control decided at the link): CPs are served in a fixed priority
    order, each receiving its unconstrained throughput while capacity
    remains; the first CP that does not fit is throttled to exactly fill
    the link and everyone behind it gets nothing.  Satisfies Axioms 1-4
    but is maximally unfair — a useful contrast mechanism for the
    regulatory ablations. *)

val mechanism : ?order:int array -> unit -> Alloc.t
(** [order] lists CP indices from highest to lowest priority; it must be a
    permutation of [0 .. n-1] of the CP array handed to [solve] (checked at
    solve time).  Default is index order. *)

val solve : ?order:int array -> nu:float -> Cp.t array -> Equilibrium.solution
(** Note: the [cap] field of the returned solution is the throughput of the
    marginal (partially served) CP, or [infinity] when everyone is fully
    served. *)
