(** M/M/1 congestion abstraction — an ablation, not part of the paper's
    model.

    Prior economic analyses of network neutrality (e.g. Choi-Kim, which
    the paper cites) abstract congestion with the classical M/M/1 delay
    formula [D = 1 / (mu - lambda)] instead of modelling closed-loop
    protocols; the paper argues (Sec. V) that faithfully modelling
    TCP-like allocation matters.  This module implements the M/M/1
    alternative so the claim can be tested: active users transmit at
    their full unconstrained rate (open loop), suffer the M/M/1 delay of
    the aggregate, and abandon according to their demand function applied
    to a delay-quality index

    {v q(D) = 1 / (1 + D / delay_ref)  in (0, 1] v}

    The coupled fixed point [lambda = sum_i alpha_i d_i(q(D(lambda)))
    theta_hat_i] has a decreasing right side in [lambda], hence a unique
    solution, found by bisection. *)

type solution = {
  lambda : float;  (** per-capita carried load at the fixed point *)
  delay : float;  (** [1 / (nu - lambda)]; [infinity] under collapse *)
  quality : float;  (** the delay-quality index [q] at the fixed point *)
  demand : float array;  (** per-CP active fraction [d_i(q)] *)
  collapse : bool;
  (** demand exceeds capacity even at infinite delay (possible only with
      demand families that keep a captive audience at zero quality) *)
}

val solve :
  ?delay_ref:float -> ?tol:float -> nu:float -> Cp.t array -> solution
(** [delay_ref] (default 1.0, in units of [1/throughput]) sets the delay
    at which quality halves.  [nu > 0]. *)

val consumer_surplus : Cp.t array -> solution -> float
(** Delay-discounted welfare proxy
    [sum_i phi_i alpha_i d_i theta_hat_i * q] — the analogue of Eq. (2)
    in the open-loop abstraction. *)

val phi_curve :
  ?delay_ref:float -> nus:float array -> Cp.t array -> float array
(** Consumer surplus across a capacity sweep (the ablation curve compared
    against the max-min model's {!Surplus.consumer_at}). *)
