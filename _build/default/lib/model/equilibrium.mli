(** The system rate equilibrium (Theorem 1).

    The interplay between a rate-allocation mechanism and the demand
    functions pins down a unique throughput profile.  For the whole family
    of mechanisms used in this repository — max-min fair and weighted
    alpha-fair with homogeneous flows — the allocation has the
    {e common-cap} form

    {v theta_i = min (theta_hat_i, w_i * cap) v}

    for a scalar [cap >= 0] and per-CP weights [w_i > 0]: every flow is
    throttled at the same (weighted) water level, and flows whose
    unconstrained throughput lies below the level are unconstrained.  The
    equilibrium cap solves the work-conservation equation (Axiom 2)

    {v sum_i alpha_i d_i(theta_i(cap)) theta_i(cap) = min (nu, sum_i alpha_i theta_hat_i) v}

    whose left side is continuous and non-decreasing in [cap] under
    Assumption 1, so bisection converges to the unique solution.

    All quantities are per-capita ([nu = mu / M]); Lemma 1 (independence of
    scale) is then true by construction, and absolute systems [(M, mu)] are
    handled by dividing. *)

type solution = {
  theta : float array;  (** achievable throughput per CP *)
  demand : float array;  (** [d_i theta_i] *)
  rho : float array;  (** per-user per-capita throughput [d_i theta_i * theta_i] (Eq. 5) *)
  per_capita_rate : float;  (** [lambda_N / M = sum_i alpha_i rho_i] *)
  congested : bool;  (** whether [nu < sum_i alpha_i theta_hat_i] *)
  cap : float;  (** the water level; [infinity] when unconstrained *)
}

val empty : solution
(** Equilibrium of a system with no CPs. *)

val aggregate_at_cap :
  ?weights:float array -> cap:float -> Cp.t array -> float
(** Per-capita aggregate throughput [sum_i alpha_i d_i(theta_i) theta_i]
    when every CP is throttled at [min (theta_hat_i, w_i * cap)]. *)

val solve :
  ?weights:float array -> ?tol:float -> nu:float -> Cp.t array -> solution
(** Compute the rate equilibrium of the per-capita system [(nu, cps)].
    [weights] defaults to all ones (max-min fairness); entries must be
    [> 0].  [nu >= 0].  [tol] (default [1e-12]) is the absolute tolerance
    on the water level. *)

val solve_absolute :
  ?weights:float array -> ?tol:float -> m:float -> mu:float -> Cp.t array ->
  solution
(** Equilibrium of an absolute system of [m > 0] consumers and capacity
    [mu >= 0]; equals [solve ~nu:(mu /. m)] by Axiom 4. *)

val theta_for : solution -> int -> float
(** Bounds-checked accessor. *)
