(** User demand as a function of achieved throughput (Sec. II-A).

    A demand function gives the fraction of a CP's user base that still
    requests content when each user achieves throughput [theta] out of the
    unconstrained [theta_hat].  We represent demand in normalised form
    [d(omega)] with [omega = theta / theta_hat in [0, 1]]; Assumption 1 of
    the paper requires [d] non-negative, continuous, non-decreasing and
    [d 1. = 1.].

    The paper's working family (Eq. 3) is the exponential-sensitivity law

    {v d(omega) = exp (-beta (1/omega - 1)) v}

    where larger [beta] models more throughput-sensitive content
    (Netflix-like) and smaller [beta] less sensitive content (a search
    query).  Additional families are provided for robustness studies, plus
    a deliberately discontinuous step family that violates Assumption 1
    (useful as a negative control for the checker and for stress-testing
    solvers). *)

type t

val name : t -> string

val beta : t -> float option
(** The sensitivity parameter when the family is {!exponential} (Eq. 3);
    [None] for every other family.  Lets serialisers recognise the
    paper's demand model. *)

val eval : t -> float -> float
(** [eval d omega] evaluates the demand at normalised throughput [omega].
    The argument is clamped to [[0, 1]]; [eval d 0. = 0.] unless the family
    explicitly admits demand at zero throughput. *)

val eval_throughput : t -> theta_hat:float -> float -> float
(** [eval_throughput d ~theta_hat theta] is [eval d (theta /. theta_hat)].
    Requires [theta_hat > 0.]. *)

val exponential : beta:float -> t
(** Eq. (3): [exp (-beta (1/omega - 1))]; requires [beta >= 0.].
    [beta = 0.] degenerates to fully inelastic demand. *)

val inelastic : t
(** [d omega = 1] for all [omega > 0]: users never give up. *)

val linear : t
(** [d omega = omega]: demand proportional to delivered quality. *)

val power : gamma:float -> t
(** [d omega = omega ** gamma], [gamma >= 0.]. *)

val affine_floor : floor:float -> t
(** [d omega = floor + (1 - floor) * omega] for [omega > 0], keeping a
    residual captive audience; [floor in [0, 1]]. *)

val step : threshold:float -> t
(** Hard quality cutoff: 1 above [threshold], 0 below.  Discontinuous —
    violates Assumption 1; provided as a negative control. *)

val of_fun : name:string -> (float -> float) -> t
(** Custom family; the function receives a clamped [omega in [0, 1]]. *)

val check_assumption1 : ?samples:int -> t -> (unit, string) result
(** Numerically audits Assumption 1 on a grid of [samples] points
    (default 400): non-negativity, monotonicity, [d 1. = 1.], and
    approximate continuity (no jump larger than a grid-scaled bound).
    Returns a human-readable violation on failure. *)
