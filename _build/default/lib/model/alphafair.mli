(** Weighted alpha-proportional fair allocation [Mo & Walrand 2000].

    A flow with weight [w] maximising [w * U_alpha(theta)] against a common
    shadow price [p] receives [theta = min (theta_hat, (w / p)^(1/alpha))],
    i.e. a common-cap allocation with effective weight [w^(1/alpha)].
    [alpha = 1] is proportional fairness, [alpha -> infinity] max-min.
    With unit weights every finite [alpha] coincides with max-min for
    homogeneous flows; weights model RTT or implementation asymmetries
    between CPs and are how the family becomes observably distinct. *)

val effective_weights : alpha:float -> float array -> float array
(** [w_i^(1/alpha)]; [alpha > 0.] (pass [infinity] for max-min). *)

val mechanism : ?weights:float array -> alpha:float -> unit -> Alloc.t
(** Weighted alpha-fair mechanism.  [weights] must be positive and, when
    supplied, are positionally matched to the CP array given to [solve];
    a length mismatch at solve time raises.  Default weights are all 1. *)

val solve :
  ?weights:float array -> alpha:float -> nu:float -> Cp.t array ->
  Equilibrium.solution
