lib/model/mm1.ml: Array Cp Demand Float Po_num
