lib/model/priority.mli: Alloc Cp Equilibrium
