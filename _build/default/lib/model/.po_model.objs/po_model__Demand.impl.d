lib/model/demand.ml: Array Float Printf
