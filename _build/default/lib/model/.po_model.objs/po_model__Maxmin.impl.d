lib/model/maxmin.ml: Alloc Array Equilibrium
