lib/model/equilibrium.ml: Array Cp Float Po_num Seq
