lib/model/mm1.mli: Cp
