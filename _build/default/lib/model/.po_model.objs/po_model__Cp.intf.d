lib/model/cp.mli: Demand Format
