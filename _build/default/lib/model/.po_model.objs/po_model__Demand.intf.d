lib/model/demand.mli:
