lib/model/alloc.mli: Cp Equilibrium
