lib/model/alloc.ml: Array Cp Equilibrium Float Printf
