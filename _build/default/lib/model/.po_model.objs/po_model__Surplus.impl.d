lib/model/surplus.ml: Alloc Array Cp Equilibrium Float Maxmin
