lib/model/equilibrium.mli: Cp
