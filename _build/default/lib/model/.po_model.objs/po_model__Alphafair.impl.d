lib/model/alphafair.ml: Alloc Array Equilibrium Float Printf
