lib/model/cp.ml: Demand Float Format Printf
