lib/model/maxmin.mli: Alloc Cp Equilibrium
