lib/model/priority.ml: Alloc Array Cp Equilibrium Float Po_num
