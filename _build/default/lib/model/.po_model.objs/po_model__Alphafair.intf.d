lib/model/alphafair.mli: Alloc Cp Equilibrium
