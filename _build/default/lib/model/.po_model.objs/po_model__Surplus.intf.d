lib/model/surplus.mli: Alloc Cp Equilibrium
