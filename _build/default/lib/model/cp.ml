type t = {
  id : int;
  label : string;
  alpha : float;
  theta_hat : float;
  demand : Demand.t;
  v : float;
  phi : float;
}

let make ?label ?(v = 0.) ?(phi = 0.) ~id ~alpha ~theta_hat ~demand () =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Cp.make: alpha outside (0, 1]";
  if theta_hat <= 0. then invalid_arg "Cp.make: theta_hat <= 0";
  if v < 0. then invalid_arg "Cp.make: v < 0";
  if phi < 0. then invalid_arg "Cp.make: phi < 0";
  let label =
    match label with Some l -> l | None -> Printf.sprintf "cp-%d" id
  in
  { id; label; alpha; theta_hat; demand; v; phi }

let with_v t v =
  if v < 0. then invalid_arg "Cp.with_v: v < 0";
  { t with v }

let with_phi t phi =
  if phi < 0. then invalid_arg "Cp.with_phi: phi < 0";
  { t with phi }

let cap_theta t theta = Float.min (Float.max theta 0.) t.theta_hat

let demand_at t theta =
  Demand.eval_throughput t.demand ~theta_hat:t.theta_hat (cap_theta t theta)

let rho t ~theta =
  let theta = cap_theta t theta in
  demand_at t theta *. theta

let lambda_per_capita t ~theta = t.alpha *. rho t ~theta
let lambda_hat_per_capita t = t.alpha *. t.theta_hat

let google id =
  make ~label:"google" ~id ~alpha:1. ~theta_hat:1.
    ~demand:(Demand.exponential ~beta:0.1) ()

let netflix id =
  make ~label:"netflix" ~id ~alpha:0.3 ~theta_hat:10.
    ~demand:(Demand.exponential ~beta:3.) ()

let skype id =
  make ~label:"skype" ~id ~alpha:0.5 ~theta_hat:3.
    ~demand:(Demand.exponential ~beta:5.) ()

let pp fmt t =
  Format.fprintf fmt
    "@[<h>%s#%d(alpha=%g theta_hat=%g demand=%s v=%g phi=%g)@]" t.label t.id
    t.alpha t.theta_hat (Demand.name t.demand) t.v t.phi
