(** Minimal CSV output for the figure series (RFC 4180-style quoting). *)

val escape_cell : string -> string
(** Quote a cell when it contains a comma, quote or newline. *)

val to_string : headers:string array -> rows:string array array -> string

val of_series : x_header:string -> Series.t list -> string
(** Same column layout as {!Table.of_series}, full float precision. *)

val write_file : path:string -> string -> unit
(** Write content to [path], creating parent directories as needed (one
    level deep). *)
