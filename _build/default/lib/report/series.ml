type t = {
  label : string;
  xs : float array;
  ys : float array;
}

let make ~label ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Series.make: length mismatch";
  { label; xs = Array.copy xs; ys = Array.copy ys }

let of_fn ~label ~xs f = make ~label ~xs ~ys:(Array.map f xs)

let length t = Array.length t.xs
let label t = t.label
let xs t = Array.copy t.xs
let ys t = Array.copy t.ys
let map_ys t ~f = { t with ys = Array.map f t.ys }
let relabel t label = { t with label }

let y_at t x =
  let n = Array.length t.xs in
  if n = 0 then invalid_arg "Series.y_at: empty series";
  if n = 1 || x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    let i = ref 0 in
    while t.xs.(!i + 1) < x do
      incr i
    done;
    let x0 = t.xs.(!i) and x1 = t.xs.(!i + 1) in
    if x1 <= x0 then invalid_arg "Series.y_at: xs not strictly increasing";
    let w = (x -. x0) /. (x1 -. x0) in
    ((1. -. w) *. t.ys.(!i)) +. (w *. t.ys.(!i + 1))
  end

let argmax t =
  let n = Array.length t.xs in
  if n = 0 then invalid_arg "Series.argmax: empty series";
  let best = ref 0 in
  for i = 1 to n - 1 do
    if t.ys.(i) > t.ys.(!best) then best := i
  done;
  (t.xs.(!best), t.ys.(!best))
