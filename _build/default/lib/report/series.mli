(** Labelled data series — the common currency between the experiment
    generators, the CSV writers, the ASCII plots and the benches. *)

type t = private {
  label : string;
  xs : float array;
  ys : float array;
}

val make : label:string -> xs:float array -> ys:float array -> t
(** Arrays must have equal length. *)

val of_fn : label:string -> xs:float array -> (float -> float) -> t
val length : t -> int
val label : t -> string
val xs : t -> float array
val ys : t -> float array
val map_ys : t -> f:(float -> float) -> t
val relabel : t -> string -> t

val y_at : t -> float -> float
(** Linear interpolation of the series at an x query (clamped); requires
    strictly increasing [xs]. *)

val argmax : t -> float * float
(** [(x, y)] of the maximal ordinate (first on ties); series must be
    non-empty. *)
