lib/report/asciiplot.mli: Series
