lib/report/asciiplot.ml: Array Buffer Float List Printf Series String
