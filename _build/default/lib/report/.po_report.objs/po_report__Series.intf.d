lib/report/series.mli:
