lib/report/csv.mli: Series
