lib/report/csv.ml: Array Buffer Filename Fun List Printf Series String Sys
