lib/report/series.ml: Array
