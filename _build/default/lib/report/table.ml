type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = Right) ~headers ~rows () =
  let cols = Array.length headers in
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Table.render: ragged row")
    rows;
  let width j =
    Array.fold_left
      (fun acc row -> max acc (String.length row.(j)))
      (String.length headers.(j))
      rows
  in
  let widths = Array.init cols width in
  let line cells =
    String.concat "  "
      (Array.to_list (Array.mapi (fun j cell -> pad align widths.(j) cell) cells))
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_floats ?(precision = 5) ~headers ~rows () =
  let fmt x = Printf.sprintf "%.*g" precision x in
  render ~headers ~rows:(Array.map (Array.map fmt) rows) ()

let of_series ?(precision = 5) ~x_header series =
  match series with
  | [] -> invalid_arg "Table.of_series: no series"
  | first :: _ ->
      let n = Series.length first in
      List.iter
        (fun s ->
          if Series.length s <> n then
            invalid_arg "Table.of_series: series length mismatch")
        series;
      let headers =
        Array.of_list (x_header :: List.map Series.label series)
      in
      let xs = Series.xs first in
      let columns = List.map Series.ys series in
      let rows =
        Array.init n (fun i ->
            Array.of_list (xs.(i) :: List.map (fun ys -> ys.(i)) columns))
      in
      render_floats ~precision ~headers ~rows ()
