(** Terminal line plots — a quick visual check of the reproduced figures
    without leaving the shell. *)

val render :
  ?width:int -> ?height:int -> ?title:string -> Series.t list -> string
(** Scatter the series onto a character grid (each series gets a marker
    from [*+o#@x%&]; later series overwrite earlier ones on collisions).
    Axis ranges cover all series; a legend and the y-range annotate the
    plot.  Width/height default to 72x20 (grid interior). *)
