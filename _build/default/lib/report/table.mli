(** Plain-text tables for harness output. *)

type align = Left | Right

val render :
  ?align:align -> headers:string array -> rows:string array array -> unit ->
  string
(** Render a table with a header rule; every row must have the header
    width.  Numeric-looking output usually reads best [Right]-aligned
    (the default). *)

val render_floats :
  ?precision:int -> headers:string array -> rows:float array array -> unit ->
  string
(** Convenience wrapper formatting every cell with [%.*g]
    (default precision 5). *)

val of_series :
  ?precision:int -> x_header:string -> Series.t list -> string
(** Tabulate several series sharing the same abscissae: one [x] column and
    one column per series label.  Raises if the series disagree on [xs]
    length. *)
