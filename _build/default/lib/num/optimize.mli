(** Derivative-free optimisation.

    The ISP strategy space is the compact square [(kappa, c) in [0,1]^2]
    and the objectives (market share, revenue, consumer surplus) are
    piecewise-continuous with jumps at CP re-equilibration points, so the
    primary tools are exhaustive grid search with local refinement; a
    golden-section routine and a Nelder-Mead simplex are provided for the
    smooth regions. *)

type point1 = { x : float; fx : float }
type point2 = { x1 : float; x2 : float; f12 : float }

val golden_section_max :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> point1
(** Golden-section search for a maximum of a unimodal function on
    [[lo, hi]]. *)

val grid_max :
  f:(float -> float) -> grid:float array -> unit -> point1
(** Exhaustive maximisation over an explicit grid (first maximiser wins
    ties).  The grid must be non-empty. *)

val grid_max2 :
  f:(float -> float -> float) -> grid1:float array -> grid2:float array ->
  unit -> point2
(** Exhaustive maximisation over a Cartesian product of grids. *)

val refine_grid_max :
  ?levels:int -> ?points:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> point1
(** Multilevel grid refinement: scan [points] samples of [[lo, hi]], then
    recurse on the bracket around the best sample, [levels] times.  Robust
    to jump discontinuities; resolution improves geometrically. *)

val refine_grid_max2 :
  ?levels:int -> ?points:int -> f:(float -> float -> float) ->
  lo1:float -> hi1:float -> lo2:float -> hi2:float -> unit -> point2
(** Two-dimensional multilevel grid refinement over a rectangle. *)

val nelder_mead :
  ?tol:float -> ?max_iter:int -> f:(float array -> float) ->
  init:float array -> ?step:float -> unit -> float array * float
(** Nelder-Mead simplex minimisation from [init] with initial simplex edge
    [step] (default [0.1]).  Returns the best vertex and its value. *)

val maximize_nelder_mead :
  ?tol:float -> ?max_iter:int -> f:(float array -> float) ->
  init:float array -> ?step:float -> unit -> float array * float
(** {!nelder_mead} on [-. f]; returns the maximiser and the (positive)
    maximum. *)
