(** Explicit ODE integration (classical Runge-Kutta).

    Used for the continuous-time form of the consumer-migration dynamics
    (replicator equations) and available to any experiment that needs a
    smooth trajectory rather than the discrete-map iterations of
    {!Fixpoint}. *)

val rk4_step :
  f:(t:float -> float array -> float array) -> t:float -> dt:float ->
  float array -> float array
(** One classical fourth-order Runge-Kutta step for [y' = f t y].  The
    derivative must preserve the state dimension (checked). *)

val integrate :
  f:(t:float -> float array -> float array) -> t0:float -> t1:float ->
  steps:int -> y0:float array -> (float * float array) array
(** Fixed-step RK4 trajectory from [t0] to [t1] ([steps >= 1] intervals);
    returns the [steps + 1] sample points including both endpoints. *)

val integrate_to :
  ?post:(float array -> float array) ->
  f:(t:float -> float array -> float array) -> t0:float -> t1:float ->
  steps:int -> float array -> float array
(** Endpoint only.  [post] (default identity) is applied after every step
    — e.g. a renormalisation keeping the state on the simplex, which is
    how the replicator dynamics guard against drift. *)

val integrate_until :
  ?post:(float array -> float array) -> ?max_steps:int ->
  f:(t:float -> float array -> float array) -> dt:float ->
  stop:(float array -> bool) -> float array -> float array * bool
(** Step until [stop] holds (returns [(state, true)]) or [max_steps]
    (default 10000) elapse ([(state, false)]). *)
