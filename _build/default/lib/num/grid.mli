(** One-dimensional sampling grids for parameter sweeps. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] returns [n] evenly spaced points from [a] to [b]
    inclusive.  [n >= 2] unless [n = 1], in which case [[|a|]]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] returns [n] logarithmically spaced points from [a] to
    [b] inclusive; requires [a > 0.] and [b > 0.]. *)

val arange : float -> float -> float -> float array
(** [arange start stop step] returns [start, start+step, ...] up to but not
    including [stop] (within a half-step tolerance).  [step <> 0.]. *)

val midpoints : float array -> float array
(** Midpoints of consecutive entries; length is [n-1]. *)

val index_of_nearest : float array -> float -> int
(** Index of the grid point closest to the query (ties go to the lower
    index).  The array must be non-empty. *)
