let check_dim y dy =
  if Array.length dy <> Array.length y then
    invalid_arg "Ode: derivative changed dimension"

let axpy a x y = Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let rk4_step ~f ~t ~dt y =
  let k1 = f ~t y in
  check_dim y k1;
  let k2 = f ~t:(t +. (dt /. 2.)) (axpy (dt /. 2.) k1 y) in
  check_dim y k2;
  let k3 = f ~t:(t +. (dt /. 2.)) (axpy (dt /. 2.) k2 y) in
  check_dim y k3;
  let k4 = f ~t:(t +. dt) (axpy dt k3 y) in
  check_dim y k4;
  Array.mapi
    (fun i yi ->
      yi +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

let integrate ~f ~t0 ~t1 ~steps ~y0 =
  if steps < 1 then invalid_arg "Ode.integrate: steps < 1";
  let dt = (t1 -. t0) /. float_of_int steps in
  let trajectory = Array.make (steps + 1) (t0, Array.copy y0) in
  let y = ref (Array.copy y0) in
  for k = 1 to steps do
    let t = t0 +. (float_of_int (k - 1) *. dt) in
    y := rk4_step ~f ~t ~dt !y;
    trajectory.(k) <- (t +. dt, Array.copy !y)
  done;
  trajectory

let integrate_to ?(post = Fun.id) ~f ~t0 ~t1 ~steps y0 =
  if steps < 1 then invalid_arg "Ode.integrate_to: steps < 1";
  let dt = (t1 -. t0) /. float_of_int steps in
  let y = ref (Array.copy y0) in
  for k = 0 to steps - 1 do
    let t = t0 +. (float_of_int k *. dt) in
    y := post (rk4_step ~f ~t ~dt !y)
  done;
  !y

let integrate_until ?(post = Fun.id) ?(max_steps = 10000) ~f ~dt ~stop y0 =
  if dt <= 0. then invalid_arg "Ode.integrate_until: dt <= 0";
  let rec loop y t k =
    if stop y then (y, true)
    else if k >= max_steps then (y, false)
    else loop (post (rk4_step ~f ~t ~dt y)) (t +. dt) (k + 1)
  in
  loop (Array.copy y0) 0. 0
