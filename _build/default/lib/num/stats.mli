(** Descriptive statistics over float arrays. *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** sample standard deviation (n-1 denominator; 0 if n < 2) *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
(** Arithmetic mean; [nan] on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] if fewer than two samples. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [[0, 1]], linear interpolation between order
    statistics.  Raises [Invalid_argument] on empty input or [q] outside
    [[0,1]]. *)

val median : float array -> float
val min : float array -> float
val max : float array -> float

val summarize : float array -> summary
(** All of the above in one pass (plus a sort for the median). *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; arrays must have equal length [>= 2].
    Returns [0.] when either variance vanishes. *)

val weighted_mean : values:float array -> weights:float array -> float
(** Weighted mean; weights must be non-negative with positive sum. *)

val max_downward_gap : float array -> float
(** [max_downward_gap ys] is [sup { ys.(i) - ys.(j) : i < j }] clamped at
    0 — the largest drop when scanning left to right.  This is the empirical
    version of the discontinuity metric of Eq. (9) on a sampled curve. *)
