let trapezoid ~f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Quadrature.trapezoid: n < 1";
  let h = (hi -. lo) /. float_of_int n in
  let sum = ref (0.5 *. (f lo +. f hi)) in
  for i = 1 to n - 1 do
    sum := !sum +. f (lo +. (float_of_int i *. h))
  done;
  !sum *. h

let simpson ~f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Quadrature.simpson: n < 1";
  let n = if n mod 2 = 1 then n + 1 else n in
  let h = (hi -. lo) /. float_of_int n in
  let sum = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. h) in
    sum := !sum +. ((if i mod 2 = 1 then 4. else 2.) *. f x)
  done;
  !sum *. h /. 3.

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 30) ~f ~lo ~hi () =
  let simpson_panel a b fa fm fb = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_panel a m fa flm fm in
    let right = simpson_panel m b fm frm fb in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a m fa flm fm left (tol /. 2.) (depth - 1)
      +. go m b fm frm fb right (tol /. 2.) (depth - 1)
  in
  let fa = f lo and fb = f hi in
  let m = 0.5 *. (lo +. hi) in
  let fm = f m in
  let whole = simpson_panel lo hi fa fm fb in
  go lo hi fa fm fb whole tol max_depth

let trapezoid_sampled ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Quadrature.trapezoid_sampled: length mismatch";
  let acc = ref 0. in
  for i = 1 to n - 1 do
    let dx = xs.(i) -. xs.(i - 1) in
    if dx < 0. then
      invalid_arg "Quadrature.trapezoid_sampled: decreasing abscissae";
    acc := !acc +. (0.5 *. dx *. (ys.(i) +. ys.(i - 1)))
  done;
  !acc
