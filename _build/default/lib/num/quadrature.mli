(** Numerical integration.

    Used by the welfare analyses to integrate surplus densities over
    parameter distributions and to compute areas under sampled curves
    (e.g. aggregate surplus across a capacity sweep). *)

val trapezoid : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite trapezoid rule with [n >= 1] panels. *)

val simpson : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to the next even panel
    count. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** Adaptive Simpson quadrature with interval halving until the local error
    estimate is below [tol] (default [1e-10]) or [max_depth] (default 30)
    is reached. *)

val trapezoid_sampled : xs:float array -> ys:float array -> float
(** Trapezoid rule over an already-sampled curve; [xs] must be
    non-decreasing and the arrays of equal length. *)
