(** Piecewise interpolation over sampled curves.

    Used to invert sampled monotone curves (e.g. consumer surplus as a
    function of market share) and to resample figure series onto common
    grids. *)

type t
(** An interpolant over strictly increasing abscissae. *)

val of_points : xs:float array -> ys:float array -> t
(** Build a linear interpolant.  [xs] must be strictly increasing and the
    arrays of equal length [>= 1]; raises [Invalid_argument] otherwise. *)

val eval : t -> float -> float
(** Piecewise-linear evaluation; clamps outside the abscissa range. *)

val eval_array : t -> float array -> float array

val derivative : t -> float -> float
(** Slope of the segment containing the query (one-sided at knots; [0.] for
    a single-point interpolant or outside the range). *)

val inverse_monotone : t -> float -> float option
(** [inverse_monotone t y] solves [eval t x = y] assuming the ordinates are
    monotone (either direction); returns [None] when [y] lies outside their
    range. *)

val xs : t -> float array
val ys : t -> float array
