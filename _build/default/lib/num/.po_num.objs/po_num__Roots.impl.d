lib/num/roots.ml: Float Printf
