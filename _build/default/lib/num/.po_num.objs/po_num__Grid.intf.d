lib/num/grid.mli:
