lib/num/stats.mli:
