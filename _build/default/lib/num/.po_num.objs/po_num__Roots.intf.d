lib/num/roots.mli:
