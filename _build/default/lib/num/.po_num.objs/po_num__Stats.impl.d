lib/num/stats.ml: Array Float Stdlib
