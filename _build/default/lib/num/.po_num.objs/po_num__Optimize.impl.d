lib/num/optimize.ml: Array Float Grid
