lib/num/interp.ml: Array Float Stdlib
