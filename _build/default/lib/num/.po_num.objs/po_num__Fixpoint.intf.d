lib/num/fixpoint.mli:
