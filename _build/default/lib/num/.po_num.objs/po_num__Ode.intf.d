lib/num/ode.mli:
