lib/num/fixpoint.ml: Array Float
