lib/num/ode.ml: Array Fun
