lib/num/grid.ml: Array Float
