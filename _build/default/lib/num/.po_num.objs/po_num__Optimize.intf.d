lib/num/optimize.mli:
