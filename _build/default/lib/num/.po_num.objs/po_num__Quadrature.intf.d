lib/num/quadrature.mli:
