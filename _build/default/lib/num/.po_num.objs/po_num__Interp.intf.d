lib/num/interp.mli:
