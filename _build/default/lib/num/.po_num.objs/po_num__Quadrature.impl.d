lib/num/quadrature.ml: Array Float
