type 'a outcome = {
  point : 'a;
  residual : float;
  iterations : int;
  converged : bool;
}

let iterate ?(tol = 1e-10) ?(max_iter = 1000) ?(damping = 1.) ~f ~init () =
  if damping <= 0. || damping > 1. then
    invalid_arg "Fixpoint.iterate: damping must be in (0, 1]";
  let rec loop x n =
    let fx = f x in
    let x' = ((1. -. damping) *. x) +. (damping *. fx) in
    let residual = Float.abs (x' -. x) in
    if residual <= tol then
      { point = x'; residual; iterations = n + 1; converged = true }
    else if n + 1 >= max_iter then
      { point = x'; residual; iterations = n + 1; converged = false }
    else loop x' (n + 1)
  in
  loop init 0

let sup_dist a b =
  let d = ref 0. in
  Array.iteri (fun i ai -> d := Float.max !d (Float.abs (ai -. b.(i)))) a;
  !d

let iterate_vec ?(tol = 1e-10) ?(max_iter = 1000) ?(damping = 1.) ~f ~init () =
  if damping <= 0. || damping > 1. then
    invalid_arg "Fixpoint.iterate_vec: damping must be in (0, 1]";
  let blend x fx =
    Array.mapi (fun i xi -> ((1. -. damping) *. xi) +. (damping *. fx.(i))) x
  in
  let rec loop x n =
    let fx = f x in
    if Array.length fx <> Array.length x then
      invalid_arg "Fixpoint.iterate_vec: map changed dimension";
    let x' = blend x fx in
    let residual = sup_dist x' x in
    if residual <= tol then
      { point = x'; residual; iterations = n + 1; converged = true }
    else if n + 1 >= max_iter then
      { point = x'; residual; iterations = n + 1; converged = false }
    else loop x' (n + 1)
  in
  loop init 0

let iterate_until_stable ?(max_iter = 1000) ~equal ~f ~init () =
  let rec loop x n =
    let x' = f x in
    if equal x x' then
      { point = x'; residual = 0.; iterations = n + 1; converged = true }
    else if n + 1 >= max_iter then
      { point = x'; residual = 1.; iterations = n + 1; converged = false }
    else loop x' (n + 1)
  in
  loop init 0

let detect_cycle ?(max_len = 8) ~equal history =
  match history with
  | [] -> None
  | latest :: rest ->
      let rec scan k = function
        | [] -> None
        | x :: tl ->
            if k > max_len then None
            else if equal x latest then Some k
            else scan (k + 1) tl
      in
      scan 1 rest
