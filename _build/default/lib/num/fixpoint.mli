(** Damped fixed-point iteration for scalar and vector maps.

    Used for the best-response dynamics of the CP game and for the
    consumer-migration dynamics of the multi-ISP game, where the underlying
    maps are monotone but not contractive; damping avoids limit cycles. *)

type 'a outcome = {
  point : 'a;  (** the final iterate *)
  residual : float;  (** distance between the last two iterates *)
  iterations : int;
  converged : bool;
}

val iterate :
  ?tol:float -> ?max_iter:int -> ?damping:float ->
  f:(float -> float) -> init:float -> unit -> float outcome
(** [iterate ~f ~init ()] iterates [x <- (1-damping) * x + damping * f x]
    until successive iterates differ by at most [tol] (default [1e-10]).
    [damping] defaults to [1.] (undamped). *)

val iterate_vec :
  ?tol:float -> ?max_iter:int -> ?damping:float ->
  f:(float array -> float array) -> init:float array -> unit ->
  float array outcome
(** Vector version; the residual is the sup-norm of the step.  The map must
    preserve the vector length. *)

val iterate_until_stable :
  ?max_iter:int -> equal:('a -> 'a -> bool) -> f:('a -> 'a) -> init:'a ->
  unit -> 'a outcome
(** Discrete fixed point: iterate [f] until [equal x (f x)] or the cap is
    reached.  The residual is [0.] when converged, [1.] otherwise.  Used
    for set-valued best-response dynamics (class partitions). *)

val detect_cycle : ?max_len:int -> equal:('a -> 'a -> bool) -> 'a list -> int option
(** [detect_cycle ~equal history] inspects a most-recent-first history of
    iterates and returns the length of a terminal cycle if one of length
    [<= max_len] (default 8) is present: the most recent element recurs at
    that distance. *)
