(** One-dimensional root finding.

    The rate-equilibrium and market-share computations of the public-option
    model all reduce to solving [f x = 0] for a monotone (possibly only
    piecewise-continuous) [f] on a known bracket.  Bisection is therefore the
    workhorse; Brent's method is provided for smooth problems and a secant
    fallback for cheap refinement. *)

type outcome = {
  root : float;  (** best estimate of the root *)
  value : float;  (** [f root] *)
  iterations : int;  (** iterations actually performed *)
  converged : bool;  (** whether the tolerance was met *)
}

val default_tol : float
(** Absolute tolerance on the abscissa used when [?tol] is omitted. *)

val default_max_iter : int
(** Iteration cap used when [?max_iter] is omitted. *)

exception No_bracket of string
(** Raised when the supplied interval does not bracket a sign change and
    bracket expansion fails. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> outcome
(** [bisect ~f ~lo ~hi ()] finds a root of [f] in [[lo, hi]].  Requires
    [f lo] and [f hi] to have opposite (or zero) signs; raises
    {!No_bracket} otherwise.  Robust to discontinuities: converges to a
    point where [f] changes sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> outcome
(** Brent's method (inverse quadratic interpolation + secant + bisection
    safeguard).  Same bracketing contract as {!bisect}; faster on smooth
    functions. *)

val secant :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> x0:float -> x1:float ->
  unit -> outcome
(** Unbracketed secant iteration started from [x0], [x1].  May diverge;
    check [converged]. *)

val expand_bracket :
  ?factor:float -> ?max_expand:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float * float
(** Geometrically expands [[lo, hi]] outward until it brackets a sign change
    of [f].  Raises {!No_bracket} after [max_expand] doublings. *)

val find_monotone_level :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> level:float ->
  lo:float -> hi:float -> unit -> outcome
(** [find_monotone_level ~f ~level ~lo ~hi ()] solves [f x = level] for a
    non-decreasing [f].  If [f hi <= level] returns [hi]; if [f lo >= level]
    returns [lo]; otherwise bisection.  This never raises and is the
    primitive used by the rate-equilibrium solver (Theorem 1). *)
