open Po_model

let generate ?(params = Common.default_params) () =
  let cps = Po_workload.Scenario.three_cp () in
  let points = max 25 (3 * params.Common.sweep_points) in
  let nus = Po_num.Grid.linspace 0.01 6. points in
  let solutions = Array.map (fun nu -> Maxmin.solve ~nu cps) nus in
  let series_of proj label i =
    Po_report.Series.make ~label ~xs:nus
      ~ys:(Array.map (fun sol -> proj sol i) solutions)
  in
  let theta sol i = sol.Equilibrium.theta.(i) in
  let demand sol i = sol.Equilibrium.demand.(i) in
  let labels = Array.map (fun (cp : Cp.t) -> cp.Cp.label) cps in
  let panel proj name =
    ( name,
      Array.to_list (Array.mapi (fun i label -> series_of proj label i) labels)
    )
  in
  { Common.id = "fig3";
    title = "Throughput under the max-min fair mechanism (3-CP example)";
    x_label = "nu";
    panels = [ panel theta "throughput"; panel demand "demand" ];
    notes =
      [ "as nu grows, demand recovers for Google-type first, then \
         Skype-type, Netflix-type last (paper Sec. II-D.2)";
        "google saturates at theta_hat=1, skype at 3, netflix at 10" ] }
