lib/experiments/mm1_fig.ml: Array Common List Mm1 Po_model Po_num Po_report Po_workload Printf Surplus
