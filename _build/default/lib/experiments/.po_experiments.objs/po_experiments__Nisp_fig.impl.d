lib/experiments/nisp_fig.ml: Array Common Cp_game Oligopoly Po_core Po_report Po_workload Printf Strategy
