lib/experiments/fig02.mli: Common
