lib/experiments/fig07.mli: Common Po_workload
