lib/experiments/tcp_fig.ml: Array Common List Po_model Po_netsim Po_num Po_report Po_workload Printf
