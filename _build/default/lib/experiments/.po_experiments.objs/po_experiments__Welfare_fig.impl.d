lib/experiments/welfare_fig.ml: Array Common List Po_core Po_report Po_workload Printf Welfare
