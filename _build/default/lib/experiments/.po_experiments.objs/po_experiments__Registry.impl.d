lib/experiments/registry.ml: Appendix Common Fig02 Fig03 Fig04 Fig05 Fig07 Fig08 Hetero_fig Invest_fig List Mm1_fig Nisp_fig Pmp_fig Po_sizing_fig Red_fig Tandem_fig Tcp_fig Welfare_fig
