lib/experiments/pmp_fig.ml: Array Common Cp_game Option Partition Po_core Po_netsim Po_report Po_workload Printf Strategy
