lib/experiments/fig04.mli: Common Po_workload
