lib/experiments/tandem_fig.ml: Array Common List Po_model Po_netsim Po_report Po_workload
