lib/experiments/red_fig.mli: Common
