lib/experiments/po_sizing_fig.mli: Common
