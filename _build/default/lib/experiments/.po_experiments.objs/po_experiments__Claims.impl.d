lib/experiments/claims.ml: Array Buffer Common Cp_game Duopoly Float List Monopoly Oligopoly Po_core Po_netsim Po_workload Printf Public_option Strategy String
