lib/experiments/tandem_fig.mli: Common
