lib/experiments/invest_fig.ml: Array Common Investment Po_core Po_num Po_report Po_workload
