lib/experiments/fig03.mli: Common
