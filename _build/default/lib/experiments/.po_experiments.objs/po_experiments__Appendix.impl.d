lib/experiments/appendix.ml: Common Fig04 Fig05 Fig07 Fig08 List Po_workload
