lib/experiments/welfare_fig.mli: Common
