lib/experiments/fig07.ml: Array Common Duopoly Po_core Po_num Po_report Po_workload Printf Strategy
