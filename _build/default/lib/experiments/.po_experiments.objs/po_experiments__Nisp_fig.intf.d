lib/experiments/nisp_fig.mli: Common
