lib/experiments/fig08.mli: Common Po_workload
