lib/experiments/invest_fig.mli: Common
