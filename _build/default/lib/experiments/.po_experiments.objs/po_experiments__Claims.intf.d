lib/experiments/claims.mli: Common
