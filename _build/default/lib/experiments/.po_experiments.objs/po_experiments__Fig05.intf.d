lib/experiments/fig05.mli: Common Po_workload
