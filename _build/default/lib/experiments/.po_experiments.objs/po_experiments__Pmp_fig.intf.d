lib/experiments/pmp_fig.mli: Common
