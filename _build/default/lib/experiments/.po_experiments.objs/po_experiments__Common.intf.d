lib/experiments/common.mli: Po_model Po_report Po_workload
