lib/experiments/hetero_fig.mli: Common
