lib/experiments/red_fig.ml: Array Common Po_netsim Po_num Po_report Po_workload
