lib/experiments/fig05.ml: Array Common Cp_game Monopoly Po_core Po_num Po_report Po_workload Printf Strategy
