lib/experiments/hetero_fig.ml: Array Common Monopoly Po_core Po_num Po_report Po_workload Printf
