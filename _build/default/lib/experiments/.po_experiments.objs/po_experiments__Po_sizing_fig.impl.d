lib/experiments/po_sizing_fig.ml: Array Common Po_core Po_report Po_sizing Po_workload Printf
