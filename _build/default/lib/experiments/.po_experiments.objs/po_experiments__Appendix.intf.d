lib/experiments/appendix.mli: Common
