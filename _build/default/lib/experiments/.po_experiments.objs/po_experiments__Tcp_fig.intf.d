lib/experiments/tcp_fig.mli: Common
