lib/experiments/fig02.ml: Array Common Demand Po_model Po_num Po_report Printf
