lib/experiments/fig03.ml: Array Common Cp Equilibrium Maxmin Po_model Po_num Po_report Po_workload
