lib/experiments/common.ml: Buffer Filename List Po_report Po_workload Printf String
