lib/experiments/mm1_fig.mli: Common
