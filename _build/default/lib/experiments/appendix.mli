(** Appendix figures 9-12: the same experiments as figures 4, 5, 7 and 8
    but with consumer utility drawn as [phi ~ U[0, U[0, 10]]] — the same
    scale as the main text's [U[0, beta]] but independent of the
    throughput sensitivity.  The paper reports that all observations
    carry over; these generators let the benches confirm it. *)

val fig9 : ?params:Common.params -> unit -> Common.figure
(** [Phi] panel of Figure 4 under the independent utility draw. *)

val fig10 : ?params:Common.params -> unit -> Common.figure
(** [Phi] panel of Figure 5 under the independent utility draw. *)

val fig11 : ?params:Common.params -> unit -> Common.figure
(** Figure 7 (all panels) under the independent utility draw. *)

val fig12 : ?params:Common.params -> unit -> Common.figure
(** Figure 8 (all panels) under the independent utility draw. *)
