(** Figure 4 (and appendix Figure 9): monopoly per-capita ISP surplus
    [Psi] and consumer surplus [Phi] versus the premium price [c] under
    [kappa = 1], for per-capita capacities [nu in {20, 50, 100, 150, 200}].

    Expected shape (paper Sec. III-E): [Psi = c nu] while the premium class
    stays saturated, then a sub-linear region (abundant capacity only),
    then a sharp collapse once few CPs can afford the class; [Phi] falls
    with the collapse, and with abundant capacity the revenue-optimal price
    (around 0.45 at [nu = 200]) sits in the region where [Phi] is already
    declining — the monopoly misalignment. *)

val nus : float array

val generate :
  ?phi_setting:Po_workload.Ensemble.phi_setting -> ?params:Common.params ->
  unit -> Common.figure
