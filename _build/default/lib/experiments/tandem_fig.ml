let generate ?(params = Common.default_params) () =
  ignore params;
  let cps = Po_workload.Scenario.three_cp () in
  let headrooms = [| 1.0; 1.2; 1.5; 2.0; 3.0; 4.0 |] in
  let results =
    Po_netsim.Tandem.single_bottleneck_equivalence ~nu:2.5 ~headrooms cps
  in
  let xs = headrooms in
  let diff =
    [ Po_report.Series.make ~label:"max_relative_diff" ~xs
        ~ys:
          (Array.map
             (fun (e : Po_netsim.Tandem.equivalence) ->
               e.Po_netsim.Tandem.max_relative_diff)
             results) ]
  in
  let rates =
    List.concat
      (List.mapi
         (fun i (cp : Po_model.Cp.t) ->
           [ Po_report.Series.make
               ~label:(cp.Po_model.Cp.label ^ "-tandem")
               ~xs
               ~ys:
                 (Array.map
                    (fun (e : Po_netsim.Tandem.equivalence) ->
                      e.Po_netsim.Tandem.tandem_rates.(i))
                    results);
             Po_report.Series.make
               ~label:(cp.Po_model.Cp.label ^ "-single")
               ~xs
               ~ys:
                 (Array.map
                    (fun (e : Po_netsim.Tandem.equivalence) ->
                      e.Po_netsim.Tandem.single_rates.(i))
                    results) ])
         (Array.to_list cps))
  in
  { Common.id = "tandem";
    title =
      "Tandem (backbone + last mile) vs single-bottleneck simulation";
    x_label = "backbone headroom";
    panels = [ ("relative_diff", diff); ("rates", rates) ];
    notes =
      [ "per-CP delivered rates through the two-link tandem match the \
         last-mile-only simulation at every headroom — the paper's \
         single-bottleneck model is safe whenever the last mile is the \
         tightest link";
        "losses can occur at either queue; AIMD cannot tell and does not \
         need to" ] }
