(** Figure 7 (and appendix Figure 11): duopoly against a Public Option —
    ISP I's market share [m_I], surplus [Psi_I] and the population
    consumer surplus [Phi] versus ISP I's premium price [c_I], with
    [kappa_I = 1], equal capacities, [nu in {20, 100, 150, 200}].

    Expected shape: [m_I] creeps slightly above 1/2 while ISP I's premium
    class is saturated (restricting membership favours throughput-sensitive
    traffic), then collapses once the class under-utilises; [Psi_I] drops
    to zero much more steeply than in the monopoly case; [Phi] never falls
    to zero because consumers retreat to the Public Option. *)

val nus : float array

val generate :
  ?phi_setting:Po_workload.Ensemble.phi_setting -> ?params:Common.params ->
  unit -> Common.figure
