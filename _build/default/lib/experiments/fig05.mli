(** Figure 5 (and appendix Figure 10): monopoly [Psi] and [Phi] versus
    per-capita capacity [nu in [0, 500]] for the strategy grid
    [kappa in {0.1, 0.5, 0.9}] x [c in {0.2, 0.5, 0.8}].

    Expected shape: three equilibrium regimes per strategy — saturated
    premium class ([Psi] linear in [nu]), partially utilised class ([Psi]
    declining as CPs defect to the ordinary class), and an empty premium
    class at large [nu] where [Psi] hits zero for small [kappa]; larger
    [kappa] holds revenue longer at the expense of [Phi]. *)

val kappas : float array
val cs : float array

val generate :
  ?phi_setting:Po_workload.Ensemble.phi_setting -> ?params:Common.params ->
  unit -> Common.figure
