(** Figure 2: the demand family [d_i(omega_i)] of Eq. (3) for throughput
    sensitivities [beta in {0.1, 0.5, 1, 3, 5, 10}]. *)

val betas : float array

val generate : ?params:Common.params -> unit -> Common.figure
