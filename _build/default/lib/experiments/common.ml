type figure = {
  id : string;
  title : string;
  x_label : string;
  panels : (string * Po_report.Series.t list) list;
  notes : string list;
}

type params = {
  n_cps : int;
  seed : int;
  sweep_points : int;
}

let default_params = { n_cps = 1000; seed = 42; sweep_points = 33 }
let quick_params = { n_cps = 120; seed = 42; sweep_points = 9 }

let ensemble ?phi params =
  Po_workload.Ensemble.paper_ensemble ~n:params.n_cps ?phi ~seed:params.seed
    ()

let render ?(plots = true) figure =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n" figure.id figure.title);
  List.iter
    (fun (panel_name, series) ->
      Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" panel_name);
      Buffer.add_string buf
        (Po_report.Table.of_series ~precision:4 ~x_header:figure.x_label
           series);
      if plots then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Po_report.Asciiplot.render ~width:64 ~height:14 series)
      end)
    figure.panels;
  if figure.notes <> [] then begin
    Buffer.add_string buf "\nNotes:\n";
    List.iter
      (fun note -> Buffer.add_string buf (Printf.sprintf "  - %s\n" note))
      figure.notes
  end;
  Buffer.contents buf

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

let csv_files ~dir figure =
  List.map
    (fun (panel_name, series) ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s_%s.csv" figure.id (sanitize panel_name))
      in
      Po_report.Csv.write_file ~path
        (Po_report.Csv.of_series ~x_header:figure.x_label series);
      path)
    figure.panels
