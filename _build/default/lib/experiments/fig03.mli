(** Figure 3: per-CP achievable throughput and demand versus per-capita
    capacity under the max-min fair mechanism, for the three-CP example of
    Sec. II-D (Google/Netflix/Skype archetypes).

    The paper's x-axis runs to 6000 with an implicit consumer population of
    1000; we plot the per-capita capacity [nu in [0, 6]], which is the same
    sweep by Axiom 4 (independence of scale). *)

val generate : ?params:Common.params -> unit -> Common.figure
