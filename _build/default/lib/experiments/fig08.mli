(** Figure 8 (and appendix Figure 12): duopoly against a Public Option —
    [Psi_I], [Phi] and [m_I] versus total per-capita capacity
    [nu in [0, 500]] for ISP I strategies
    [kappa in {0.1, 0.5, 0.9}] x [c in {0.2, 0.5, 0.8}].

    Expected shape: [Psi_I] drops sharply to zero after its peak (unlike
    the monopoly's gradual decline); [Phi]'s growth is barely affected by
    ISP I's strategy; when capacity is scarce differential pricing earns
    ISP I slightly over half the market, and when abundant it converges to
    at most an equal split. *)

val kappas : float array
val cs : float array

val generate :
  ?phi_setting:Po_workload.Ensemble.phi_setting -> ?params:Common.params ->
  unit -> Common.figure
