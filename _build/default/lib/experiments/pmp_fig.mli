(** Extension experiment [pmp]: end-to-end validation of the two-class
    (Paris-Metro-Pricing) abstraction.

    The game layer treats the ordinary and premium classes as two
    independent max-min bottlenecks of capacity [(1-kappa) nu] and
    [kappa nu].  Here each class of a solved CP-game outcome is run
    through the packet-level AIMD simulator and the measured per-class
    carried load is compared against the analytical class solution —
    closing the loop from strategic equilibrium to packets on a wire. *)

val generate : ?params:Common.params -> unit -> Common.figure
