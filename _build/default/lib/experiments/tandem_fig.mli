(** Extension experiment [tandem]: is the single-bottleneck model
    justified?  (Sec. II: "the bottleneck of the Internet is often at the
    last-mile connection".)

    Runs the three-CP scenario over a backbone-plus-last-mile tandem and
    compares per-CP delivered rates against the last-mile-only
    simulation, across backbone headroom ratios. *)

val generate : ?params:Common.params -> unit -> Common.figure
