open Po_model

let generate ?(params = Common.default_params) () =
  let cps = Common.ensemble params in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nus =
    Po_num.Grid.linspace (0.02 *. sat) (1.5 *. sat)
      (max 15 params.Common.sweep_points)
  in
  let closed_loop =
    Po_report.Series.make ~label:"max-min + demand (paper)" ~xs:nus
      ~ys:(Array.map (fun nu -> Surplus.consumer_at ~nu cps) nus)
  in
  let mm1 delay_ref =
    Po_report.Series.make
      ~label:(Printf.sprintf "M/M/1 (delay_ref=%g)" delay_ref)
      ~xs:nus
      ~ys:(Mm1.phi_curve ~delay_ref ~nus cps)
  in
  (* Normalise each curve by its own maximum so the shapes are
     comparable (the welfare units differ between abstractions). *)
  let normalise s =
    let peak = Po_num.Stats.max (Po_report.Series.ys s) in
    if peak <= 0. then s
    else Po_report.Series.map_ys s ~f:(fun y -> y /. peak)
  in
  let raw = [ closed_loop; mm1 0.5; mm1 2.0 ] in
  { Common.id = "mm1";
    title = "Ablation: closed-loop (max-min) vs open-loop (M/M/1) welfare";
    x_label = "nu";
    panels =
      [ ("Phi", raw); ("Phi_normalised", List.map normalise raw) ];
    notes =
      [ "the closed-loop curve saturates exactly at nu = saturation; the \
         M/M/1 curves keep paying a delay discount and undershoot their \
         plateau";
        "near scarcity the M/M/1 abstraction is far more pessimistic: \
         open-loop senders congest the queue instead of adapting" ] }
