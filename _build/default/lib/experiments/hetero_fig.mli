(** Ablation [hetero]: robustness of the monopoly misalignment to the
    workload distribution.

    The paper draws CP attributes from uniform laws; real content
    popularity is Zipf and peak rates are heavy-tailed.  This ablation
    repeats the Fig. 4 price sweep on the heavy-tailed ensemble and
    checks that the qualitative conclusions (linear revenue regime,
    collapse, consumer-surplus misalignment at abundance) survive the
    skew. *)

val generate : ?params:Common.params -> unit -> Common.figure
