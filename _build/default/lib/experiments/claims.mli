(** Numerical audits of the paper's theorems and regulatory claims — the
    "who wins" checks that accompany the figure reproductions. *)

type check = {
  claim : string;
  passed : bool;
  detail : string;
}

val theorem4 : ?params:Common.params -> unit -> check
(** [kappa = 1] revenue-dominates every smaller [kappa] at sampled prices
    and capacities. *)

val theorem5 : ?params:Common.params -> unit -> check
(** In the duopoly against a Public Option, the market-share-maximising
    strategy is (within tolerance) consumer-surplus-maximising. *)

val lemma4 : ?params:Common.params -> unit -> check
(** Homogeneous oligopoly strategies give market shares equal to capacity
    shares. *)

val theorem6 : ?params:Common.params -> unit -> check
(** Market-share best responses are epsilon-best responses for consumer
    surplus, with epsilon measured per Eq. (9) on the rivals' curves. *)

val corollary1 : ?params:Common.params -> unit -> check
(** A menu-restricted market-share Nash equilibrium is also a
    consumer-surplus eps-Nash equilibrium. *)

val regime_ordering : ?params:Common.params -> unit -> check
(** [Phi(public option) >= Phi(neutral) >= Phi(unregulated)] at a
    moderately scarce capacity. *)

val tcp_maxmin : ?params:Common.params -> unit -> check
(** The packet-level AIMD simulation matches the max-min model within a
    modest relative error on the three-CP scenario. *)

val all : ?params:Common.params -> unit -> check list

val render : check list -> string
