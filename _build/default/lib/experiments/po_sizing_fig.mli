(** Extension experiment [posize]: how much capacity does the Public
    Option need?  (Sec. VI discussion: the paper conjectures a slice
    comparable to the market share the monopolist cannot afford to lose —
    e.g. 10% — is already effective.) *)

val generate : ?params:Common.params -> unit -> Common.figure
