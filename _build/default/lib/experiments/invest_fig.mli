(** Extension experiment [invest]: capacity-investment incentives.

    Panel [monopoly]: the monopolist's {e optimised} CP-side revenue and
    optimal price across installed capacity — the declining branch is the
    Choi-Kim disincentive the paper cites.  Panel [competition]: a
    duopolist's market share and revenue as its capacity share grows —
    Lemma 4's share-proportional-to-capacity incentive. *)

val generate : ?params:Common.params -> unit -> Common.figure
