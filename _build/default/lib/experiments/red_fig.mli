(** Ablation [red]: does active queue management change how well AIMD
    approximates max-min?  RED desynchronises flows before the buffer
    fills; droptail relies on the ack-jitter to break phase locking.  The
    experiment sweeps capacity on the three-CP scenario under both
    policies and reports the max per-CP relative error against the
    analytical equilibrium, plus the early-drop fraction. *)

val generate : ?params:Common.params -> unit -> Common.figure
