let red_policy =
  (* Thresholds relative to the default quarter-BDP buffer (~120 packets
     at the scenario's scale). *)
  Po_netsim.Link.Red { min_th = 15.; max_th = 90.; max_p = 0.1; weight = 0.02 }

let generate ?(params = Common.default_params) () =
  let cps = Po_workload.Scenario.three_cp () in
  let points = max 5 (params.Common.sweep_points / 2) in
  let nus = Po_num.Grid.linspace 0.8 5. points in
  let errors policy =
    Array.map
      (fun nu ->
        (Po_netsim.Validate.compare ~queue_policy:policy ~nu cps)
          .Po_netsim.Validate.max_relative_error)
      nus
  in
  let droptail = errors Po_netsim.Link.Droptail in
  let red = errors red_policy in
  { Common.id = "red";
    title = "Ablation: droptail vs RED for the max-min approximation";
    x_label = "nu";
    panels =
      [ ( "max_relative_error",
          [ Po_report.Series.make ~label:"droptail" ~xs:nus ~ys:droptail;
            Po_report.Series.make ~label:"red" ~xs:nus ~ys:red ] ) ];
    notes =
      [ "RED's early random drops desynchronise AIMD windows before the \
         buffer overflows; both disciplines track the max-min \
         equilibrium on this scenario";
        "the interesting comparison is the congested low-nu end, where \
         droptail's burst losses penalise unlucky flows" ] }
