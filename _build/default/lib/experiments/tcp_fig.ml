let generate ?(params = Common.default_params) () =
  let cps = Po_workload.Scenario.three_cp () in
  let points = max 5 (params.Common.sweep_points / 2) in
  let nus = Po_num.Grid.linspace 0.5 5.5 points in
  let reports =
    Array.map (fun nu -> Po_netsim.Validate.compare ~nu cps) nus
  in
  let rate_series which label =
    Po_report.Series.make ~label ~xs:nus
      ~ys:
        (Array.map
           (fun (r : Po_netsim.Validate.report) ->
             which r.Po_netsim.Validate.per_cp)
           reports)
  in
  let per_cp_series proj suffix =
    List.init 3 (fun i ->
        rate_series
          (fun per_cp -> proj per_cp.(i))
          (Printf.sprintf "%s-%s"
             (Po_workload.Scenario.three_cp ()).(i).Po_model.Cp.label
             suffix))
  in
  let sim =
    per_cp_series
      (fun (c : Po_netsim.Validate.cp_comparison) ->
        c.Po_netsim.Validate.simulated_rate)
      "sim"
  in
  let model =
    per_cp_series
      (fun (c : Po_netsim.Validate.cp_comparison) ->
        c.Po_netsim.Validate.predicted_rate)
      "model"
  in
  let error =
    [ Po_report.Series.make ~label:"max_rel_error" ~xs:nus
        ~ys:
          (Array.map
             (fun (r : Po_netsim.Validate.report) ->
               r.Po_netsim.Validate.max_relative_error)
             reports) ]
  in
  let ratios = [| 1.; 2.; 4.; 8. |] in
  let bias =
    Po_netsim.Validate.rtt_bias_experiment ~nu:2.5 ~rtt_ratios:ratios cps
  in
  let bias_series =
    [ Po_report.Series.make ~label:"max_rel_error_vs_rtt_spread"
        ~xs:(Array.map fst bias) ~ys:(Array.map snd bias) ]
  in
  { Common.id = "tcp";
    title = "AIMD packet simulation vs max-min model (3-CP scenario)";
    x_label = "nu";
    panels =
      [ ("rates", sim @ model); ("relative_error", error);
        ("rtt_bias", bias_series) ];
    notes =
      [ "with homogeneous RTTs, AIMD shares track the max-min equilibrium \
         (paper's Sec. II-D.2 justification)";
        "the rtt_bias panel's x-axis is the RTT spread ratio, not nu; \
         widening RTT heterogeneity degrades the max-min approximation" ]
  }
