(** Extension experiment [welfare]: the three-party welfare decomposition
    of each regulatory regime — who pays for each regime's consumer
    gains.  Complements the paper's consumer-surplus focus with the
    Sidak-style total-welfare view it debates in Sec. V. *)

val generate : ?params:Common.params -> unit -> Common.figure
