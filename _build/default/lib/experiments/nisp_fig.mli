(** Extension experiment [nisp]: competition intensity.

    Sec. VI: "The more ISPs competing in a market, the less the market
    needs a public option."  The experiment holds total capacity fixed and
    varies the number of equal-capacity commercial ISPs; each market is
    driven to a (menu-restricted) market-share Nash equilibrium via
    best-response dynamics, and the equilibrium consumer surplus is
    compared against the monopoly extremes and the full-neutral benchmark. *)

val generate : ?params:Common.params -> unit -> Common.figure
