(** Extension experiment: microfoundation of the max-min assumption.

    Not a paper figure — it validates the modelling choice of
    Sec. II-D.2 by running the packet-level AIMD simulator on the
    three-CP scenario and comparing per-CP rates with the analytical
    max-min equilibrium across capacities, plus an RTT-heterogeneity
    ablation showing where the abstraction degrades. *)

val generate : ?params:Common.params -> unit -> Common.figure
