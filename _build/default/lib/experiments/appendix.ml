let independent = Po_workload.Ensemble.Independent

let keep_panels names (figure : Common.figure) =
  { figure with
    Common.panels =
      List.filter
        (fun (name, _) -> List.mem name names)
        figure.Common.panels }

let note =
  "appendix setting: phi ~ U[0, U[0,10]], independent of beta; CP \
   decisions and ISP revenue are unchanged from the main-text figures"

let fig9 ?params () =
  let base = Fig04.generate ~phi_setting:independent ?params () in
  { (keep_panels [ "Phi" ] base) with
    Common.id = "fig9";
    title = "Appendix: monopoly Phi vs c (kappa = 1), independent phi";
    notes = [ note ] }

let fig10 ?params () =
  let base = Fig05.generate ~phi_setting:independent ?params () in
  { (keep_panels [ "Phi" ] base) with
    Common.id = "fig10";
    title = "Appendix: monopoly Phi vs nu, strategy grid, independent phi";
    notes = [ note ] }

let fig11 ?params () =
  let base = Fig07.generate ~phi_setting:independent ?params () in
  { base with
    Common.id = "fig11";
    title = "Appendix: duopoly vs Public Option, independent phi";
    notes = note :: base.Common.notes }

let fig12 ?params () =
  let base = Fig08.generate ~phi_setting:independent ?params () in
  { base with
    Common.id = "fig12";
    title =
      "Appendix: duopoly vs Public Option across capacity, independent phi";
    notes = note :: base.Common.notes }
