open Po_model

let betas = [| 0.1; 0.5; 1.; 3.; 5.; 10. |]

let generate ?(params = Common.default_params) () =
  let points = max 21 (4 * params.Common.sweep_points) in
  let omegas = Po_num.Grid.linspace 0.01 1. points in
  let series =
    Array.to_list
      (Array.map
         (fun beta ->
           let demand = Demand.exponential ~beta in
           Po_report.Series.of_fn
             ~label:(Printf.sprintf "beta=%g" beta)
             ~xs:omegas
             (fun omega -> Demand.eval demand omega))
         betas)
  in
  { Common.id = "fig2";
    title = "Demand function d_i(omega_i) under Eq. (3)";
    x_label = "omega";
    panels = [ ("demand", series) ];
    notes =
      [ "larger beta = sharper decay: at beta=5 a 10% throughput drop \
         roughly halves demand (paper Sec. II-D.1)";
        "beta=0.1 stays near 1 across the whole range (search-like \
         content)" ] }
