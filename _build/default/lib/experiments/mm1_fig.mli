(** Ablation [mm1]: consumer surplus across capacity under the paper's
    closed-loop model (max-min + demand coupling) versus the open-loop
    M/M/1 delay abstraction used by the prior economic literature the
    paper criticises (Sec. V).  The point of the ablation is the {e
    shape} difference: the M/M/1 world has a sharp congestion knee and a
    delay-discounted plateau, while the closed-loop model degrades
    gracefully and saturates exactly at the unconstrained optimum. *)

val generate : ?params:Common.params -> unit -> Common.figure
