open Po_model
open Po_prng

type phi_setting = Coupled_to_beta | Independent

(* A uniform draw on (0, 1]: the open lower end keeps alpha and theta_hat
   strictly positive as the model requires. *)
let positive_unit rng = 1. -. Splitmix.float rng

let paper_ensemble ?(n = 1000) ?(phi = Coupled_to_beta) ~seed () =
  if n <= 0 then invalid_arg "Ensemble.paper_ensemble: n <= 0";
  let root = Splitmix.of_int seed in
  let alpha_rng = Splitmix.split root in
  let theta_rng = Splitmix.split root in
  let beta_rng = Splitmix.split root in
  let v_rng = Splitmix.split root in
  let phi_rng = Splitmix.split root in
  Array.init n (fun id ->
      let alpha = positive_unit alpha_rng in
      let theta_hat = positive_unit theta_rng in
      let beta = Splitmix.uniform beta_rng ~lo:0. ~hi:10. in
      let v = Splitmix.float v_rng in
      let phi_value =
        match phi with
        | Coupled_to_beta -> Splitmix.uniform phi_rng ~lo:0. ~hi:beta
        | Independent -> Dist.nested_uniform phi_rng ~hi:10.
      in
      Cp.make ~id ~alpha ~theta_hat
        ~demand:(Demand.exponential ~beta)
        ~v ~phi:phi_value ())

let heavy_tailed_ensemble ?(n = 1000) ?(zipf_exponent = 1.0)
    ?(pareto_shape = 1.5) ~seed () =
  if n <= 0 then invalid_arg "Ensemble.heavy_tailed_ensemble: n <= 0";
  let root = Splitmix.of_int (seed lxor 0x5eed) in
  let rank_rng = Splitmix.split root in
  let theta_rng = Splitmix.split root in
  let beta_rng = Splitmix.split root in
  let v_rng = Splitmix.split root in
  let phi_rng = Splitmix.split root in
  let ranks = Array.init n (fun i -> i + 1) in
  Dist.shuffle rank_rng ranks;
  Array.init n (fun id ->
      (* Zipf popularity over a shuffled rank (so id order is not rank
         order), normalised into (0, 1]. *)
      let alpha = 1. /. (float_of_int ranks.(id) ** zipf_exponent) in
      let theta_hat =
        Float.min 20. (Dist.pareto theta_rng ~shape:pareto_shape ~scale:0.2)
      in
      let beta =
        Float.min 10. (Dist.lognormal beta_rng ~mu:0.5 ~sigma:1.0)
      in
      let v = Splitmix.float v_rng in
      let phi_value = Splitmix.uniform phi_rng ~lo:0. ~hi:beta in
      Cp.make ~id ~alpha ~theta_hat
        ~demand:(Demand.exponential ~beta)
        ~v ~phi:phi_value ())

let saturation_nu cps =
  Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps

let total_value cps =
  Array.fold_left
    (fun acc (cp : Cp.t) ->
      acc +. (cp.Cp.phi *. cp.Cp.alpha *. cp.Cp.theta_hat))
    0. cps
