(** Named small scenarios used by the paper's illustrations and the
    examples. *)

val three_cp : unit -> Po_model.Cp.t array
(** The Sec. II-D illustration: a Google-type, a Netflix-type and a
    Skype-type CP ([(alpha, theta_hat, beta)] = (1,1,0.1), (0.3,10,3),
    (0.5,3,5)), ids 0..2.  [v] and [phi] are left at 0. *)

val three_cp_priced : unit -> Po_model.Cp.t array
(** The same three CPs with plausible business parameters attached
    ([v], [phi]) so they can be run through the strategic games:
    Google (v=0.8, phi=0.5), Netflix (v=0.5, phi=3.0),
    Skype (v=0.2, phi=5.0) — utility biased towards throughput-sensitive
    content, as in the paper's ensembles. *)

val archetype_mix :
  ?google:int -> ?netflix:int -> ?skype:int -> seed:int -> unit ->
  Po_model.Cp.t array
(** A population of jittered archetypes: counts of each type with +-20%
    multiplicative jitter on [alpha], [theta_hat] and [beta], and [v],
    [phi] drawn as in {!three_cp_priced} with the same jitter.  Useful for
    mid-sized, interpretable experiments. *)
