open Po_model

let header = "id,label,alpha,theta_hat,beta,v,phi"

let to_csv cps =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  let rec emit i =
    if i >= Array.length cps then Ok (Buffer.contents buf)
    else
      let cp = cps.(i) in
      match Demand.beta cp.Cp.demand with
      | None ->
          Error
            (Printf.sprintf
               "Io.to_csv: CP %d (%s) has non-exponential demand %s" i
               cp.Cp.label
               (Demand.name cp.Cp.demand))
      | Some beta ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%.17g,%.17g,%.17g,%.17g,%.17g\n" cp.Cp.id
               cp.Cp.label cp.Cp.alpha cp.Cp.theta_hat beta cp.Cp.v cp.Cp.phi);
          emit (i + 1)
  in
  emit 0

let parse_line ~line_no ~id line =
  match String.split_on_char ',' (String.trim line) with
  | [ _id; label; alpha; theta_hat; beta; v; phi ] -> (
      let num name s =
        match float_of_string_opt (String.trim s) with
        | Some x -> Ok x
        | None ->
            Error (Printf.sprintf "line %d: bad %s %S" line_no name s)
      in
      let ( let* ) = Result.bind in
      let* alpha = num "alpha" alpha in
      let* theta_hat = num "theta_hat" theta_hat in
      let* beta = num "beta" beta in
      let* v = num "v" v in
      let* phi = num "phi" phi in
      try
        Ok
          (Cp.make ~label:(String.trim label) ~id ~alpha ~theta_hat
             ~demand:(Demand.exponential ~beta)
             ~v ~phi ())
      with Invalid_argument msg ->
        Error (Printf.sprintf "line %d: %s" line_no msg))
  | _ -> Error (Printf.sprintf "line %d: expected 7 columns" line_no)

let of_csv doc =
  match String.split_on_char '\n' doc with
  | [] -> Error "Io.of_csv: empty document"
  | first :: rest ->
      if String.trim first <> header then
        Error (Printf.sprintf "Io.of_csv: expected header %S" header)
      else begin
        let rec parse acc line_no id = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | line :: tl when String.trim line = "" -> parse acc (line_no + 1) id tl
          | line :: tl -> (
              match parse_line ~line_no ~id line with
              | Ok cp -> parse (cp :: acc) (line_no + 1) (id + 1) tl
              | Error _ as e -> e)
        in
        parse [] 2 0 rest
      end

let write_file ~path cps =
  match to_csv cps with
  | Error _ as e -> e
  | Ok doc -> (
      try
        Po_report.Csv.write_file ~path doc;
        Ok ()
      with Sys_error msg -> Error msg)

let read_file ~path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let doc = really_input_string ic n in
    close_in ic;
    of_csv doc
  with Sys_error msg -> Error msg
