open Po_model
open Po_prng

let three_cp () = [| Cp.google 0; Cp.netflix 1; Cp.skype 2 |]

let three_cp_priced () =
  [| Cp.with_phi (Cp.with_v (Cp.google 0) 0.8) 0.5;
     Cp.with_phi (Cp.with_v (Cp.netflix 1) 0.5) 3.0;
     Cp.with_phi (Cp.with_v (Cp.skype 2) 0.2) 5.0 |]

type archetype = {
  alpha : float;
  theta_hat : float;
  beta : float;
  v : float;
  phi : float;
  label : string;
}

let google_arch = { alpha = 1.; theta_hat = 1.; beta = 0.1; v = 0.8; phi = 0.5; label = "google" }
let netflix_arch = { alpha = 0.3; theta_hat = 10.; beta = 3.; v = 0.5; phi = 3.0; label = "netflix" }
let skype_arch = { alpha = 0.5; theta_hat = 3.; beta = 5.; v = 0.2; phi = 5.0; label = "skype" }

let jitter rng x = x *. Splitmix.uniform rng ~lo:0.8 ~hi:1.2

let archetype_mix ?(google = 4) ?(netflix = 3) ?(skype = 3) ~seed () =
  if google < 0 || netflix < 0 || skype < 0 then
    invalid_arg "Scenario.archetype_mix: negative count";
  let rng = Splitmix.of_int seed in
  let make id arch =
    let alpha = Float.min 1. (jitter rng arch.alpha) in
    Cp.make ~label:arch.label ~id ~alpha
      ~theta_hat:(jitter rng arch.theta_hat)
      ~demand:(Demand.exponential ~beta:(jitter rng arch.beta))
      ~v:(jitter rng arch.v) ~phi:(jitter rng arch.phi) ()
  in
  let specs =
    List.concat
      [ List.init google (fun _ -> google_arch);
        List.init netflix (fun _ -> netflix_arch);
        List.init skype (fun _ -> skype_arch) ]
  in
  Array.of_list (List.mapi make specs)
