lib/workload/ensemble.mli: Po_model
