lib/workload/io.ml: Array Buffer Cp Demand List Po_model Po_report Printf Result String
