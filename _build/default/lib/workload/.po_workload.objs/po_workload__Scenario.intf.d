lib/workload/scenario.mli: Po_model
