lib/workload/io.mli: Po_model
