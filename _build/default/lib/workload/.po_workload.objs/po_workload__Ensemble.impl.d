lib/workload/ensemble.ml: Array Cp Demand Dist Float Po_model Po_prng Splitmix
