lib/workload/scenario.ml: Array Cp Demand Float List Po_model Po_prng Splitmix
