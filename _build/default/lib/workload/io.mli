(** CSV import/export of CP populations.

    Lets a drawn ensemble be archived next to experiment outputs and
    reloaded bit-for-bit, and lets externally curated populations (e.g.
    fitted to real traffic data) be run through every solver.  Columns:

    {v id,label,alpha,theta_hat,beta,v,phi v}

    [beta] is the exponential-sensitivity parameter of Eq. (3); only
    exponential demand families are serialisable (they are the paper's
    model — richer families live in code, not data). *)

val to_csv : Po_model.Cp.t array -> (string, string) result
(** Fails (with the offending CP) when a demand function is not of the
    exponential family. *)

val of_csv : string -> (Po_model.Cp.t array, string) result
(** Parse a document produced by {!to_csv} (or hand-written with the same
    header).  Returns a descriptive error on malformed input; CP ids are
    re-assigned sequentially so the result is always solver-ready. *)

val write_file : path:string -> Po_model.Cp.t array -> (unit, string) result
val read_file : path:string -> (Po_model.Cp.t array, string) result
