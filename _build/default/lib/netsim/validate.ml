open Po_model

type cp_comparison = {
  label : string;
  flows : int;
  simulated_rate : float;
  predicted_rate : float;
  relative_error : float;
}

type report = {
  per_cp : cp_comparison array;
  capacity : float;
  utilization : float;
  max_relative_error : float;
  mean_relative_error : float;
}

let flows_of_cp ~m_sim (cp : Cp.t) =
  max 1 (int_of_float (Float.round (cp.Cp.alpha *. float_of_int m_sim)))

(* The analytical prediction is computed on the discretised population the
   simulator actually runs: alpha_i = flows_i / m_sim. *)
let discretised ~m_sim ~inelastic cps =
  Array.mapi
    (fun id (cp : Cp.t) ->
      let flows = flows_of_cp ~m_sim cp in
      let alpha =
        Float.min 1. (float_of_int flows /. float_of_int m_sim)
      in
      Cp.make ~label:cp.Cp.label ~id ~alpha ~theta_hat:cp.Cp.theta_hat
        ~demand:(if inelastic then Demand.inelastic else cp.Cp.demand)
        ~v:cp.Cp.v ~phi:cp.Cp.phi ())
    cps

let compare ?(m_sim = 12) ?(rate_scale = 400.) ?(rtt = 0.04) ?(seed = 1)
    ?(with_churn = false) ?(queue_policy = Link.Droptail) ~nu cps =
  if m_sim <= 0 then invalid_arg "Validate.compare: m_sim <= 0";
  if rate_scale <= 0. then invalid_arg "Validate.compare: rate_scale <= 0";
  let n = Array.length cps in
  if n = 0 then invalid_arg "Validate.compare: no CPs";
  let specs =
    Array.map
      (fun (cp : Cp.t) ->
        { Sim.flows = flows_of_cp ~m_sim cp;
          rate_cap = cp.Cp.theta_hat *. rate_scale;
          rtt;
          demand = (if with_churn then Some cp.Cp.demand else None) })
      cps
  in
  let capacity = nu *. float_of_int m_sim *. rate_scale in
  let config =
    { (Sim.default_config ~capacity ~specs) with
      seed;
      queue_policy;
      (* Churn adds sampling noise (Bernoulli flow activation), so average
         over a longer window. *)
      measure = (if with_churn then 48. else 24.);
      churn_interval = (if with_churn then Some (8. *. rtt) else None) }
  in
  let sim = Sim.run config in
  let model_cps = discretised ~m_sim ~inelastic:(not with_churn) cps in
  let model = Equilibrium.solve ~nu model_cps in
  let per_cp =
    Array.mapi
      (fun i (cp : Cp.t) ->
        let flows = specs.(i).Sim.flows in
        (* Model per-capita rate alpha*rho scaled back into packets/s of
           the simulated population. *)
        let predicted_rate =
          model_cps.(i).Cp.alpha
          *. model.Equilibrium.rho.(i)
          *. float_of_int m_sim *. rate_scale
        in
        let simulated_rate = sim.Sim.per_cp.(i).Sim.rate in
        let denom = Float.max predicted_rate (0.01 *. capacity) in
        { label = cp.Cp.label; flows; simulated_rate; predicted_rate;
          relative_error = Float.abs (simulated_rate -. predicted_rate) /. denom })
      cps
  in
  let errors = Array.map (fun c -> c.relative_error) per_cp in
  { per_cp; capacity;
    utilization = sim.Sim.utilization;
    max_relative_error = Array.fold_left Float.max 0. errors;
    mean_relative_error = Po_num.Stats.mean errors }

let rtt_bias_experiment ?(m_sim = 12) ?(rate_scale = 400.) ?(seed = 1) ~nu
    ~rtt_ratios cps =
  Array.map
    (fun ratio ->
      if ratio < 1. then
        invalid_arg "Validate.rtt_bias_experiment: ratio < 1";
      let n = Array.length cps in
      let base = 0.04 in
      let specs =
        Array.mapi
          (fun i (cp : Cp.t) ->
            (* Spread RTTs geometrically from base to base*ratio. *)
            let expo =
              if n <= 1 then 0. else float_of_int i /. float_of_int (n - 1)
            in
            { Sim.flows = flows_of_cp ~m_sim cp;
              rate_cap = cp.Cp.theta_hat *. rate_scale;
              rtt = base *. (ratio ** expo);
              demand = None })
          cps
      in
      let capacity = nu *. float_of_int m_sim *. rate_scale in
      let config =
        { (Sim.default_config ~capacity ~specs) with seed }
      in
      let sim = Sim.run config in
      let model_cps = discretised ~m_sim ~inelastic:true cps in
      let model = Equilibrium.solve ~nu model_cps in
      let max_err = ref 0. in
      Array.iteri
        (fun i _ ->
          let predicted =
            model_cps.(i).Cp.alpha
            *. model.Equilibrium.rho.(i)
            *. float_of_int m_sim *. rate_scale
          in
          let denom = Float.max predicted (0.01 *. capacity) in
          let err =
            Float.abs (sim.Sim.per_cp.(i).Sim.rate -. predicted) /. denom
          in
          max_err := Float.max !max_err err)
        cps;
      (ratio, !max_err))
    rtt_ratios
