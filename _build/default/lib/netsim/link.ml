type policy =
  | Droptail
  | Red of { min_th : float; max_th : float; max_p : float; weight : float }

type t = {
  capacity : float;
  buffer : int;
  policy : policy;
  queue : int Queue.t;  (* flow ids, head is in service *)
  mutable busy : bool;
  mutable dropped : int;
  mutable early_dropped : int;
  mutable avg : float;  (* RED's EWMA occupancy *)
}

type offer_result =
  | Accepted of float option
  | Dropped

let validate_policy = function
  | Droptail -> ()
  | Red { min_th; max_th; max_p; weight } ->
      if not (min_th > 0. && max_th > min_th) then
        invalid_arg "Link.create: RED thresholds must satisfy 0 < min < max";
      if not (max_p > 0. && max_p <= 1.) then
        invalid_arg "Link.create: RED max_p outside (0, 1]";
      if not (weight > 0. && weight <= 1.) then
        invalid_arg "Link.create: RED weight outside (0, 1]"

let create ?(policy = Droptail) ~capacity ~buffer () =
  if capacity <= 0. then invalid_arg "Link.create: capacity <= 0";
  if buffer < 1 then invalid_arg "Link.create: buffer < 1";
  validate_policy policy;
  { capacity; buffer; policy; queue = Queue.create (); busy = false;
    dropped = 0; early_dropped = 0; avg = 0. }

let service_time t = 1. /. t.capacity

let occupancy t = Queue.length t.queue

let avg_occupancy t =
  match t.policy with
  | Droptail -> float_of_int (occupancy t)
  | Red _ -> t.avg

let drops t = t.dropped
let early_drops t = t.early_dropped

let update_avg t =
  match t.policy with
  | Droptail -> ()
  | Red { weight; _ } ->
      t.avg <- ((1. -. weight) *. t.avg)
               +. (weight *. float_of_int (occupancy t))

let red_drop_probability t =
  match t.policy with
  | Droptail -> 0.
  | Red { min_th; max_th; max_p; _ } ->
      if t.avg < min_th then 0.
      else if t.avg >= max_th then 1.
      else max_p *. (t.avg -. min_th) /. (max_th -. min_th)

let offer ?(drop_roll = 1.) t ~now ~flow_id =
  update_avg t;
  if Queue.length t.queue >= t.buffer then begin
    t.dropped <- t.dropped + 1;
    Dropped
  end
  else if drop_roll < red_drop_probability t then begin
    t.dropped <- t.dropped + 1;
    t.early_dropped <- t.early_dropped + 1;
    Dropped
  end
  else begin
    Queue.add flow_id t.queue;
    if t.busy then Accepted None
    else begin
      t.busy <- true;
      Accepted (Some (now +. service_time t))
    end
  end

let complete_service t ~now =
  match Queue.take_opt t.queue with
  | None -> invalid_arg "Link.complete_service: idle link"
  | Some flow_id ->
      if Queue.is_empty t.queue then begin
        t.busy <- false;
        (flow_id, None)
      end
      else (flow_id, Some (now +. service_time t))
