(** One AIMD (TCP-Reno-like) flow.

    A flow keeps a congestion window [cwnd] (in packets): slow start
    doubles it every RTT until [ssthresh], congestion avoidance adds one
    packet per RTT, and a loss halves it (at most once per RTT — losses
    within one round trip count as a single congestion event, as in
    fast-recovery).  An application-limited cap bounds the window at the
    bandwidth-delay product of the flow's unconstrained rate, modelling a
    source that never wants more than [theta_hat]. *)

type t = {
  id : int;
  cp_index : int;  (** which CP this flow belongs to *)
  rtt : float;  (** propagation round-trip time, seconds *)
  pacing_interval : float;  (** [1 / rate_cap]: minimum packet spacing *)
  window_cap : float;  (** window headroom bound, packets *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable in_flight : int;
  mutable next_send : float;  (** pacing gate: no packet before this time *)
  mutable wake_at : float;
  (** earliest pending Wake event, [infinity] when none — dedups timers *)
  mutable recovery_until : float;  (** losses before this time are ignored *)
  mutable acked : int;  (** packets acknowledged since the last counter reset *)
  mutable active : bool;  (** inactive flows stop sending (demand churn) *)
}

val create : id:int -> cp_index:int -> rtt:float -> rate_cap:float -> t
(** [rate_cap] is the flow's unconstrained rate in packets/s, enforced by
    packet pacing (one packet per [1/rate_cap] seconds) — a window bound
    against the base RTT would under-shoot the application limit whenever
    queueing inflates the effective RTT.  The window cap is set at twice
    the bandwidth-delay product of [rate_cap] as headroom.  [rtt > 0],
    [rate_cap > 0]. *)

val effective_window : t -> float
(** [min cwnd window_cap]; never below 1. *)

val can_send : t -> bool
(** Active and window not yet filled by in-flight packets. *)

val on_ack : t -> unit
(** Account one delivered packet and grow the window. *)

val on_loss : t -> now:float -> unit
(** Multiplicative decrease, once per RTT. *)

val reset_counters : t -> unit
(** Zero the ack counter (start of a measurement window). *)
