lib/netsim/link.ml: Queue
