lib/netsim/eventq.mli:
