lib/netsim/link.mli:
