lib/netsim/validate.mli: Link Po_model
