lib/netsim/sim.mli: Link Po_model
