lib/netsim/validate.ml: Array Cp Demand Equilibrium Float Link Po_model Po_num Sim
