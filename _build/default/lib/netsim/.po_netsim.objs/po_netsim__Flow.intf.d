lib/netsim/flow.mli:
