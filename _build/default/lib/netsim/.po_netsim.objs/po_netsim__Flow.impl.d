lib/netsim/flow.ml: Float
