lib/netsim/tandem.mli: Po_model Sim
