lib/netsim/eventq.ml: Array Float List
