lib/netsim/sim.ml: Array Dist Eventq Float Flow Link List Po_model Po_prng Splitmix
