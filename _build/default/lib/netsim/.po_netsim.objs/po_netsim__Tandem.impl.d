lib/netsim/tandem.ml: Array Eventq Float Flow Link List Po_model Po_prng Sim Splitmix
