(** Two bottlenecks in series: a backbone/peering link feeding the
    last-mile access link.

    The paper's model keeps a single bottleneck and justifies it with
    "the bottleneck of the Internet is often at the last-mile connection"
    (Sec. II).  This topology module quantifies that assumption: flows
    traverse link A (backbone) and then link B (last mile); when A has
    headroom over B, the system should behave exactly like the
    single-bottleneck simulation on B alone, and the approximation should
    degrade as A's headroom vanishes.

    Losses can occur at either queue; the AIMD sources cannot tell which
    link dropped, exactly as real TCP cannot. *)

type config = {
  capacity_a : float;  (** upstream (backbone) rate, packets/s *)
  buffer_a : int;
  capacity_b : float;  (** downstream (last-mile) rate, packets/s *)
  buffer_b : int;
  specs : Sim.cp_spec array;  (** demand fields are ignored (no churn) *)
  seed : int;
  warmup : float;
  measure : float;
}

val default_config :
  ?headroom:float -> capacity_b:float -> specs:Sim.cp_spec array -> unit ->
  config
(** Last-mile capacity [capacity_b]; the backbone gets
    [headroom x capacity_b] (default 4).  Buffers at a quarter BDP each,
    as in {!Sim.default_config}. *)

type result = {
  per_cp : Sim.cp_result array;
  total_rate : float;  (** delivered (through both links), packets/s *)
  utilization_a : float;
  utilization_b : float;
  drops_a : int;
  drops_b : int;
  events : int;
}

val run : config -> result

type equivalence = {
  headroom : float;
  tandem_rates : float array;  (** per-CP delivered rates, two links *)
  single_rates : float array;  (** same scenario, last-mile link only *)
  max_relative_diff : float;
}

val single_bottleneck_equivalence :
  ?m_sim:int -> ?rate_scale:float -> ?rtt:float -> ?seed:int ->
  nu:float -> headrooms:float array -> Po_model.Cp.t array ->
  equivalence array
(** For each backbone headroom ratio, compare per-CP delivered rates of
    the tandem topology against the single-bottleneck run — the
    experimental backing for the paper's last-mile-only model. *)
