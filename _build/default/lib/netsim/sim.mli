(** Packet-level discrete-event simulation of AIMD flows over one
    bottleneck (the microfoundation for the paper's max-min assumption,
    Sec. II-D.2).

    Each CP contributes a set of flows; every flow runs the AIMD dynamics
    of {!Flow} over the shared droptail {!Link}.  Optionally, a periodic
    {e demand churn} step applies the CP's demand function to the measured
    per-flow throughput and adjusts the number of active flows — the
    simulated counterpart of [d_i(theta_i)] in the analytical model.

    Determinism: all randomness (start jitter) comes from the seeded
    generator; equal configs give equal results. *)

type cp_spec = {
  flows : int;  (** number of flows (users) of this CP, [>= 1] *)
  rate_cap : float;  (** per-flow unconstrained rate, packets/s *)
  rtt : float;  (** propagation RTT, seconds *)
  demand : Po_model.Demand.t option;
  (** when set and churn is enabled, governs how many flows stay active *)
}

type config = {
  capacity : float;  (** bottleneck rate, packets/s *)
  buffer : int;  (** queue size, packets *)
  queue_policy : Link.policy;  (** droptail (default) or RED *)
  specs : cp_spec array;
  seed : int;
  warmup : float;  (** seconds before measurement starts *)
  measure : float;  (** measurement duration, seconds *)
  churn_interval : float option;
  (** demand-churn period; [None] disables churn (all flows always on) *)
}

val default_config : capacity:float -> specs:cp_spec array -> config
(** Buffer = a quarter of the bandwidth-delay product against the mean
    RTT (min 32), droptail, seed 1, warmup 8 s, measure 24 s, no
    churn. *)

type cp_result = {
  spec_flows : int;
  active_flows : int;  (** active at the end of the run *)
  rate : float;  (** measured aggregate packets/s over the window *)
  per_flow : float;  (** [rate / active_flows] (0 when none active) *)
}

type result = {
  per_cp : cp_result array;
  total_rate : float;
  utilization : float;  (** [total_rate / capacity] *)
  drops : int;  (** tail drops over the whole run *)
  events : int;  (** events processed (diagnostic) *)
}

val run : config -> result
