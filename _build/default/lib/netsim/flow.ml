type t = {
  id : int;
  cp_index : int;
  rtt : float;
  pacing_interval : float;
  window_cap : float;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable in_flight : int;
  mutable next_send : float;
  mutable wake_at : float;
  mutable recovery_until : float;
  mutable acked : int;
  mutable active : bool;
}

let create ~id ~cp_index ~rtt ~rate_cap =
  if rtt <= 0. then invalid_arg "Flow.create: rtt <= 0";
  if rate_cap <= 0. then invalid_arg "Flow.create: rate_cap <= 0";
  { id; cp_index; rtt;
    pacing_interval = 1. /. rate_cap;
    window_cap = Float.max 4. (2. *. rate_cap *. rtt);
    cwnd = 1.; ssthresh = Float.max 2. (rate_cap *. rtt);
    in_flight = 0; next_send = 0.; wake_at = Float.infinity;
    recovery_until = 0.; acked = 0; active = true }

let effective_window t = Float.max 1. (Float.min t.cwnd t.window_cap)

let can_send t =
  t.active && float_of_int t.in_flight < effective_window t

let on_ack t =
  t.acked <- t.acked + 1;
  if t.in_flight > 0 then t.in_flight <- t.in_flight - 1;
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
  else t.cwnd <- t.cwnd +. (1. /. Float.max 1. t.cwnd);
  if t.cwnd > t.window_cap then t.cwnd <- t.window_cap

let on_loss t ~now =
  if t.in_flight > 0 then t.in_flight <- t.in_flight - 1;
  if now >= t.recovery_until then begin
    t.cwnd <- Float.max 1. (t.cwnd /. 2.);
    t.ssthresh <- Float.max 2. t.cwnd;
    t.recovery_until <- now +. t.rtt
  end

let reset_counters t = t.acked <- 0
