(** Discrete-event calendar: a binary min-heap of timestamped events.

    The simulator core.  Ties in timestamps are broken by insertion order
    (FIFO), which keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** Schedule an event; [time] must be finite and non-negative. *)

val peek_time : 'a t -> float option
(** Timestamp of the next event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)

val drain_until : 'a t -> time:float -> (float * 'a) list
(** Pop every event with timestamp [<= time], in order. *)
