(** Simulator-versus-model validation (the paper's Sec. II-D.2 claim that
    AIMD yields approximately max-min fair shares).

    Given a CP population and a per-capita capacity [nu], build the
    packet-level scenario (one flow per simulated user), run the AIMD
    simulation, solve the analytical max-min rate equilibrium on the
    {e discretised} population (the same integral flow counts), and report
    per-CP relative errors. *)

type cp_comparison = {
  label : string;
  flows : int;
  simulated_rate : float;  (** packets/s from the simulation *)
  predicted_rate : float;  (** packets/s from the max-min equilibrium *)
  relative_error : float;  (** |sim - model| / max(model, tiny) *)
}

type report = {
  per_cp : cp_comparison array;
  capacity : float;
  utilization : float;
  max_relative_error : float;
  mean_relative_error : float;
}

val compare :
  ?m_sim:int -> ?rate_scale:float -> ?rtt:float -> ?seed:int ->
  ?with_churn:bool -> ?queue_policy:Link.policy -> nu:float ->
  Po_model.Cp.t array -> report
(** [m_sim] simulated consumers (default 12); each CP gets
    [max 1 (round (alpha * m_sim))] flows.  [rate_scale] converts model
    throughput units into packets/s (default 400).  [rtt] (default 0.04 s)
    is shared by all flows — max-min emerges from AIMD only for comparable
    RTTs.  [with_churn] (default false) enables demand churn and compares
    against the full demand-coupled rate equilibrium; otherwise demand is
    treated as inelastic on both sides.  [queue_policy] selects the
    bottleneck's drop discipline (default droptail). *)

val rtt_bias_experiment :
  ?m_sim:int -> ?rate_scale:float -> ?seed:int -> nu:float ->
  rtt_ratios:float array -> Po_model.Cp.t array -> (float * float) array
(** Ablation: scale the RTT spread across CPs (ratio of largest to
    smallest) and report [(ratio, max_relative_error)] — quantifying when
    the paper's max-min abstraction starts to crack. *)
