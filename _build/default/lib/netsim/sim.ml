open Po_prng

type cp_spec = {
  flows : int;
  rate_cap : float;
  rtt : float;
  demand : Po_model.Demand.t option;
}

type config = {
  capacity : float;
  buffer : int;
  queue_policy : Link.policy;
  specs : cp_spec array;
  seed : int;
  warmup : float;
  measure : float;
  churn_interval : float option;
}

let default_config ~capacity ~specs =
  let mean_rtt =
    if Array.length specs = 0 then 0.05
    else
      Array.fold_left (fun acc s -> acc +. s.rtt) 0. specs
      /. float_of_int (Array.length specs)
  in
  (* A quarter of the bandwidth-delay product: big enough to keep the link
     busy, small enough that queueing delay does not dominate the RTT (a
     full-BDP buffer would starve application-limited flows of window). *)
  { capacity; buffer = max 32 (int_of_float (0.25 *. capacity *. mean_rtt));
    queue_policy = Link.Droptail; specs; seed = 1; warmup = 8.; measure = 24.;
    churn_interval = None }

type cp_result = {
  spec_flows : int;
  active_flows : int;
  rate : float;
  per_flow : float;
}

type result = {
  per_cp : cp_result array;
  total_rate : float;
  utilization : float;
  drops : int;
  events : int;
}

type event =
  | Depart
  | Ack of int  (** flow id *)
  | Wake of int  (** retry after a loss / activation *)
  | Churn

let run config =
  if config.capacity <= 0. then invalid_arg "Sim.run: capacity <= 0";
  if config.warmup < 0. || config.measure <= 0. then
    invalid_arg "Sim.run: bad warmup/measure";
  Array.iter
    (fun s ->
      if s.flows < 1 then invalid_arg "Sim.run: cp with no flows";
      if s.rate_cap <= 0. then invalid_arg "Sim.run: rate_cap <= 0";
      if s.rtt <= 0. then invalid_arg "Sim.run: rtt <= 0")
    config.specs;
  let rng = Splitmix.of_int config.seed in
  let link =
    Link.create ~policy:config.queue_policy ~capacity:config.capacity
      ~buffer:config.buffer ()
  in
  (* RED consumes one uniform draw per offered packet; droptail stays off
     the random stream so its runs are unchanged by the policy knob. *)
  let drop_roll () =
    match config.queue_policy with
    | Link.Droptail -> 1.
    | Link.Red _ -> Splitmix.float rng
  in
  let calendar : event Eventq.t = Eventq.create () in
  (* Build flows: contiguous id ranges per CP. *)
  let flows =
    let acc = ref [] and id = ref 0 in
    Array.iteri
      (fun cp_index spec ->
        for _ = 1 to spec.flows do
          acc :=
            Flow.create ~id:!id ~cp_index ~rtt:spec.rtt
              ~rate_cap:spec.rate_cap
            :: !acc;
          incr id
        done)
      config.specs;
    Array.of_list (List.rev !acc)
  in
  let events_processed = ref 0 in
  let measuring = ref false in
  (* Per-CP ack counters for the churn controller's running estimate. *)
  let churn_acks = Array.make (Array.length config.specs) 0 in
  (* Schedule a Wake for [flow] at [time] unless an earlier-or-equal one is
     already pending — without this guard every ack would enqueue a fresh
     pacing timer and stale timers would re-arm themselves, multiplying
     events without bound. *)
  let schedule_wake flow time =
    if time < flow.Flow.wake_at then begin
      flow.Flow.wake_at <- time;
      Eventq.add calendar ~time (Wake flow.Flow.id)
    end
  in
  let pump flow now =
    let continue = ref true in
    while !continue && Flow.can_send flow do
      if now < flow.Flow.next_send then begin
        (* Pacing gate closed: resume exactly when it opens. *)
        schedule_wake flow flow.Flow.next_send;
        continue := false
      end
      else begin
        flow.Flow.next_send <-
          Float.max (flow.Flow.next_send +. flow.Flow.pacing_interval) now;
        match Link.offer ~drop_roll:(drop_roll ()) link ~now ~flow_id:flow.Flow.id with
        | Link.Accepted depart_opt ->
            flow.Flow.in_flight <- flow.Flow.in_flight + 1;
            (match depart_opt with
            | Some t -> Eventq.add calendar ~time:t Depart
            | None -> ())
        | Link.Dropped ->
            (* The loss halves the window; pause until a retry timer so a
               closed window cannot spin at the same instant. *)
            flow.Flow.in_flight <- flow.Flow.in_flight + 1;
            Flow.on_loss flow ~now;
            schedule_wake flow (now +. flow.Flow.rtt);
            continue := false
      end
    done
  in
  (* Desynchronised starts. *)
  Array.iter
    (fun flow ->
      let jitter = Splitmix.uniform rng ~lo:0. ~hi:flow.Flow.rtt in
      schedule_wake flow jitter)
    flows;
  (match config.churn_interval with
  | Some dt when dt > 0. -> Eventq.add calendar ~time:dt Churn
  | Some _ -> invalid_arg "Sim.run: churn_interval <= 0"
  | None -> ());
  let horizon = config.warmup +. config.measure in
  let last_churn = ref 0. in
  (* EWMA per-CP estimate of achievable per-flow throughput.  Without
     smoothing an idle CP that probes at full optimism re-activates every
     flow each tick, overshoots, collapses, and oscillates at a ~50% duty
     cycle regardless of actual demand. *)
  let churn_estimate =
    Array.map (fun spec -> ref spec.rate_cap) config.specs
  in
  let apply_churn now =
    Array.iteri
      (fun cp_index spec ->
        match spec.demand with
        | None -> ()
        | Some demand ->
            let interval = now -. !last_churn in
            if interval > 0. then begin
              let active =
                Array.fold_left
                  (fun acc (f : Flow.t) ->
                    if f.Flow.cp_index = cp_index && f.Flow.active then
                      acc + 1
                    else acc)
                  0 flows
              in
              let estimate = churn_estimate.(cp_index) in
              (if active = 0 then
                 (* Users retry occasionally: drift the estimate slowly
                    towards the unconstrained rate so demand can recover
                    if congestion has cleared. *)
                 estimate := (0.95 *. !estimate) +. (0.05 *. spec.rate_cap)
               else begin
                 let measured =
                   float_of_int churn_acks.(cp_index)
                   /. interval /. float_of_int active
                 in
                 estimate := (0.7 *. !estimate) +. (0.3 *. measured)
               end);
              let d =
                Po_model.Demand.eval_throughput demand
                  ~theta_hat:spec.rate_cap
                  (Float.min !estimate spec.rate_cap)
              in
              (* Bernoulli per-flow activation: the expected number of
                 active flows is d * flows even when that is below one,
                 which an integral flow count cannot represent. *)
              Array.iter
                (fun (f : Flow.t) ->
                  if f.Flow.cp_index = cp_index then begin
                    let keep = Dist.bernoulli rng ~p:d in
                    if keep && not f.Flow.active then begin
                      f.Flow.active <- true;
                      schedule_wake f now
                    end
                    else if not keep then f.Flow.active <- false
                  end)
                flows
            end)
      config.specs;
    Array.fill churn_acks 0 (Array.length churn_acks) 0;
    last_churn := now
  in
  let rec loop () =
    match Eventq.pop calendar with
    | None -> ()
    | Some (now, _) when now > horizon -> ()
    | Some (now, event) ->
        incr events_processed;
        if (not !measuring) && now >= config.warmup then begin
          measuring := true;
          Array.iter Flow.reset_counters flows
        end;
        (match event with
        | Depart ->
            let flow_id, next = Link.complete_service link ~now in
            (match next with
            | Some t -> Eventq.add calendar ~time:t Depart
            | None -> ());
            let flow = flows.(flow_id) in
            (* +-2% ack jitter breaks the phase locking a fully
               deterministic droptail otherwise develops between
               identical-RTT AIMD flows (which silently biases long-run
               shares). *)
            let jitter = Splitmix.uniform rng ~lo:0.98 ~hi:1.02 in
            Eventq.add calendar
              ~time:(now +. (flow.Flow.rtt *. jitter))
              (Ack flow_id)
        | Ack flow_id ->
            let flow = flows.(flow_id) in
            Flow.on_ack flow;
            churn_acks.(flow.Flow.cp_index) <-
              churn_acks.(flow.Flow.cp_index) + 1;
            pump flow now
        | Wake flow_id ->
            let flow = flows.(flow_id) in
            if now >= flow.Flow.wake_at then flow.Flow.wake_at <- Float.infinity;
            pump flow now
        | Churn ->
            apply_churn now;
            (match config.churn_interval with
            | Some dt -> Eventq.add calendar ~time:(now +. dt) Churn
            | None -> ()));
        loop ()
  in
  loop ();
  let per_cp =
    Array.mapi
      (fun cp_index spec ->
        let acked = ref 0 and active = ref 0 in
        Array.iter
          (fun (f : Flow.t) ->
            if f.Flow.cp_index = cp_index then begin
              acked := !acked + f.Flow.acked;
              if f.Flow.active then incr active
            end)
          flows;
        let rate = float_of_int !acked /. config.measure in
        { spec_flows = spec.flows; active_flows = !active; rate;
          per_flow =
            (if !active = 0 then 0. else rate /. float_of_int !active) })
      config.specs
  in
  let total_rate = Array.fold_left (fun acc r -> acc +. r.rate) 0. per_cp in
  { per_cp; total_rate;
    utilization = total_rate /. config.capacity;
    drops = Link.drops link;
    events = !events_processed }
