open Po_prng

type config = {
  capacity_a : float;
  buffer_a : int;
  capacity_b : float;
  buffer_b : int;
  specs : Sim.cp_spec array;
  seed : int;
  warmup : float;
  measure : float;
}

let default_config ?(headroom = 4.) ~capacity_b ~specs () =
  if headroom < 1. then invalid_arg "Tandem.default_config: headroom < 1";
  let mean_rtt =
    if Array.length specs = 0 then 0.05
    else
      Array.fold_left (fun acc (s : Sim.cp_spec) -> acc +. s.Sim.rtt) 0. specs
      /. float_of_int (Array.length specs)
  in
  let capacity_a = headroom *. capacity_b in
  let buffer c = max 32 (int_of_float (0.25 *. c *. mean_rtt)) in
  { capacity_a; buffer_a = buffer capacity_a; capacity_b;
    buffer_b = buffer capacity_b; specs; seed = 1; warmup = 8.;
    measure = 24. }

type result = {
  per_cp : Sim.cp_result array;
  total_rate : float;
  utilization_a : float;
  utilization_b : float;
  drops_a : int;
  drops_b : int;
  events : int;
}

type event =
  | Depart_a
  | Depart_b
  | Ack of int
  | Wake of int

let run config =
  if config.capacity_a <= 0. || config.capacity_b <= 0. then
    invalid_arg "Tandem.run: capacity <= 0";
  if config.warmup < 0. || config.measure <= 0. then
    invalid_arg "Tandem.run: bad warmup/measure";
  Array.iter
    (fun (s : Sim.cp_spec) ->
      if s.Sim.flows < 1 then invalid_arg "Tandem.run: cp with no flows";
      if s.Sim.rate_cap <= 0. then invalid_arg "Tandem.run: rate_cap <= 0";
      if s.Sim.rtt <= 0. then invalid_arg "Tandem.run: rtt <= 0")
    config.specs;
  let rng = Splitmix.of_int config.seed in
  let link_a = Link.create ~capacity:config.capacity_a ~buffer:config.buffer_a () in
  let link_b = Link.create ~capacity:config.capacity_b ~buffer:config.buffer_b () in
  let calendar : event Eventq.t = Eventq.create () in
  let flows =
    let acc = ref [] and id = ref 0 in
    Array.iteri
      (fun cp_index (spec : Sim.cp_spec) ->
        for _ = 1 to spec.Sim.flows do
          acc :=
            Flow.create ~id:!id ~cp_index ~rtt:spec.Sim.rtt
              ~rate_cap:spec.Sim.rate_cap
            :: !acc;
          incr id
        done)
      config.specs;
    Array.of_list (List.rev !acc)
  in
  let events_processed = ref 0 in
  let measuring = ref false in
  let delivered_a = ref 0 in
  let schedule_wake flow time =
    if time < flow.Flow.wake_at then begin
      flow.Flow.wake_at <- time;
      Eventq.add calendar ~time (Wake flow.Flow.id)
    end
  in
  let pump flow now =
    let continue = ref true in
    while !continue && Flow.can_send flow do
      if now < flow.Flow.next_send then begin
        schedule_wake flow flow.Flow.next_send;
        continue := false
      end
      else begin
        flow.Flow.next_send <-
          Float.max (flow.Flow.next_send +. flow.Flow.pacing_interval) now;
        match Link.offer link_a ~now ~flow_id:flow.Flow.id with
        | Link.Accepted depart_opt ->
            flow.Flow.in_flight <- flow.Flow.in_flight + 1;
            (match depart_opt with
            | Some t -> Eventq.add calendar ~time:t Depart_a
            | None -> ())
        | Link.Dropped ->
            flow.Flow.in_flight <- flow.Flow.in_flight + 1;
            Flow.on_loss flow ~now;
            schedule_wake flow (now +. flow.Flow.rtt);
            continue := false
      end
    done
  in
  Array.iter
    (fun flow ->
      let jitter = Splitmix.uniform rng ~lo:0. ~hi:flow.Flow.rtt in
      schedule_wake flow jitter)
    flows;
  let horizon = config.warmup +. config.measure in
  let rec loop () =
    match Eventq.pop calendar with
    | None -> ()
    | Some (now, _) when now > horizon -> ()
    | Some (now, event) ->
        incr events_processed;
        if (not !measuring) && now >= config.warmup then begin
          measuring := true;
          delivered_a := 0;
          Array.iter Flow.reset_counters flows
        end;
        (match event with
        | Depart_a -> (
            let flow_id, next = Link.complete_service link_a ~now in
            (match next with
            | Some t -> Eventq.add calendar ~time:t Depart_a
            | None -> ());
            incr delivered_a;
            (* Hand the packet to the downstream link; a drop there is a
               loss the source attributes to the path as a whole. *)
            match Link.offer link_b ~now ~flow_id with
            | Link.Accepted (Some t) -> Eventq.add calendar ~time:t Depart_b
            | Link.Accepted None -> ()
            | Link.Dropped ->
                let flow = flows.(flow_id) in
                Flow.on_loss flow ~now;
                schedule_wake flow (now +. flow.Flow.rtt))
        | Depart_b ->
            let flow_id, next = Link.complete_service link_b ~now in
            (match next with
            | Some t -> Eventq.add calendar ~time:t Depart_b
            | None -> ());
            let flow = flows.(flow_id) in
            let jitter = Splitmix.uniform rng ~lo:0.98 ~hi:1.02 in
            Eventq.add calendar
              ~time:(now +. (flow.Flow.rtt *. jitter))
              (Ack flow_id)
        | Ack flow_id ->
            let flow = flows.(flow_id) in
            Flow.on_ack flow;
            pump flow now
        | Wake flow_id ->
            let flow = flows.(flow_id) in
            if now >= flow.Flow.wake_at then
              flow.Flow.wake_at <- Float.infinity;
            pump flow now);
        loop ()
  in
  loop ();
  let per_cp =
    Array.mapi
      (fun cp_index (spec : Sim.cp_spec) ->
        let acked = ref 0 and active = ref 0 in
        Array.iter
          (fun (f : Flow.t) ->
            if f.Flow.cp_index = cp_index then begin
              acked := !acked + f.Flow.acked;
              if f.Flow.active then incr active
            end)
          flows;
        let rate = float_of_int !acked /. config.measure in
        { Sim.spec_flows = spec.Sim.flows; active_flows = !active; rate;
          per_flow =
            (if !active = 0 then 0. else rate /. float_of_int !active) })
      config.specs
  in
  let total_rate =
    Array.fold_left (fun acc (r : Sim.cp_result) -> acc +. r.Sim.rate) 0. per_cp
  in
  { per_cp; total_rate;
    utilization_a =
      float_of_int !delivered_a /. config.measure /. config.capacity_a;
    utilization_b = total_rate /. config.capacity_b;
    drops_a = Link.drops link_a;
    drops_b = Link.drops link_b;
    events = !events_processed }

type equivalence = {
  headroom : float;
  tandem_rates : float array;
  single_rates : float array;
  max_relative_diff : float;
}

let single_bottleneck_equivalence ?(m_sim = 12) ?(rate_scale = 400.)
    ?(rtt = 0.04) ?(seed = 1) ~nu ~headrooms cps =
  let specs =
    Array.map
      (fun (cp : Po_model.Cp.t) ->
        { Sim.flows =
            max 1
              (int_of_float
                 (Float.round (cp.Po_model.Cp.alpha *. float_of_int m_sim)));
          rate_cap = cp.Po_model.Cp.theta_hat *. rate_scale;
          rtt;
          demand = None })
      cps
  in
  let capacity = nu *. float_of_int m_sim *. rate_scale in
  let single =
    Sim.run { (Sim.default_config ~capacity ~specs) with seed }
  in
  let single_rates =
    Array.map (fun (r : Sim.cp_result) -> r.Sim.rate) single.Sim.per_cp
  in
  Array.map
    (fun headroom ->
      let cfg =
        { (default_config ~headroom ~capacity_b:capacity ~specs ()) with seed }
      in
      let tandem = run cfg in
      let tandem_rates =
        Array.map (fun (r : Sim.cp_result) -> r.Sim.rate) tandem.per_cp
      in
      let max_relative_diff =
        let worst = ref 0. in
        Array.iteri
          (fun i s ->
            let denom = Float.max s (0.01 *. capacity) in
            worst := Float.max !worst (Float.abs (tandem_rates.(i) -. s) /. denom))
          single_rates;
        !worst
      in
      { headroom; tandem_rates; single_rates; max_relative_diff })
    headrooms
