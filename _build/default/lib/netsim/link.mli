(** The bottleneck link: a fixed-rate server with a finite FIFO and a
    configurable drop policy.

    Packets have unit size; the link serves [capacity] packets per second.
    [offer] either accepts a packet (returning the scheduled departure
    instant when the link was idle) or reports a drop — a forced tail
    drop when the buffer is full, or an early RED drop.

    RED (random early detection) keeps an exponentially weighted moving
    average of the queue occupancy and drops incoming packets with a
    probability that ramps linearly from 0 at [min_th] to [max_p] at
    [max_th] (and 1 beyond) — desynchronising AIMD flows before the
    buffer overflows. *)

type policy =
  | Droptail
  | Red of { min_th : float; max_th : float; max_p : float; weight : float }
      (** thresholds in packets, [0 < min_th < max_th],
          [max_p in (0, 1]], EWMA [weight in (0, 1]] *)

type t

type offer_result =
  | Accepted of float option
      (** [Some departure_time] when the link was idle and service starts
          immediately; [None] when the packet joined the queue. *)
  | Dropped

val create : ?policy:policy -> capacity:float -> buffer:int -> unit -> t
(** [capacity > 0] packets/s; [buffer >= 1] packets of queue space
    (including the one in service).  Policy defaults to [Droptail]. *)

val offer : ?drop_roll:float -> t -> now:float -> flow_id:int -> offer_result
(** [drop_roll] is a uniform [[0, 1)] sample consumed by RED's
    probabilistic drop (ignored under droptail; defaults to [1.], i.e.
    never early-drop — pass a PRNG draw to enable RED behaviour). *)

val complete_service : t -> now:float -> int * float option
(** Called at a departure instant: returns the flow id of the departed
    packet and, if the queue is non-empty, the departure time of the next
    packet (which the caller must schedule). *)

val occupancy : t -> int
(** Packets currently held (queued + in service). *)

val avg_occupancy : t -> float
(** RED's EWMA of the occupancy (equals the instantaneous occupancy under
    droptail). *)

val drops : t -> int
(** Total drops (tail + early). *)

val early_drops : t -> int
(** RED early drops only. *)

val service_time : t -> float
