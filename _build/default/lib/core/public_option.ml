type regime_result = {
  label : string;
  phi : float;
  psi : float;
  commercial_strategy : Strategy.t option;
  market_share : float option;
}

let unregulated ?(levels = 3) ?(points = 13) ~nu cps =
  let strategy, outcome = Monopoly.optimal_strategy ~levels ~points ~nu cps in
  { label = "unregulated monopoly";
    phi = outcome.Cp_game.phi;
    psi = outcome.Cp_game.psi;
    commercial_strategy = Some strategy;
    market_share = None }

let neutral ~nu cps =
  let outcome = Cp_game.solve ~nu ~strategy:Strategy.public_option cps in
  { label = "network-neutral regulation";
    phi = outcome.Cp_game.phi;
    psi = outcome.Cp_game.psi;
    commercial_strategy = Some Strategy.public_option;
    market_share = None }

let public_option ?(po_share = 0.5) ?(levels = 2) ?(points = 9) ~nu cps =
  if not (po_share > 0. && po_share < 1.) then
    invalid_arg "Public_option.public_option: po_share outside (0, 1)";
  let cfg =
    Duopoly.config ~gamma_i:(1. -. po_share) ~nu
      ~strategy_i:Strategy.public_option ()
  in
  let strategy, eq = Duopoly.best_response_market_share ~levels ~points ~config:cfg cps in
  { label = Printf.sprintf "public option (share %g)" po_share;
    phi = eq.Duopoly.phi;
    psi = eq.Duopoly.psi_i;
    commercial_strategy = Some strategy;
    market_share = Some eq.Duopoly.m_i }

let compare_regimes ?po_share ?levels ?points ~nu cps =
  [ unregulated ?levels ?points ~nu cps;
    neutral ~nu cps;
    public_option ?po_share ?levels ?points ~nu cps ]

let check_ordering results =
  let find prefix =
    List.find_opt
      (fun r ->
        String.length r.label >= String.length prefix
        && String.sub r.label 0 (String.length prefix) = prefix)
      results
  in
  match (find "unregulated", find "network-neutral", find "public option") with
  | Some u, Some n, Some p ->
      let tol = 1e-6 +. (1e-3 *. Float.max 1. p.phi) in
      if p.phi < n.phi -. tol then
        Error
          (Printf.sprintf "public option Phi=%g below neutral Phi=%g" p.phi
             n.phi)
      else if n.phi < u.phi -. tol then
        Error
          (Printf.sprintf "neutral Phi=%g below unregulated Phi=%g" n.phi
             u.phi)
      else Ok ()
  | _ -> Error "check_ordering: missing regimes in input"
