lib/core/po_sizing.ml: Array Duopoly Public_option Strategy
