lib/core/monopoly.ml: Array Cp Cp_game Float Partition Po_model Po_num Printf Strategy
