lib/core/migration.mli: Oligopoly Po_model
