lib/core/strategy.ml: Array Float Format Po_num
