lib/core/oligopoly.mli: Cp_game Po_model Strategy
