lib/core/duopoly.mli: Cp_game Po_model Strategy
