lib/core/investment.ml: Array Duopoly Float Monopoly Po_model Po_num Strategy
