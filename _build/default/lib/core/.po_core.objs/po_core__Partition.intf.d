lib/core/partition.mli: Format Po_model
