lib/core/monopoly.mli: Cp_game Po_model Strategy
