lib/core/migration.ml: Array Cp Cp_game Float Oligopoly Po_model Po_num
