lib/core/oligopoly.ml: Array Cp Cp_game Float Hashtbl Po_model Po_num Printf Strategy
