lib/core/duopoly.ml: Array Cp Cp_game Float Po_model Po_num Printf Strategy
