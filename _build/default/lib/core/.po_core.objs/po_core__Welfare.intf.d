lib/core/welfare.mli: Cp_game Duopoly Format Oligopoly Po_model
