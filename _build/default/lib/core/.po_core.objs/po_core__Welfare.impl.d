lib/core/welfare.ml: Array Cp Cp_game Duopoly Format Monopoly Oligopoly Partition Po_model Printf Strategy
