lib/core/metrics.ml: Array Cp_game Float Po_num
