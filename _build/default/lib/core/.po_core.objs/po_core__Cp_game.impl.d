lib/core/cp_game.ml: Array Cp Equilibrium Float Hashtbl Logs Partition Po_model Printf Strategy Surplus
