lib/core/public_option.ml: Cp_game Duopoly Float List Monopoly Printf Strategy String
