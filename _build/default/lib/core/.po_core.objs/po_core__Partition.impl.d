lib/core/partition.ml: Array Format String
