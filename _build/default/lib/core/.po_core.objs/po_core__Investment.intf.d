lib/core/investment.mli: Po_model Strategy
