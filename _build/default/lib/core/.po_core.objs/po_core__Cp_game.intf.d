lib/core/cp_game.mli: Partition Po_model Strategy
