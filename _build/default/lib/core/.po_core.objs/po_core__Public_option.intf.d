lib/core/public_option.mli: Po_model Strategy
