lib/core/metrics.mli: Po_model Strategy
