lib/core/po_sizing.mli: Po_model Strategy
