(** Regime comparison: the paper's headline experiment (Sec. III-E, IV-A,
    Sec. VI).

    For a fixed consumer population and total per-capita capacity [nu],
    compare the per-capita consumer surplus achieved under:

    - {b unregulated monopoly}: one ISP holds all capacity and plays its
      revenue-optimal [(kappa, c)];
    - {b network-neutral regulation}: the monopolist is forced to [(0, 0)];
    - {b public option}: a slice of the capacity is carved out for a
      Public Option ISP playing [(0, 0)]; the commercial ISP keeps the
      rest and picks the strategy that maximises its {e market share}
      (which, by Theorem 5, also maximises consumer surplus).

    Theorem 5 and the surrounding analysis predict the ordering

    {v Phi(public option) >= Phi(neutral) >= Phi(unregulated) v}

    with the neutral-regulation value equal to [Phi(nu, N)] because two
    neutral ISPs in migration equilibrium replicate a single neutral
    network (Lemma 4). *)

type regime_result = {
  label : string;
  phi : float;  (** population per-capita consumer surplus *)
  psi : float;  (** commercial ISP(s) premium revenue per total capita *)
  commercial_strategy : Strategy.t option;
  (** the strategy the commercial ISP ends up playing, when there is one *)
  market_share : float option;
  (** the commercial ISP's consumer share, when a Public Option competes *)
}

val unregulated : ?levels:int -> ?points:int -> nu:float -> Po_model.Cp.t array -> regime_result
val neutral : nu:float -> Po_model.Cp.t array -> regime_result

val public_option :
  ?po_share:float -> ?levels:int -> ?points:int -> nu:float ->
  Po_model.Cp.t array -> regime_result
(** [po_share] (default [0.5]) is the fraction of total capacity given to
    the Public Option ISP. *)

val compare_regimes :
  ?po_share:float -> ?levels:int -> ?points:int -> nu:float ->
  Po_model.Cp.t array -> regime_result list
(** All three regimes, in the order unregulated, neutral, public option. *)

val check_ordering : regime_result list -> (unit, string) result
(** Audit the Theorem-5 ordering on the output of {!compare_regimes},
    allowing a small numerical slack. *)
