type t = bool array
(* Invariant: treated as immutable; every exposed constructor copies. *)

let all_ordinary n =
  if n < 0 then invalid_arg "Partition.all_ordinary: negative size";
  Array.make n false

let of_premium_indicator a = Array.copy a

let of_premium_pred cps pred = Array.map pred cps

let size = Array.length
let in_premium t i = t.(i)

let premium_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t

let ordinary_count t = size t - premium_count t

let check_size t cps =
  if Array.length cps <> size t then
    invalid_arg "Partition: CP array size mismatch"

let filter_members t cps keep_premium =
  check_size t cps;
  let out = ref [] in
  for i = size t - 1 downto 0 do
    if t.(i) = keep_premium then out := cps.(i) :: !out
  done;
  Array.of_list !out

let premium_members t cps = filter_members t cps true
let ordinary_members t cps = filter_members t cps false

let filter_indices t keep_premium =
  let out = ref [] in
  for i = size t - 1 downto 0 do
    if t.(i) = keep_premium then out := i :: !out
  done;
  Array.of_list !out

let premium_indices t = filter_indices t true
let ordinary_indices t = filter_indices t false

let move t i ~premium =
  if i < 0 || i >= size t then invalid_arg "Partition.move: index out of bounds";
  let t' = Array.copy t in
  t'.(i) <- premium;
  t'

let equal a b = a = b

let key t = String.init (size t) (fun i -> if t.(i) then 'P' else 'O')

let pp fmt t =
  Format.fprintf fmt "@[<h>{premium: %d/%d}@]" (premium_count t) (size t)
