(** ISP strategies (Sec. III-A).

    A strategy [s = (kappa, c)] devotes a fraction [kappa] of the ISP's
    capacity to a premium service class charged at rate [c] per unit of
    traffic; the remaining [1 - kappa] serves an ordinary, charge-free
    class.  This is a Paris-Metro-Pricing style two-class differentiation
    where the {e content providers} (not consumers) pick classes. *)

type t = private { kappa : float; c : float }

val make : kappa:float -> c:float -> t
(** Requires [kappa in [0, 1]] and [c >= 0]. *)

val kappa : t -> float
val c : t -> float

val public_option : t
(** [(0, 0)]: no premium class, no charges — the strategy a Public Option
    ISP commits to (Definition 5), also the strategy network-neutrality
    regulation would impose. *)

val is_public_option : t -> bool
(** Whether the strategy is exactly [(0, 0)]. *)

val is_neutral : t -> bool
(** Whether the strategy induces no paid prioritisation: either no premium
    capacity ([kappa = 0]) or a free premium class ([c = 0]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val grid : ?kappas:float array -> ?cs:float array -> unit -> t array
(** Cartesian strategy grid; defaults to 11 x 11 points on
    [[0,1] x [0,1]]. *)
