(** Service-class partitions [(O, P)] of a CP population (Sec. III-B).

    Represented as a membership vector: entry [i] is [true] when CP [i]
    joined the premium class.  [O union P = N] and [O inter P = empty]
    hold by construction. *)

type t

val all_ordinary : int -> t
(** Everyone in the ordinary class (the trivial profile for
    [kappa = 0]). *)

val of_premium_indicator : bool array -> t
val of_premium_pred : Po_model.Cp.t array -> (Po_model.Cp.t -> bool) -> t
(** Partition placing exactly the CPs satisfying the predicate in the
    premium class. *)

val size : t -> int
val in_premium : t -> int -> bool
val premium_count : t -> int
val ordinary_count : t -> int

val premium_members : t -> Po_model.Cp.t array -> Po_model.Cp.t array
val ordinary_members : t -> Po_model.Cp.t array -> Po_model.Cp.t array
(** Subset views; the CP array must have the partition's size.  Order is
    preserved. *)

val premium_indices : t -> int array
val ordinary_indices : t -> int array

val move : t -> int -> premium:bool -> t
(** Functional update of one CP's class. *)

val equal : t -> t -> bool
val key : t -> string
(** Compact string key (for cycle-detection hash tables). *)

val pp : Format.formatter -> t -> unit
