examples/public_option_duopoly.ml: Array Cp_game Duopoly Float Format Migration Oligopoly Po_core Po_num Po_workload Strategy
