examples/public_option_duopoly.mli:
