examples/monopoly_regulation.ml: Array Cp_game Format List Monopoly Po_core Po_num Po_workload Public_option Strategy
