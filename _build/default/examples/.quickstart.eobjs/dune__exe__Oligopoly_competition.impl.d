examples/oligopoly_competition.ml: Array Format Oligopoly Po_core Po_workload Strategy
