examples/policy_analysis.mli:
