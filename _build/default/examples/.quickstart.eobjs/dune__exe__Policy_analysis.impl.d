examples/policy_analysis.ml: Array Cp_game Format List Oligopoly Po_core Po_sizing Po_workload Strategy Welfare
