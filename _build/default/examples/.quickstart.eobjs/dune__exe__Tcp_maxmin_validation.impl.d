examples/tcp_maxmin_validation.ml: Array Format List Po_netsim Po_workload
