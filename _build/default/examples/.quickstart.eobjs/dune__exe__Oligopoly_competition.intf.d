examples/oligopoly_competition.mli:
