examples/quickstart.mli:
