examples/monopoly_regulation.mli:
