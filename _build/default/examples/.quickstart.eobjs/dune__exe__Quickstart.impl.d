examples/quickstart.ml: Array Cp Equilibrium Format List Maxmin Po_core Po_model Po_workload Printf Surplus
