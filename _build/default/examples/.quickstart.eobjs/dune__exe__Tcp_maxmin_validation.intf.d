examples/tcp_maxmin_validation.mli:
