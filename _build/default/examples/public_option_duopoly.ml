(* The Public Option experiment (paper Sec. IV-A): a commercial ISP
   competes with a neutral Public Option ISP for consumers; consumers
   migrate to whichever delivers higher per-capita surplus.

   Run with: dune exec examples/public_option_duopoly.exe *)

open Po_core

let () =
  let cps = Po_workload.Ensemble.paper_ensemble ~n:400 ~seed:7 () in
  let saturation = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.5 *. saturation in
  Format.printf "%d CPs, total per-capita capacity nu = %.1f (half of \
                 saturation), equal capacity split@."
    (Array.length cps) nu;

  (* Sweep the commercial ISP's premium price with kappa_I = 1. *)
  Format.printf "@.commercial ISP price sweep (kappa_I = 1):@.";
  Format.printf "  %-6s %-9s %-10s %-10s %-9s@." "c_I" "m_I" "Psi_I" "Phi"
    "interior";
  let cfg = Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:0.) () in
  let cs = Po_num.Grid.linspace 0. 1. 11 in
  Array.iter
    (fun (eq : Duopoly.equilibrium) ->
      Format.printf "  %-6.2f %-9.4f %-10.3f %-10.3f %-9b@."
        (Strategy.c eq.Duopoly.outcome_i.Cp_game.strategy)
        eq.Duopoly.m_i eq.Duopoly.psi_i eq.Duopoly.phi eq.Duopoly.interior)
    (Duopoly.price_sweep ~kappa_i:1. ~config:cfg ~cs cps);

  (* The commercial ISP's best response for market share, and the
     Theorem-5 alignment with consumer surplus. *)
  let share_s, share_eq = Duopoly.best_response_market_share ~config:cfg cps in
  let phi_s, phi_eq = Duopoly.best_response_consumer_surplus ~config:cfg cps in
  Format.printf "@.market-share best response: %s -> m_I = %.4f, Phi = %.3f@."
    (Strategy.to_string share_s) share_eq.Duopoly.m_i share_eq.Duopoly.phi;
  Format.printf "surplus best response:      %s -> m_I = %.4f, Phi = %.3f@."
    (Strategy.to_string phi_s) phi_eq.Duopoly.m_i phi_eq.Duopoly.phi;
  Format.printf "Theorem 5 alignment gap: %.4f (share-chasing costs \
                 consumers this much Phi)@."
    (Float.max 0. (phi_eq.Duopoly.phi -. share_eq.Duopoly.phi));

  (* Watch the migration process itself converge (Assumption 5). *)
  let ocfg =
    Oligopoly.config ~nu
      [| { Oligopoly.label = "commercial"; gamma = 0.5;
           strategy = share_s };
         { Oligopoly.label = "public-option"; gamma = 0.5;
           strategy = Strategy.public_option } |]
  in
  let state0 =
    Migration.init_with ~shares:[| 0.9; 0.1 |] ocfg cps
  in
  Format.printf
    "@.migration dynamics from a 90/10 split (replicator steps):@.";
  let rec show state steps =
    if steps > 24 then state
    else begin
      if steps mod 4 = 0 then
        Format.printf "  t=%-3d shares = %.4f / %.4f  (Phi_I = %.3f, \
                       Phi_PO = %.3f)@."
          state.Migration.time state.Migration.shares.(0)
          state.Migration.shares.(1) state.Migration.phis.(0)
          state.Migration.phis.(1);
      show (Migration.step ocfg cps state) (steps + 1)
    end
  in
  let final = show state0 0 in
  let eq = Oligopoly.solve ocfg cps in
  Format.printf
    "  equal-surplus solver agrees: shares = %.4f / %.4f (dynamics \
     reached %.4f / %.4f)@."
    eq.Oligopoly.shares.(0) eq.Oligopoly.shares.(1) final.Migration.shares.(0)
    final.Migration.shares.(1)
