(* Microfoundation check (paper Sec. II-D.2): the paper models TCP as a
   max-min fair allocator.  This example runs the packet-level AIMD
   simulator on the three-CP scenario and compares measured per-CP rates
   against the analytical max-min equilibrium, then shows how RTT
   heterogeneity erodes the approximation.

   Run with: dune exec examples/tcp_maxmin_validation.exe *)

let () =
  let cps = Po_workload.Scenario.three_cp () in
  Format.printf "AIMD packet simulation vs max-min model (3 CPs)@.";
  List.iter
    (fun nu ->
      let r = Po_netsim.Validate.compare ~nu cps in
      Format.printf "@.nu = %.1f (utilization %.3f):@." nu
        r.Po_netsim.Validate.utilization;
      Format.printf "  %-8s %-6s %-12s %-12s %-8s@." "cp" "flows" "sim pkt/s"
        "model pkt/s" "rel.err";
      Array.iter
        (fun (c : Po_netsim.Validate.cp_comparison) ->
          Format.printf "  %-8s %-6d %-12.1f %-12.1f %-8.3f@."
            c.Po_netsim.Validate.label c.Po_netsim.Validate.flows
            c.Po_netsim.Validate.simulated_rate
            c.Po_netsim.Validate.predicted_rate
            c.Po_netsim.Validate.relative_error)
        r.Po_netsim.Validate.per_cp)
    [ 1.0; 2.5; 4.0 ];

  (* Demand churn: users abandon CPs whose throughput disappoints, the
     analytical counterpart being the demand-coupled rate equilibrium. *)
  let churn = Po_netsim.Validate.compare ~with_churn:true ~nu:2.0 cps in
  Format.printf "@.with demand churn at nu = 2.0 (mean rel. err %.3f):@."
    churn.Po_netsim.Validate.mean_relative_error;
  Array.iter
    (fun (c : Po_netsim.Validate.cp_comparison) ->
      Format.printf "  %-8s sim %.1f vs model %.1f pkt/s@."
        c.Po_netsim.Validate.label c.Po_netsim.Validate.simulated_rate
        c.Po_netsim.Validate.predicted_rate)
    churn.Po_netsim.Validate.per_cp;

  (* RTT-heterogeneity ablation: AIMD favours short-RTT flows, so the
     max-min abstraction degrades as the spread widens. *)
  Format.printf "@.RTT-bias ablation at nu = 2.5:@.";
  Array.iter
    (fun (ratio, err) ->
      Format.printf "  RTT spread x%-4.0f -> max relative error %.3f@." ratio
        err)
    (Po_netsim.Validate.rtt_bias_experiment ~nu:2.5
       ~rtt_ratios:[| 1.; 2.; 4.; 8. |] cps)
