(* Monopoly analysis (paper Sec. III): sweep the monopolist's price, find
   its revenue-optimal strategy at scarce and abundant capacity, and show
   where regulation helps consumers.

   Run with: dune exec examples/monopoly_regulation.exe *)

open Po_core

let () =
  let cps = Po_workload.Ensemble.paper_ensemble ~n:400 ~seed:7 () in
  let saturation = Po_workload.Ensemble.saturation_nu cps in
  Format.printf "population: %d CPs, saturation nu = %.1f@."
    (Array.length cps) saturation;

  (* Price sweep at kappa = 1 (the dominant choice, Theorem 4). *)
  let nu_scarce = 0.15 *. saturation in
  let nu_abundant = 0.85 *. saturation in
  List.iter
    (fun (name, nu) ->
      Format.printf "@.price sweep at %s capacity (nu = %.1f):@." name nu;
      Format.printf "  %-6s %-10s %-10s %-9s %-6s@." "c" "Psi" "Phi"
        "premium" "util";
      let cs = Po_num.Grid.linspace 0. 1. 11 in
      Array.iter
        (fun (p : Monopoly.price_point) ->
          Format.printf "  %-6.2f %-10.3f %-10.3f %-9d %-6.2f@."
            p.Monopoly.c p.Monopoly.psi p.Monopoly.phi
            p.Monopoly.premium_count p.Monopoly.utilization)
        (Monopoly.price_sweep ~kappa:1. ~nu ~cs cps))
    [ ("scarce", nu_scarce); ("abundant", nu_abundant) ];

  (* The revenue-optimal strategy and what it does to consumers. *)
  let strategy, outcome = Monopoly.optimal_strategy ~nu:nu_abundant cps in
  Format.printf "@.revenue-optimal strategy at abundant capacity: %s@."
    (Strategy.to_string strategy);
  Format.printf "  Psi = %.3f, Phi = %.3f@." outcome.Cp_game.psi
    outcome.Cp_game.phi;

  (* Compare regulatory regimes, including a kappa cap (the Shetty-style
     tool the paper discusses) and the Public Option. *)
  Format.printf "@.regimes at abundant capacity:@.";
  List.iter
    (fun (r : Public_option.regime_result) ->
      Format.printf "  %-34s Phi = %8.3f  Psi = %8.3f%s@."
        r.Public_option.label r.Public_option.phi r.Public_option.psi
        (match r.Public_option.commercial_strategy with
        | Some s -> "  (plays " ^ Strategy.to_string s ^ ")"
        | None -> ""))
    (Public_option.compare_regimes ~nu:nu_abundant ~levels:2 ~points:9 cps);
  let capped = Monopoly.regime_outcome ~nu:nu_abundant (Monopoly.Capped 0.3) cps in
  Format.printf "  %-34s Phi = %8.3f  Psi = %8.3f@." "kappa capped at 0.3"
    capped.Cp_game.phi capped.Cp_game.psi
