(* Quickstart: build a three-CP system, solve its rate equilibrium under
   max-min fairness, and read off throughput, demand and consumer surplus.

   Run with: dune exec examples/quickstart.exe *)

open Po_model

let () =
  (* The paper's Sec. II-D example: a Google-type, a Netflix-type and a
     Skype-type CP, with business parameters attached. *)
  let cps = Po_workload.Scenario.three_cp_priced () in
  Array.iter (fun cp -> Format.printf "%a@." Cp.pp cp) cps;

  (* Capacity needed to serve everyone's unconstrained demand. *)
  let saturation = Po_workload.Ensemble.saturation_nu cps in
  Format.printf "@.saturation per-capita capacity: %.2f@." saturation;

  (* Solve the rate equilibrium (Theorem 1) at a few capacities. *)
  Format.printf "@.%-8s %-44s %-8s@." "nu" "theta (google, netflix, skype)"
    "Phi";
  List.iter
    (fun nu ->
      let sol = Maxmin.solve ~nu cps in
      let phi = Surplus.consumer cps sol in
      Format.printf "%-8.2f %-44s %-8.3f@." nu
        (Printf.sprintf "%.3f / %.3f / %.3f (demand %.2f / %.2f / %.2f)"
           sol.Equilibrium.theta.(0) sol.Equilibrium.theta.(1)
           sol.Equilibrium.theta.(2) sol.Equilibrium.demand.(0)
           sol.Equilibrium.demand.(1) sol.Equilibrium.demand.(2))
        phi)
    [ 0.5; 1.5; 3.0; 4.5; saturation ];

  (* Now let a monopolistic ISP price-discriminate: premium class with
     kappa = 0.6 of the capacity at price c = 0.3 per unit of traffic. *)
  let nu = 3.0 in
  let strategy = Po_core.Strategy.make ~kappa:0.6 ~c:0.3 in
  let outcome = Po_core.Cp_game.solve ~nu ~strategy cps in
  Format.printf "@.two-class outcome at nu=%.1f under %s:@." nu
    (Po_core.Strategy.to_string strategy);
  Array.iteri
    (fun i cp ->
      Format.printf "  %-8s -> %s class, theta=%.3f@." cp.Cp.label
        (if Po_core.Partition.in_premium outcome.Po_core.Cp_game.partition i
         then "premium"
         else "ordinary")
        outcome.Po_core.Cp_game.theta.(i))
    cps;
  Format.printf "  consumer surplus Phi = %.3f, ISP surplus Psi = %.3f@."
    outcome.Po_core.Cp_game.phi outcome.Po_core.Cp_game.psi
