(* Oligopoly competition (paper Sec. IV-B): market shares track capacity
   shares under homogeneous strategies (Lemma 4), best responses for
   market share nearly maximise consumer surplus (Theorem 6), and
   best-response dynamics settle into a market-share Nash equilibrium.

   Run with: dune exec examples/oligopoly_competition.exe *)

open Po_core

let () =
  let cps = Po_workload.Ensemble.paper_ensemble ~n:250 ~seed:11 () in
  let saturation = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.5 *. saturation in

  (* Lemma 4: homogeneous strategies, heterogeneous capacities. *)
  let homogeneous =
    Oligopoly.homogeneous ~gammas:[| 0.45; 0.3; 0.15; 0.1 |] ~nu ~n:4
      ~strategy:(Strategy.make ~kappa:0.5 ~c:0.3) ()
  in
  let eq = Oligopoly.solve homogeneous cps in
  Format.printf "Lemma 4 (homogeneous strategies):@.";
  Array.iteri
    (fun i (isp : Oligopoly.isp) ->
      Format.printf "  %-8s capacity share %.2f -> market share %.4f@."
        isp.Oligopoly.label isp.Oligopoly.gamma eq.Oligopoly.shares.(i))
    homogeneous.Oligopoly.isps;
  Format.printf "  common surplus level Phi* = %.3f@."
    eq.Oligopoly.phi_star;

  (* Theorem 6: alignment of share-chasing and surplus for one ISP. *)
  let mixed =
    Oligopoly.config ~nu
      [| { Oligopoly.label = "challenger"; gamma = 0.4;
           strategy = Strategy.public_option };
         { Oligopoly.label = "incumbent"; gamma = 0.6;
           strategy = Strategy.make ~kappa:0.8 ~c:0.4 } |]
  in
  let audit = Oligopoly.theorem6_audit ~i:0 mixed cps in
  Format.printf "@.Theorem 6 audit for the challenger:@.";
  Format.printf "  share-maximising strategy  : %s@."
    (Strategy.to_string audit.Oligopoly.share_best);
  Format.printf "  surplus-maximising strategy: %s@."
    (Strategy.to_string audit.Oligopoly.surplus_best);
  Format.printf "  Phi deficit of share-chasing: %.4f (epsilon bound from \
                 rivals' curves: %.4f)@."
    audit.Oligopoly.phi_deficit audit.Oligopoly.epsilon_rivals;

  (* Best-response dynamics over a strategy menu. *)
  let final, final_eq, converged = Oligopoly.market_share_nash mixed cps in
  Format.printf "@.best-response dynamics (%s):@."
    (if converged then "converged" else "stopped at round cap");
  Array.iteri
    (fun i (isp : Oligopoly.isp) ->
      Format.printf "  %-10s plays %s with market share %.4f@."
        isp.Oligopoly.label
        (Strategy.to_string isp.Oligopoly.strategy)
        final_eq.Oligopoly.shares.(i))
    final.Oligopoly.isps;
  Format.printf "  equilibrium surplus Phi* = %.3f@."
    final_eq.Oligopoly.phi_star
