(* Policy analysis: the regulator's view.

   Combines the extension modules into the analysis a policy shop would
   actually run on a market: (1) compare the regulatory regimes on
   consumer surplus, (2) decompose welfare to see who pays, (3) size the
   Public Option, (4) check what competition alone would deliver.

   Run with: dune exec examples/policy_analysis.exe *)

open Po_core

let () =
  let cps = Po_workload.Ensemble.paper_ensemble ~n:100 ~seed:2026 () in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.85 *. sat in
  Format.printf
    "market: %d CPs, per-capita capacity %.1f (85%% of saturation — the \
     abundant regime where the monopoly misalignment bites)@."
    (Array.length cps) nu;

  (* 1. Who does each regime serve? *)
  Format.printf "@.[1] welfare decomposition per regime@.";
  Format.printf "    %-34s %10s %10s %10s %10s@." "regime" "consumer" "isp"
    "cp" "total";
  List.iter
    (fun (label, w) ->
      Format.printf "    %-34s %10.3f %10.3f %10.3f %10.3f@." label
        w.Welfare.consumer w.Welfare.isp w.Welfare.cp w.Welfare.total)
    (Welfare.regime_table ~levels:2 ~points:7 ~nu cps);

  (* 2. How much capacity must the Public Option control? *)
  Format.printf "@.[2] sizing the Public Option@.";
  let eff =
    Po_sizing.effectiveness ~levels:2 ~points:7 ~nu
      ~po_shares:[| 0.1; 0.3; 0.5 |] cps
  in
  Format.printf "    baselines: Phi(unregulated) = %.3f, Phi(neutral \
                 regulation) = %.3f@."
    eff.Po_sizing.phi_unregulated eff.Po_sizing.phi_neutral;
  Array.iter
    (fun (p : Po_sizing.point) ->
      Format.printf
        "    PO share %4.2f -> Phi = %8.3f  (commercial plays %s, keeps \
         %.0f%% of consumers)@."
        p.Po_sizing.po_share p.Po_sizing.phi
        (Strategy.to_string p.Po_sizing.commercial_strategy)
        (100. *. p.Po_sizing.commercial_share))
    eff.Po_sizing.sweep;
  (match eff.Po_sizing.minimum_effective_share with
  | Some share ->
      Format.printf
        "    => a %.0f%% public slice already beats full neutrality \
         regulation (the paper's Sec. VI conjecture)@."
        (100. *. share)
  | None -> Format.printf "    => no swept share sufficed (unexpected)@.");

  (* 3. Or just let more ISPs in? *)
  Format.printf "@.[3] competition instead of regulation@.";
  let menu =
    Strategy.grid ~kappas:[| 0.; 0.5; 1. |] ~cs:[| 0.1; 0.3; 0.6 |] ()
  in
  List.iter
    (fun n ->
      let cfg =
        Oligopoly.homogeneous ~nu ~n ~strategy:Strategy.public_option ()
      in
      let _, eq, converged =
        Oligopoly.market_share_nash ~rounds:3 ~strategies:menu cfg cps
      in
      Format.printf
        "    %d ISPs: market-share Nash Phi* = %8.3f%s@." n
        eq.Oligopoly.phi_star
        (if converged then "" else "  (dynamics hit the round cap)"))
    [ 2; 3 ];
  let neutral =
    (Cp_game.solve ~nu ~strategy:Strategy.public_option cps).Cp_game.phi
  in
  Format.printf "    full-neutral benchmark: %.3f@." neutral;

  (* 4. Subsidies: can a commercial ISP buy back the market? *)
  Format.printf "@.[4] consumer-side subsidy (Sec. VI discussion)@.";
  let cfg =
    Oligopoly.config ~nu
      [| { Oligopoly.label = "commercial"; gamma = 0.5;
           strategy = Strategy.make ~kappa:1. ~c:0.4 };
         { Oligopoly.label = "public-option"; gamma = 0.5;
           strategy = Strategy.public_option } |]
  in
  let base = Oligopoly.solve cfg cps in
  Format.printf "    no subsidy:     commercial share %.3f (Phi* = %.3f)@."
    base.Oligopoly.shares.(0) base.Oligopoly.phi_star;
  List.iter
    (fun frac ->
      let subsidy = frac *. base.Oligopoly.phi_star in
      let eq = Oligopoly.solve ~prices:[| -.subsidy; 0. |] cfg cps in
      Format.printf "    subsidy %6.2f: commercial share %.3f@." subsidy
        eq.Oligopoly.shares.(0))
    [ 0.1; 0.3; 0.6 ];
  Format.printf
    "    a deep enough consumer-side subsidy funded by CP-side revenue \
     buys the market back even for a consumer-hostile strategy — the \
     regulatory watch-point Sec. VI raises@."
