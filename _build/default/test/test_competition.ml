(* Tests for the competition layer (lib/core): duopoly with a Public
   Option (Sec. IV-A, Theorem 5), oligopoly (Sec. IV-B, Lemma 4,
   Theorem 6), migration dynamics (Assumption 5), discontinuity metrics
   (Eq. 9) and the regime comparison facade. *)

open Po_core

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f
let prop t = QCheck_alcotest.to_alcotest t
let check_close tol = Alcotest.(check (float tol))

let ensemble ?(n = 80) seed = Po_workload.Ensemble.paper_ensemble ~n ~seed ()
let saturation = Po_workload.Ensemble.saturation_nu

(* ------------------------------------------------------------------ *)
(* Duopoly                                                            *)
(* ------------------------------------------------------------------ *)

let test_duopoly_config_validation () =
  Alcotest.check_raises "gamma out of range"
    (Invalid_argument "Duopoly.config: gamma_i outside (0, 1)") (fun () ->
      ignore
        (Duopoly.config ~gamma_i:1. ~nu:10.
           ~strategy_i:Strategy.public_option ()))

let test_duopoly_symmetric_neutral_splits_evenly () =
  (* Two identical neutral ISPs must split the market in half, and each
     side then looks like the whole system (Lemma 4 for n = 2). *)
  let cps = ensemble 31 in
  let nu = 0.5 *. saturation cps in
  let cfg = Duopoly.config ~nu ~strategy_i:Strategy.public_option () in
  let eq = Duopoly.solve cfg cps in
  check_close 1e-3 "half market" 0.5 eq.Duopoly.m_i;
  let whole = Cp_game.solve ~nu ~strategy:Strategy.public_option cps in
  check_close
    (0.01 *. whole.Cp_game.phi)
    "phi equals single-network phi" whole.Cp_game.phi eq.Duopoly.phi

let test_duopoly_interior_equalises_surplus () =
  let cps = ensemble 37 in
  let nu = 0.4 *. saturation cps in
  let cfg =
    Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3) ()
  in
  let eq = Duopoly.solve cfg cps in
  Alcotest.(check bool) "interior" true eq.Duopoly.interior;
  let phi_i = eq.Duopoly.outcome_i.Cp_game.phi in
  let phi_j = eq.Duopoly.outcome_j.Cp_game.phi in
  check_close (0.02 *. Float.max phi_i 1.) "equal surplus" phi_i phi_j

let test_duopoly_extreme_price_loses_market () =
  (* c_I >= max v: no CP joins ISP I's only class (kappa=1), consumers all
     flee to the Public Option. *)
  let cps = ensemble 41 in
  let nu = 0.4 *. saturation cps in
  let cfg =
    Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:1.) ()
  in
  let eq = Duopoly.solve cfg cps in
  check_close 1e-6 "zero share" 0. eq.Duopoly.m_i;
  Alcotest.(check bool) "corner" false eq.Duopoly.interior;
  (* The population surplus is then the Public Option serving everyone on
     half the capacity. *)
  let po_alone =
    Cp_game.solve ~nu:(0.5 *. nu) ~strategy:Strategy.public_option cps
  in
  check_close
    (0.01 *. po_alone.Cp_game.phi)
    "phi = PO alone" po_alone.Cp_game.phi eq.Duopoly.phi

let test_duopoly_moderate_price_keeps_market () =
  let cps = ensemble 43 in
  let nu = 0.3 *. saturation cps in
  let cfg =
    Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:0.2) ()
  in
  let eq = Duopoly.solve cfg cps in
  Alcotest.(check bool)
    (Printf.sprintf "m_I=%.3f above 0.4" eq.Duopoly.m_i)
    true (eq.Duopoly.m_i > 0.4);
  Alcotest.(check bool) "collects revenue" true (eq.Duopoly.psi_i > 0.)

let test_duopoly_capacity_share_matters () =
  (* A neutral ISP with a bigger pipe takes a proportionally bigger
     market (Lemma 4 with asymmetric capacity). *)
  let cps = ensemble 47 in
  let nu = 0.4 *. saturation cps in
  let cfg =
    Duopoly.config ~gamma_i:0.7 ~nu ~strategy_i:Strategy.public_option ()
  in
  let eq = Duopoly.solve cfg cps in
  check_close 0.01 "share = capacity share" 0.7 eq.Duopoly.m_i

let slow_test_duopoly_theorem5 () =
  let cps = ensemble ~n:60 53 in
  let nu = 0.5 *. saturation cps in
  let cfg =
    Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3) ()
  in
  let neutral_phi =
    (Cp_game.solve ~nu ~strategy:Strategy.public_option cps).Cp_game.phi
  in
  match Duopoly.check_theorem5 ~tol:(0.03 *. neutral_phi) ~config:cfg cps with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_duopoly_theorem5_requires_public_option () =
  let cps = ensemble 59 in
  let cfg =
    Duopoly.config ~nu:10.
      ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3)
      ~strategy_j:(Strategy.make ~kappa:0.5 ~c:0.5)
      ()
  in
  Alcotest.check_raises "rejects non-PO rival"
    (Invalid_argument
       "Duopoly.check_theorem5: ISP J must be the Public Option") (fun () ->
      ignore (Duopoly.check_theorem5 ~config:cfg cps))

(* ------------------------------------------------------------------ *)
(* Oligopoly                                                          *)
(* ------------------------------------------------------------------ *)

let test_oligopoly_config_validation () =
  Alcotest.check_raises "shares must sum to 1"
    (Invalid_argument "Oligopoly.config: capacity shares must sum to 1")
    (fun () ->
      ignore
        (Oligopoly.config ~nu:10.
           [| { Oligopoly.label = "a"; gamma = 0.5;
                strategy = Strategy.public_option };
              { Oligopoly.label = "b"; gamma = 0.6;
                strategy = Strategy.public_option } |]))

let test_oligopoly_lemma4_neutral () =
  let cps = ensemble 61 in
  let cfg =
    Oligopoly.homogeneous ~gammas:[| 0.5; 0.3; 0.2 |]
      ~nu:(0.5 *. saturation cps) ~n:3 ~strategy:Strategy.public_option ()
  in
  match Oligopoly.check_lemma4 ~tol:0.01 cfg cps with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_oligopoly_lemma4_non_neutral () =
  let cps = ensemble 67 in
  let cfg =
    Oligopoly.homogeneous ~gammas:[| 0.6; 0.4 |] ~nu:(0.4 *. saturation cps)
      ~n:2
      ~strategy:(Strategy.make ~kappa:0.5 ~c:0.3)
      ()
  in
  match Oligopoly.check_lemma4 ~tol:0.02 cfg cps with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_oligopoly_lemma4_rejects_heterogeneous () =
  let cps = ensemble 71 in
  let cfg =
    Oligopoly.config ~nu:10.
      [| { Oligopoly.label = "a"; gamma = 0.5;
           strategy = Strategy.public_option };
         { Oligopoly.label = "b"; gamma = 0.5;
           strategy = Strategy.make ~kappa:1. ~c:0.3 } |]
  in
  Alcotest.check_raises "needs homogeneous strategies"
    (Invalid_argument
       "Oligopoly.check_lemma4: strategies are not homogeneous") (fun () ->
      ignore (Oligopoly.check_lemma4 cfg cps))

let test_oligopoly_shares_sum_to_one () =
  let cps = ensemble 73 in
  let cfg =
    Oligopoly.config ~nu:(0.5 *. saturation cps)
      [| { Oligopoly.label = "a"; gamma = 0.4;
           strategy = Strategy.public_option };
         { Oligopoly.label = "b"; gamma = 0.35;
           strategy = Strategy.make ~kappa:0.8 ~c:0.3 };
         { Oligopoly.label = "c"; gamma = 0.25;
           strategy = Strategy.make ~kappa:0.4 ~c:0.6 } |]
  in
  let eq = Oligopoly.solve cfg cps in
  check_close 1e-6 "sum 1" 1. (Array.fold_left ( +. ) 0. eq.Oligopoly.shares);
  Array.iter
    (fun m -> Alcotest.(check bool) "non-negative" true (m >= 0.))
    eq.Oligopoly.shares

let test_oligopoly_equalises_surplus () =
  let cps = ensemble 79 in
  let cfg =
    Oligopoly.config ~nu:(0.4 *. saturation cps)
      [| { Oligopoly.label = "a"; gamma = 0.5;
           strategy = Strategy.public_option };
         { Oligopoly.label = "b"; gamma = 0.5;
           strategy = Strategy.make ~kappa:1. ~c:0.25 } |]
  in
  let eq = Oligopoly.solve cfg cps in
  Alcotest.(check bool) "interior shares" true
    (eq.Oligopoly.shares.(0) > 0.01 && eq.Oligopoly.shares.(1) > 0.01);
  let spread = Float.abs (eq.Oligopoly.phis.(0) -. eq.Oligopoly.phis.(1)) in
  Alcotest.(check bool)
    (Printf.sprintf "surpluses near-equal (spread %g vs Phi* %g)" spread
       eq.Oligopoly.phi_star)
    true
    (spread <= 0.05 *. Float.max eq.Oligopoly.phi_star 1e-9)

let test_oligopoly_hopeless_isp_gets_nothing () =
  (* kappa=1 with an unaffordable price delivers zero surplus at any
     capacity; that ISP's share must vanish. *)
  let cps = ensemble 83 in
  let cfg =
    Oligopoly.config ~nu:(0.5 *. saturation cps)
      [| { Oligopoly.label = "dead"; gamma = 0.5;
           strategy = Strategy.make ~kappa:1. ~c:1. };
         { Oligopoly.label = "alive"; gamma = 0.5;
           strategy = Strategy.public_option } |]
  in
  let eq = Oligopoly.solve cfg cps in
  check_close 1e-6 "dead ISP has no customers" 0. eq.Oligopoly.shares.(0);
  check_close 1e-6 "survivor takes all" 1. eq.Oligopoly.shares.(1)

let test_oligopoly_over_provisioned () =
  let cps = ensemble 89 in
  let cfg =
    Oligopoly.homogeneous ~nu:(4. *. saturation cps) ~n:2
      ~strategy:Strategy.public_option ()
  in
  let eq = Oligopoly.solve cfg cps in
  Alcotest.(check bool) "flagged over-provisioned" true
    eq.Oligopoly.over_provisioned;
  check_close 1e-6 "shares still sum to 1" 1.
    (Array.fold_left ( +. ) 0. eq.Oligopoly.shares)

let slow_test_oligopoly_duopoly_agree () =
  (* The generic level-bisection solver and the dedicated duopoly
     bisection must agree on the same instance. *)
  let cps = ensemble ~n:60 97 in
  let nu = 0.4 *. saturation cps in
  let strategy_i = Strategy.make ~kappa:1. ~c:0.3 in
  let duo = Duopoly.solve (Duopoly.config ~nu ~strategy_i ()) cps in
  let olig =
    Oligopoly.solve
      (Oligopoly.config ~nu
         [| { Oligopoly.label = "i"; gamma = 0.5; strategy = strategy_i };
            { Oligopoly.label = "j"; gamma = 0.5;
              strategy = Strategy.public_option } |])
      cps
  in
  check_close 0.02 "same market share" duo.Duopoly.m_i
    olig.Oligopoly.shares.(0)

(* ------------------------------------------------------------------ *)
(* Migration dynamics                                                 *)
(* ------------------------------------------------------------------ *)

let two_isp_config cps frac =
  Oligopoly.config ~nu:(frac *. saturation cps)
    [| { Oligopoly.label = "i"; gamma = 0.5;
         strategy = Strategy.make ~kappa:1. ~c:0.3 };
       { Oligopoly.label = "j"; gamma = 0.5;
         strategy = Strategy.public_option } |]

let test_migration_init_validation () =
  let cps = ensemble 101 in
  let cfg = two_isp_config cps 0.4 in
  Alcotest.check_raises "shares must sum to 1"
    (Invalid_argument "Migration.init_with: shares must sum to 1") (fun () ->
      ignore (Migration.init_with ~shares:[| 0.5; 0.4 |] cfg cps))

let test_migration_converges_to_equal_surplus () =
  let cps = ensemble ~n:50 103 in
  let cfg = two_isp_config cps 0.4 in
  let state0 = Migration.init_with ~shares:[| 0.85; 0.15 |] cfg cps in
  let final, converged =
    Migration.run ~tol:2e-2 ~max_steps:400 cfg cps state0
  in
  Alcotest.(check bool) "converged" true converged;
  let eq = Oligopoly.solve cfg cps in
  check_close 0.05 "agrees with equal-surplus solver"
    eq.Oligopoly.shares.(0) final.Migration.shares.(0)

let test_migration_shares_stay_normalised () =
  let cps = ensemble ~n:50 107 in
  let cfg = two_isp_config cps 0.4 in
  let state = ref (Migration.init cfg cps) in
  for _ = 1 to 10 do
    state := Migration.step cfg cps !state
  done;
  check_close 1e-9 "sum 1" 1.
    (Array.fold_left ( +. ) 0. !state.Migration.shares)

let slow_test_migration_continuous_matches_discrete () =
  (* The RK4 replicator must land on the same equal-surplus equilibrium
     as the discrete map and the direct solver. *)
  let cps = ensemble ~n:50 211 in
  let cfg = two_isp_config cps 0.4 in
  let state0 = Migration.init_with ~shares:[| 0.8; 0.2 |] cfg cps in
  let final, converged =
    Migration.run_continuous ~dt:0.3 ~tol:2e-2 ~max_steps:600 cfg cps state0
  in
  Alcotest.(check bool) "converged" true converged;
  let eq = Oligopoly.solve cfg cps in
  check_close 0.05 "continuous agrees with the solver"
    eq.Oligopoly.shares.(0) final.Migration.shares.(0)

let test_migration_equalised_is_fixed_point () =
  (* Starting from equal surplus (two identical neutral ISPs at equal
     shares), migration should not move the shares. *)
  let cps = ensemble ~n:50 109 in
  let cfg =
    Oligopoly.homogeneous ~nu:(0.4 *. saturation cps) ~n:2
      ~strategy:Strategy.public_option ()
  in
  let state0 = Migration.init cfg cps in
  let state1 = Migration.step cfg cps state0 in
  check_close 1e-6 "no movement" state0.Migration.shares.(0)
    state1.Migration.shares.(0)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_epsilon_neutral_is_zero () =
  (* Under a neutral strategy nobody re-equilibrates, so Phi(nu) is
     non-decreasing and epsilon = 0 (Theorem 2). *)
  let cps = ensemble 113 in
  let nus = Po_num.Grid.linspace 0.5 (saturation cps) 25 in
  check_close 1e-9 "epsilon 0" 0.
    (Metrics.epsilon ~strategy:Strategy.public_option ~nus cps)

let test_metrics_epsilon_nonneutral_small () =
  let cps = ensemble ~n:120 127 in
  let nus = Po_num.Grid.linspace 0.5 (saturation cps) 30 in
  let strategy = Strategy.make ~kappa:0.5 ~c:0.3 in
  let eps = Metrics.epsilon ~strategy ~nus cps in
  let phis = Metrics.phi_curve ~strategy ~nus cps in
  let scale = Po_num.Stats.max phis in
  Alcotest.(check bool)
    (Printf.sprintf "drops exist but are small (eps=%g, max Phi=%g)" eps
       scale)
    true
    (eps >= 0. && eps < 0.2 *. scale)

let test_metrics_alignment_gap () =
  let xs = [| 0.1; 0.5; 0.4 |] and ys = [| 1.; 2.; 3. |] in
  (* Pair (x=0.5, y=2) vs (x=0.4, y=3): ys.(1) <= ys.(2) and the x gap is
     0.1. *)
  check_close 1e-9 "gap" 0.1 (Metrics.alignment_gap ~xs ~ys);
  check_close 1e-9 "aligned data has zero gap" 0.
    (Metrics.alignment_gap ~xs:[| 1.; 2. |] ~ys:[| 1.; 2. |])

let test_metrics_psi_curve () =
  let cps = ensemble 131 in
  let nus = Po_num.Grid.linspace 1. 10. 5 in
  let psis =
    Metrics.psi_curve ~strategy:(Strategy.make ~kappa:1. ~c:0.2) ~nus cps
  in
  (* Saturated regime: Psi = c * nu exactly. *)
  Array.iteri
    (fun k psi ->
      check_close (0.02 *. nus.(k)) "psi = c nu" (0.2 *. nus.(k)) psi)
    psis

(* ------------------------------------------------------------------ *)
(* Public_option facade                                               *)
(* ------------------------------------------------------------------ *)

let slow_test_regime_comparison () =
  let cps = ensemble ~n:80 137 in
  let nu = 0.85 *. saturation cps in
  let results = Public_option.compare_regimes ~levels:2 ~points:7 ~nu cps in
  Alcotest.(check int) "three regimes" 3 (List.length results);
  (match Public_option.check_ordering results with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let neutral = List.nth results 1 in
  check_close 1e-9 "neutral collects nothing" 0. neutral.Public_option.psi

let test_check_ordering_detects_violation () =
  let fake label phi =
    { Public_option.label; phi; psi = 0.; commercial_strategy = None;
      market_share = None }
  in
  match
    Public_option.check_ordering
      [ fake "unregulated monopoly" 10.;
        fake "network-neutral regulation" 3.;
        fake "public option (share 0.5)" 5. ]
  with
  | Ok () -> Alcotest.fail "should reject neutral < unregulated"
  | Error _ -> ()

let prop_duopoly_share_in_unit_interval =
  QCheck.Test.make ~name:"duopoly market shares stay in [0, 1]" ~count:12
    QCheck.(pair (float_bound_inclusive 1.) (float_range 0.1 0.9))
    (fun (c, nu_frac) ->
      let cps = ensemble ~n:40 139 in
      let nu = nu_frac *. saturation cps in
      let cfg =
        Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c) ()
      in
      let eq = Duopoly.solve cfg cps in
      eq.Duopoly.m_i >= 0. && eq.Duopoly.m_i <= 1.)

let () =
  Alcotest.run "po_competition"
    [ ( "duopoly",
        [ quick "config validation" test_duopoly_config_validation;
          quick "symmetric neutral split" test_duopoly_symmetric_neutral_splits_evenly;
          quick "interior equalises surplus" test_duopoly_interior_equalises_surplus;
          quick "extreme price loses market" test_duopoly_extreme_price_loses_market;
          quick "moderate price keeps market" test_duopoly_moderate_price_keeps_market;
          quick "capacity share matters" test_duopoly_capacity_share_matters;
          slow "theorem 5" slow_test_duopoly_theorem5;
          quick "theorem 5 guard" test_duopoly_theorem5_requires_public_option;
          prop prop_duopoly_share_in_unit_interval ] );
      ( "oligopoly",
        [ quick "config validation" test_oligopoly_config_validation;
          quick "lemma 4 neutral" test_oligopoly_lemma4_neutral;
          quick "lemma 4 non-neutral" test_oligopoly_lemma4_non_neutral;
          quick "lemma 4 guard" test_oligopoly_lemma4_rejects_heterogeneous;
          quick "shares sum to one" test_oligopoly_shares_sum_to_one;
          quick "equalises surplus" test_oligopoly_equalises_surplus;
          quick "hopeless ISP" test_oligopoly_hopeless_isp_gets_nothing;
          quick "over-provisioned" test_oligopoly_over_provisioned;
          slow "agrees with duopoly" slow_test_oligopoly_duopoly_agree ] );
      ( "migration",
        [ quick "init validation" test_migration_init_validation;
          slow "converges to equal surplus" test_migration_converges_to_equal_surplus;
          quick "shares normalised" test_migration_shares_stay_normalised;
          slow "continuous matches discrete" slow_test_migration_continuous_matches_discrete;
          quick "equalised is fixed point" test_migration_equalised_is_fixed_point ] );
      ( "metrics",
        [ quick "epsilon neutral" test_metrics_epsilon_neutral_is_zero;
          quick "epsilon non-neutral" test_metrics_epsilon_nonneutral_small;
          quick "alignment gap" test_metrics_alignment_gap;
          quick "psi curve" test_metrics_psi_curve ] );
      ( "regimes",
        [ slow "comparison and ordering" slow_test_regime_comparison;
          quick "ordering detects violation" test_check_ordering_detects_violation ] ) ]
