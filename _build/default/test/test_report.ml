(* Tests for the reporting substrate (lib/report): series, tables, CSV
   and ASCII plots. *)

open Po_report

let quick name f = Alcotest.test_case name `Quick f
let check_float = Alcotest.(check (float 1e-9))

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_make_validates () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Series.make: length mismatch") (fun () ->
      ignore (Series.make ~label:"x" ~xs:[| 1. |] ~ys:[| 1.; 2. |]))

let test_series_of_fn () =
  let s = Series.of_fn ~label:"sq" ~xs:[| 1.; 2.; 3. |] (fun x -> x *. x) in
  Alcotest.(check (array (float 1e-12))) "squares" [| 1.; 4.; 9. |]
    (Series.ys s)

let test_series_copies_input () =
  let xs = [| 1.; 2. |] and ys = [| 3.; 4. |] in
  let s = Series.make ~label:"a" ~xs ~ys in
  ys.(0) <- 99.;
  check_float "insulated from mutation" 3. (Series.ys s).(0)

let test_series_y_at () =
  let s = Series.make ~label:"a" ~xs:[| 0.; 10. |] ~ys:[| 0.; 100. |] in
  check_float "interpolates" 50. (Series.y_at s 5.);
  check_float "clamps low" 0. (Series.y_at s (-1.));
  check_float "clamps high" 100. (Series.y_at s 42.)

let test_series_argmax () =
  let s = Series.make ~label:"a" ~xs:[| 1.; 2.; 3. |] ~ys:[| 5.; 9.; 2. |] in
  let x, y = Series.argmax s in
  check_float "arg" 2. x;
  check_float "max" 9. y

let test_series_map_relabel () =
  let s = Series.make ~label:"a" ~xs:[| 1. |] ~ys:[| 2. |] in
  let t = Series.relabel (Series.map_ys s ~f:(fun y -> 2. *. y)) "b" in
  Alcotest.(check string) "label" "b" (Series.label t);
  check_float "mapped" 4. (Series.ys t).(0)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render_shape () =
  let out =
    Table.render ~headers:[| "a"; "b" |]
      ~rows:[| [| "1"; "2" |]; [| "30"; "400" |] |]
      ()
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  Alcotest.(check bool) "contains 400" true
    (List.exists (fun l -> contains_substring l "400") lines)

let test_table_rejects_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () ->
      ignore (Table.render ~headers:[| "a"; "b" |] ~rows:[| [| "1" |] |] ()))

let test_table_of_series () =
  let s1 = Series.make ~label:"one" ~xs:[| 1.; 2. |] ~ys:[| 10.; 20. |] in
  let s2 = Series.make ~label:"two" ~xs:[| 1.; 2. |] ~ys:[| 0.5; 0.25 |] in
  let out = Table.of_series ~x_header:"x" [ s1; s2 ] in
  Alcotest.(check bool) "mentions labels" true
    (contains_substring out "one" && contains_substring out "two"
    && contains_substring out "0.25")

let test_table_of_series_mismatch () =
  let s1 = Series.make ~label:"one" ~xs:[| 1. |] ~ys:[| 1. |] in
  let s2 = Series.make ~label:"two" ~xs:[| 1.; 2. |] ~ys:[| 1.; 2. |] in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Table.of_series: series length mismatch") (fun () ->
      ignore (Table.of_series ~x_header:"x" [ s1; s2 ]))

(* ------------------------------------------------------------------ *)
(* Csv                                                                *)
(* ------------------------------------------------------------------ *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_cell "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_cell "a\"b")

let test_csv_to_string () =
  let out =
    Csv.to_string ~headers:[| "x"; "y" |]
      ~rows:[| [| "1"; "2" |]; [| "3"; "4,5" |] |]
  in
  Alcotest.(check string) "document" "x,y\n1,2\n3,\"4,5\"\n" out

let test_csv_of_series_roundtrip_precision () =
  let v = 1. /. 3. in
  let s = Series.make ~label:"y" ~xs:[| 0. |] ~ys:[| v |] in
  let out = Csv.of_series ~x_header:"x" [ s ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  (match lines with
  | [ _header; row ] -> (
      match String.split_on_char ',' row with
      | [ _x; y ] ->
          check_float "full precision" v (float_of_string y)
      | _ -> Alcotest.fail "bad row shape")
  | _ -> Alcotest.fail "bad document shape")

let test_csv_write_file () =
  let dir = Filename.temp_file "po_csv" "" in
  Sys.remove dir;
  let path = Filename.concat dir "out.csv" in
  Csv.write_file ~path "a,b\n1,2\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "written" "a,b" line

(* ------------------------------------------------------------------ *)
(* Asciiplot                                                          *)
(* ------------------------------------------------------------------ *)

let test_asciiplot_renders () =
  let s =
    Series.of_fn ~label:"sin" ~xs:(Po_num.Grid.linspace 0. 6.28 60) sin
  in
  let out = Asciiplot.render ~title:"wave" [ s ] in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 4 = "wave");
  Alcotest.(check bool) "has marker" true (String.contains out '*');
  Alcotest.(check bool) "has legend" true (contains_substring out "sin")

let test_asciiplot_multiple_series_markers () =
  let xs = Po_num.Grid.linspace 0. 1. 10 in
  let a = Series.of_fn ~label:"up" ~xs (fun x -> x) in
  let b = Series.of_fn ~label:"down" ~xs (fun x -> 1. -. x) in
  let out = Asciiplot.render [ a; b ] in
  Alcotest.(check bool) "two markers" true
    (String.contains out '*' && String.contains out '+')

let test_asciiplot_flat_series () =
  let s = Series.make ~label:"flat" ~xs:[| 0.; 1. |] ~ys:[| 2.; 2. |] in
  (* Degenerate y-range must not crash. *)
  let out = Asciiplot.render [ s ] in
  Alcotest.(check bool) "non-empty" true (String.length out > 0)

let test_asciiplot_rejects_empty () =
  Alcotest.check_raises "no series"
    (Invalid_argument "Asciiplot.render: no series") (fun () ->
      ignore (Asciiplot.render []))

let () =
  Alcotest.run "po_report"
    [ ( "series",
        [ quick "validates" test_series_make_validates;
          quick "of_fn" test_series_of_fn;
          quick "copies input" test_series_copies_input;
          quick "y_at" test_series_y_at;
          quick "argmax" test_series_argmax;
          quick "map/relabel" test_series_map_relabel ] );
      ( "table",
        [ quick "render shape" test_table_render_shape;
          quick "rejects ragged" test_table_rejects_ragged;
          quick "of series" test_table_of_series;
          quick "of series mismatch" test_table_of_series_mismatch ] );
      ( "csv",
        [ quick "escaping" test_csv_escaping;
          quick "to_string" test_csv_to_string;
          quick "precision" test_csv_of_series_roundtrip_precision;
          quick "write file" test_csv_write_file ] );
      ( "asciiplot",
        [ quick "renders" test_asciiplot_renders;
          quick "multiple markers" test_asciiplot_multiple_series_markers;
          quick "flat series" test_asciiplot_flat_series;
          quick "rejects empty" test_asciiplot_rejects_empty ] ) ]
