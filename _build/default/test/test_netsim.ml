(* Tests for the packet-level simulator substrate (lib/netsim): event
   queue, AIMD flow state, droptail link, end-to-end simulation and the
   max-min validation harness. *)

open Po_netsim

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f
let prop t = QCheck_alcotest.to_alcotest t
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Eventq                                                             *)
(* ------------------------------------------------------------------ *)

let test_eventq_ordering () =
  let q = Eventq.create () in
  Eventq.add q ~time:3. "c";
  Eventq.add q ~time:1. "a";
  Eventq.add q ~time:2. "b";
  let order =
    List.filter_map (fun () -> Option.map snd (Eventq.pop q)) [ (); (); () ]
  in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  Eventq.add q ~time:1. "first";
  Eventq.add q ~time:1. "second";
  Eventq.add q ~time:1. "third";
  let order =
    List.filter_map (fun () -> Option.map snd (Eventq.pop q)) [ (); (); () ]
  in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_eventq_empty () =
  let q : int Eventq.t = Eventq.create () in
  Alcotest.(check bool) "empty" true (Eventq.is_empty q);
  Alcotest.(check (option (float 0.))) "no peek" None (Eventq.peek_time q);
  Alcotest.(check bool) "no pop" true (Eventq.pop q = None)

let test_eventq_peek () =
  let q = Eventq.create () in
  Eventq.add q ~time:5. 0;
  Eventq.add q ~time:2. 1;
  Alcotest.(check (option (float 1e-12))) "peek earliest" (Some 2.)
    (Eventq.peek_time q);
  Alcotest.(check int) "size" 2 (Eventq.size q)

let test_eventq_drain_until () =
  let q = Eventq.create () in
  List.iter
    (fun t -> Eventq.add q ~time:t (int_of_float t))
    [ 1.; 2.; 3.; 4. ];
  let drained = Eventq.drain_until q ~time:2.5 in
  Alcotest.(check int) "drained two" 2 (List.length drained);
  Alcotest.(check int) "two remain" 2 (Eventq.size q)

let test_eventq_rejects_bad_time () =
  let q = Eventq.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Eventq.add: bad time") (fun () ->
      Eventq.add q ~time:(-1.) 0);
  Alcotest.check_raises "nan time" (Invalid_argument "Eventq.add: bad time")
    (fun () -> Eventq.add q ~time:Float.nan 0)

let prop_eventq_sorted =
  QCheck.Test.make ~name:"eventq pops in non-decreasing time order"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0. 1000.))
    (fun times ->
      let q = Eventq.create () in
      List.iter (fun t -> Eventq.add q ~time:t ()) times;
      let rec check prev =
        match Eventq.pop q with
        | None -> true
        | Some (t, ()) -> t >= prev && check t
      in
      check neg_infinity)

(* ------------------------------------------------------------------ *)
(* Flow                                                               *)
(* ------------------------------------------------------------------ *)

let make_flow () = Flow.create ~id:0 ~cp_index:0 ~rtt:0.05 ~rate_cap:1000.

let test_flow_slow_start_growth () =
  let f = make_flow () in
  let before = f.Flow.cwnd in
  Flow.on_ack f;
  Alcotest.(check (float 1e-9)) "slow start adds 1" (before +. 1.) f.Flow.cwnd

let test_flow_congestion_avoidance () =
  let f = make_flow () in
  f.Flow.cwnd <- 10.;
  f.Flow.ssthresh <- 5.;
  Flow.on_ack f;
  Alcotest.(check (float 1e-9)) "CA adds 1/cwnd"
    (10. +. (1. /. 10.))
    f.Flow.cwnd

let test_flow_loss_halves_once_per_rtt () =
  let f = make_flow () in
  f.Flow.cwnd <- 16.;
  f.Flow.ssthresh <- 16.;
  Flow.on_loss f ~now:1.;
  Alcotest.(check (float 1e-9)) "halved" 8. f.Flow.cwnd;
  (* A second loss within the same RTT is part of the same event. *)
  Flow.on_loss f ~now:1.01;
  Alcotest.(check (float 1e-9)) "not halved again" 8. f.Flow.cwnd;
  Flow.on_loss f ~now:1.2;
  Alcotest.(check (float 1e-9)) "halved after recovery" 4. f.Flow.cwnd

let test_flow_cwnd_floor () =
  let f = make_flow () in
  f.Flow.cwnd <- 1.;
  Flow.on_loss f ~now:1.;
  Alcotest.(check bool) "floor at 1" true (f.Flow.cwnd >= 1.)

let test_flow_window_cap_binds () =
  let f = Flow.create ~id:0 ~cp_index:0 ~rtt:0.05 ~rate_cap:100. in
  (* window_cap = 2 * 100 * 0.05 = 10. *)
  f.Flow.cwnd <- 50.;
  Alcotest.(check (float 1e-9)) "effective window capped" 10.
    (Flow.effective_window f)

let test_flow_can_send () =
  let f = make_flow () in
  Alcotest.(check bool) "fresh flow can send" true (Flow.can_send f);
  f.Flow.in_flight <- 1000;
  Alcotest.(check bool) "window full" false (Flow.can_send f);
  f.Flow.in_flight <- 0;
  f.Flow.active <- false;
  Alcotest.(check bool) "inactive cannot send" false (Flow.can_send f)

let test_flow_counters () =
  let f = make_flow () in
  Flow.on_ack f;
  Flow.on_ack f;
  Alcotest.(check int) "acked" 2 f.Flow.acked;
  Flow.reset_counters f;
  Alcotest.(check int) "reset" 0 f.Flow.acked

let test_flow_validation () =
  Alcotest.check_raises "rtt" (Invalid_argument "Flow.create: rtt <= 0")
    (fun () -> ignore (Flow.create ~id:0 ~cp_index:0 ~rtt:0. ~rate_cap:1.));
  Alcotest.check_raises "rate" (Invalid_argument "Flow.create: rate_cap <= 0")
    (fun () -> ignore (Flow.create ~id:0 ~cp_index:0 ~rtt:1. ~rate_cap:0.))

(* ------------------------------------------------------------------ *)
(* Link                                                               *)
(* ------------------------------------------------------------------ *)

let test_link_accepts_and_serves () =
  let l = Link.create ~capacity:100. ~buffer:4 () in
  (match Link.offer l ~now:0. ~flow_id:7 with
  | Link.Accepted (Some t) -> check_float "service time" 0.01 t
  | _ -> Alcotest.fail "idle link should start service");
  let flow_id, next = Link.complete_service l ~now:0.01 in
  Alcotest.(check int) "served flow" 7 flow_id;
  Alcotest.(check bool) "queue empty" true (next = None)

let test_link_queues_when_busy () =
  let l = Link.create ~capacity:100. ~buffer:4 () in
  ignore (Link.offer l ~now:0. ~flow_id:0);
  (match Link.offer l ~now:0.001 ~flow_id:1 with
  | Link.Accepted None -> ()
  | _ -> Alcotest.fail "busy link should queue");
  Alcotest.(check int) "occupancy" 2 (Link.occupancy l);
  let _, next = Link.complete_service l ~now:0.01 in
  match next with
  | Some t -> check_float "next departure" 0.02 t
  | None -> Alcotest.fail "second packet should be scheduled"

let test_link_drops_when_full () =
  let l = Link.create ~capacity:100. ~buffer:2 () in
  ignore (Link.offer l ~now:0. ~flow_id:0);
  ignore (Link.offer l ~now:0. ~flow_id:1);
  (match Link.offer l ~now:0. ~flow_id:2 with
  | Link.Dropped -> ()
  | _ -> Alcotest.fail "full buffer should drop");
  Alcotest.(check int) "drop counted" 1 (Link.drops l)

let test_link_fifo () =
  let l = Link.create ~capacity:1000. ~buffer:10 () in
  List.iter (fun id -> ignore (Link.offer l ~now:0. ~flow_id:id)) [ 3; 1; 2 ];
  let served = ref [] in
  for _ = 1 to 3 do
    let id, _ = Link.complete_service l ~now:0. in
    served := id :: !served
  done;
  Alcotest.(check (list int)) "FIFO order" [ 3; 1; 2 ] (List.rev !served)

let test_link_validation () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Link.create: capacity <= 0") (fun () ->
      ignore (Link.create ~capacity:0. ~buffer:1 ()));
  Alcotest.check_raises "buffer" (Invalid_argument "Link.create: buffer < 1")
    (fun () -> ignore (Link.create ~capacity:1. ~buffer:0 ()))

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let basic_specs =
  [| { Sim.flows = 4; rate_cap = 2000.; rtt = 0.04; demand = None };
     { Sim.flows = 2; rate_cap = 500.; rtt = 0.04; demand = None } |]

let test_sim_determinism () =
  let cfg =
    { (Sim.default_config ~capacity:3000. ~specs:basic_specs) with
      warmup = 1.; measure = 2. }
  in
  let a = Sim.run cfg and b = Sim.run cfg in
  Alcotest.(check int) "same events" a.Sim.events b.Sim.events;
  Array.iteri
    (fun i (r : Sim.cp_result) ->
      Alcotest.(check (float 1e-12)) "same rate" r.Sim.rate
        b.Sim.per_cp.(i).Sim.rate)
    a.Sim.per_cp

let test_sim_seed_changes_results () =
  let cfg =
    { (Sim.default_config ~capacity:3000. ~specs:basic_specs) with
      warmup = 1.; measure = 2. }
  in
  let a = Sim.run cfg and b = Sim.run { cfg with seed = 99 } in
  Alcotest.(check bool) "different seeds differ" true
    (Array.exists
       (fun i -> a.Sim.per_cp.(i).Sim.rate <> b.Sim.per_cp.(i).Sim.rate)
       [| 0; 1 |])

let test_sim_full_utilization_under_congestion () =
  let cfg =
    { (Sim.default_config ~capacity:2000. ~specs:basic_specs) with
      warmup = 2.; measure = 4. }
  in
  let r = Sim.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f > 0.9" r.Sim.utilization)
    true (r.Sim.utilization > 0.9)

let test_sim_no_overdelivery () =
  let cfg =
    { (Sim.default_config ~capacity:2000. ~specs:basic_specs) with
      warmup = 2.; measure = 4. }
  in
  let r = Sim.run cfg in
  Alcotest.(check bool) "total rate within capacity (2% ack slack)" true
    (r.Sim.total_rate <= 2000. *. 1.02)

let test_sim_app_limit_respected () =
  (* Uncongested: every CP should get close to its rate cap and not
     above. *)
  let cfg =
    { (Sim.default_config ~capacity:20000. ~specs:basic_specs) with
      warmup = 2.; measure = 4. }
  in
  let r = Sim.run cfg in
  Array.iteri
    (fun i (spec : Sim.cp_spec) ->
      let per_flow = r.Sim.per_cp.(i).Sim.per_flow in
      Alcotest.(check bool)
        (Printf.sprintf "cp %d per-flow %.0f near cap %.0f" i per_flow
           spec.Sim.rate_cap)
        true
        (per_flow <= spec.Sim.rate_cap *. 1.02
        && per_flow >= spec.Sim.rate_cap *. 0.9))
    basic_specs

let test_sim_rejects_bad_config () =
  Alcotest.check_raises "no flows"
    (Invalid_argument "Sim.run: cp with no flows") (fun () ->
      ignore
        (Sim.run
           (Sim.default_config ~capacity:100.
              ~specs:
                [| { Sim.flows = 0; rate_cap = 1.; rtt = 0.1; demand = None } |])))

let test_sim_churn_reduces_active_flows () =
  (* Demand-sensitive flows under heavy congestion: churn should switch a
     substantial share of them off. *)
  let demand = Some (Po_model.Demand.exponential ~beta:5.) in
  let specs = [| { Sim.flows = 10; rate_cap = 2000.; rtt = 0.04; demand } |] in
  let cfg =
    { (Sim.default_config ~capacity:2000. ~specs) with
      warmup = 4.; measure = 8.; churn_interval = Some 0.3 }
  in
  let r = Sim.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "active flows %d < 10" r.Sim.per_cp.(0).Sim.active_flows)
    true
    (r.Sim.per_cp.(0).Sim.active_flows < 10)

(* ------------------------------------------------------------------ *)
(* Tandem                                                             *)
(* ------------------------------------------------------------------ *)

let tandem_specs =
  [| { Sim.flows = 4; rate_cap = 2000.; rtt = 0.04; demand = None };
     { Sim.flows = 2; rate_cap = 500.; rtt = 0.04; demand = None } |]

let test_tandem_validation () =
  Alcotest.check_raises "headroom < 1"
    (Invalid_argument "Tandem.default_config: headroom < 1") (fun () ->
      ignore (Tandem.default_config ~headroom:0.5 ~capacity_b:100. ~specs:tandem_specs ()))

let test_tandem_conservation () =
  let cfg =
    { (Tandem.default_config ~capacity_b:2000. ~specs:tandem_specs ()) with
      Tandem.warmup = 2.; measure = 4. }
  in
  let r = Tandem.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "last-mile utilization %.3f near 1" r.Tandem.utilization_b)
    true
    (r.Tandem.utilization_b > 0.9 && r.Tandem.utilization_b <= 1.02);
  Alcotest.(check bool) "backbone under-utilised" true
    (r.Tandem.utilization_a < 0.5)

let test_tandem_deterministic () =
  let cfg =
    { (Tandem.default_config ~capacity_b:2000. ~specs:tandem_specs ()) with
      Tandem.warmup = 1.; measure = 2. }
  in
  let a = Tandem.run cfg and b = Tandem.run cfg in
  Alcotest.(check int) "same events" a.Tandem.events b.Tandem.events

let slow_test_tandem_equivalence () =
  let cps = Po_workload.Scenario.three_cp () in
  let results =
    Tandem.single_bottleneck_equivalence ~nu:2.5 ~headrooms:[| 2.0; 4.0 |] cps
  in
  Array.iter
    (fun (e : Tandem.equivalence) ->
      Alcotest.(check bool)
        (Printf.sprintf "headroom %.1f within 15%% (got %.3f)"
           e.Tandem.headroom e.Tandem.max_relative_diff)
        true
        (e.Tandem.max_relative_diff < 0.15))
    results

(* ------------------------------------------------------------------ *)
(* Validate                                                           *)
(* ------------------------------------------------------------------ *)

let slow_test_validate_matches_model () =
  let cps = Po_workload.Scenario.three_cp () in
  let r = Validate.compare ~nu:2.5 cps in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f < 0.25" r.Validate.max_relative_error)
    true
    (r.Validate.max_relative_error < 0.25);
  Alcotest.(check bool) "near-full utilization" true
    (r.Validate.utilization > 0.95)

let slow_test_validate_unconstrained () =
  (* Far above saturation both sides deliver everyone's cap. *)
  let cps = Po_workload.Scenario.three_cp () in
  let r = Validate.compare ~nu:8. cps in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f < 0.1 unconstrained"
       r.Validate.max_relative_error)
    true
    (r.Validate.max_relative_error < 0.1)

let slow_test_rtt_bias_grows () =
  let cps = Po_workload.Scenario.three_cp () in
  let results =
    Validate.rtt_bias_experiment ~nu:2.5 ~rtt_ratios:[| 1.; 8. |] cps
  in
  let _, err_homogeneous = results.(0) in
  let _, err_spread = results.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "error grows with RTT spread (%.3f -> %.3f)"
       err_homogeneous err_spread)
    true
    (err_spread > err_homogeneous)

let () =
  Alcotest.run "po_netsim"
    [ ( "eventq",
        [ quick "ordering" test_eventq_ordering;
          quick "fifo ties" test_eventq_fifo_ties;
          quick "empty" test_eventq_empty;
          quick "peek" test_eventq_peek;
          quick "drain until" test_eventq_drain_until;
          quick "rejects bad time" test_eventq_rejects_bad_time;
          prop prop_eventq_sorted ] );
      ( "flow",
        [ quick "slow start" test_flow_slow_start_growth;
          quick "congestion avoidance" test_flow_congestion_avoidance;
          quick "loss halves once per rtt" test_flow_loss_halves_once_per_rtt;
          quick "cwnd floor" test_flow_cwnd_floor;
          quick "window cap" test_flow_window_cap_binds;
          quick "can_send" test_flow_can_send;
          quick "counters" test_flow_counters;
          quick "validation" test_flow_validation ] );
      ( "link",
        [ quick "accepts and serves" test_link_accepts_and_serves;
          quick "queues when busy" test_link_queues_when_busy;
          quick "drops when full" test_link_drops_when_full;
          quick "fifo" test_link_fifo;
          quick "validation" test_link_validation ] );
      ( "sim",
        [ quick "determinism" test_sim_determinism;
          quick "seed sensitivity" test_sim_seed_changes_results;
          quick "full utilization" test_sim_full_utilization_under_congestion;
          quick "no overdelivery" test_sim_no_overdelivery;
          quick "app limit respected" test_sim_app_limit_respected;
          quick "rejects bad config" test_sim_rejects_bad_config;
          quick "churn reduces active flows" test_sim_churn_reduces_active_flows ] );
      ( "tandem",
        [ quick "validation" test_tandem_validation;
          quick "conservation" test_tandem_conservation;
          quick "deterministic" test_tandem_deterministic;
          slow "single-bottleneck equivalence" slow_test_tandem_equivalence ] );
      ( "validate",
        [ slow "matches model congested" slow_test_validate_matches_model;
          slow "matches model unconstrained" slow_test_validate_unconstrained;
          slow "rtt bias grows" slow_test_rtt_bias_grows ] ) ]
