test/test_competition.mli:
