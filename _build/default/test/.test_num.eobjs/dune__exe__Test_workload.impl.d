test/test_workload.ml: Alcotest Array Cp Demand Ensemble Filename Float Io List Po_model Po_num Po_workload Printf QCheck QCheck_alcotest Scenario Sys
