test/test_model.ml: Alcotest Alloc Alphafair Array Cp Demand Equilibrium Float List Maxmin Po_model Po_num Po_workload Printf Priority QCheck QCheck_alcotest Surplus
