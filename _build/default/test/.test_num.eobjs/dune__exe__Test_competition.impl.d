test/test_competition.ml: Alcotest Array Cp_game Duopoly Float List Metrics Migration Oligopoly Po_core Po_num Po_workload Printf Public_option QCheck QCheck_alcotest Strategy
