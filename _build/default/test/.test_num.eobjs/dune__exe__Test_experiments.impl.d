test/test_experiments.ml: Alcotest Array Filename Float List Po_experiments Po_report String Sys
