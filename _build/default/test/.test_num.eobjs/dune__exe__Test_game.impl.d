test/test_game.ml: Alcotest Array Cp Cp_game Equilibrium Float List Monopoly Partition Po_core Po_model Po_num Po_workload Printf QCheck QCheck_alcotest Strategy
