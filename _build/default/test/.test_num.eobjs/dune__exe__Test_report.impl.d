test/test_report.ml: Alcotest Array Asciiplot Csv Filename List Po_num Po_report Series String Sys Table
