test/test_num.ml: Alcotest Array Fixpoint Float Gen Grid Interp Ode Optimize Po_num Printf QCheck QCheck_alcotest Quadrature Roots Stats
