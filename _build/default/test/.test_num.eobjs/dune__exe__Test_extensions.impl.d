test/test_extensions.ml: Alcotest Array Cp_game Duopoly Float Investment List Oligopoly Po_core Po_model Po_netsim Po_sizing Po_workload Printf Strategy Welfare
