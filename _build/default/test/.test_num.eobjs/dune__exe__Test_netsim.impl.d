test/test_netsim.ml: Alcotest Array Eventq Float Flow Gen Link List Option Po_model Po_netsim Po_workload Printf QCheck QCheck_alcotest Sim Tandem Validate
