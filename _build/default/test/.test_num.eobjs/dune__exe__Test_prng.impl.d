test/test_prng.ml: Alcotest Array Dist Po_num Po_prng QCheck QCheck_alcotest Splitmix
