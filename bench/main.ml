(* Benchmark & reproduction harness.

   Two jobs:

   1. {b Figure regeneration} — every data figure of the paper (2, 3, 4,
      5, 7, 8, the appendix 9-12) plus the [tcp] extension is regenerated
      through [Po_experiments.Registry], printed as tables + ASCII plots,
      and written as CSV under [results/].  The claim audits (Theorems 4,
      5, 6, Lemma 4, the regime ordering, the AIMD-vs-max-min match) run
      afterwards.

   2. {b Micro-benchmarks} — Bechamel timings of the load-bearing kernels
      (rate-equilibrium solve, CP-game solve cold/warm, duopoly migration
      equilibrium, oligopoly equal-surplus solve, packet simulation,
      ensemble generation), one [Test.make] per kernel.

   3. {b Parallel speedup} — every grid-sweep figure regenerated with
      [jobs = 1] and [jobs = recommended_domain_count], wall-clock per
      figure and the speedup ratio (the outputs are bit-identical by
      po_par's determinism contract; this section measures, it does not
      re-verify).

   Usage: dune exec bench/main.exe [-- --quick | --figures-only |
   --bench-only | --par-only] *)

open Bechamel

let results_dir = "results"

(* ------------------------------------------------------------------ *)
(* Figure regeneration                                                *)
(* ------------------------------------------------------------------ *)

let regenerate_figures ~params () =
  List.iter
    (fun (entry : Po_experiments.Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let figure = entry.Po_experiments.Registry.generate ~params () in
      let dt = Unix.gettimeofday () -. t0 in
      print_string (Po_experiments.Common.render ~plots:true figure);
      let written = Po_experiments.Common.csv_files ~dir:results_dir figure in
      Printf.printf "[%s] regenerated in %.1f s; CSV: %s\n\n"
        entry.Po_experiments.Registry.id dt
        (String.concat ", " written))
    Po_experiments.Registry.entries

(* ------------------------------------------------------------------ *)
(* Serial vs parallel sweep timings                                   *)
(* ------------------------------------------------------------------ *)

(* The figures whose generators evaluate a (kappa, c) / capacity / share
   grid through the domain pool. *)
let sweep_figure_ids =
  [ "fig4"; "fig5"; "fig7"; "fig8"; "posize"; "welfare"; "invest" ]

let time_figure ~params entry =
  let t0 = Unix.gettimeofday () in
  ignore (entry.Po_experiments.Registry.generate ~params ());
  Unix.gettimeofday () -. t0

let run_par_bench ~params () =
  let jobs = Po_par.Pool.default_domains () in
  Printf.printf
    "== Sweep speedup: serial vs %d domains (%d CPs, %d-point sweeps) ==\n"
    jobs params.Po_experiments.Common.n_cps
    params.Po_experiments.Common.sweep_points;
  let speedups = ref [] in
  if jobs <= 1 then
    print_endline
      "  single recommended domain on this machine; parallel timings \
       would equal serial, skipping"
  else begin
    Printf.printf "  %-8s %10s %10s %9s\n" "figure" "serial(s)" "par(s)"
      "speedup";
    List.iter
      (fun id ->
        match Po_experiments.Registry.find id with
        | None -> Printf.printf "  %-8s missing from the registry!\n" id
        | Some entry ->
            let serial =
              time_figure
                ~params:{ params with Po_experiments.Common.jobs = 1 }
                entry
            in
            let parallel =
              time_figure ~params:{ params with Po_experiments.Common.jobs }
                entry
            in
            let speedup =
              if parallel > 0. then serial /. parallel else Float.nan
            in
            speedups := (id, serial, parallel, speedup) :: !speedups;
            Printf.printf "  %-8s %10.2f %10.2f %8.2fx\n" id serial parallel
              speedup)
      sweep_figure_ids
  end;
  print_newline ();
  (jobs, List.rev !speedups)

let run_claims ~params () =
  let checks = Po_experiments.Claims.all ~params () in
  print_string (Po_experiments.Claims.render checks);
  List.for_all (fun c -> c.Po_experiments.Claims.passed) checks

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                   *)
(* ------------------------------------------------------------------ *)

let kernels () =
  let open Po_core in
  let cps1000 = Po_workload.Ensemble.paper_ensemble ~n:1000 ~seed:42 () in
  let cps100 = Po_workload.Ensemble.paper_ensemble ~n:100 ~seed:42 () in
  let strategy = Strategy.make ~kappa:0.5 ~c:0.3 in
  let warm = (Cp_game.solve ~nu:120. ~strategy cps1000).Cp_game.partition in
  let duo_cfg =
    Duopoly.config ~nu:25. ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3) ()
  in
  let olig_cfg =
    Oligopoly.homogeneous ~gammas:[| 0.6; 0.4 |] ~nu:25. ~n:2 ~strategy ()
  in
  let sim_specs =
    [| { Po_netsim.Sim.flows = 6; rate_cap = 800.; rtt = 0.04; demand = None };
       { Po_netsim.Sim.flows = 4; rate_cap = 2400.; rtt = 0.04;
         demand = None } |]
  in
  let sim_cfg =
    { (Po_netsim.Sim.default_config ~capacity:4000. ~specs:sim_specs) with
      warmup = 0.5; measure = 1. }
  in
  [ Test.make ~name:"equilibrium_solve_1000cp"
      (Staged.stage (fun () ->
           ignore (Po_model.Equilibrium.solve ~nu:120. cps1000)));
    Test.make ~name:"equilibrium_solve_reference_1000cp"
      (Staged.stage (fun () ->
           ignore (Po_model.Equilibrium.solve_reference ~nu:120. cps1000)));
    Test.make ~name:"cp_game_solve_cold_1000cp"
      (Staged.stage (fun () ->
           ignore (Cp_game.solve ~nu:120. ~strategy cps1000)));
    Test.make ~name:"cp_game_solve_reference_1000cp"
      (Staged.stage (fun () ->
           ignore (Cp_game.solve_reference ~nu:120. ~strategy cps1000)));
    Test.make ~name:"cp_game_solve_warm_1000cp"
      (Staged.stage (fun () ->
           ignore (Cp_game.solve ~init:warm ~nu:120. ~strategy cps1000)));
    Test.make ~name:"duopoly_solve_100cp"
      (Staged.stage (fun () -> ignore (Duopoly.solve duo_cfg cps100)));
    Test.make ~name:"oligopoly_solve_100cp"
      (Staged.stage (fun () ->
           ignore (Oligopoly.solve ~curve_points:60 olig_cfg cps100)));
    Test.make ~name:"netsim_run_1.5s_horizon"
      (Staged.stage (fun () -> ignore (Po_netsim.Sim.run sim_cfg)));
    Test.make ~name:"ensemble_generate_1000cp"
      (Staged.stage (fun () ->
           ignore (Po_workload.Ensemble.paper_ensemble ~n:1000 ~seed:7 ())));
    (* polint's parsetree stage over lib/, serial and fanned out on a
       po_par pool — the outputs are byte-identical by construction
       (test_lint's jobs-invariance test verifies; this row measures).
       Parsing serializes on the compiler's global lexer state and the
       jobs row pays pool spin-up per run, so the parallel row is the
       honest cost of `--jobs` at lib/-tree scale, not a speedup claim. *)
    Test.make ~name:"polint_parsetree_lib_serial"
      (Staged.stage (fun () ->
           ignore (Po_lint.Lint.lint_tree ~root:"." [ "lib" ])));
    Test.make ~name:"polint_parsetree_lib_jobs4"
      (Staged.stage (fun () ->
           ignore (Po_lint.Lint.lint_tree ~root:"." ~jobs:4 [ "lib" ]))) ]

let run_microbenchmarks () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"kernels" (kernels ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols instance raw in
  print_endline "== Micro-benchmarks (monotonic clock, OLS ns/run) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    analyzed;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  List.iter
    (fun (name, ns) ->
      Printf.printf "  %-40s %12.0f ns/run  (%.3f ms)\n" name ns (ns /. 1e6))
    rows;
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark output                                  *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled JSON: kernel names are [a-z0-9_./] so no escaping is
   needed, and floats print finitely via %.1f/%.4f ([NaN] speedups are
   emitted as null). *)
let json_float ?(decimals = 1) v =
  if Float.is_finite v then Printf.sprintf "%.*f" decimals v else "null"

let write_bench_json ~kernels ~jobs ~speedups =
  let path = Filename.concat results_dir "bench.json" in
  let kernel_rows =
    List.map
      (fun (name, ns) ->
        Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s}" name
          (json_float ns))
      kernels
  in
  let speedup_rows =
    List.map
      (fun (id, serial, parallel, speedup) ->
        Printf.sprintf
          "    {\"figure\": \"%s\", \"serial_s\": %s, \"parallel_s\": %s, \
           \"speedup\": %s}"
          id
          (json_float ~decimals:4 serial)
          (json_float ~decimals:4 parallel)
          (json_float ~decimals:4 speedup))
      speedups
  in
  Po_report.Writer.write_atomic ~path
    (Printf.sprintf
       "{\n\
       \  \"schema\": \"po-bench-v1\",\n\
       \  \"jobs\": %d,\n\
       \  \"kernels\": [\n%s\n  ],\n\
       \  \"sweep_speedup\": [\n%s\n  ]\n\
        }\n"
       jobs
       (String.concat ",\n" kernel_rows)
       (String.concat ",\n" speedup_rows));
  Printf.printf "machine-readable benchmark results written to %s\n\n" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let figures_only = Array.exists (( = ) "--figures-only") Sys.argv in
  let bench_only = Array.exists (( = ) "--bench-only") Sys.argv in
  let par_only = Array.exists (( = ) "--par-only") Sys.argv in
  (* The full paper scale (n = 1000, 33-point sweeps) takes several
     minutes end to end; the default here trades sweep resolution for a
     bench that completes in about a minute while preserving every
     qualitative shape.  Use the ponet CLI for full-resolution runs.
     Figure regeneration itself runs on every recommended domain —
     po_par guarantees the output does not depend on the worker count. *)
  let params =
    if quick then Po_experiments.Common.quick_params
    else
      { Po_experiments.Common.n_cps = 400; seed = 42; sweep_points = 17;
        jobs = 1; checkpoint = None }
  in
  let params =
    { params with
      Po_experiments.Common.jobs = Po_par.Pool.default_domains () }
  in
  let ok = ref true in
  if par_only then ignore (run_par_bench ~params ())
  else begin
    if not bench_only then begin
      Printf.printf
        "Reproduction harness: %d CPs, %d-point sweeps (%s, %d domains)\n\n"
        params.Po_experiments.Common.n_cps
        params.Po_experiments.Common.sweep_points
        (if quick then "quick" else "standard")
        params.Po_experiments.Common.jobs;
      regenerate_figures ~params ();
      ok := run_claims ~params ()
    end;
    if not figures_only then begin
      let kernels = run_microbenchmarks () in
      let jobs, speedups =
        if bench_only then (Po_par.Pool.default_domains (), [])
        else run_par_bench ~params ()
      in
      write_bench_json ~kernels ~jobs ~speedups
    end
  end;
  if not !ok then begin
    prerr_endline "claim audits FAILED";
    exit 1
  end
