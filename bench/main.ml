(* Benchmark & reproduction harness.

   Two jobs:

   1. {b Figure regeneration} — every data figure of the paper (2, 3, 4,
      5, 7, 8, the appendix 9-12) plus the [tcp] extension is regenerated
      through [Po_experiments.Registry], printed as tables + ASCII plots,
      and written as CSV under [results/].  The claim audits (Theorems 4,
      5, 6, Lemma 4, the regime ordering, the AIMD-vs-max-min match) run
      afterwards.

   2. {b Micro-benchmarks} — Bechamel timings of the load-bearing kernels
      (rate-equilibrium solve, CP-game solve cold/warm, duopoly migration
      equilibrium, oligopoly equal-surplus solve, packet simulation,
      ensemble generation), one [Test.make] per kernel.

   3. {b Parallel speedup} — every grid-sweep figure regenerated with
      [jobs = 1] and [jobs = recommended_domain_count], wall-clock per
      figure and the speedup ratio (the outputs are bit-identical by
      po_par's determinism contract; this section measures, it does not
      re-verify).

   4. {b xl scale tier} — wall-clock scaling of the structure-of-arrays
      solver stack (DESIGN.md §12) at n = 10^4, 10^5, 10^6: streaming
      ensemble generation, context build, cold equilibrium solve, and
      the CP game up to 10^5, with fitted log-log scaling exponents
      (expect ~1 for the O(n log n) kernels).  [--xl-smoke] is the CI
      variant: one n = 10^5 population generated on the hardened pool
      and solved from several workers, pass/fail only.

   5. {b chaos smoke tier} — the supervised-execution contract
      (DESIGN.md §13) driven end to end: fig4/fig5 regenerated under
      injected transient faults with retries and byte-compared against
      the fault-free render at jobs 1 and 4, the circuit breaker's
      degraded serial path, and a typed deadline failure; the check
      list, warnings and a metrics snapshot land in results/chaos.json.

   Usage: dune exec bench/main.exe [-- --quick | --figures-only |
   --bench-only | --par-only | --xl | --xl-smoke | --chaos-smoke] *)

open Bechamel

let results_dir = "results"

(* ------------------------------------------------------------------ *)
(* Figure regeneration                                                *)
(* ------------------------------------------------------------------ *)

let regenerate_figures ~params () =
  List.iter
    (fun (entry : Po_experiments.Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let figure = entry.Po_experiments.Registry.generate ~params () in
      let dt = Unix.gettimeofday () -. t0 in
      print_string (Po_experiments.Common.render ~plots:true figure);
      let written = Po_experiments.Common.csv_files ~dir:results_dir figure in
      Printf.printf "[%s] regenerated in %.1f s; CSV: %s\n\n"
        entry.Po_experiments.Registry.id dt
        (String.concat ", " written))
    Po_experiments.Registry.entries

(* ------------------------------------------------------------------ *)
(* Serial vs parallel sweep timings                                   *)
(* ------------------------------------------------------------------ *)

(* The figures whose generators evaluate a (kappa, c) / capacity / share
   grid through the domain pool. *)
let sweep_figure_ids =
  [ "fig4"; "fig5"; "fig7"; "fig8"; "posize"; "welfare"; "invest" ]

let time_figure ~params entry =
  let t0 = Unix.gettimeofday () in
  ignore (entry.Po_experiments.Registry.generate ~params ());
  Unix.gettimeofday () -. t0

let run_par_bench ~params () =
  (* Measure a real pool of at least 2 domains even when the machine
     recommends 1: the speedup rows must exist for the §11 regression
     gate to diff (speedup ~1.0x on a single core is itself the honest
     reading — the pool must not *cost* anything), and the pool path
     gets exercised either way. *)
  let jobs = max 2 (Po_par.Pool.default_domains ()) in
  Printf.printf
    "== Sweep speedup: serial vs %d domains (%d CPs, %d-point sweeps) ==\n"
    jobs params.Po_experiments.Common.n_cps
    params.Po_experiments.Common.sweep_points;
  let speedups = ref [] in
  Printf.printf "  %-8s %10s %10s %9s\n" "figure" "serial(s)" "par(s)"
    "speedup";
  List.iter
    (fun id ->
      match Po_experiments.Registry.find id with
      | None -> Printf.printf "  %-8s missing from the registry!\n" id
      | Some entry ->
          let serial =
            time_figure
              ~params:{ params with Po_experiments.Common.jobs = 1 }
              entry
          in
          let parallel =
            time_figure ~params:{ params with Po_experiments.Common.jobs }
              entry
          in
          let speedup =
            if parallel > 0. then serial /. parallel else Float.nan
          in
          speedups := (id, serial, parallel, speedup) :: !speedups;
          Printf.printf "  %-8s %10.2f %10.2f %8.2fx\n" id serial parallel
            speedup)
    sweep_figure_ids;
  print_newline ();
  (jobs, List.rev !speedups)

let run_claims ~params () =
  let checks = Po_experiments.Claims.all ~params () in
  print_string (Po_experiments.Claims.render checks);
  List.for_all (fun c -> c.Po_experiments.Claims.passed) checks

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                   *)
(* ------------------------------------------------------------------ *)

let kernels () =
  let open Po_core in
  let cps1000 = Po_workload.Ensemble.paper_ensemble ~n:1000 ~seed:42 () in
  let cps100 = Po_workload.Ensemble.paper_ensemble ~n:100 ~seed:42 () in
  let strategy = Strategy.make ~kappa:0.5 ~c:0.3 in
  let warm = (Cp_game.solve ~nu:120. ~strategy cps1000).Cp_game.partition in
  let duo_cfg =
    Duopoly.config ~nu:25. ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3) ()
  in
  let olig_cfg =
    Oligopoly.homogeneous ~gammas:[| 0.6; 0.4 |] ~nu:25. ~n:2 ~strategy ()
  in
  let sim_specs =
    [| { Po_netsim.Sim.flows = 6; rate_cap = 800.; rtt = 0.04; demand = None };
       { Po_netsim.Sim.flows = 4; rate_cap = 2400.; rtt = 0.04;
         demand = None } |]
  in
  let sim_cfg =
    { (Po_netsim.Sim.default_config ~capacity:4000. ~specs:sim_specs) with
      warmup = 0.5; measure = 1. }
  in
  [ Test.make ~name:"equilibrium_solve_1000cp"
      (Staged.stage (fun () ->
           ignore (Po_model.Equilibrium.solve ~nu:120. cps1000)));
    Test.make ~name:"equilibrium_solve_reference_1000cp"
      (Staged.stage (fun () ->
           ignore (Po_model.Equilibrium.solve_reference ~nu:120. cps1000)));
    Test.make ~name:"cp_game_solve_cold_1000cp"
      (Staged.stage (fun () ->
           ignore (Cp_game.solve ~nu:120. ~strategy cps1000)));
    Test.make ~name:"cp_game_solve_reference_1000cp"
      (Staged.stage (fun () ->
           ignore (Cp_game.solve_reference ~nu:120. ~strategy cps1000)));
    Test.make ~name:"cp_game_solve_warm_1000cp"
      (Staged.stage (fun () ->
           ignore (Cp_game.solve ~init:warm ~nu:120. ~strategy cps1000)));
    Test.make ~name:"duopoly_solve_100cp"
      (Staged.stage (fun () -> ignore (Duopoly.solve duo_cfg cps100)));
    Test.make ~name:"oligopoly_solve_100cp"
      (Staged.stage (fun () ->
           ignore (Oligopoly.solve ~curve_points:60 olig_cfg cps100)));
    Test.make ~name:"netsim_run_1.5s_horizon"
      (Staged.stage (fun () -> ignore (Po_netsim.Sim.run sim_cfg)));
    Test.make ~name:"ensemble_generate_1000cp"
      (Staged.stage (fun () ->
           ignore (Po_workload.Ensemble.paper_ensemble ~n:1000 ~seed:7 ())));
    (* polint's parsetree stage over lib/, serial and fanned out on a
       po_par pool — the outputs are byte-identical by construction
       (test_lint's jobs-invariance test verifies; this row measures).
       Parsing serializes on the compiler's global lexer state and the
       jobs row pays pool spin-up per run, so the parallel row is the
       honest cost of `--jobs` at lib/-tree scale, not a speedup claim. *)
    Test.make ~name:"polint_parsetree_lib_serial"
      (Staged.stage (fun () ->
           ignore (Po_lint.Lint.lint_tree ~root:"." [ "lib" ])));
    Test.make ~name:"polint_parsetree_lib_jobs4"
      (Staged.stage (fun () ->
           ignore (Po_lint.Lint.lint_tree ~root:"." ~jobs:4 [ "lib" ]))) ]

let run_microbenchmarks () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"kernels" (kernels ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols instance raw in
  print_endline "== Micro-benchmarks (monotonic clock, OLS ns/run) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    analyzed;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  List.iter
    (fun (name, ns) ->
      Printf.printf "  %-40s %12.0f ns/run  (%.3f ms)\n" name ns (ns /. 1e6))
    rows;
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* xl scale tier (DESIGN.md §12)                                      *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled JSON: kernel names are [a-z0-9_./] so no escaping is
   needed, and floats print finitely via %.1f/%.4f ([NaN] speedups are
   emitted as null). *)
let json_float ?(decimals = 1) v =
  if Float.is_finite v then Printf.sprintf "%.*f" decimals v else "null"

let time_runs ~runs f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int runs

(* Least-squares slope of log(seconds) against log(n): ~1 for the
   O(n log n) kernels (the log factor adds a few hundredths over two
   decades), ~2 would flag an accidental quadratic path. *)
let fit_exponent points =
  let xs = List.map (fun (n, _) -> log (float_of_int n)) points in
  let ys = List.map (fun (_, t) -> log t) points in
  let m = float_of_int (List.length points) in
  let sum = List.fold_left ( +. ) 0. in
  let sx = sum xs and sy = sum ys in
  let sxx = sum (List.map (fun x -> x *. x) xs) in
  let sxy = sum (List.map2 ( *. ) xs ys) in
  (m *. sxy -. (sx *. sy)) /. (m *. sxx -. (sx *. sx))

let xl_sizes = [ 10_000; 100_000; 1_000_000 ]

(* The CP game multiplies each population solve by the best-response
   iteration count; 10^6 is out of a bench's time budget, the scaling
   exponent is readable from two decades. *)
let xl_game_cutoff = 100_000

let run_xl_bench () =
  print_endline "== xl tier: structure-of-arrays scaling (wall clock) ==";
  Printf.printf "  %-28s %10s %12s\n" "kernel" "n" "seconds";
  let strategy = Po_core.Strategy.make ~kappa:0.5 ~c:0.3 in
  let rows = ref [] in
  let row name n seconds =
    rows := (name, n, seconds) :: !rows;
    Printf.printf "  %-28s %10d %12.4f\n%!" name n seconds
  in
  List.iter
    (fun n ->
      let runs = if n >= 1_000_000 then 1 else 3 in
      row "ensemble_generate_soa" n
        (time_runs ~runs (fun () ->
             Po_workload.Ensemble.paper_ensemble_soa ~n ~seed:42 ()));
      let soa = Po_workload.Ensemble.paper_ensemble_soa ~n ~seed:42 () in
      let nu = 0.3 *. Po_model.Cp_soa.saturation_nu soa in
      row "equilibrium_context_soa" n
        (time_runs ~runs (fun () -> Po_model.Equilibrium.context_soa soa));
      row "equilibrium_solve_soa" n
        (time_runs ~runs (fun () -> Po_model.Equilibrium.solve_soa ~nu soa));
      if n <= xl_game_cutoff then
        row "cp_game_solve_soa" n
          (time_runs ~runs:1 (fun () ->
               Po_core.Cp_game.solve_soa ~nu ~strategy soa)))
    xl_sizes;
  let rows = List.rev !rows in
  let exponents =
    List.filter_map
      (fun kernel ->
        let points =
          List.filter_map
            (fun (name, n, s) ->
              if String.equal name kernel then Some (n, s) else None)
            rows
        in
        if List.length points >= 2 then Some (kernel, fit_exponent points)
        else None)
      [ "ensemble_generate_soa"; "equilibrium_context_soa";
        "equilibrium_solve_soa"; "cp_game_solve_soa" ]
  in
  print_newline ();
  print_endline "  fitted scaling exponents (log t ~ e log n):";
  List.iter
    (fun (kernel, e) -> Printf.printf "  %-28s %8.3f\n" kernel e)
    exponents;
  print_newline ();
  (rows, exponents)

let write_xl_json ~rows ~exponents =
  let path = Filename.concat results_dir "bench_xl.json" in
  let row_lines =
    List.map
      (fun (name, n, seconds) ->
        Printf.sprintf "    {\"name\": \"%s\", \"n\": %d, \"seconds\": %s}"
          name n
          (json_float ~decimals:4 seconds))
      rows
  in
  let exp_lines =
    List.map
      (fun (kernel, e) ->
        Printf.sprintf "    {\"kernel\": \"%s\", \"exponent\": %s}" kernel
          (json_float ~decimals:3 e))
      exponents
  in
  Po_report.Writer.write_atomic ~path
    (Printf.sprintf
       "{\n\
       \  \"schema\": \"po-bench-xl-v1\",\n\
       \  \"rows\": [\n%s\n  ],\n\
       \  \"fitted_exponents\": [\n%s\n  ]\n\
        }\n"
       (String.concat ",\n" row_lines)
       (String.concat ",\n" exp_lines));
  Printf.printf "xl scaling results written to %s\n\n" path

(* CI smoke: generate n = 10^5 on the fault-hardened pool, then solve
   from several pool workers through the checked entry point — the whole
   large-n stack (jump-chunked generation, column context, typed error
   channel) exercised under domains in a few seconds. *)
let run_xl_smoke () =
  print_endline "== xl smoke: n=100000 SoA solves on the hardened pool ==";
  let n = 100_000 in
  let t0 = Unix.gettimeofday () in
  let pool = Po_par.Pool.create ~domains:(Po_par.Pool.default_domains ()) () in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Po_par.Pool.shutdown pool)
      (fun () ->
        let soa = Po_workload.Ensemble.paper_ensemble_soa ~n ~pool ~seed:42 () in
        let sat = Po_model.Cp_soa.saturation_nu soa in
        Po_par.Pool.parallel_init pool 3 (fun k ->
            let nu = float_of_int (1 + k) *. 0.25 *. sat in
            Po_model.Equilibrium.solve_soa_checked ~nu soa))
  in
  let ok =
    Array.for_all
      (function
        | Ok sol -> sol.Po_model.Equilibrium.congested
        | Error e ->
            Printf.printf "  solve failed: %s\n"
              (Po_guard.Po_error.to_string e);
            false)
      outcome
  in
  Printf.printf "  %d CPs generated + %d solves in %.2f s: %s\n\n" n
    (Array.length outcome)
    (Unix.gettimeofday () -. t0)
    (if ok then "OK" else "FAILED");
  ok

(* ------------------------------------------------------------------ *)
(* Chaos smoke: supervised sweeps under injected faults               *)
(* ------------------------------------------------------------------ *)

(* CI chaos tier (DESIGN.md §13): regenerate fig4/fig5 under injected
   transient faults with retries armed and byte-compare against the
   fault-free render at jobs 1 and 4; then drive the circuit breaker's
   degraded serial path under a persistent crash, and an expired
   deadline's typed failure.  The check list, the warnings and a
   metrics snapshot land in results/chaos.json for CI artifact
   upload. *)
let run_chaos_smoke () =
  print_endline "== chaos smoke: supervised sweeps under injected faults ==";
  Po_obs.Metrics.arm ();
  let base = { Po_experiments.Common.quick_params with jobs = 1 } in
  let checks = ref [] in
  let record name passed =
    Printf.printf "  %-48s %s\n%!" name (if passed then "ok" else "FAILED");
    checks := (name, passed) :: !checks
  in
  let figure_text id params =
    match Po_experiments.Registry.find id with
    | None -> invalid_arg ("chaos smoke: unknown figure " ^ id)
    | Some entry ->
        Po_experiments.Common.render ~plots:false
          (entry.Po_experiments.Registry.generate ~params ())
  in
  let flaky_spec =
    { Po_guard.Faultinject.solver = None; worker = None; write = None;
      timeout = None; slow = None; flaky = Some (1, 2) }
  in
  let worker_spec = { flaky_spec with flaky = None; worker = Some 1 } in
  let cleans =
    List.map (fun id -> (id, figure_text id base)) [ "fig4"; "fig5" ]
  in
  (* Transient faults absorbed by retries: byte-identical to the clean
     run for any worker count (the retry replays the same chunk-index
     coordinate, split PRNG stream and warm-start chain). *)
  List.iter
    (fun (id, clean) ->
      List.iter
        (fun jobs ->
          Po_guard.Faultinject.arm flaky_spec;
          let faulted =
            figure_text id
              { base with jobs; sup = Po_sup.Supervise.v ~retries:3 () }
          in
          Po_guard.Faultinject.disarm ();
          record
            (Printf.sprintf "%s flaky retries byte-identical (jobs %d)" id
               jobs)
            (String.equal clean faulted))
        [ 1; 4 ])
    cleans;
  (* A persistent crash trips the breaker; degradation completes the
     figure serially with a warning instead of failing it. *)
  let clean4 = List.assoc "fig4" cleans in
  let warnings_before = Po_guard.Warnings.count () in
  Po_guard.Faultinject.arm worker_spec;
  let degraded =
    figure_text "fig4"
      { base with
        sup = Po_sup.Supervise.v ~retries:1 ~breaker_threshold:2 () }
  in
  Po_guard.Faultinject.disarm ();
  record "fig4 breaker degrades and stays byte-identical"
    (String.equal clean4 degraded);
  record "breaker trip emitted a warning"
    (Po_guard.Warnings.count () > warnings_before);
  (* An expired budget surfaces as the typed deadline error at the next
     chunk boundary -- the run fails fast, it never hangs. *)
  let budget = Po_sup.Budget.start ~deadline:0.002 () in
  Po_obs.Clock.sleep_s 0.01;
  (match
     Po_guard.Po_error.capture (fun () ->
         figure_text "fig4" { base with sup = Po_sup.Supervise.v ~budget () })
   with
  | Error
      { Po_guard.Po_error.kind = Po_guard.Po_error.Deadline_exceeded _; _ }
    ->
      record "expired deadline fails typed" true
  | Error _ | Ok _ -> record "expired deadline fails typed" false);
  let checks = List.rev !checks in
  let ok = List.for_all snd checks in
  let path = Filename.concat results_dir "chaos.json" in
  Po_report.Writer.write_atomic ~path
    (Po_obs.Json.to_string
       (Po_obs.Json.Obj
          [ ("schema", Po_obs.Json.String "po-chaos-v1");
            ("passed", Po_obs.Json.Bool ok);
            ( "checks",
              Po_obs.Json.List
                (List.map
                   (fun (name, passed) ->
                     Po_obs.Json.Obj
                       [ ("name", Po_obs.Json.String name);
                         ("passed", Po_obs.Json.Bool passed) ])
                   checks) );
            ( "warnings",
              Po_obs.Json.Obj
                [ ( "count",
                    Po_obs.Json.Number
                      (float_of_int (Po_guard.Warnings.count ())) );
                  ( "messages",
                    Po_obs.Json.List
                      (List.map
                         (fun m -> Po_obs.Json.String m)
                         (Po_guard.Warnings.drain ())) ) ] );
            ("metrics", Po_obs.Metrics.snapshot_json ()) ])
    ^ "\n");
  Printf.printf "chaos results written to %s\n\n" path;
  ok

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark output                                  *)
(* ------------------------------------------------------------------ *)

let write_bench_json ~kernels ~jobs ~speedups =
  let path = Filename.concat results_dir "bench.json" in
  let kernel_rows =
    List.map
      (fun (name, ns) ->
        Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s}" name
          (json_float ns))
      kernels
  in
  let speedup_rows =
    List.map
      (fun (id, serial, parallel, speedup) ->
        Printf.sprintf
          "    {\"figure\": \"%s\", \"serial_s\": %s, \"parallel_s\": %s, \
           \"speedup\": %s}"
          id
          (json_float ~decimals:4 serial)
          (json_float ~decimals:4 parallel)
          (json_float ~decimals:4 speedup))
      speedups
  in
  Po_report.Writer.write_atomic ~path
    (Printf.sprintf
       "{\n\
       \  \"schema\": \"po-bench-v1\",\n\
       \  \"jobs\": %d,\n\
       \  \"kernels\": [\n%s\n  ],\n\
       \  \"sweep_speedup\": [\n%s\n  ]\n\
        }\n"
       jobs
       (String.concat ",\n" kernel_rows)
       (String.concat ",\n" speedup_rows));
  Printf.printf "machine-readable benchmark results written to %s\n\n" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let figures_only = Array.exists (( = ) "--figures-only") Sys.argv in
  let bench_only = Array.exists (( = ) "--bench-only") Sys.argv in
  let par_only = Array.exists (( = ) "--par-only") Sys.argv in
  let xl = Array.exists (( = ) "--xl") Sys.argv in
  let xl_smoke = Array.exists (( = ) "--xl-smoke") Sys.argv in
  let chaos_smoke = Array.exists (( = ) "--chaos-smoke") Sys.argv in
  if chaos_smoke then exit (if run_chaos_smoke () then 0 else 1);
  if xl_smoke then exit (if run_xl_smoke () then 0 else 1);
  if xl then begin
    let rows, exponents = run_xl_bench () in
    write_xl_json ~rows ~exponents;
    exit 0
  end;
  (* The full paper scale (n = 1000, 33-point sweeps) takes several
     minutes end to end; the default here trades sweep resolution for a
     bench that completes in about a minute while preserving every
     qualitative shape.  Use the ponet CLI for full-resolution runs.
     Figure regeneration itself runs on every recommended domain —
     po_par guarantees the output does not depend on the worker count. *)
  let params =
    if quick then Po_experiments.Common.quick_params
    else
      { Po_experiments.Common.n_cps = 400; seed = 42; sweep_points = 17;
        jobs = 1; checkpoint = None; sup = Po_sup.Supervise.default }
  in
  let params =
    { params with
      Po_experiments.Common.jobs = Po_par.Pool.default_domains () }
  in
  let ok = ref true in
  if par_only then ignore (run_par_bench ~params ())
  else begin
    if not bench_only then begin
      Printf.printf
        "Reproduction harness: %d CPs, %d-point sweeps (%s, %d domains)\n\n"
        params.Po_experiments.Common.n_cps
        params.Po_experiments.Common.sweep_points
        (if quick then "quick" else "standard")
        params.Po_experiments.Common.jobs;
      regenerate_figures ~params ();
      ok := run_claims ~params ()
    end;
    if not figures_only then begin
      let kernels = run_microbenchmarks () in
      (* The sweep-speedup section runs in every benching mode —
         [--bench-only] used to skip it and emit an empty array, which
         starved the regression gate of its sweep rows. *)
      let jobs, speedups = run_par_bench ~params () in
      write_bench_json ~kernels ~jobs ~speedups
    end
  end;
  if not !ok then begin
    prerr_endline "claim audits FAILED";
    exit 1
  end
