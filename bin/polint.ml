(* The polint driver — the repo's determinism & float-safety linter.

   Walks the given source roots (default: lib bin bench test examples),
   applies the rule catalogue R1-R5 (see DESIGN.md section 7 or
   --list-rules) and prints one 'file:line:col [rule-id] message' line
   per violation.  Exit codes: 0 clean, 1 violations, 2 configuration
   error. *)

open Cmdliner

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint, relative to $(b,--root).  \
           Defaults to the standard source roots (lib bin bench test \
           examples).")

let root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repository root.  Paths are resolved and reported relative to \
           it, and rule scoping (lib/ vs test/) is derived from it.")

let allowlist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "allowlist" ] ~docv:"FILE"
        ~doc:
          "Per-rule allowlist file.  Defaults to $(b,polint.allow) under \
           the root when that file exists.")

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"IDS"
        ~doc:"Comma-separated rule ids to check (default: all of R1-R5).")

let list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")

let parse_rules = function
  | None -> Ok None
  | Some csv ->
      let toks =
        List.filter
          (fun s -> not (String.equal s ""))
          (String.split_on_char ',' csv)
      in
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | tok :: rest -> (
            match Po_lint.Rule.of_string (String.trim tok) with
            | Some r -> go (r :: acc) rest
            | None -> Error (Printf.sprintf "unknown rule id %S" tok))
      in
      go [] toks

let print_catalogue () =
  List.iter
    (fun (m : Po_lint.Rule.meta) ->
      Printf.printf "%s  %s\n    %s\n" (Po_lint.Rule.to_string m.id) m.title
        m.rationale)
    Po_lint.Rule.catalogue

let run paths root allowlist rules_csv list_rules =
  if list_rules then begin
    print_catalogue ();
    0
  end
  else
    match parse_rules rules_csv with
    | Error msg ->
        prerr_endline ("polint: " ^ msg);
        2
    | Ok rules -> (
        match
          Po_lint.Lint.run ~root ?allowlist_path:allowlist ?rules ~paths ()
        with
        | Error msg ->
            prerr_endline ("polint: " ^ msg);
            2
        | Ok [] -> 0
        | Ok diags ->
            List.iter
              (fun d -> print_endline (Po_lint.Diagnostic.to_string d))
              diags;
            Printf.eprintf "polint: %d violation%s\n" (List.length diags)
              (if List.length diags = 1 then "" else "s");
            1)

let cmd =
  let doc =
    "static determinism & float-safety linter for the public-option tree"
  in
  Cmd.v
    (Cmd.info "polint" ~version:"1.0.0" ~doc)
    Term.(
      const run $ paths_arg $ root_arg $ allowlist_arg $ rules_arg
      $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
