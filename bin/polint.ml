(* The polint driver — the repo's determinism & float-safety linter.

   Walks the given source roots (default: lib bin bench test examples),
   applies the rule catalogue (see DESIGN.md section 7 or --list-rules)
   and prints one 'file:line:col [rule-id] message' line per violation.
   R1-R6 need only the sources; --typed additionally loads the .cmt
   trees from the last dune build and runs the interprocedural rules
   R7-R10 (call-graph reachability, witness chains in the output).

   Exit codes: 0 clean, 1 violations (or stale suppressions under
   --check-allowlist), 2 configuration error — including malformed
   suppression directives and files that do not parse. *)

open Cmdliner

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint, relative to $(b,--root).  \
           Defaults to the standard source roots (lib bin bench test \
           examples).")

let root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repository root.  Paths are resolved and reported relative to \
           it, and rule scoping (lib/ vs test/) is derived from it.")

let allowlist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "allowlist" ] ~docv:"FILE"
        ~doc:
          "Per-rule allowlist file.  Defaults to $(b,polint.allow) under \
           the root when that file exists.")

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"IDS"
        ~doc:
          "Comma-separated rule ids to check (default: all of R1-R10; \
           R7-R10 only fire together with $(b,--typed)).")

let list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")

let typed_arg =
  Arg.(
    value & flag
    & info [ "typed" ]
        ~doc:
          "Also run the typed-tree rules (R7-R10) over the .cmt files of \
           the last dune build.  While the typed pass has units to \
           analyze, R9 supersedes the syntactic R1.")

let build_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "build-dir" ] ~docv:"DIR"
        ~doc:
          "Where to look for .cmt files (default: \
           $(b,<root>/_build/default)).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Lint files on N domains of a po_par pool.  Output is \
           identical for any N.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (one line per finding, call chains \
           indented) or $(b,json) (the polint-v1 envelope with precise \
           locations and witness arrays).")

let check_allowlist_arg =
  Arg.(
    value & flag
    & info [ "check-allowlist" ]
        ~doc:
          "Audit suppressions instead of failing on findings: exit 1 if \
           any polint.allow entry or inline 'polint: allow' directive \
           matched nothing.  Implies $(b,--typed), so entries for R7-R10 \
           count as used.")

let parse_rules = function
  | None -> Ok None
  | Some csv ->
      let toks =
        List.filter
          (fun s -> not (String.equal s ""))
          (String.split_on_char ',' csv)
      in
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | tok :: rest -> (
            match Po_lint.Rule.of_string (String.trim tok) with
            | Some r -> go (r :: acc) rest
            | None -> Error (Printf.sprintf "unknown rule id %S" tok))
      in
      go [] toks

let print_catalogue () =
  List.iter
    (fun (m : Po_lint.Rule.meta) ->
      Printf.printf "%s  %s\n    %s\n" (Po_lint.Rule.to_string m.id) m.title
        m.rationale)
    Po_lint.Rule.catalogue

let is_meta (d : Po_lint.Diagnostic.t) =
  match d.Po_lint.Diagnostic.rule with
  | "parse" | "suppress" -> true
  | _ -> false

let render format diags =
  match format with
  | `Json -> print_endline (Po_lint.Diagnostic.list_to_json diags)
  | `Text ->
      List.iter
        (fun d -> print_endline (Po_lint.Diagnostic.to_string d))
        diags

let report_stale (r : Po_lint.Lint.report) =
  List.iter
    (fun (e : Po_lint.Suppress.allow_entry) ->
      Printf.printf "polint.allow:%d stale entry: %s %s (%s)\n"
        e.Po_lint.Suppress.lineno
        (Po_lint.Rule.to_string e.Po_lint.Suppress.rule)
        e.Po_lint.Suppress.path e.Po_lint.Suppress.reason)
    r.Po_lint.Lint.stale_allows;
  List.iter
    (fun (file, line) ->
      Printf.printf "%s:%d stale inline suppression: matches nothing\n" file
        line)
    r.Po_lint.Lint.stale_directives;
  let n =
    List.length r.Po_lint.Lint.stale_allows
    + List.length r.Po_lint.Lint.stale_directives
  in
  if n = 0 then 0
  else begin
    Printf.eprintf
      "polint: %d stale suppression%s — remove or re-justify\n" n
      (if n = 1 then "" else "s");
    1
  end

let run paths root allowlist rules_csv list_rules typed build_dir jobs format
    check_allowlist =
  if list_rules then begin
    print_catalogue ();
    0
  end
  else
    match parse_rules rules_csv with
    | Error msg ->
        prerr_endline ("polint: " ^ msg);
        2
    | Ok rules -> (
        let typed = typed || check_allowlist in
        match
          Po_lint.Lint.run ~root ?allowlist_path:allowlist ?rules ~paths
            ~typed ?build_dir ?jobs ()
        with
        | Error msg ->
            prerr_endline ("polint: " ^ msg);
            2
        | Ok r ->
            List.iter
              (fun note -> Printf.eprintf "polint: note: %s\n" note)
              r.Po_lint.Lint.typed_notes;
            if check_allowlist then report_stale r
            else begin
              let diags = r.Po_lint.Lint.diagnostics in
              render format diags;
              if diags = [] then 0
              else begin
                Printf.eprintf "polint: %d violation%s\n" (List.length diags)
                  (if List.length diags = 1 then "" else "s");
                if List.exists is_meta diags then 2 else 1
              end
            end)

let cmd =
  let doc =
    "static determinism & float-safety linter for the public-option tree"
  in
  Cmd.v
    (Cmd.info "polint" ~version:"2.0.0" ~doc)
    Term.(
      const run $ paths_arg $ root_arg $ allowlist_arg $ rules_arg
      $ list_rules_arg $ typed_arg $ build_dir_arg $ jobs_arg $ format_arg
      $ check_allowlist_arg)

let () = exit (Cmd.eval' cmd)
