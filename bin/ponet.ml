(* ponet: command-line driver for the public-option reproduction.

   Subcommands:
     ponet list                     enumerate reproducible experiments
     ponet fig <id> [...]           regenerate a figure (table/plot/CSV)
     ponet claims                   run the theorem audits
     ponet regimes [...]            compare regulatory regimes
     ponet simulate [...]           run the AIMD bottleneck simulation
     ponet bench-diff <a> <b>       gate on benchmark regressions
     ponet serve [...]              long-lived scenario-query daemon
     ponet query <json>             answer one request without a daemon
     ponet loadgen [...]            seeded load generator for the daemon *)

open Cmdliner

(* Every flag takes its default from [Common.default_params] (the
   paper's scale), so the CLI and the library can never drift apart —
   except [--jobs], whose default is the hardware parallelism: output is
   identical for any jobs value, so there is no reason to leave cores
   idle interactively. *)
let params_term =
  let default = Po_experiments.Common.default_params in
  let n_cps =
    Arg.(
      value
      & opt int default.Po_experiments.Common.n_cps
      & info [ "n"; "cps" ] ~docv:"N"
          ~doc:"Ensemble size (number of CPs); the paper uses 1000.")
  in
  let seed =
    Arg.(
      value
      & opt int default.Po_experiments.Common.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"PRNG seed; every figure is bit-reproducible from it.")
  in
  let points =
    Arg.(
      value
      & opt int default.Po_experiments.Common.sweep_points
      & info [ "points" ] ~docv:"P"
          ~doc:"Sweep resolution (points per axis); the paper uses 33.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Po_par.Pool.default_domains ())
      & info [ "j"; "jobs" ] ~docv:"JOBS"
          ~doc:
            "Worker domains for sweep evaluation.  $(docv)=1 runs the \
             serial path; any value produces byte-identical output (the \
             parallel engine is deterministic), so the default is the \
             machine's recommended domain count.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget for the whole run.  Checked cooperatively \
             at chunk and solver iteration boundaries; on expiry the run \
             fails with a typed deadline error (and a resume hint when \
             checkpointing is on) instead of hanging.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-run a crashed or timed-out sweep chunk up to $(docv) \
             times before giving up.  Chunks are pure functions of their \
             index, so a retried run is byte-identical to a fault-free \
             one.")
  in
  let no_degrade =
    Arg.(
      value & flag
      & info [ "no-degrade" ]
          ~doc:
            "Fail the figure when the chunk circuit breaker opens instead \
             of falling back to serial in-caller evaluation.")
  in
  let chunk_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "chunk-timeout" ] ~docv:"SECS"
          ~doc:
            "Watchdog limit per sweep chunk: a chunk whose evaluation \
             exceeds $(docv) seconds raises a retryable chunk-timeout \
             error.")
  in
  let make n_cps seed sweep_points jobs deadline retries no_degrade
      chunk_timeout =
    let sup =
      match
        Po_guard.Po_error.capture (fun () ->
            let budget =
              Option.map
                (fun d -> Po_sup.Budget.start ~deadline:d ())
                deadline
            in
            Po_sup.Supervise.v ?budget ~retries ~degrade:(not no_degrade)
              ?chunk_timeout ())
      with
      | Ok sup -> sup
      | Error e ->
          Printf.eprintf "ponet: %s\n" (Po_guard.Po_error.to_string e);
          exit 2
    in
    { Po_experiments.Common.n_cps; seed; sweep_points; jobs = max 1 jobs;
      checkpoint = None; sup }
  in
  Term.(
    const make $ n_cps $ seed $ points $ jobs $ deadline $ retries
    $ no_degrade $ chunk_timeout)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Po_experiments.Registry.entry) ->
        Printf.printf "%-6s %s\n" e.Po_experiments.Registry.id
          e.Po_experiments.Registry.description)
      Po_experiments.Registry.entries
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible experiments")
    Term.(const run $ const ())

let fig_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Figure id (see 'ponet list').")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write CSV files under $(docv).")
  in
  let no_plots =
    Arg.(value & flag & info [ "no-plots" ] ~doc:"Skip the ASCII plots.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the sweep chunks an interrupted run journalled under \
             the checkpoint directory instead of recomputing them.  The \
             resumed figure is byte-identical to an uninterrupted run, \
             for any $(b,--jobs) on either side.")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt string ".ponet-checkpoints"
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Where sweep checkpoint journals live.")
  in
  let no_checkpoint =
    Arg.(
      value & flag
      & info [ "no-checkpoint" ]
          ~doc:"Disable sweep checkpointing for this run.")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection, e.g. \
             $(b,solver@3,worker@1,write@2,timeout@1,slow@2,flaky@3:2): \
             fail the k-th solver call, the chunk with logical index k \
             (as a crash, a watchdog timeout, an over-limit sleep, or n \
             transient crashes for $(b,flaky@k:n)), or the k-th atomic \
             write.  Chunk indices are pure functions of the sweep \
             geometry, so an injected fault fires at the same place for \
             any $(b,--jobs).  Sites named here override the same site \
             in $(b,PONET_INJECT); sites the flag leaves unset fall back \
             to the environment spec.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Arm the tracer and export a Chrome trace-event JSON of this \
             run to $(docv) (open in chrome://tracing or Perfetto).  The \
             figure output itself is unchanged.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Arm the metrics registry and export a JSON snapshot \
             (counters, gauges, histograms) plus the run manifest to \
             $(docv).  Counter values are identical for any $(b,--jobs).")
  in
  let run id params csv_dir no_plots resume checkpoint_dir no_checkpoint
      inject trace_file metrics_file =
    (* [--inject] wins per site; [PONET_INJECT] fills the sites the flag
       leaves unset (Faultinject.merge).  Both specs must parse even
       when one ends up fully shadowed. *)
    let parse_spec ~origin spec =
      match Po_guard.Faultinject.parse spec with
      | Ok spec -> spec
      | Error msg ->
          Printf.eprintf "ponet fig: bad %s spec: %s\n" origin msg;
          exit 2
    in
    let env_spec =
      Option.map
        (parse_spec ~origin:"PONET_INJECT")
        (Sys.getenv_opt "PONET_INJECT")
    in
    let flag_spec = Option.map (parse_spec ~origin:"--inject") inject in
    (match (env_spec, flag_spec) with
    | None, None -> Po_guard.Faultinject.disarm ()
    | Some spec, None | None, Some spec -> Po_guard.Faultinject.arm spec
    | Some base, Some override ->
        Po_guard.Faultinject.arm (Po_guard.Faultinject.merge ~base ~override));
    let observing = trace_file <> None || metrics_file <> None in
    if trace_file <> None then Po_obs.Trace.arm ();
    if observing then Po_obs.Metrics.arm ();
    let params =
      { params with
        Po_experiments.Common.checkpoint =
          (if no_checkpoint then None
           else
             Some { Po_experiments.Common.dir = checkpoint_dir; resume }) }
    in
    match Po_experiments.Registry.find id with
    | None ->
        Printf.eprintf "unknown figure id %S; try 'ponet list'\n" id;
        exit 1
    | Some entry -> (
        let t0 = if observing then Po_obs.Clock.now_s () else 0. in
        (* Manifest provenance: enough to tell two exports apart
           (DESIGN.md §11). *)
        let export_observations () =
          if observing then begin
            let manifest =
              Po_obs.Manifest.make ~figure:id
                ~params_hash:
                  (Po_obs.Manifest.params_hash
                     ~n_cps:params.Po_experiments.Common.n_cps
                     ~seed:params.Po_experiments.Common.seed
                     ~sweep_points:params.Po_experiments.Common.sweep_points)
                ~jobs:params.Po_experiments.Common.jobs
                ~wall_s:(Po_obs.Clock.now_s () -. t0)
                ~warnings:(Po_guard.Warnings.count ())
                ()
            in
            let manifest_json = Po_obs.Manifest.to_json manifest in
            (match trace_file with
            | None -> ()
            | Some path ->
                Po_obs.Trace.export
                  ~other:[ ("manifest", manifest_json) ]
                  ~path ();
                Printf.printf "wrote trace to %s\n" path);
            match metrics_file with
            | None -> ()
            | Some path ->
                Po_report.Writer.write_atomic ~path
                  (Po_obs.Json.to_string
                     (Po_obs.Json.Obj
                        [ ("schema", Po_obs.Json.String "po-metrics-v1");
                          ("manifest", manifest_json);
                          ("metrics", Po_obs.Metrics.snapshot_json ()) ])
                  ^ "\n");
                Printf.printf "wrote metrics to %s\n" path
          end
        in
        match
          Po_guard.Po_error.capture (fun () ->
              let figure = entry.Po_experiments.Registry.generate ~params () in
              print_string
                (Po_experiments.Common.render ~plots:(not no_plots) figure);
              match csv_dir with
              | None -> ()
              | Some dir ->
                  let written = Po_experiments.Common.csv_files ~dir figure in
                  List.iter (Printf.printf "wrote %s\n") written)
        with
        | Ok () -> export_observations ()
        | Error e ->
            (* A failed run still exports whatever it observed — that is
               when a trace is most useful. *)
            export_observations ();
            Printf.eprintf "ponet fig: %s\n" (Po_guard.Po_error.to_string e);
            (if not no_checkpoint then
               Printf.eprintf
                 "ponet fig: completed chunks are journalled under %s; \
                  re-run with --resume to pick up where this run stopped\n"
                 checkpoint_dir);
            exit 1)
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate one of the paper's figures")
    Term.(
      const run $ id $ params_term $ csv_dir $ no_plots $ resume
      $ checkpoint_dir $ no_checkpoint $ inject $ trace_file $ metrics_file)

let claims_cmd =
  let run params =
    let checks = Po_experiments.Claims.all ~params () in
    print_string (Po_experiments.Claims.render checks);
    if List.exists (fun c -> not c.Po_experiments.Claims.passed) checks then
      exit 1
  in
  Cmd.v
    (Cmd.info "claims" ~doc:"Audit the paper's theorems numerically")
    Term.(const run $ params_term)

let regimes_cmd =
  let nu_frac =
    Arg.(
      value & opt float 0.85
      & info [ "capacity" ] ~docv:"FRAC"
          ~doc:"Per-capita capacity as a fraction of saturation.")
  in
  let po_share =
    Arg.(
      value & opt float 0.5
      & info [ "po-share" ] ~docv:"S"
          ~doc:"Capacity share carved out for the Public Option ISP.")
  in
  (* The solve goes through [Po_serve.Engine] — the same code path the
     daemon batches — so this table and a daemon [regimes] answer can
     never disagree. *)
  let run params nu_frac po_share =
    let sc =
      { Po_serve.Request.n_cps = params.Po_experiments.Common.n_cps;
        seed = params.Po_experiments.Common.seed; nu_frac }
    in
    let out =
      Po_serve.Engine.regimes ~sc ~po_share ~levels:2 ~points:9 ()
    in
    Printf.printf "%d CPs, nu = %.2f (%.0f%% of saturation)\n"
      out.Po_serve.Engine.n_cps out.Po_serve.Engine.nu (100. *. nu_frac);
    List.iter
      (fun (r : Po_core.Public_option.regime_result) ->
        Printf.printf "  %-34s Phi = %10.4f  Psi = %10.4f%s%s\n"
          r.Po_core.Public_option.label r.Po_core.Public_option.phi
          r.Po_core.Public_option.psi
          (match r.Po_core.Public_option.commercial_strategy with
          | Some s -> "  strategy " ^ Po_core.Strategy.to_string s
          | None -> "")
          (match r.Po_core.Public_option.market_share with
          | Some m -> Printf.sprintf "  m_I=%.4f" m
          | None -> ""))
      out.Po_serve.Engine.results
  in
  Cmd.v
    (Cmd.info "regimes" ~doc:"Compare regulatory regimes on one market")
    Term.(const run $ params_term $ nu_frac $ po_share)

let welfare_cmd =
  let nu_frac =
    Arg.(
      value & opt float 0.85
      & info [ "capacity" ] ~docv:"FRAC"
          ~doc:"Per-capita capacity as a fraction of saturation.")
  in
  let run params nu_frac =
    let sc =
      { Po_serve.Request.n_cps = params.Po_experiments.Common.n_cps;
        seed = params.Po_experiments.Common.seed; nu_frac }
    in
    let out =
      Po_serve.Engine.welfare
        ?pool:(Po_experiments.Common.pool params)
        ~sc ~po_share:0.5 ~levels:2 ~points:7 ()
    in
    Printf.printf "%d CPs, nu = %.2f (%.0f%% of saturation)\n"
      out.Po_serve.Engine.w_n_cps out.Po_serve.Engine.w_nu (100. *. nu_frac);
    Printf.printf "%-34s %12s %12s %12s %12s\n" "regime" "consumer" "isp"
      "cp" "total";
    List.iter
      (fun (label, w) ->
        Printf.printf "%-34s %12.4f %12.4f %12.4f %12.4f\n" label
          w.Po_core.Welfare.consumer w.Po_core.Welfare.isp
          w.Po_core.Welfare.cp w.Po_core.Welfare.total)
      out.Po_serve.Engine.rows
  in
  Cmd.v
    (Cmd.info "welfare"
       ~doc:"Three-party welfare decomposition per regulatory regime")
    Term.(const run $ params_term $ nu_frac)

let ensemble_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the population CSV here.")
  in
  let heavy =
    Arg.(
      value & flag
      & info [ "heavy-tailed" ]
          ~doc:"Draw the Zipf/Pareto ensemble instead of the paper's \
                uniform one.")
  in
  let run params heavy out =
    let cps =
      if heavy then
        Po_workload.Ensemble.heavy_tailed_ensemble
          ~n:params.Po_experiments.Common.n_cps
          ?pool:(Po_experiments.Common.pool params)
          ~seed:params.Po_experiments.Common.seed ()
      else Po_experiments.Common.ensemble params
    in
    match Po_workload.Io.write_file ~path:out cps with
    | Ok () ->
        Printf.printf "wrote %d CPs to %s (saturation nu = %.2f)\n"
          (Array.length cps) out
          (Po_workload.Ensemble.saturation_nu cps)
    | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "ensemble"
       ~doc:"Draw a CP population and archive it as CSV")
    Term.(const run $ params_term $ heavy $ out)

let lint_cmd =
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: the standard source \
             roots lib bin bench test examples).")
  in
  let allowlist =
    Arg.(
      value
      & opt (some string) None
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:
            "Per-rule allowlist file (default: polint.allow when \
             present).")
  in
  let typed =
    Arg.(
      value & flag
      & info [ "typed" ]
          ~doc:
            "Also run the typed-tree rules (R7-R10) over the .cmt files \
             of the last dune build.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Lint files on N domains of a po_par pool; output is \
             identical for any N.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the polint-v1 JSON envelope.")
  in
  let run paths allowlist typed jobs json =
    match
      Po_lint.Lint.run ?allowlist_path:allowlist ~paths ~typed ?jobs ()
    with
    | Error msg ->
        prerr_endline ("ponet lint: " ^ msg);
        exit 2
    | Ok r -> (
        List.iter
          (fun note -> Printf.eprintf "ponet lint: note: %s\n" note)
          r.Po_lint.Lint.typed_notes;
        match r.Po_lint.Lint.diagnostics with
        | [] -> if json then print_endline (Po_lint.Diagnostic.list_to_json [])
        | diags ->
            if json then print_endline (Po_lint.Diagnostic.list_to_json diags)
            else
              List.iter
                (fun d -> print_endline (Po_lint.Diagnostic.to_string d))
                diags;
            Printf.eprintf "ponet lint: %d violation%s\n" (List.length diags)
              (if List.length diags = 1 then "" else "s");
            let meta (d : Po_lint.Diagnostic.t) =
              match d.Po_lint.Diagnostic.rule with
              | "parse" | "suppress" -> true
              | _ -> false
            in
            exit (if List.exists meta diags then 2 else 1))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run polint, the determinism & float-safety linter, over the \
          source tree")
    Term.(const run $ paths $ allowlist $ typed $ jobs $ json)

let bench_diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline po-bench-v1 JSON file.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current po-bench-v1 JSON file.")
  in
  let max_slowdown =
    Arg.(
      value
      & opt float Po_obs.Bench_diff.default_thresholds.max_slowdown_pct
      & info [ "max-slowdown" ] ~docv:"PCT"
          ~doc:"Fail when a kernel's ns_per_run grows by more than $(docv)%.")
  in
  let max_speedup_drop =
    Arg.(
      value
      & opt float Po_obs.Bench_diff.default_thresholds.max_speedup_drop_pct
      & info [ "max-speedup-drop" ] ~docv:"PCT"
          ~doc:
            "Fail when a figure's parallel speedup drops by more than \
             $(docv)%.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the comparison table to $(docv).")
  in
  let run baseline current max_slowdown_pct max_speedup_drop_pct report =
    let thresholds =
      { Po_obs.Bench_diff.max_slowdown_pct; max_speedup_drop_pct }
    in
    match
      Po_obs.Bench_diff.compare_files ~thresholds ~baseline ~current ()
    with
    | Error msg ->
        Printf.eprintf "ponet bench-diff: %s\n" msg;
        exit 2
    | Ok r ->
        let table = Po_obs.Bench_diff.render r in
        print_string table;
        (match report with
        | None -> ()
        | Some path -> Po_report.Writer.write_atomic ~path table);
        if Po_obs.Bench_diff.has_regression r then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two po-bench-v1 benchmark files and fail on regressions"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Compares the benchmark JSON emitted by the bench runner \
              ($(b,bench/main.ml --bench-only), written to \
              results/bench.json) against a committed baseline.  Exits 1 \
              when any kernel slows down or any sweep speedup drops past \
              its threshold, 2 on unreadable or non-po-bench-v1 input." ])
    Term.(
      const run $ baseline $ current $ max_slowdown $ max_speedup_drop
      $ report)

let simulate_cmd =
  let nu =
    Arg.(
      value & opt float 2.5
      & info [ "nu" ] ~docv:"NU" ~doc:"Per-capita capacity (model units).")
  in
  let churn =
    Arg.(value & flag & info [ "churn" ] ~doc:"Enable demand churn.")
  in
  let run nu churn =
    let cps = Po_workload.Scenario.three_cp () in
    let r = Po_netsim.Validate.compare ~with_churn:churn ~nu cps in
    Printf.printf
      "AIMD vs max-min at nu=%.2f (utilization %.3f, max err %.3f)\n" nu
      r.Po_netsim.Validate.utilization
      r.Po_netsim.Validate.max_relative_error;
    Array.iter
      (fun (c : Po_netsim.Validate.cp_comparison) ->
        Printf.printf "  %-8s flows=%2d sim=%10.1f model=%10.1f err=%.3f\n"
          c.Po_netsim.Validate.label c.Po_netsim.Validate.flows
          c.Po_netsim.Validate.simulated_rate
          c.Po_netsim.Validate.predicted_rate
          c.Po_netsim.Validate.relative_error)
      r.Po_netsim.Validate.per_cp
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the packet-level AIMD simulation against the model")
    Term.(const run $ nu $ churn)

let serve_cmd =
  let default = Po_serve.Server.default_config in
  let socket =
    Arg.(
      value & opt string default.Po_serve.Server.socket_path
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to listen on (a stale file is replaced).")
  in
  let domains =
    Arg.(
      value & opt int default.Po_serve.Server.domains
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for batch evaluation; answers are \
             byte-identical for any value.")
  in
  let queue =
    Arg.(
      value & opt int default.Po_serve.Server.queue_capacity
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue bound; requests beyond it are shed with a \
             typed 'overloaded' response.")
  in
  let batch =
    Arg.(
      value & opt int default.Po_serve.Server.batch_max
      & info [ "batch" ] ~docv:"N"
          ~doc:"Maximum requests drained per dispatch round.")
  in
  let cache =
    Arg.(
      value & opt int default.Po_serve.Server.cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:"Solve-cache entries (LRU); 0 disables caching.")
  in
  let deadline =
    Arg.(
      value & opt (some float) default.Po_serve.Server.default_deadline_s
      & info [ "default-deadline" ] ~docv:"SECS"
          ~doc:
            "Budget applied to requests that carry no deadline_s of \
             their own.")
  in
  let max_bytes =
    Arg.(
      value & opt int default.Po_serve.Server.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Reject (and close) request lines longer than $(docv).")
  in
  let access_log =
    Arg.(
      value & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:"Append one JSON line per request to $(docv).")
  in
  let snapshot =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Export a po-serve-metrics-v1 document (metrics snapshot \
             plus run manifest) to $(docv) on graceful shutdown.")
  in
  let hold =
    Arg.(
      value & opt float 0.
      & info [ "hold" ] ~docv:"SECS"
          ~doc:
            "Testing hook: pause the dispatcher $(docv) seconds before \
             each batch, so overload behaviour can be exercised \
             deterministically.")
  in
  let run socket_path domains queue_capacity batch_max cache_capacity
      default_deadline_s max_request_bytes access_log snapshot_path hold_s =
    let cfg =
      { Po_serve.Server.socket_path; domains = max 1 domains;
        queue_capacity = max 1 queue_capacity; batch_max = max 1 batch_max;
        cache_capacity; default_deadline_s; max_request_bytes;
        access_log; snapshot_path; hold_s }
    in
    Printf.printf "ponet serve: listening on %s (domains=%d queue=%d)\n"
      cfg.Po_serve.Server.socket_path cfg.Po_serve.Server.domains
      cfg.Po_serve.Server.queue_capacity;
    (* The line must be visible before the blocking accept loop: CI and
       scripts wait for it to know the socket is ready. *)
    flush stdout;
    (match Po_serve.Server.run cfg with
    | () -> ()
    | exception Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "ponet serve: %s: %s %s\n" (Unix.error_message e) fn
          arg;
        exit 1);
    Printf.printf "ponet serve: drained and stopped\n"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived scenario-query daemon"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Listens on a Unix-domain socket for newline-delimited JSON \
              requests (equilibrium, surplus, regime comparison, welfare, \
              figure points), batches them onto a domain pool, answers \
              repeats from an LRU solve cache byte-identically, and sheds \
              load past the admission bound with typed 'overloaded' \
              responses.  SIGTERM/SIGINT drain every admitted request \
              before the process exits." ])
    Term.(
      const run $ socket $ domains $ queue $ batch $ cache $ deadline
      $ max_bytes $ access_log $ snapshot $ hold)

let query_cmd =
  let line =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:
            "One wire-protocol JSON request line, e.g. \
             '{\"query\":\"regimes\",\"params\":{\"n_cps\":100}}'.")
  in
  (* Exactly the daemon's pipeline — parse, budget, [Engine.eval],
     render — minus the socket: the printed line is byte-identical to
     the daemon's answer for the same request. *)
  let run line =
    match Po_serve.Request.of_line line with
    | Error e ->
        print_endline (Po_serve.Request.response_line (Error e));
        exit 1
    | Ok req ->
        let budget =
          Option.map
            (fun d -> Po_sup.Budget.start ~deadline:d ())
            req.Po_serve.Request.deadline_s
        in
        let resp =
          Po_serve.Engine.eval ?budget req.Po_serve.Request.query
        in
        print_endline (Po_serve.Request.response_line resp);
        (match resp with Ok _ -> () | Error _ -> exit 1)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Answer one serve-protocol request without a daemon")
    Term.(const run $ line)

let loadgen_cmd =
  let default = Po_serve.Loadgen.default_config in
  let socket =
    Arg.(
      value & opt string default.Po_serve.Loadgen.socket_path
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Socket of the daemon under load.")
  in
  let requests =
    Arg.(
      value & opt int default.Po_serve.Loadgen.requests
      & info [ "n"; "requests" ] ~docv:"N"
          ~doc:"Total requests across all clients.")
  in
  let clients =
    Arg.(
      value & opt int default.Po_serve.Loadgen.clients
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let seed =
    Arg.(
      value & opt int default.Po_serve.Loadgen.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Root seed of the request stream; equal seeds send equal \
             per-client request sequences.")
  in
  let scenarios =
    Arg.(
      value & opt int default.Po_serve.Loadgen.scenarios
      & info [ "scenarios" ] ~docv:"N"
          ~doc:
            "Distinct scenario pool size; repeats exercise the daemon's \
             solve cache.")
  in
  let deadline =
    Arg.(
      value & opt (some float) default.Po_serve.Loadgen.deadline_s
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-request deadline attached to every solve query.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the po-serve-v1 report to $(docv).")
  in
  let run socket_path requests clients seed scenarios deadline_s out_path =
    let cfg =
      { Po_serve.Loadgen.socket_path; requests; clients; seed; scenarios;
        deadline_s; out_path }
    in
    match Po_serve.Loadgen.run cfg with
    | exception Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "ponet loadgen: %s: %s %s\n" (Unix.error_message e)
          fn arg;
        exit 1
    | s ->
        Printf.printf
          "sent %d  ok %d  errors %d  protocol-errors %d\n\
           p50 %.2f ms  p99 %.2f ms  max %.2f ms\n\
           %.1f req/s over %.2f s\n"
          s.Po_serve.Loadgen.sent s.Po_serve.Loadgen.ok
          s.Po_serve.Loadgen.errors s.Po_serve.Loadgen.protocol_errors
          s.Po_serve.Loadgen.p50_ms s.Po_serve.Loadgen.p99_ms
          s.Po_serve.Loadgen.max_ms s.Po_serve.Loadgen.throughput_rps
          s.Po_serve.Loadgen.wall_s;
        List.iter
          (fun (k, v) -> Printf.printf "  %-24s %d\n" k v)
          s.Po_serve.Loadgen.server_counters;
        (match out_path with
        | Some path -> Printf.printf "wrote %s\n" path
        | None -> ());
        if s.Po_serve.Loadgen.protocol_errors > 0 then begin
          (match s.Po_serve.Loadgen.first_protocol_error with
          | Some msg -> Printf.eprintf "ponet loadgen: %s\n" msg
          | None -> ());
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Run the deterministic seeded load generator against a daemon")
    Term.(
      const run $ socket $ requests $ clients $ seed $ scenarios $ deadline
      $ out)

let () =
  let doc =
    "reproduction of 'The Public Option: a Non-regulatory Alternative to \
     Network Neutrality' (Ma & Misra, CoNEXT 2011)"
  in
  let info = Cmd.info "ponet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; fig_cmd; claims_cmd; regimes_cmd; welfare_cmd;
            ensemble_cmd; simulate_cmd; lint_cmd; bench_diff_cmd; serve_cmd;
            query_cmd; loadgen_cmd ]))
