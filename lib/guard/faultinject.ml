type site = Solver | Worker | Write | Timeout | Slow | Flaky

type spec = {
  solver : int option;
  worker : int option;
  write : int option;
  timeout : int option;
  slow : int option;
  flaky : (int * int) option;
}

exception Injected_fault of string

type state = {
  spec : spec;
  solver_calls : int Atomic.t;
  write_calls : int Atomic.t;
  flaky_fails : int Atomic.t;
}

let current : state option Atomic.t = Atomic.make None

let disarmed =
  {
    solver = None;
    worker = None;
    write = None;
    timeout = None;
    slow = None;
    flaky = None;
  }

let parse s =
  let parse_entry acc entry =
    match acc with
    | Error _ as e -> e
    | Ok spec -> (
        match String.split_on_char '@' (String.trim entry) with
        | [ site; arg ] -> (
            let site = String.trim site in
            let arg = String.trim arg in
            match site with
            | "flaky" -> (
                match String.split_on_char ':' arg with
                | [ k; n ] -> (
                    match (int_of_string_opt k, int_of_string_opt n) with
                    | Some k, Some n ->
                        if k < 0 then Error "flaky@k:n needs k >= 0"
                        else if n < 1 then Error "flaky@k:n needs n >= 1"
                        else Ok { spec with flaky = Some (k, n) }
                    | _ ->
                        Error
                          (Printf.sprintf "bad flaky arguments %S in %S" arg
                             entry))
                | _ ->
                    Error
                      (Printf.sprintf
                         "bad flaky entry %S (expected flaky@chunk:count)"
                         entry))
            | _ -> (
                match int_of_string_opt arg with
                | None ->
                    Error (Printf.sprintf "bad fault index %S in %S" arg entry)
                | Some k -> (
                    match site with
                    | "solver" ->
                        if k < 1 then Error "solver@k needs k >= 1"
                        else Ok { spec with solver = Some k }
                    | "worker" ->
                        if k < 0 then Error "worker@k needs k >= 0"
                        else Ok { spec with worker = Some k }
                    | "write" ->
                        if k < 1 then Error "write@k needs k >= 1"
                        else Ok { spec with write = Some k }
                    | "timeout" ->
                        if k < 0 then Error "timeout@k needs k >= 0"
                        else Ok { spec with timeout = Some k }
                    | "slow" ->
                        if k < 0 then Error "slow@k needs k >= 0"
                        else Ok { spec with slow = Some k }
                    | other ->
                        Error
                          (Printf.sprintf
                             "unknown fault site %S (expected solver, worker, \
                              write, timeout, slow or flaky)"
                             other))))
        | _ ->
            Error
              (Printf.sprintf "bad fault entry %S (expected site@index)" entry))
  in
  if String.trim s = "" then Error "empty fault spec"
  else
    List.fold_left parse_entry (Ok disarmed) (String.split_on_char ',' s)

let to_string spec =
  String.concat ","
    (List.filter_map Fun.id
       [ Option.map (Printf.sprintf "solver@%d") spec.solver;
         Option.map (Printf.sprintf "worker@%d") spec.worker;
         Option.map (Printf.sprintf "write@%d") spec.write;
         Option.map (Printf.sprintf "timeout@%d") spec.timeout;
         Option.map (Printf.sprintf "slow@%d") spec.slow;
         Option.map (fun (k, n) -> Printf.sprintf "flaky@%d:%d" k n) spec.flaky
       ])

let merge ~base ~override =
  let pick ov b = match ov with Some _ -> ov | None -> b in
  {
    solver = pick override.solver base.solver;
    worker = pick override.worker base.worker;
    write = pick override.write base.write;
    timeout = pick override.timeout base.timeout;
    slow = pick override.slow base.slow;
    flaky = pick override.flaky base.flaky;
  }

let arm spec =
  Atomic.set current
    (Some
       {
         spec;
         solver_calls = Atomic.make 0;
         write_calls = Atomic.make 0;
         flaky_fails = Atomic.make 0;
       })

let disarm () = Atomic.set current None

let armed () =
  match Atomic.get current with None -> None | Some st -> Some st.spec

let fire site ~key =
  match Atomic.get current with
  | None -> false
  | Some st -> (
      match site with
      | Worker -> (
          match st.spec.worker with Some k -> k = key | None -> false)
      | Timeout -> (
          match st.spec.timeout with Some k -> k = key | None -> false)
      | Slow -> (match st.spec.slow with Some k -> k = key | None -> false)
      | Flaky -> (
          match st.spec.flaky with
          | Some (k, n) ->
              k = key && Atomic.fetch_and_add st.flaky_fails 1 < n
          | None -> false)
      | Solver -> (
          match st.spec.solver with
          | Some k -> Atomic.fetch_and_add st.solver_calls 1 + 1 = k
          | None -> false)
      | Write -> (
          match st.spec.write with
          | Some k -> Atomic.fetch_and_add st.write_calls 1 + 1 = k
          | None -> false))
