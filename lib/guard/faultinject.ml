type site = Solver | Worker | Write

type spec = { solver : int option; worker : int option; write : int option }

exception Injected_fault of string

type state = {
  spec : spec;
  solver_calls : int Atomic.t;
  write_calls : int Atomic.t;
}

let current : state option Atomic.t = Atomic.make None

let disarmed = { solver = None; worker = None; write = None }

let parse s =
  let parse_entry acc entry =
    match acc with
    | Error _ as e -> e
    | Ok spec -> (
        match String.split_on_char '@' (String.trim entry) with
        | [ site; k ] -> (
            match int_of_string_opt (String.trim k) with
            | None ->
                Error (Printf.sprintf "bad fault index %S in %S" k entry)
            | Some k -> (
                match String.trim site with
                | "solver" ->
                    if k < 1 then Error "solver@k needs k >= 1"
                    else Ok { spec with solver = Some k }
                | "worker" ->
                    if k < 0 then Error "worker@k needs k >= 0"
                    else Ok { spec with worker = Some k }
                | "write" ->
                    if k < 1 then Error "write@k needs k >= 1"
                    else Ok { spec with write = Some k }
                | other ->
                    Error
                      (Printf.sprintf
                         "unknown fault site %S (expected solver, worker or \
                          write)"
                         other)))
        | _ ->
            Error
              (Printf.sprintf "bad fault entry %S (expected site@index)" entry))
  in
  if String.trim s = "" then Error "empty fault spec"
  else
    List.fold_left parse_entry (Ok disarmed) (String.split_on_char ',' s)

let to_string spec =
  String.concat ","
    (List.filter_map Fun.id
       [ Option.map (Printf.sprintf "solver@%d") spec.solver;
         Option.map (Printf.sprintf "worker@%d") spec.worker;
         Option.map (Printf.sprintf "write@%d") spec.write ])

let arm spec =
  Atomic.set current
    (Some { spec; solver_calls = Atomic.make 0; write_calls = Atomic.make 0 })

let disarm () = Atomic.set current None

let armed () =
  match Atomic.get current with None -> None | Some st -> Some st.spec

let fire site ~key =
  match Atomic.get current with
  | None -> false
  | Some st -> (
      match site with
      | Worker -> (
          match st.spec.worker with Some k -> k = key | None -> false)
      | Solver -> (
          match st.spec.solver with
          | Some k -> Atomic.fetch_and_add st.solver_calls 1 + 1 = k
          | None -> false)
      | Write -> (
          match st.spec.write with
          | Some k -> Atomic.fetch_and_add st.write_calls 1 + 1 = k
          | None -> false))
