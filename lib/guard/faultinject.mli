(** Deterministic fault injection (DESIGN.md §10, §13).

    Each failure path of the solver/sweep stack carries an {e armed fault
    site}: a named hook that, when armed, forces that path to fail at a
    chosen point.  Disarmed (the default, and the only state production
    code ever sees) a site costs one atomic load; nothing fires unless a
    test or [ponet --inject] arms a {!spec}.

    {b Spec grammar} (also accepted via the [PONET_INJECT] environment
    variable in the CLI; the flag wins per site, the environment fills
    the sites the flag leaves unset — see {!merge}):

    {v spec    ::= entry ("," entry)*
entry   ::= site "@" nat | "flaky" "@" nat ":" nat
site    ::= "solver" | "worker" | "write" | "timeout" | "slow" v}

    - [solver@k] — the [k]-th (1-based, process-wide) guarded
      equilibrium solve reports {!Po_error.Non_convergence}.
    - [worker@k] — the sweep chunk with logical index [k] (0-based; the
      chunk layout is a pure function of the input length and chunk
      size, never of [--jobs]) raises {!Po_error.Worker_crash} before
      any of its work runs.
    - [write@k] — the [k]-th (1-based) atomic file write fails with
      {!Po_error.Io_failure} {e after} writing and syncing the temp
      file but before the rename, so the target must be left untouched.
    - [timeout@k] — chunk [k] (0-based) is reported stuck by the pool
      watchdog and surfaces as a retryable {!Po_error.Chunk_timeout}
      on every attempt, without actually sleeping.
    - [slow@k] — chunk [k] (0-based) sleeps past the supervision
      policy's per-chunk limit before computing, so the watchdog's
      real elapsed-time path trips.
    - [flaky@k:n] — chunk [k] (0-based) raises
      {!Po_error.Worker_crash} on its first [n] attempts
      (process-wide), then succeeds: the canonical transient fault a
      retry policy must absorb.

    [worker@k], [timeout@k], [slow@k] and [flaky@k:n] key on the
    logical chunk index and are deterministic for any worker count.
    [solver@k] and [write@k] count call arrivals; under a parallel
    sweep the {e set} of guarded calls is fixed but which arrives
    [k]-th depends on scheduling, so tests that pin the exact victim
    run with [--jobs 1]. *)

type site = Solver | Worker | Write | Timeout | Slow | Flaky

type spec = {
  solver : int option;
  worker : int option;
  write : int option;
  timeout : int option;
  slow : int option;
  flaky : (int * int) option;  (** [(chunk, fail_count)] *)
}

exception Injected_fault of string
(** The payload carried inside an injected {!Po_error.Worker_crash}. *)

val parse : string -> (spec, string) result
val to_string : spec -> string

val merge : base:spec -> override:spec -> spec
(** Per-site composition: every site set in [override] wins; sites it
    leaves unset fall through to [base].  The CLI uses
    [merge ~base:(parse PONET_INJECT) ~override:(parse --inject)] —
    "flag wins; env appends". *)

val arm : spec -> unit
(** Arm [spec], resetting all call counters (including the flaky
    attempt counter). *)

val disarm : unit -> unit
val armed : unit -> spec option

val fire : site -> key:int -> bool
(** [fire site ~key] — called by the guarded code at the fault site;
    [true] means "fail now".  [key] is the chunk index for [Worker],
    [Timeout], [Slow] and [Flaky], and ignored for the counting sites.
    Constant-time [false] when disarmed. *)
