type kind =
  | No_bracket of string
  | Non_convergence of { residual : float; iterations : int }
  | Invalid_scenario of string
  | Worker_crash of { chunk : int; exn : exn }
  | Io_failure of { path : string; reason : string }
  | Deadline_exceeded of { elapsed : float; budget : float }
  | Chunk_timeout of { chunk : int; elapsed : float; limit : float }
  | Cancelled of string

type t = { kind : kind; context : (string * string) list }

exception Error of t

let v ?(context = []) kind = { kind; context }
let fail ?context kind = raise (Error (v ?context kind))
let add_context frames e = { e with context = frames @ e.context }

let with_context frames f =
  try f ()
  with Error e ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace (Error (add_context frames e)) bt

let capture f = try Ok (f ()) with Error e -> Result.error e

let kind_to_string = function
  | No_bracket msg -> Printf.sprintf "no bracket: %s" msg
  | Non_convergence { residual; iterations } ->
      Printf.sprintf "did not converge after %d iterations (residual %g)"
        iterations residual
  | Invalid_scenario msg -> Printf.sprintf "invalid scenario: %s" msg
  | Worker_crash { chunk; exn } ->
      Printf.sprintf "worker crashed on chunk %d: %s" chunk
        (Printexc.to_string exn)
  | Io_failure { path; reason } ->
      Printf.sprintf "io failure on %s: %s" path reason
  | Deadline_exceeded { elapsed; budget } ->
      Printf.sprintf "deadline exceeded: %.3fs elapsed of a %.3fs budget"
        elapsed budget
  | Chunk_timeout { chunk; elapsed; limit } ->
      Printf.sprintf "chunk %d timed out: %.3fs elapsed past a %.3fs limit"
        chunk elapsed limit
  | Cancelled reason -> Printf.sprintf "cancelled: %s" reason

let to_string e =
  match e.context with
  | [] -> kind_to_string e.kind
  | frames ->
      Printf.sprintf "%s [%s]" (kind_to_string e.kind)
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) frames))
