(* polint: allow R4 — this module IS the warning sink: the default
   handler must reach a human even when the embedder never installed
   one, and stderr is the only channel that cannot corrupt the report
   stream on stdout. *)
let handler = ref (fun msg -> prerr_endline ("warning: " ^ msg))

let set_handler f = handler := f
let emit msg = !handler msg
