(* polint: allow R4 — this module IS the warning sink: the default
   handler must reach a human even when the embedder never installed
   one, and stderr is the only channel that cannot corrupt the report
   stream on stdout. *)
let handler = ref (fun msg -> prerr_endline ("warning: " ^ msg))

(* Every emission is also tallied and retained, independent of the
   handler, so the run manifest can report a warning count and tests can
   assert on degradation messages without installing a handler.  The
   retained list is unbounded, which is fine: warnings are exceptional
   by construction — a run that emits thousands has bigger problems
   than memory. *)
let counter = Atomic.make 0

let retained : string list ref = ref [] (* newest first *)

let retained_mutex = Mutex.create ()

let set_handler f = handler := f

let emit msg =
  Atomic.incr counter;
  Mutex.lock retained_mutex;
  retained := msg :: !retained;
  Mutex.unlock retained_mutex;
  !handler msg

let count () = Atomic.get counter

let drain () =
  Mutex.lock retained_mutex;
  let msgs = List.rev !retained in
  retained := [];
  Mutex.unlock retained_mutex;
  msgs
