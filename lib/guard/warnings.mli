(** Non-fatal degradation notices (e.g. "domain spawn failed, running
    with fewer workers").

    Library code must not print (polint R4), but a warning that
    disappears is worse than one that interleaves, so the sink is a
    process-global handler: stderr by default, replaceable by embedders
    and silenced in tests that expect the degradation. *)

val set_handler : (string -> unit) -> unit
val emit : string -> unit
