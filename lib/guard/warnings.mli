(** Non-fatal degradation notices (e.g. "domain spawn failed, running
    with fewer workers").

    Library code must not print (polint R4), but a warning that
    disappears is worse than one that interleaves, so the sink is a
    process-global handler: stderr by default, replaceable by embedders
    and silenced in tests that expect the degradation.

    Independently of the handler, every emission is counted and
    retained so the run manifest ({!Po_obs.Manifest}) can report how
    many warnings a run produced and tests can inspect them. *)

val set_handler : (string -> unit) -> unit
val emit : string -> unit

val count : unit -> int
(** Total emissions since process start ({!drain} does not reset it). *)

val drain : unit -> string list
(** Retained messages in emission order; clears the retained list (the
    count is preserved). *)
