(** The typed error channel of the solver/sweep stack (DESIGN.md §10).

    Every recoverable failure of the numeric and game layers is a value
    of {!t}: an error {!kind} plus a list of {e context frames} — ordered
    key/value pairs ("figure", "fig4"; "chunk", "3"; "cps", "1000";
    "seed", "42") attached as the error climbs out of the layer that
    produced it.  Layers that cannot return [result] raise {!Error};
    boundary APIs ([solve_checked], the CLI) catch it with {!capture} and
    hand back [(_, t) result].

    The taxonomy is deliberately small: a failure either comes from
    root-finding ([No_bracket]), from an iteration that ran out of budget
    ([Non_convergence]), from inputs outside the model's domain
    ([Invalid_scenario]), from a worker domain dying mid-sweep
    ([Worker_crash]), from the filesystem ([Io_failure]), or from the
    supervision layer (DESIGN.md §13): a wall-clock budget ran out
    ([Deadline_exceeded]), a chunk overran its watchdog limit
    ([Chunk_timeout] — the retryable one), or a cancellation token fired
    ([Cancelled]).  Anything else is a programming error and stays an
    ordinary exception. *)

type kind =
  | No_bracket of string
      (** a root-finder could not bracket a sign change (the
          {!Po_num.Roots.No_bracket} payload verbatim) *)
  | Non_convergence of { residual : float; iterations : int }
      (** an iteration hit its cap; [residual] is the last step size /
          defect (solver-specific, [nan] when meaningless) *)
  | Invalid_scenario of string
      (** inputs outside the model's domain (bad weights, shares not
          summing to 1, ...) *)
  | Worker_crash of { chunk : int; exn : exn }
      (** a pool worker died evaluating the given chunk; [exn] is the
          original exception *)
  | Io_failure of { path : string; reason : string }
      (** a filesystem operation failed; the target is never left
          half-written (lib/report's atomic writer) *)
  | Deadline_exceeded of { elapsed : float; budget : float }
      (** a [Po_sup.Budget] deadline expired at a cooperative check
          point (chunk boundary, solver iteration); [elapsed] is the
          wall time since the budget started, [budget] the allowance.
          Never retried: the whole run is out of time. *)
  | Chunk_timeout of { chunk : int; elapsed : float; limit : float }
      (** the watchdog flagged sweep chunk [chunk] as stuck: its wall
          time passed [limit].  Transient by classification
          ([Po_sup.Supervise.retryable]) — the chunk re-runs under a
          retry policy. *)
  | Cancelled of string
      (** a [Po_sup.Budget] cancellation token fired; the payload is the
          token's reason.  Never retried. *)

type t = {
  kind : kind;
  context : (string * string) list;
      (** outermost frame first, e.g. [("figure", "fig4"); ("chunk", "3")] *)
}

exception Error of t
(** The carrier used by layers whose signatures cannot return [result]. *)

val v : ?context:(string * string) list -> kind -> t

val fail : ?context:(string * string) list -> kind -> 'a
(** [fail kind] raises {!Error}. *)

val add_context : (string * string) list -> t -> t
(** Prepend frames (they describe an enclosing scope). *)

val with_context : (string * string) list -> (unit -> 'a) -> 'a
(** Run a thunk; if it raises {!Error}, re-raise with the frames
    prepended (backtrace preserved).  Every other exception passes
    through untouched. *)

val capture : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching {!Error} — the bridge from the raising world
    to the [result] world.  Other exceptions pass through. *)

val kind_to_string : kind -> string

val to_string : t -> string
(** ["equilibrium solver did not converge ... [figure=fig4 chunk=3]"] —
    one line, context frames bracketed at the end. *)
