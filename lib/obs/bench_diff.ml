(* Regression comparison of two po-bench-v1 files (bench/main.ml emits
   them as results/bench.json).

   Kernels regress when ns_per_run grows past the slowdown threshold;
   sweep rows regress when the parallel speedup drops past the drop
   threshold.  Rows with a non-finite or null reading on either side
   are reported but never gate — a machine that cannot produce a
   reading is noise, not a regression. *)

type thresholds = { max_slowdown_pct : float; max_speedup_drop_pct : float }

(* Defaults are deliberately loose: micro-benchmarks on shared CI
   runners jitter by tens of percent; the gate exists to catch
   order-of-magnitude mistakes (an accidental O(n^2), a dropped memo),
   not 5% drift. *)
let default_thresholds = { max_slowdown_pct = 25.0; max_speedup_drop_pct = 30.0 }

type row = {
  name : string;
  section : [ `Kernel | `Sweep ];
  baseline : float;
  current : float;
  change_pct : float;
      (* kernels: slowdown (+ = slower); sweeps: speedup drop (+ = worse) *)
  regressed : bool;
}

type report = {
  rows : row list;
  only_baseline : string list;
  only_current : string list;
  thresholds : thresholds;
}

(* ---------------------------------------------------------------- *)
(* Parsing                                                          *)
(* ---------------------------------------------------------------- *)

let ( let* ) = Result.bind

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %s" what)

let parse_section ~section ~name_key ~value_key json =
  match Json.member section json with
  | None -> Ok [] (* older files may omit a section entirely *)
  | Some rows ->
      let* rows = require (section ^ " array") (Json.to_list rows) in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | row :: rest ->
            let* name =
              require
                (Printf.sprintf "%s.%s" section name_key)
                (Option.bind (Json.member name_key row) Json.to_str)
            in
            let value =
              (* null / missing readings survive as nan and never gate *)
              match Option.bind (Json.member value_key row) Json.to_float with
              | Some v -> v
              | None -> Float.nan
            in
            go ((name, value) :: acc) rest
      in
      go [] rows

let parse_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | src ->
      let* json =
        Result.map_error (fun e -> Printf.sprintf "%s: %s" path e)
          (Json.of_string src)
      in
      let* schema =
        require "schema field" (Option.bind (Json.member "schema" json) Json.to_str)
      in
      if schema <> "po-bench-v1" then
        Error (Printf.sprintf "%s: unsupported schema %S" path schema)
      else
        let* kernels =
          parse_section ~section:"kernels" ~name_key:"name"
            ~value_key:"ns_per_run" json
        in
        let* sweeps =
          parse_section ~section:"sweep_speedup" ~name_key:"figure"
            ~value_key:"speedup" json
        in
        Ok (kernels, sweeps)

(* ---------------------------------------------------------------- *)
(* Comparison                                                       *)
(* ---------------------------------------------------------------- *)

let pct_change ~baseline ~current =
  if Float.is_finite baseline && Float.is_finite current && baseline > 0. then
    100. *. ((current -. baseline) /. baseline)
  else Float.nan

let compare_rows ~section ~threshold ~worse_when_higher baseline current =
  let matched, only_b =
    List.partition_map
      (fun (name, b) ->
        match List.assoc_opt name current with
        | Some c -> Left (name, b, c)
        | None -> Right name)
      baseline
  in
  let only_c =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name baseline then None else Some name)
      current
  in
  let rows =
    List.map
      (fun (name, b, c) ->
        let raw = pct_change ~baseline:b ~current:c in
        (* Normalise so + always means "worse". *)
        let change = if worse_when_higher then raw else -.raw in
        let regressed = Float.is_finite change && change > threshold in
        { name; section; baseline = b; current = c; change_pct = change;
          regressed })
      matched
  in
  (rows, only_b, only_c)

let compare_files ?(thresholds = default_thresholds) ~baseline ~current () =
  let* bk, bs = parse_file baseline in
  let* ck, cs = parse_file current in
  let krows, kb, kc =
    compare_rows ~section:`Kernel ~threshold:thresholds.max_slowdown_pct
      ~worse_when_higher:true bk ck
  in
  let srows, sb, sc =
    compare_rows ~section:`Sweep ~threshold:thresholds.max_speedup_drop_pct
      ~worse_when_higher:false bs cs
  in
  Ok
    { rows = krows @ srows; only_baseline = kb @ sb; only_current = kc @ sc;
      thresholds }

let regressions r = List.filter (fun row -> row.regressed) r.rows

let has_regression r = List.exists (fun row -> row.regressed) r.rows

(* ---------------------------------------------------------------- *)
(* Rendering                                                        *)
(* ---------------------------------------------------------------- *)

let render r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let fnum v = if Float.is_finite v then Printf.sprintf "%.4g" v else "n/a" in
  line "bench-diff (po-bench-v1): thresholds slowdown > %.1f%%, speedup drop > %.1f%%"
    r.thresholds.max_slowdown_pct r.thresholds.max_speedup_drop_pct;
  line "%-40s %12s %12s %9s  %s" "name" "baseline" "current" "change%" "";
  List.iter
    (fun row ->
      let label =
        match row.section with `Kernel -> row.name | `Sweep -> "sweep:" ^ row.name
      in
      line "%-40s %12s %12s %9s  %s" label (fnum row.baseline)
        (fnum row.current)
        (if Float.is_finite row.change_pct then
           Printf.sprintf "%+.1f" row.change_pct
         else "n/a")
        (if row.regressed then "REGRESSED" else "ok"))
    r.rows;
  List.iter (fun n -> line "only in baseline: %s" n) r.only_baseline;
  List.iter (fun n -> line "only in current:  %s" n) r.only_current;
  let regs = regressions r in
  (match regs with
  | [] -> line "no regressions"
  | _ -> line "%d regression(s)" (List.length regs));
  Buffer.contents buf
