(* A minimal JSON value type with a recursive-descent parser and a
   printer.  The repo deliberately has no JSON dependency; the
   observability layer needs one for three small, fully controlled
   inputs: results/bench.json (schema po-bench-v1), exported Chrome
   trace files, and metrics snapshots.  Object member order is preserved
   (association list) so emitted files are deterministic and diffable. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.is_finite v then
    (* Shortest representation that round-trips a double. *)
    Printf.sprintf "%.17g" v
  else "null" (* JSON has no nan/infinity; null is the conventional stand-in *)

let rec print_to buf ~indent ~level v =
  let pad n = String.make (indent * n) ' ' in
  let sep_open, sep_item, sep_close =
    if indent = 0 then ("", "", "")
    else ("\n" ^ pad (level + 1), "\n" ^ pad (level + 1), "\n" ^ pad level)
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number v -> Buffer.add_string buf (number_to_string v)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          Buffer.add_string buf (if i = 0 then sep_open else "," ^ sep_item);
          print_to buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_string buf sep_close;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          Buffer.add_string buf (if i = 0 then sep_open else "," ^ sep_item);
          escape_to buf k;
          Buffer.add_string buf ": ";
          print_to buf ~indent ~level:(level + 1) item)
        members;
      Buffer.add_string buf sep_close;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  print_to buf ~indent ~level:0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some got when Char.equal got c -> advance cur
  | _ -> error cur (Printf.sprintf "expected %C" c)

let parse_literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.src
    && String.equal (String.sub cur.src cur.pos (String.length word)) word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' ->
        advance cur;
        Buffer.contents buf
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> error cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if cur.pos + 4 > String.length cur.src then
                  error cur "truncated \\u escape";
                let hex = String.sub cur.src cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> error cur "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (BMP only; surrogate
                   pairs in our own files never occur, lone surrogates
                   are mapped to U+FFFD). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else if code >= 0xD800 && code <= 0xDFFF then
                  Buffer.add_string buf "\xEF\xBF\xBD"
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> error cur (Printf.sprintf "bad escape \\%c" c));
            loop ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let number_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number cur =
  let start = cur.pos in
  while (match peek cur with Some c -> number_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some v -> Number v
  | None -> error cur (Printf.sprintf "bad number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws cur;
          let key = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ((key, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((key, v) :: acc)
          | _ -> error cur "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> error cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_body cur)
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some 'n' -> parse_literal cur "null" Null
  | Some _ -> parse_number cur

let of_string s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function Number v -> Some v | _ -> None

let to_str = function String s -> Some s | _ -> None
