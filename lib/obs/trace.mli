(** Span-based tracer with deterministic span ids, exporting Chrome
    trace-event JSON (load the file at [chrome://tracing] or
    [https://ui.perfetto.dev]); see DESIGN.md §11.

    Spans nest per domain: {!with_span} pushes onto a domain-local
    stack, so the parent of a span is whatever span the same domain is
    currently inside.  Ids are per-domain sequence numbers — structural,
    not temporal — so the id/parent graph of a serial run is a pure
    function of the code path; only [ts]/[dur] carry wall time.

    Disarmed (the default), {!with_span} costs one atomic load and runs
    the thunk untouched. *)

val arm : unit -> unit

val disarm : unit -> unit

val armed : unit -> bool

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span (a complete ["ph": "X"]
    trace event).  The span is recorded even when [f] raises. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration ["ph": "i"] event (e.g. a checkpoint append). *)

val reset : unit -> unit
(** Drop all recorded events and restart id assignment.  Call at
    quiescence. *)

type event = {
  name : string;
  phase : [ `Span of float  (** duration, µs *) | `Instant ];
  ts_us : float;
  tid : int;
  id : int;
  parent : int;  (** [-1] at a domain's root *)
  args : (string * string) list;
}

val events : unit -> event list
(** All recorded events in (tid, id) order — structural, so the order is
    reproducible for a serial run. *)

val to_json : ?other:(string * Json.t) list -> unit -> Json.t
(** The Chrome trace object: [{"traceEvents": [...], "displayTimeUnit":
    "ms", "otherData": {...}}]; [other] (e.g. the run manifest) lands in
    ["otherData"]. *)

val export : ?other:(string * Json.t) list -> path:string -> unit -> unit
(** Write {!to_json} through {!Po_report.Writer.write_atomic}. *)
