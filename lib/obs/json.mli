(** Minimal JSON values: a printer for the files the observability layer
    emits (trace exports, metrics snapshots) and a parser for the ones it
    reads back (results/bench.json for {!Bench_diff}, trace files in
    tests).  No external dependency; object member order is preserved so
    output is deterministic and diffable. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with the given indent (default 2; [0] renders compactly on
    one line).  Non-finite numbers print as [null] — JSON has no
    [nan]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error is a human-readable
    message with a byte offset. *)

val member : string -> t -> t option
(** Object member lookup ([None] on non-objects and missing keys). *)

val to_list : t -> t list option

val to_float : t -> float option

val to_str : t -> string option
