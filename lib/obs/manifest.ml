(* Run manifest: enough provenance to tell two result files apart
   (DESIGN.md §11).  Attached to every armed figure run — embedded in
   the trace export's "otherData" and the metrics snapshot. *)

type t = {
  figure : string;
  git : string;
  params_hash : string;
  jobs : int;
  wall_s : float;
  warnings : int;
}

(* FNV-1a over a canonical rendering of the run parameters.  Stable
   across runs and platforms (pure integer arithmetic on the bytes of a
   deterministic string); not cryptographic — it only needs to make
   accidental parameter drift visible. *)
let fnv1a s =
  (* 64-bit FNV offset basis truncated to OCaml's 63-bit int. *)
  let h = ref 0x0bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  (* Mask to 62 bits so the rendering is identical on any boxing. *)
  Printf.sprintf "%016x" (!h land 0x3fffffffffffffff)

(* Canonical key/value form.  Pairs are sorted by key so callers cannot
   perturb the rendering by argument order, and the key names
   participate in the string, so two scenarios that differ only in a
   field one of them omits ("kappa" present vs absent) can never
   canonicalise to the same bytes.  Duplicate keys are ambiguous and
   rejected.  The serve cache (DESIGN.md §14) keys solve results on
   this exact string (the digest is only a fingerprint — FNV-1a
   collisions are constructible, so it must never stand in for the
   parameters themselves), so the canonical form is load-bearing:
   extend it by adding pairs, never by changing the rendering of
   existing ones. *)
let params_canonical kv =
  let kv =
    List.sort (fun (a, _) (b, _) -> String.compare a b) kv
  in
  let rec check_dups = function
    | (a, _) :: ((b, _) :: _ as tl) ->
        if String.equal a b then
          invalid_arg ("Manifest.params_canonical: duplicate key " ^ a)
        else check_dups tl
    | _ -> ()
  in
  check_dups kv;
  List.iter
    (fun (k, _) ->
      if String.contains k ';' || String.contains k '=' then
        invalid_arg
          ("Manifest.params_canonical: key contains ';' or '=': " ^ k))
    kv;
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) kv)

let params_hash_kv kv = fnv1a (params_canonical kv)

(* The original three-field arity, kept as a thin wrapper.  The sorted
   canonical form of these keys reproduces the historical rendering
   "n_cps=..;seed=..;sweep_points=.." byte for byte, so hashes recorded
   by earlier runs remain comparable. *)
let params_hash ~n_cps ~seed ~sweep_points =
  params_hash_kv
    [ ("n_cps", string_of_int n_cps); ("seed", string_of_int seed);
      ("sweep_points", string_of_int sweep_points) ]

(* "git describe" runs once per armed run, outside any timed region; a
   missing git binary or a non-repo directory degrades to "unknown". *)
let git_describe () =
  match
    Unix.open_process_in "git describe --always --dirty 2>/dev/null"
  with
  | exception Unix.Unix_error _ -> "unknown"
  | ic -> (
      let line = try Some (input_line ic) with End_of_file -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some l when String.trim l <> "" -> String.trim l
      | _ -> "unknown")

let make ~figure ~params_hash ~jobs ~wall_s ~warnings () =
  { figure; git = git_describe (); params_hash; jobs; wall_s; warnings }

let to_json m =
  Json.Obj
    [ ("figure", Json.String m.figure); ("git", Json.String m.git);
      ("params_hash", Json.String m.params_hash);
      ("jobs", Json.Number (float_of_int m.jobs));
      ("wall_s", Json.Number m.wall_s);
      ("warnings", Json.Number (float_of_int m.warnings)) ]
