(* Domain-safe metrics registry (DESIGN.md §11).

   Counters, gauges and fixed-bucket histograms are registered once
   (typically at module initialisation) and updated through handles.
   Updates go to a per-domain {e shard} (Domain.DLS), so the hot paths
   never contend on a lock; a snapshot merges all shards with
   commutative operations — counters and histogram buckets sum, gauges
   take the max — so the merged reading is independent of which domain
   did which chunk of work.  Because the chunked sweep combinators give
   every chunk a jobs-invariant layout (DESIGN.md §6), counter snapshots
   are bit-identical for any --jobs (test/test_obs.ml pins this).

   Disarmed — the only state production runs see unless --metrics or
   --trace is passed — every update is a single atomic load, the same
   pattern as Po_guard.Faultinject. *)

let armed_flag = Atomic.make false

let arm () = Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

let armed () = Atomic.get armed_flag

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

type counter = int (* slot in shard.counters *)

type gauge = int (* slot in shard.gauges *)

type histogram = int (* slot in shard.hist_counts / hist_sums *)

type kind = Kcounter | Kgauge | Khistogram

(* Shared by registration and snapshotting; updates never take it. *)
let registry_mutex = Mutex.create ()

let names : (string, kind * int) Hashtbl.t = Hashtbl.create 64

let counter_names : string list ref = ref [] (* reverse slot order *)

let gauge_names : string list ref = ref []

let hist_names : string list ref = ref []

let hist_bounds : float array list ref = ref [] (* reverse slot order *)

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khistogram -> "histogram"

let register name kind make =
  locked (fun () ->
      match Hashtbl.find_opt names name with
      | Some (k, slot) when k = kind -> slot
      | Some (k, _) ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name
               (kind_name k))
      | None ->
          let slot = make () in
          Hashtbl.replace names name (kind, slot);
          slot)

let counter name : counter =
  register name Kcounter (fun () ->
      counter_names := name :: !counter_names;
      List.length !counter_names - 1)

let gauge name : gauge =
  register name Kgauge (fun () ->
      gauge_names := name :: !gauge_names;
      List.length !gauge_names - 1)

(* Default buckets for the timing histograms: decades of seconds from
   1 µs to 100 s, the dynamic range between one cached lookup and one
   full-scale figure sweep. *)
let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

let histogram ?(buckets = default_buckets) name : histogram =
  let sorted = Array.copy buckets in
  Array.sort Float.compare sorted;
  if Array.length sorted = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  register name Khistogram (fun () ->
      hist_names := name :: !hist_names;
      hist_bounds := sorted :: !hist_bounds;
      List.length !hist_names - 1)

let bounds_of slot =
  (* The reverse list grows at the head; slot s sits at position
     (length - 1 - s). *)
  let all = !hist_bounds in
  List.nth all (List.length all - 1 - slot)

(* ------------------------------------------------------------------ *)
(* Shards                                                             *)
(* ------------------------------------------------------------------ *)

type shard = {
  mutable counters : int array;
  mutable gauges : float array; (* nan = never set in this shard *)
  mutable hist_counts : int array array;
  mutable hist_sums : float array;
}

let shards : shard list ref = ref []

let shards_mutex = Mutex.create ()

let new_shard () =
  let sh =
    { counters = [||]; gauges = [||]; hist_counts = [||]; hist_sums = [||] }
  in
  Mutex.lock shards_mutex;
  shards := sh :: !shards;
  Mutex.unlock shards_mutex;
  sh

let shard_key = Domain.DLS.new_key new_shard

let shard () = Domain.DLS.get shard_key

let grow_int arr n fill =
  if Array.length arr > n then arr
  else begin
    let bigger = Array.make (max 8 (2 * (n + 1))) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let grow_float arr n fill =
  if Array.length arr > n then arr
  else begin
    let bigger = Array.make (max 8 (2 * (n + 1))) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

(* ------------------------------------------------------------------ *)
(* Updates (hot path)                                                 *)
(* ------------------------------------------------------------------ *)

let add c n =
  if Atomic.get armed_flag then begin
    let sh = shard () in
    sh.counters <- grow_int sh.counters c 0;
    sh.counters.(c) <- sh.counters.(c) + n
  end

let incr c = add c 1

let set g v =
  if Atomic.get armed_flag then begin
    let sh = shard () in
    sh.gauges <- grow_float sh.gauges g Float.nan;
    sh.gauges.(g) <- v
  end

let observe h v =
  if Atomic.get armed_flag then begin
    let sh = shard () in
    if Array.length sh.hist_counts <= h then begin
      let bigger = Array.make (max 8 (2 * (h + 1))) [||] in
      Array.blit sh.hist_counts 0 bigger 0 (Array.length sh.hist_counts);
      sh.hist_counts <- bigger;
      sh.hist_sums <- grow_float sh.hist_sums h 0.
    end;
    let bounds = bounds_of h in
    if Array.length sh.hist_counts.(h) = 0 then
      sh.hist_counts.(h) <- Array.make (Array.length bounds + 1) 0;
    (* First bucket whose upper bound admits v; the final slot is the
       overflow bucket. *)
    let n = Array.length bounds in
    let b = ref 0 in
    while !b < n && v > bounds.(!b) do
      b := !b + 1
    done;
    sh.hist_counts.(h).(!b) <- sh.hist_counts.(h).(!b) + 1;
    sh.hist_sums.(h) <- sh.hist_sums.(h) +. v
  end

let time_s h f =
  if Atomic.get armed_flag then begin
    let t0 = Clock.now_s () in
    Fun.protect ~finally:(fun () -> observe h (Clock.now_s () -. t0)) f
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Snapshot & reset                                                   *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float }

let with_shards f =
  Mutex.lock shards_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shards_mutex) (fun () -> f !shards)

(* Snapshots are only meaningful at quiescence (after the pool has
   drained); a snapshot raced by live updates reads torn per-shard
   state.  Every caller in the repo snapshots after the figure pipeline
   has returned. *)
let snapshot () =
  locked (fun () ->
      with_shards (fun shards ->
          let slot_names rev = Array.of_list (List.rev !rev) in
          let counters = slot_names counter_names in
          let gauges = slot_names gauge_names in
          let hists = slot_names hist_names in
          let counter_rows =
            Array.to_list
              (Array.mapi
                 (fun slot name ->
                   let total =
                     List.fold_left
                       (fun acc sh ->
                         if Array.length sh.counters > slot then
                           acc + sh.counters.(slot)
                         else acc)
                       0 shards
                   in
                   (name, Counter total))
                 counters)
          in
          let gauge_rows =
            Array.to_list
              (Array.mapi
                 (fun slot name ->
                   let merged =
                     List.fold_left
                       (fun acc sh ->
                         if
                           Array.length sh.gauges > slot
                           && not (Float.is_nan sh.gauges.(slot))
                         then
                           if Float.is_nan acc then sh.gauges.(slot)
                           else Float.max acc sh.gauges.(slot)
                         else acc)
                       Float.nan shards
                   in
                   (name, Gauge merged))
                 gauges)
          in
          let hist_rows =
            Array.to_list
              (Array.mapi
                 (fun slot name ->
                   let bounds = bounds_of slot in
                   let counts = Array.make (Array.length bounds + 1) 0 in
                   let sum = ref 0. in
                   List.iter
                     (fun sh ->
                       if
                         Array.length sh.hist_counts > slot
                         && Array.length sh.hist_counts.(slot) > 0
                       then begin
                         Array.iteri
                           (fun b n -> counts.(b) <- counts.(b) + n)
                           sh.hist_counts.(slot);
                         sum := !sum +. sh.hist_sums.(slot)
                       end)
                     shards;
                   (name, Histogram { bounds; counts; sum = !sum }))
                 hists)
          in
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (counter_rows @ gauge_rows @ hist_rows)))

let counters () =
  List.filter_map
    (function name, Counter n -> Some (name, n) | _ -> None)
    (snapshot ())

let reset () =
  locked (fun () ->
      with_shards
        (List.iter (fun sh ->
             Array.fill sh.counters 0 (Array.length sh.counters) 0;
             Array.fill sh.gauges 0 (Array.length sh.gauges) Float.nan;
             Array.iter
               (fun c -> Array.fill c 0 (Array.length c) 0)
               sh.hist_counts;
             Array.fill sh.hist_sums 0 (Array.length sh.hist_sums) 0.)))

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                     *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Counter n -> Json.Number (float_of_int n)
  | Gauge v -> Json.Number v
  | Histogram { bounds; counts; sum } ->
      Json.Obj
        [ ( "le",
            Json.List
              (Array.to_list (Array.map (fun b -> Json.Number b) bounds)
              @ [ Json.String "+inf" ]) );
          ( "counts",
            Json.List
              (Array.to_list
                 (Array.map (fun n -> Json.Number (float_of_int n)) counts))
          );
          ("sum", Json.Number sum) ]

let snapshot_json () =
  let snap = snapshot () in
  let section pred =
    List.filter_map
      (fun (name, v) -> if pred v then Some (name, value_to_json v) else None)
      snap
  in
  Json.Obj
    [ ( "counters",
        Json.Obj (section (function Counter _ -> true | _ -> false)) );
      ("gauges", Json.Obj (section (function Gauge _ -> true | _ -> false)));
      ( "histograms",
        Json.Obj (section (function Histogram _ -> true | _ -> false)) ) ]
