(** Regression comparison of two po-bench-v1 JSON files (the format
    [bench/main.ml] writes to [results/bench.json]).

    Kernel rows regress when [ns_per_run] grows by more than
    [max_slowdown_pct]; sweep rows regress when the parallel [speedup]
    drops by more than [max_speedup_drop_pct].  Rows whose reading is
    [null]/non-finite on either side are listed but never gate.  The
    CLI front end is [ponet bench-diff]. *)

type thresholds = { max_slowdown_pct : float; max_speedup_drop_pct : float }

val default_thresholds : thresholds
(** Slowdown 25%, speedup drop 30% — loose on purpose: the gate catches
    order-of-magnitude mistakes, not CI-runner jitter. *)

type row = {
  name : string;
  section : [ `Kernel | `Sweep ];
  baseline : float;
  current : float;
  change_pct : float;  (** normalised so positive always means worse *)
  regressed : bool;
}

type report = {
  rows : row list;
  only_baseline : string list;  (** rows that disappeared *)
  only_current : string list;  (** rows with no baseline — never gate *)
  thresholds : thresholds;
}

val compare_files :
  ?thresholds:thresholds ->
  baseline:string ->
  current:string ->
  unit ->
  (report, string) result
(** [Error] covers unreadable files, parse failures and schema
    mismatches (anything other than ["po-bench-v1"]). *)

val regressions : report -> row list

val has_regression : report -> bool

val render : report -> string
(** Human-readable table (the caller decides where it goes; this module
    never prints). *)
