(** Run manifest: provenance attached to every armed figure run —
    embedded in the trace export's ["otherData"] and alongside the
    metrics snapshot (DESIGN.md §11). *)

type t = {
  figure : string;
  git : string;  (** [git describe --always --dirty], or ["unknown"] *)
  params_hash : string;
  jobs : int;
  wall_s : float;
  warnings : int;  (** {!Po_guard.Warnings.count} at export time *)
}

val params_hash : n_cps:int -> seed:int -> sweep_points:int -> string
(** Stable (FNV-1a) hash of the run parameters — makes accidental
    parameter drift between two result files visible at a glance. *)

val make :
  figure:string ->
  params_hash:string ->
  jobs:int ->
  wall_s:float ->
  warnings:int ->
  unit ->
  t
(** Fills in [git] by shelling out to [git describe]; degrades to
    ["unknown"] when git or the repository is unavailable. *)

val to_json : t -> Json.t
