(** Run manifest: provenance attached to every armed figure run —
    embedded in the trace export's ["otherData"] and alongside the
    metrics snapshot (DESIGN.md §11). *)

type t = {
  figure : string;
  git : string;  (** [git describe --always --dirty], or ["unknown"] *)
  params_hash : string;
  jobs : int;
  wall_s : float;
  warnings : int;  (** {!Po_guard.Warnings.count} at export time *)
}

val params_canonical : (string * string) list -> string
(** Canonical rendering of an arbitrary parameter set given as
    key/value pairs: sorted by key, joined as ["k=v;k=v;..."], so the
    result is independent of argument order and two scenarios that
    differ only in a field one of them omits (a regime id, [kappa], a
    weight profile) can never canonicalise to the same bytes.  Keys
    must be unique and free of [';']/['=']; violations raise
    [Invalid_argument].  This string — not its digest — is the
    cache-key primitive of the serve subsystem (DESIGN.md §14): the
    FNV-1a fingerprint below is not collision-free, so only the full
    canonical form may stand in for the parameters. *)

val params_hash_kv : (string * string) list -> string
(** Stable (FNV-1a) fingerprint of {!params_canonical} — compact
    provenance for manifests and result files, where an accidental
    collision is detectable, not a correctness hazard. *)

val params_hash : n_cps:int -> seed:int -> sweep_points:int -> string
(** The original three-field arity, now a thin wrapper over
    {!params_hash_kv} — byte-identical output to the historical
    rendering, so hashes in previously recorded manifests remain
    comparable. *)

val make :
  figure:string ->
  params_hash:string ->
  jobs:int ->
  wall_s:float ->
  warnings:int ->
  unit ->
  t
(** Fills in [git] by shelling out to [git describe]; degrades to
    ["unknown"] when git or the repository is unavailable. *)

val to_json : t -> Json.t
