(* Span-based tracer exporting Chrome trace-event JSON (DESIGN.md §11).

   Spans nest through a per-domain stack: [with_span] assigns the next
   id from its domain's shard, records the shard's current stack top as
   the parent, runs the thunk and appends one complete ("ph": "X")
   event on the way out.  Ids are {e structural} — a per-shard sequence
   number, never an address or a timestamp — so a serial run always
   produces the same ids and nesting; only the [ts]/[dur] fields carry
   wall time.  Parent/child edges never cross domains (each domain
   nests its own work), so the stack needs no synchronisation.

   Disarmed, [with_span] is one atomic load around the thunk — the
   tracer is safe to leave in hot paths. *)

let armed_flag = Atomic.make false

let arm () = Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

let armed () = Atomic.get armed_flag

type event = {
  name : string;
  phase : [ `Span of float (* duration us *) | `Instant ];
  ts_us : float;
  tid : int;
  id : int;
  parent : int; (* -1 at a shard's root *)
  args : (string * string) list;
}

type shard = {
  tid : int;
  mutable next_id : int;
  mutable stack : int list;
  mutable events : event list; (* newest first *)
}

let shards : shard list ref = ref []

let shards_mutex = Mutex.create ()

let next_tid = Atomic.make 0

let new_shard () =
  let sh =
    { tid = Atomic.fetch_and_add next_tid 1; next_id = 0; stack = [];
      events = [] }
  in
  Mutex.lock shards_mutex;
  shards := sh :: !shards;
  Mutex.unlock shards_mutex;
  sh

let shard_key = Domain.DLS.new_key new_shard

let shard () = Domain.DLS.get shard_key

let with_span ?(args = []) name f =
  if not (Atomic.get armed_flag) then f ()
  else begin
    let sh = shard () in
    let id = sh.next_id in
    sh.next_id <- id + 1;
    let parent = match sh.stack with [] -> -1 | p :: _ -> p in
    sh.stack <- id :: sh.stack;
    let t0 = Clock.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now_us () -. t0 in
        (match sh.stack with [] -> () | _ :: rest -> sh.stack <- rest);
        sh.events <-
          { name; phase = `Span dur; ts_us = t0; tid = sh.tid; id; parent;
            args }
          :: sh.events)
      f
  end

let instant ?(args = []) name =
  if Atomic.get armed_flag then begin
    let sh = shard () in
    let id = sh.next_id in
    sh.next_id <- id + 1;
    let parent = match sh.stack with [] -> -1 | p :: _ -> p in
    sh.events <-
      { name; phase = `Instant; ts_us = Clock.now_us (); tid = sh.tid; id;
        parent; args }
      :: sh.events
  end

let reset () =
  Mutex.lock shards_mutex;
  List.iter
    (fun sh ->
      sh.next_id <- 0;
      sh.stack <- [];
      sh.events <- [])
    !shards;
  Mutex.unlock shards_mutex;
  Atomic.set next_tid (List.length !shards)

(* All recorded events, ordered by (tid, id) — a structural order that
   does not depend on timestamps. *)
let events () =
  Mutex.lock shards_mutex;
  let all =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shards_mutex)
      (fun () -> List.concat_map (fun sh -> sh.events) !shards)
  in
  List.sort
    (fun (a : event) (b : event) ->
      let c = Int.compare a.tid b.tid in
      if c <> 0 then c else Int.compare a.id b.id)
    all

let event_json e =
  let ph, dur = match e.phase with `Span d -> ("X", Some d) | `Instant -> ("i", None) in
  Json.Obj
    ([ ("name", Json.String e.name); ("cat", Json.String "ponet");
       ("ph", Json.String ph); ("ts", Json.Number e.ts_us) ]
    @ (match dur with Some d -> [ ("dur", Json.Number d) ] | None -> [])
    @ [ ("pid", Json.Number 1.); ("tid", Json.Number (float_of_int e.tid));
        ( "args",
          Json.Obj
            ([ ("id", Json.String (string_of_int e.id));
               ( "parent",
                 Json.String
                   (if e.parent < 0 then "" else string_of_int e.parent) ) ]
            @ List.map (fun (k, v) -> (k, Json.String v)) e.args) ) ])

let to_json ?(other = []) () =
  Json.Obj
    [ ("traceEvents", Json.List (List.map event_json (events ())));
      ("displayTimeUnit", Json.String "ms"); ("otherData", Json.Obj other) ]

let export ?other ~path () =
  Po_report.Writer.write_atomic ~path
    (Json.to_string (to_json ?other ()) ^ "\n")
