(** Domain-safe metrics registry: named counters, gauges and
    fixed-bucket histograms (DESIGN.md §11).

    Updates are sharded per domain (no lock on the hot path) and merged
    at snapshot time with commutative operations — counters and
    histogram buckets {e sum}, gauges take the {e max} over the shards
    that set them — so a merged reading cannot depend on which domain
    executed which chunk.  Combined with the jobs-invariant chunk layout
    of the sweep combinators (DESIGN.md §6), {b counter snapshots are
    bit-identical for any [--jobs]}; gauges and timing histograms
    describe the run (pool size, wall time per chunk) and are exempt
    from that contract.

    Disarmed (the default), every update costs one atomic load — the
    same pattern as {!Po_guard.Faultinject}.  Snapshots are only
    meaningful at quiescence (after the pool has drained). *)

val arm : unit -> unit

val disarm : unit -> unit

val armed : unit -> bool

type counter

type gauge

type histogram

val counter : string -> counter
(** Register (or look up) a counter.  Registration is idempotent per
    name; re-registering a name under a different kind raises
    [Invalid_argument].  Names follow the dotted scheme of
    DESIGN.md §11 ([subsystem.event], e.g. ["equilibrium.solves"]). *)

val gauge : string -> gauge

val default_buckets : float array
(** Decades of seconds from 1 µs to 100 s — the default for timing
    histograms. *)

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds (sorted internally); one overflow bucket
    is appended.  Default {!default_buckets}. *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit
(** Gauges merge across shards by [max]; a shard that never set the
    gauge does not participate. *)

val observe : histogram -> float -> unit

val time_s : histogram -> (unit -> 'a) -> 'a
(** Run the thunk; when armed, observe its wall-clock duration in
    seconds (through {!Clock}).  Disarmed this is exactly the thunk. *)

type value =
  | Counter of int
  | Gauge of float  (** [nan] when no shard ever set it *)
  | Histogram of { bounds : float array; counts : int array; sum : float }
      (** [counts] has one entry per bound plus a final overflow
          bucket *)

val snapshot : unit -> (string * value) list
(** Merged view of all shards, sorted by name. *)

val counters : unit -> (string * int) list
(** Just the counters — the deterministic section ({!snapshot} order). *)

val reset : unit -> unit
(** Zero every shard (counters, gauges, histograms); registrations are
    kept.  Call between runs, at quiescence. *)

val snapshot_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] —
    the po-metrics-v1 body. *)
