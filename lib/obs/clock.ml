(* The observability clock: the single place in the library tree that is
   allowed to read wall time (polint R2 exemption, see polint.allow).
   Every other module — including the instrumented hot paths in lib/par,
   lib/model and lib/core — obtains time exclusively through this module,
   so the determinism audit stays a one-file read: timestamps feed traces
   and timing histograms only, never figure data. *)

let now_s () = Unix.gettimeofday ()

let now_us () = 1e6 *. now_s ()

let sleep_s d = if d > 0.0 then Unix.sleepf d
