(** Wall-clock reads for the observability layer (DESIGN.md §11).

    This is the only module outside [test/] permitted to read ambient
    time (allowlisted for polint R2): spans and timing histograms are
    {e products} of a run, never inputs to one, so confining every clock
    read here keeps the bit-reproducibility argument auditable — if a
    result depended on time, the dependency would have to flow through
    this interface and would be visible at the call site. *)

val now_s : unit -> float
(** Wall time in seconds (Unix epoch). *)

val now_us : unit -> float
(** Wall time in microseconds — the unit Chrome trace events use. *)

val sleep_s : float -> unit
(** Block the calling domain for the given number of seconds (no-op for
    non-positive values).  Exists for the supervision layer's [slow@k]
    fault site and watchdog tests; like the reads above, sleeping never
    feeds figure data. *)
