(** A fixed pool of OCaml 5 domains with a deterministic parallel map.

    The pool owns [domains - 1] worker domains (the caller participates
    in every parallel operation, so [domains] is the total parallelism).
    Workers block on a mutex/condition work queue between operations;
    creating a pool is cheap enough to do once per process but too
    expensive to do per sweep point, so callers are expected to create
    one pool and reuse it.

    {b Determinism contract.}  All combinators preserve input order:
    element [i] of the result always comes from element [i] of the
    input, whatever domain computed it and in whatever order chunks were
    scheduled.  For a pure [f], [parallel_map pool f arr] returns the
    same array as [Array.map f arr] for {e any} pool size — a pool of 1
    domain degenerates to exactly the serial code path.  Randomised work
    goes through {!map_reduce}, which derives one independent PRNG
    stream per {e chunk} (not per domain) by splitting the caller's
    generator in chunk-index order; since the chunk layout depends only
    on [chunk_size] and the input length, never on [domains], the result
    is bit-for-bit reproducible across worker counts.

    Operations are not re-entrant: do not call a pool combinator from
    inside a function being mapped by the same pool (a worker waiting on
    its own queue can deadlock).  The experiment layer only ever
    parallelises one level of each sweep.

    {b Failure semantics (DESIGN.md §10).}  An exception raised inside
    mapped work is caught on the worker, recorded by chunk index, and
    re-raised in the caller after all in-flight work drains — the work
    queue never deadlocks, remaining chunks are abandoned, and the pool
    stays reusable for the next operation.  A raw exception surfaces as
    [Po_guard.Po_error.Error] with kind [Worker_crash] carrying the
    chunk that died and the original exception; an exception that is
    already a typed [Po_error.Error] passes through untouched (the
    chunked combinators stamp it with a ["chunk"] context frame).  If
    [Domain.spawn] fails while building the pool, the pool comes up with
    however many workers did spawn (possibly zero — the serial path) and
    a warning is emitted through [Po_guard.Warnings].

    {b Supervised execution (DESIGN.md §13).}  {!chunk_map} and
    {!chain_map} accept a [Po_sup.Supervise.policy].  When {e active}
    (a budget, retries, or a per-chunk watchdog limit is set) each
    fresh chunk runs under supervision: the budget's deadline /
    cancellation token is checked at every chunk boundary and between
    retry attempts (surfacing as typed [Deadline_exceeded] /
    [Cancelled], never a hang); a {e retryable} failure
    ([Worker_crash], watchdog [Chunk_timeout]) re-runs the chunk up to
    [retries] times — a chunk is a pure function of its index (split
    PRNG streams, warm-start chains), so a retried sweep is
    bit-identical to a fault-free one for any worker count; and after
    [breaker_threshold] consecutive failed attempts the circuit
    breaker opens — with [degrade] on, failing and still-unclaimed
    chunks re-run serially in the caller (one [Po_guard.Warnings]
    entry, [pool.chunks_degraded] metrics) instead of failing the
    sweep.  An {e inactive} policy — the default — leaves every
    combinator byte-for-byte on the unsupervised path, so existing
    failure semantics (first failure by chunk index wins) are
    unchanged unless a caller opts in.  Under an open breaker the
    attempt counters ([pool.chunks_computed], [pool.chunk_retries])
    stop being jobs-invariant: which chunks were still unclaimed at
    the moment of the trip depends on scheduling.  Results never do. *)

type t
(** A handle to a pool of worker domains. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware parallelism the
    runtime suggests, i.e. the sensible default for [--jobs]. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers (default
    {!default_domains}).  [domains <= 1] creates a pool with no workers
    whose combinators run serially in the caller.  If a spawn fails the
    pool degrades to the workers that did come up (warning through
    [Po_guard.Warnings]); {!domains} reports the actual parallelism. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the calling domain). *)

val shutdown : t -> unit
(** Signal the workers to exit and join them.  Idempotent.  Submitting
    work to a pool after [shutdown] raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] evaluated across the
    pool's domains.  Order-preserving (see the determinism contract).
    If any application of [f] raises, the failure with the smallest
    chunk index is re-raised in the caller (with its backtrace) after
    all in-flight work drains; remaining chunks are abandoned and the
    pool stays reusable.  See the failure semantics above for how raw
    exceptions are wrapped as [Worker_crash]. *)

val maybe_map : t option -> ('a -> 'b) -> 'a array -> 'b array
(** [maybe_map pool f arr] is {!parallel_map} through [pool] when one is
    given and [Array.map f arr] otherwise — the idiom for threading an
    optional [?pool] argument through sweep code. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f] evaluated across the
    pool's domains, with the same ordering and exception guarantees as
    {!parallel_map}. *)

val chunk_map :
  ?chunk_size:int ->
  ?sup:Po_sup.Supervise.policy ->
  ?cached:(int -> 'b array option) ->
  ?on_chunk:(int -> 'b array -> unit) ->
  t option ->
  f:('a -> 'b) ->
  'a array ->
  'b array
(** [chunk_map pool ~f arr] is [Array.map f arr] evaluated in fixed
    chunks of [chunk_size] (default 16) consecutive elements distributed
    across the pool ([None] runs serially).  Unlike {!parallel_map}, the
    chunk layout is a pure function of the input length and
    [chunk_size] — never of the pool — which makes the chunk index a
    stable coordinate for checkpointing: [cached ci] is consulted before
    chunk [ci] is computed (a hit of the right length is returned
    verbatim, anything else is recomputed), and [on_chunk ci result] is
    called for every freshly computed chunk, possibly concurrently from
    several domains.  The memo hooks must themselves be bit-transparent
    (return exactly what [on_chunk] was given) for the determinism
    contract to carry over. *)

val chain_map :
  ?chunk_size:int ->
  ?sup:Po_sup.Supervise.policy ->
  ?cached:(int -> 'b array option) ->
  ?on_chunk:(int -> 'b array -> unit) ->
  t option ->
  step:('b option -> 'a -> 'b) ->
  'a array ->
  'b array
(** [chain_map pool ~step arr] maps [arr] in chunks of [chunk_size]
    (default 16) consecutive elements, where each chunk is an independent
    {e warm-start chain}: within a chunk, [step] receives the previous
    element's result ([None] at a chunk start) — the idiom for parameter
    sweeps whose solver accepts the neighbouring grid point's solution as
    an initial guess.  Chunks are evaluated across the pool ([None] runs
    serially); because the chunk layout depends only on [chunk_size] and
    the input length, never on the pool, the result is bit-identical for
    any worker count {e provided} [step]'s output is determined by its
    arguments (a warm start may change which of several equilibria a
    solver lands on, but the chain structure — and hence the output — is
    the same on every pool).  [chunk_size] must be positive.  [cached] /
    [on_chunk] are the same checkpoint-memo hooks as {!chunk_map}. *)

val map_reduce :
  t ->
  ?chunk_size:int ->
  rng:Po_prng.Splitmix.t ->
  map:(Po_prng.Splitmix.t -> 'a array -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [map_reduce pool ~rng ~map ~reduce ~init arr] slices [arr] into
    chunks of [chunk_size] (default 16) consecutive elements, gives
    chunk [i] the [i]-th stream split off [rng] (advancing [rng] once
    per chunk), evaluates [map stream chunk] across the pool, and folds
    the chunk results with [reduce] in chunk-index order.  Because the
    chunk layout and stream assignment depend only on [chunk_size] and
    [Array.length arr], the result is identical for any [domains],
    including 1.  [chunk_size] must be positive. *)
