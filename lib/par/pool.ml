(* A domain pool with a mutex/condition work queue.

   Parallel operations share work through an atomic chunk counter: every
   participant (the caller plus the queued helper closures) repeatedly
   claims the next chunk of indices and writes results straight into the
   output array, so scheduling order can never affect where a result
   lands.  A per-operation latch counts the helpers still running; the
   caller keeps working until the counter is exhausted, then blocks on
   the latch until the last helper drains.

   Failure semantics (DESIGN.md §10): an exception inside mapped work is
   caught on the worker, recorded by chunk index, and re-raised in the
   caller after all in-flight work drains — the queue never deadlocks
   and the pool stays reusable.  A raw exception is wrapped as
   [Po_guard.Po_error.Worker_crash] carrying its chunk; an already-typed
   [Po_error.Error] passes through untouched so inner solver errors keep
   their own provenance. *)

(* Observability (DESIGN.md §11).  The chunk counters live at the
   [run_chunks] level because the chunk layout is a pure function of
   the input length and [chunk_size] — never of the pool — so their
   totals are jobs-invariant.  The gauge and the timing histogram
   describe the machine and are exempt from that contract. *)
let m_chunks_computed = Po_obs.Metrics.counter "pool.chunks_computed"

let m_chunks_cached = Po_obs.Metrics.counter "pool.chunks_cached"

let m_domains = Po_obs.Metrics.gauge "pool.domains"

let m_chunk_s = Po_obs.Metrics.histogram "pool.chunk_s"

type t = {
  mutable total_domains : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  wake : Condition.t;  (* signalled on submit and on shutdown *)
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

let default_domains () = Domain.recommended_domain_count ()

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.wake pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* Jobs never let exceptions escape (see [run_shared]); a raise here
       would take the worker down silently, so treat it as a bug. *)
    job ();
    worker_loop pool
  end

let create ?domains () =
  let requested =
    match domains with None -> default_domains () | Some d -> max 1 d
  in
  let pool =
    { total_domains = requested; queue = Queue.create ();
      mutex = Mutex.create (); wake = Condition.create ();
      workers = [||]; closed = false }
  in
  (* Domain.spawn can fail under resource pressure (the runtime caps
     live domains); a pool that comes up with fewer workers still honours
     every contract — the combinators degrade towards the serial path —
     so spawn failure is a warning, not an error. *)
  let spawned = ref [] in
  (try
     for _ = 2 to requested do
       spawned := Domain.spawn (fun () -> worker_loop pool) :: !spawned
     done
   with exn ->
     Po_guard.Warnings.emit
       (Printf.sprintf
          "Pool.create: domain spawn failed (%s); continuing with %d of %d \
           domains"
          (Printexc.to_string exn)
          (List.length !spawned + 1)
          requested));
  pool.workers <- Array.of_list (List.rev !spawned);
  pool.total_domains <- Array.length pool.workers + 1;
  Po_obs.Metrics.set m_domains (float_of_int pool.total_domains);
  pool

let domains pool = pool.total_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closed then Mutex.unlock pool.mutex
  else begin
    pool.closed <- true;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let submit pool job =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job pool.queue;
  Condition.signal pool.wake;
  Mutex.unlock pool.mutex

(* Outcome of one parallel operation: the first failure by chunk index,
   so the reported exception does not depend on scheduling. *)
type failure = { chunk_start : int; exn : exn; bt : Printexc.raw_backtrace }

(* Run [work_chunk start stop] over [n] indices in chunks of [chunk] on
   all of the pool's domains; returns once every chunk has finished. *)
let run_shared pool ~n ~chunk work_chunk =
  let next = Atomic.make 0 in
  let failed : failure option Atomic.t = Atomic.make None in
  let record_failure chunk_start exn bt =
    let f = { chunk_start; exn; bt } in
    let rec keep_first () =
      let current = Atomic.get failed in
      let better =
        match current with
        | None -> true
        | Some prior -> chunk_start < prior.chunk_start
      in
      if better && not (Atomic.compare_and_set failed current (Some f)) then
        keep_first ()
    in
    keep_first ();
    (* Abandon unclaimed chunks: drive the counter past the end. *)
    Atomic.set next n
  in
  let rec work () =
    let start = Atomic.fetch_and_add next chunk in
    if start < n then begin
      (try work_chunk start (min n (start + chunk))
       with exn ->
         record_failure start exn (Printexc.get_raw_backtrace ()));
      work ()
    end
  in
  let helpers = max 0 (pool.total_domains - 1) in
  let latch_mutex = Mutex.create () in
  let latch_done = Condition.create () in
  let pending = ref helpers in
  for _ = 1 to helpers do
    submit pool (fun () ->
        work ();
        Mutex.lock latch_mutex;
        decr pending;
        if !pending = 0 then Condition.broadcast latch_done;
        Mutex.unlock latch_mutex)
  done;
  work ();
  Mutex.lock latch_mutex;
  while !pending > 0 do
    Condition.wait latch_done latch_mutex
  done;
  Mutex.unlock latch_mutex;
  match Atomic.get failed with
  | Some { exn = Po_guard.Po_error.Error _ as exn; bt; _ } ->
      (* Typed errors already carry their provenance (the chunked
         combinators stamp the logical chunk index); pass through. *)
      Printexc.raise_with_backtrace exn bt
  | Some { chunk_start; exn; bt } ->
      Printexc.raise_with_backtrace
        (Po_guard.Po_error.Error
           (Po_guard.Po_error.v
              (Po_guard.Po_error.Worker_crash { chunk = chunk_start; exn })))
        bt
  | None -> ()

(* Chunks sized so each domain sees several, amortising queue traffic
   while still balancing uneven per-element cost.  Purely a scheduling
   knob: results are position-addressed, so the size cannot affect
   them. *)
let map_chunk_size ~n ~domains =
  max 1 (n / (4 * max 1 domains))

let parallel_map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.total_domains <= 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let chunk = map_chunk_size ~n ~domains:pool.total_domains in
    run_shared pool ~n ~chunk (fun start stop ->
        for i = start to stop - 1 do
          results.(i) <- Some (f arr.(i))
        done);
    Array.map
      (function Some v -> v | None -> assert false (* run_shared raised *))
      results
  end

let maybe_map pool f arr =
  match pool with
  | None -> Array.map f arr
  | Some pool -> parallel_map pool f arr

let parallel_init pool n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  parallel_map pool f (Array.init n Fun.id)

let default_chain_chunk = 16

(* The armed-fault site of the chunked combinators: keyed by the logical
   chunk index, which is a pure function of the input length and
   [chunk_size] — never of the pool — so an injected crash hits the same
   chunk for any worker count, including the serial path. *)
let fire_worker ci =
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Worker ~key:ci then
    Po_guard.Po_error.fail
      ~context:[ ("injected", "worker") ]
      (Po_guard.Po_error.Worker_crash
         { chunk = ci;
           exn =
             Po_guard.Faultinject.Injected_fault
               (Printf.sprintf "worker crash at chunk %d" ci) })

(* Shared chunk engine of [chunk_map] and [chain_map]: fixed layout,
   optional per-chunk memo ([cached] consulted before computing,
   [on_chunk] told about every freshly computed chunk — the checkpoint
   journal hooks).  A cached chunk of the wrong length is recomputed, so
   a stale or truncated journal can never corrupt a sweep. *)
let run_chunks ~chunk_size ?cached ?on_chunk pool ~n ~compute =
  if chunk_size <= 0 then invalid_arg "Pool.run_chunks: chunk_size <= 0";
  if n = 0 then [||]
  else begin
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    let eval ci =
      let start = ci * chunk_size in
      let stop = min n (start + chunk_size) in
      let fresh () =
        Po_obs.Metrics.incr m_chunks_computed;
        fire_worker ci;
        let r =
          Po_obs.Metrics.time_s m_chunk_s (fun () ->
              Po_guard.Po_error.with_context
                [ ("chunk", string_of_int ci) ]
                (fun () -> compute ci ~start ~stop))
        in
        (match on_chunk with None -> () | Some h -> h ci r);
        r
      in
      match cached with
      | None -> fresh ()
      | Some lookup -> (
          match lookup ci with
          | Some r when Array.length r = stop - start ->
              Po_obs.Metrics.incr m_chunks_cached;
              r
          | Some _ | None -> fresh ())
    in
    let chunks = maybe_map pool eval (Array.init n_chunks Fun.id) in
    Array.concat (Array.to_list chunks)
  end

let chunk_map ?(chunk_size = default_chain_chunk) ?cached ?on_chunk pool ~f
    arr =
  run_chunks ~chunk_size ?cached ?on_chunk pool ~n:(Array.length arr)
    ~compute:(fun _ci ~start ~stop ->
      Array.init (stop - start) (fun k -> f arr.(start + k)))

let chain_map ?(chunk_size = default_chain_chunk) ?cached ?on_chunk pool
    ~step arr =
  (* The chunk layout is a pure function of [n] and [chunk_size] —
     never of the pool — so every chunk is the same warm-start chain
     whether it runs serially or on any number of domains. *)
  run_chunks ~chunk_size ?cached ?on_chunk pool ~n:(Array.length arr)
    ~compute:(fun _ci ~start ~stop ->
      let out = Array.make (stop - start) None in
      let prev = ref None in
      for i = start to stop - 1 do
        let r = step !prev arr.(i) in
        out.(i - start) <- Some r;
        prev := Some r
      done;
      Array.map
        (function Some v -> v | None -> assert false (* loop filled all *))
        out)

let default_reduce_chunk = 16

let map_reduce pool ?(chunk_size = default_reduce_chunk) ~rng ~map ~reduce
    ~init arr =
  if chunk_size <= 0 then invalid_arg "Pool.map_reduce: chunk_size <= 0";
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    (* Streams are split off [rng] in chunk-index order *before* any
       parallel work, so the assignment is a pure function of the chunk
       layout. *)
    let chunks =
      Array.init n_chunks (fun i ->
          (i, Array.sub arr (i * chunk_size) (min chunk_size (n - (i * chunk_size)))))
    in
    let streams = Array.make n_chunks rng in
    for i = 0 to n_chunks - 1 do
      streams.(i) <- Po_prng.Splitmix.split rng
    done;
    let mapped =
      parallel_map pool (fun (i, chunk) -> map streams.(i) chunk) chunks
    in
    Array.fold_left reduce init mapped
  end
