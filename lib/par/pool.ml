(* A domain pool with a mutex/condition work queue.

   Parallel operations share work through an atomic chunk counter: every
   participant (the caller plus the queued helper closures) repeatedly
   claims the next chunk of indices and writes results straight into the
   output array, so scheduling order can never affect where a result
   lands.  A per-operation latch counts the helpers still running; the
   caller keeps working until the counter is exhausted, then blocks on
   the latch until the last helper drains.

   Failure semantics (DESIGN.md §10): an exception inside mapped work is
   caught on the worker, recorded by chunk index, and re-raised in the
   caller after all in-flight work drains — the queue never deadlocks
   and the pool stays reusable.  A raw exception is wrapped as
   [Po_guard.Po_error.Worker_crash] carrying its chunk; an already-typed
   [Po_error.Error] passes through untouched so inner solver errors keep
   their own provenance. *)

(* Observability (DESIGN.md §11).  The chunk counters live at the
   [run_chunks] level because the chunk layout is a pure function of
   the input length and [chunk_size] — never of the pool — so their
   totals are jobs-invariant.  The gauge and the timing histogram
   describe the machine and are exempt from that contract. *)
let m_chunks_computed = Po_obs.Metrics.counter "pool.chunks_computed"

let m_chunks_cached = Po_obs.Metrics.counter "pool.chunks_cached"

let m_domains = Po_obs.Metrics.gauge "pool.domains"

let m_chunk_s = Po_obs.Metrics.histogram "pool.chunk_s"

(* Supervision counters (DESIGN.md §13).  Retry counts are jobs-invariant
   for deterministic (chunk-keyed) faults; once a breaker opens, which
   chunks were still unclaimed — and therefore how many run degraded —
   depends on scheduling, so the degraded counters describe what happened,
   not a reproducible quantity. *)
let m_chunk_retries = Po_obs.Metrics.counter "pool.chunk_retries"

let m_chunks_degraded = Po_obs.Metrics.counter "pool.chunks_degraded"

let m_breaker_trips = Po_obs.Metrics.counter "pool.breaker_trips"

type t = {
  mutable total_domains : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  wake : Condition.t;  (* signalled on submit and on shutdown *)
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

let default_domains () = Domain.recommended_domain_count ()

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.wake pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* Jobs never let exceptions escape (see [run_shared]); a raise here
       would take the worker down silently, so treat it as a bug. *)
    job ();
    worker_loop pool
  end

let create ?domains () =
  let requested =
    match domains with None -> default_domains () | Some d -> max 1 d
  in
  let pool =
    { total_domains = requested; queue = Queue.create ();
      mutex = Mutex.create (); wake = Condition.create ();
      workers = [||]; closed = false }
  in
  (* Domain.spawn can fail under resource pressure (the runtime caps
     live domains); a pool that comes up with fewer workers still honours
     every contract — the combinators degrade towards the serial path —
     so spawn failure is a warning, not an error. *)
  let spawned = ref [] in
  (try
     for _ = 2 to requested do
       spawned := Domain.spawn (fun () -> worker_loop pool) :: !spawned
     done
   with exn ->
     Po_guard.Warnings.emit
       (Printf.sprintf
          "Pool.create: domain spawn failed (%s); continuing with %d of %d \
           domains"
          (Printexc.to_string exn)
          (List.length !spawned + 1)
          requested));
  pool.workers <- Array.of_list (List.rev !spawned);
  pool.total_domains <- Array.length pool.workers + 1;
  Po_obs.Metrics.set m_domains (float_of_int pool.total_domains);
  pool

let domains pool = pool.total_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closed then Mutex.unlock pool.mutex
  else begin
    pool.closed <- true;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let submit pool job =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job pool.queue;
  Condition.signal pool.wake;
  Mutex.unlock pool.mutex

(* Outcome of one parallel operation: the first failure by chunk index,
   so the reported exception does not depend on scheduling. *)
type failure = { chunk_start : int; exn : exn; bt : Printexc.raw_backtrace }

(* Run [work_chunk start stop] over [n] indices in chunks of [chunk] on
   all of the pool's domains; returns once every chunk has finished. *)
let run_shared pool ~n ~chunk work_chunk =
  let next = Atomic.make 0 in
  let failed : failure option Atomic.t = Atomic.make None in
  let record_failure chunk_start exn bt =
    let f = { chunk_start; exn; bt } in
    let rec keep_first () =
      let current = Atomic.get failed in
      let better =
        match current with
        | None -> true
        | Some prior -> chunk_start < prior.chunk_start
      in
      if better && not (Atomic.compare_and_set failed current (Some f)) then
        keep_first ()
    in
    keep_first ();
    (* Abandon unclaimed chunks: drive the counter past the end. *)
    Atomic.set next n
  in
  let rec work () =
    let start = Atomic.fetch_and_add next chunk in
    if start < n then begin
      (try work_chunk start (min n (start + chunk))
       with exn ->
         record_failure start exn (Printexc.get_raw_backtrace ()));
      work ()
    end
  in
  let helpers = max 0 (pool.total_domains - 1) in
  let latch_mutex = Mutex.create () in
  let latch_done = Condition.create () in
  let pending = ref helpers in
  for _ = 1 to helpers do
    submit pool (fun () ->
        work ();
        Mutex.lock latch_mutex;
        decr pending;
        if !pending = 0 then Condition.broadcast latch_done;
        Mutex.unlock latch_mutex)
  done;
  work ();
  Mutex.lock latch_mutex;
  while !pending > 0 do
    Condition.wait latch_done latch_mutex
  done;
  Mutex.unlock latch_mutex;
  match Atomic.get failed with
  | Some { exn = Po_guard.Po_error.Error _ as exn; bt; _ } ->
      (* Typed errors already carry their provenance (the chunked
         combinators stamp the logical chunk index); pass through. *)
      Printexc.raise_with_backtrace exn bt
  | Some { chunk_start; exn; bt } ->
      Printexc.raise_with_backtrace
        (Po_guard.Po_error.Error
           (Po_guard.Po_error.v
              (Po_guard.Po_error.Worker_crash { chunk = chunk_start; exn })))
        bt
  | None -> ()

(* Chunks sized so each domain sees several, amortising queue traffic
   while still balancing uneven per-element cost.  Purely a scheduling
   knob: results are position-addressed, so the size cannot affect
   them. *)
let map_chunk_size ~n ~domains =
  max 1 (n / (4 * max 1 domains))

let parallel_map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.total_domains <= 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let chunk = map_chunk_size ~n ~domains:pool.total_domains in
    run_shared pool ~n ~chunk (fun start stop ->
        for i = start to stop - 1 do
          results.(i) <- Some (f arr.(i))
        done);
    Array.map
      (function Some v -> v | None -> assert false (* run_shared raised *))
      results
  end

let maybe_map pool f arr =
  match pool with
  | None -> Array.map f arr
  | Some pool -> parallel_map pool f arr

let parallel_init pool n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  parallel_map pool f (Array.init n Fun.id)

let default_chain_chunk = 16

(* The armed-fault site of the chunked combinators: keyed by the logical
   chunk index, which is a pure function of the input length and
   [chunk_size] — never of the pool — so an injected crash hits the same
   chunk for any worker count, including the serial path. *)
let fire_worker ci =
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Worker ~key:ci then
    Po_guard.Po_error.fail
      ~context:[ ("injected", "worker") ]
      (Po_guard.Po_error.Worker_crash
         { chunk = ci;
           exn =
             Po_guard.Faultinject.Injected_fault
               (Printf.sprintf "worker crash at chunk %d" ci) })

(* The transient-fault site: chunk [ci] crashes on its first n attempts
   (process-wide), then succeeds — what a retry policy must absorb. *)
let fire_flaky ci =
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Flaky ~key:ci then
    Po_guard.Po_error.fail
      ~context:[ ("injected", "flaky") ]
      (Po_guard.Po_error.Worker_crash
         { chunk = ci;
           exn =
             Po_guard.Faultinject.Injected_fault
               (Printf.sprintf "flaky crash at chunk %d" ci) })

(* A stuck worker as the watchdog would report it, without the wait. *)
let fire_timeout ci ~limit =
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Timeout ~key:ci then
    Po_guard.Po_error.fail
      ~context:[ ("injected", "timeout") ]
      (Po_guard.Po_error.Chunk_timeout { chunk = ci; elapsed = limit; limit })

(* A genuinely slow chunk: sleep past the watchdog limit so the real
   elapsed-time path trips. *)
let fire_slow ci ~limit =
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Slow ~key:ci then
    Po_obs.Clock.sleep_s (limit +. 0.01)

(* Outcome of one supervised chunk evaluation on a worker: [Deferred]
   marks a chunk the open breaker routed to the caller's serial
   degraded phase.  Never exposed — resolved before [run_chunks]
   returns. *)
type 'b chunk_outcome = Done of 'b array | Deferred

(* Shared chunk engine of [chunk_map] and [chain_map]: fixed layout,
   optional per-chunk memo ([cached] consulted before computing,
   [on_chunk] told about every freshly computed chunk — the checkpoint
   journal hooks).  A cached chunk of the wrong length is recomputed, so
   a stale or truncated journal can never corrupt a sweep.

   With an {e active} supervision policy (DESIGN.md §13) each fresh
   chunk runs under the retry/breaker/watchdog machinery; an inactive
   policy (the default) takes the original code path untouched, which is
   what keeps the long-standing contract that [worker@k] fails the
   figure unless a caller opts in to retries. *)
let run_chunks ~chunk_size ?(sup = Po_sup.Supervise.default) ?cached
    ?on_chunk pool ~n ~compute =
  if chunk_size <= 0 then invalid_arg "Pool.run_chunks: chunk_size <= 0";
  if n = 0 then [||]
  else if not (Po_sup.Supervise.is_active sup) then begin
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    let eval ci =
      let start = ci * chunk_size in
      let stop = min n (start + chunk_size) in
      let fresh () =
        Po_obs.Metrics.incr m_chunks_computed;
        fire_worker ci;
        let r =
          Po_obs.Metrics.time_s m_chunk_s (fun () ->
              Po_guard.Po_error.with_context
                [ ("chunk", string_of_int ci) ]
                (fun () -> compute ci ~start ~stop))
        in
        (match on_chunk with None -> () | Some h -> h ci r);
        r
      in
      match cached with
      | None -> fresh ()
      | Some lookup -> (
          match lookup ci with
          | Some r when Array.length r = stop - start ->
              Po_obs.Metrics.incr m_chunks_cached;
              r
          | Some _ | None -> fresh ())
    in
    let chunks = maybe_map pool eval (Array.init n_chunks Fun.id) in
    Array.concat (Array.to_list chunks)
  end
  else begin
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    let breaker =
      Po_sup.Breaker.create ~threshold:sup.Po_sup.Supervise.breaker_threshold
    in
    let watchdog =
      Option.map
        (fun limit -> Po_sup.Watchdog.create ~limit)
        sup.Po_sup.Supervise.chunk_timeout
    in
    let budget = sup.Po_sup.Supervise.budget in
    let inj_limit =
      Option.value sup.Po_sup.Supervise.chunk_timeout ~default:0.0
    in
    (* One attempt at computing chunk [ci] fresh.  [degraded] = the
       serial in-caller phase behind an open breaker: the sites that
       model the parallel-worker environment ([worker], [timeout],
       [slow]) and the watchdog are suppressed there — that is what
       lets degradation complete the figure — while [flaky] keeps its
       process-wide attempt count so transient faults behave
       identically in both modes. *)
    let attempt ~degraded ci ~start ~stop =
      Po_obs.Metrics.incr m_chunks_computed;
      if not degraded then begin
        fire_worker ci;
        fire_timeout ci ~limit:inj_limit
      end;
      fire_flaky ci;
      let t0 = Po_obs.Clock.now_s () in
      let r =
        Po_obs.Metrics.time_s m_chunk_s (fun () ->
            Po_guard.Po_error.with_context
              [ ("chunk", string_of_int ci) ]
              (fun () ->
                if not degraded then fire_slow ci ~limit:inj_limit;
                compute ci ~start ~stop))
      in
      if not degraded then
        Po_sup.Watchdog.check_opt watchdog ~chunk:ci
          ~elapsed:(Po_obs.Clock.now_s () -. t0);
      (match on_chunk with None -> () | Some h -> h ci r);
      r
    in
    (* Retry loop on a worker.  Only typed {e retryable} failures
       (Supervise.retryable) re-run — a chunk is a pure function of its
       index, so a re-run replays the same split PRNG stream and
       warm-start chain and is bit-identical.  Everything else
       re-raises for run_shared's first-failure-by-chunk-index
       reporting.  Breaker bookkeeping is per attempt; once it opens
       (and degradation is on) the chunk defers instead of burning the
       remaining retries. *)
    let eval_sup ci =
      let start = ci * chunk_size in
      let stop = min n (start + chunk_size) in
      let cached_hit =
        match cached with
        | None -> None
        | Some lookup -> (
            match lookup ci with
            | Some r when Array.length r = stop - start -> Some r
            | Some _ | None -> None)
      in
      match cached_hit with
      | Some r ->
          Po_obs.Metrics.incr m_chunks_cached;
          Done r
      | None ->
          if Po_sup.Breaker.tripped breaker && sup.Po_sup.Supervise.degrade
          then Deferred
          else begin
            Po_sup.Budget.check_opt budget;
            let rec go attempts_left =
              match
                Po_guard.Po_error.capture (fun () ->
                    attempt ~degraded:false ci ~start ~stop)
              with
              | Ok r ->
                  Po_sup.Breaker.record_success breaker;
                  Done r
              | Error e
                when Po_sup.Supervise.retryable e.Po_guard.Po_error.kind ->
                  let tripped = Po_sup.Breaker.record_failure breaker in
                  if tripped && sup.Po_sup.Supervise.degrade then Deferred
                  else if attempts_left > 0 then begin
                    Po_obs.Metrics.incr m_chunk_retries;
                    Po_sup.Budget.check_opt budget;
                    go (attempts_left - 1)
                  end
                  else raise (Po_guard.Po_error.Error e)
              | Error e -> raise (Po_guard.Po_error.Error e)
            in
            go sup.Po_sup.Supervise.retries
          end
    in
    let outcomes = maybe_map pool eval_sup (Array.init n_chunks Fun.id) in
    let deferred_count =
      Array.fold_left
        (fun acc o -> match o with Deferred -> acc + 1 | Done _ -> acc)
        0 outcomes
    in
    if deferred_count > 0 then begin
      (* Graceful degradation: the breaker opened, so finish the sweep
         serially in the caller rather than failing the figure.  The
         caller is the only domain here, so emitting the warning is
         R7-safe. *)
      Po_obs.Metrics.incr m_breaker_trips;
      Po_guard.Warnings.emit
        (Printf.sprintf
           "Pool.run_chunks: circuit breaker opened after %d consecutive \
            chunk-attempt failures; computing %d chunk(s) serially in the \
            caller"
           (Po_sup.Breaker.threshold breaker)
           deferred_count);
      let rec degraded_go ci ~start ~stop attempts_left =
        match
          Po_guard.Po_error.capture (fun () ->
              attempt ~degraded:true ci ~start ~stop)
        with
        | Ok r -> r
        | Error e
          when Po_sup.Supervise.retryable e.Po_guard.Po_error.kind
               && attempts_left > 0 ->
            Po_obs.Metrics.incr m_chunk_retries;
            Po_sup.Budget.check_opt budget;
            degraded_go ci ~start ~stop (attempts_left - 1)
        | Error e -> raise (Po_guard.Po_error.Error e)
      in
      for ci = 0 to n_chunks - 1 do
        match outcomes.(ci) with
        | Done _ -> ()
        | Deferred ->
            Po_sup.Budget.check_opt budget;
            Po_obs.Metrics.incr m_chunks_degraded;
            let start = ci * chunk_size in
            let stop = min n (start + chunk_size) in
            outcomes.(ci) <-
              Done (degraded_go ci ~start ~stop sup.Po_sup.Supervise.retries)
      done
    end;
    Array.concat
      (Array.to_list
         (Array.map
            (function Done r -> r | Deferred -> assert false (* resolved *))
            outcomes))
  end

let chunk_map ?(chunk_size = default_chain_chunk) ?sup ?cached ?on_chunk pool
    ~f arr =
  run_chunks ~chunk_size ?sup ?cached ?on_chunk pool ~n:(Array.length arr)
    ~compute:(fun _ci ~start ~stop ->
      Array.init (stop - start) (fun k -> f arr.(start + k)))

let chain_map ?(chunk_size = default_chain_chunk) ?sup ?cached ?on_chunk pool
    ~step arr =
  (* The chunk layout is a pure function of [n] and [chunk_size] —
     never of the pool — so every chunk is the same warm-start chain
     whether it runs serially or on any number of domains. *)
  run_chunks ~chunk_size ?sup ?cached ?on_chunk pool ~n:(Array.length arr)
    ~compute:(fun _ci ~start ~stop ->
      let out = Array.make (stop - start) None in
      let prev = ref None in
      for i = start to stop - 1 do
        let r = step !prev arr.(i) in
        out.(i - start) <- Some r;
        prev := Some r
      done;
      Array.map
        (function Some v -> v | None -> assert false (* loop filled all *))
        out)

let default_reduce_chunk = 16

let map_reduce pool ?(chunk_size = default_reduce_chunk) ~rng ~map ~reduce
    ~init arr =
  if chunk_size <= 0 then invalid_arg "Pool.map_reduce: chunk_size <= 0";
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    (* Streams are split off [rng] in chunk-index order *before* any
       parallel work, so the assignment is a pure function of the chunk
       layout. *)
    let chunks =
      Array.init n_chunks (fun i ->
          (i, Array.sub arr (i * chunk_size) (min chunk_size (n - (i * chunk_size)))))
    in
    let streams = Array.make n_chunks rng in
    for i = 0 to n_chunks - 1 do
      streams.(i) <- Po_prng.Splitmix.split rng
    done;
    let mapped =
      parallel_map pool (fun (i, chunk) -> map streams.(i) chunk) chunks
    in
    Array.fold_left reduce init mapped
  end
