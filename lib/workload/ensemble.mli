(** CP population generators.

    The paper's evaluation (Sec. III-E) uses 1000 CPs with
    [alpha, theta_hat, v ~ U[0,1]], [beta ~ U[0,10]] and consumer utility
    either [phi ~ U[0, beta]] (main text: utility biased towards
    throughput-sensitive content) or [phi ~ U[0, U[0,10]]] (appendix:
    same scale, independent of beta).  Saturation capacity is
    [E sum alpha_i theta_hat_i = n/4] per capita (250 for n = 1000).

    All draws are deterministic in the seed; each attribute uses its own
    split stream, so changing [n] only extends the population.  The
    attribute columns are always drawn serially; [?pool] only spreads CP
    {e construction} across domains, so the population is bit-identical
    with or without a pool, whatever its size. *)

type phi_setting =
  | Coupled_to_beta  (** main text: [phi_i ~ U[0, beta_i]] *)
  | Independent  (** appendix: [phi_i ~ U[0, U[0, 10]]] *)

val paper_ensemble :
  ?n:int -> ?phi:phi_setting -> ?pool:Po_par.Pool.t -> seed:int -> unit ->
  Po_model.Cp.t array
(** The paper's random population; [n] defaults to 1000, [phi] to
    [Coupled_to_beta]. *)

val paper_ensemble_soa :
  ?n:int -> ?phi:phi_setting -> ?chunk:int -> ?pool:Po_par.Pool.t ->
  seed:int -> unit -> Po_model.Cp_soa.t
(** {!paper_ensemble} as structure-of-arrays columns, generated
    chunk-wise (default chunk 65536).

    {b Determinism contract (DESIGN.md §12).}  Each attribute stream is
    positioned at a chunk's first id by an O(1) [Splitmix.jump] — valid
    because every attribute distribution consumes a fixed number of
    draws per sample — so each chunk is a pure function of
    (seed, phi, first id, length).  The assembled columns are therefore
    bit-identical to the serial id-order draw of {!paper_ensemble}
    ([Cp_soa.of_cps (paper_ensemble ~n ~phi ~seed ())]), for {e any}
    chunk size and whether chunks are generated serially or on a pool of
    any size ([?pool] spreads chunk generation across domains);
    test/test_soa.ml pins all of this. *)

val fold_paper_chunks :
  ?n:int -> ?phi:phi_setting -> ?chunk:int -> seed:int -> init:'a ->
  f:('a -> first_id:int -> Po_model.Cp_soa.t -> 'a) -> unit -> 'a
(** Stream the paper ensemble through [f] one chunk at a time, in id
    order, without ever materialising the full population — peak scratch
    is O(chunk).  Chunk [c] holds ids [first_id .. first_id + length -
    1] of the same population {!paper_ensemble_soa} assembles (same
    determinism contract).  For aggregates over populations too large to
    hold, or out-of-core processing. *)

val heavy_tailed_ensemble :
  ?n:int -> ?zipf_exponent:float -> ?pareto_shape:float ->
  ?pool:Po_par.Pool.t -> seed:int -> unit -> Po_model.Cp.t array
(** A robustness-extension population: popularity follows a Zipf law over
    ranks, unconstrained throughput a Pareto law (capped), [beta]
    log-normal — a more Internet-like skew than the paper's uniform
    draws.  Used by the ablation benches. *)

val saturation_nu : Po_model.Cp.t array -> float
(** Per-capita capacity that serves every CP's unconstrained throughput:
    [sum_i alpha_i theta_hat_i]. *)

val total_value : Po_model.Cp.t array -> float
(** Upper bound on per-capita consumer surplus:
    [sum_i phi_i alpha_i theta_hat_i] (attained when unconstrained). *)
