open Po_model
open Po_prng

type phi_setting = Coupled_to_beta | Independent

(* A uniform draw on (0, 1]: the open lower end keeps alpha and theta_hat
   strictly positive as the model requires. *)
let positive_unit rng = 1. -. Splitmix.float rng

(* Draw the whole attribute column in id order.  Each attribute owns its
   stream, so drawing a column at once yields exactly the values the
   per-CP interleaved loop would: stream draws depend only on their own
   stream's position, and CP [i]'s attribute is always that stream's
   [i]-th value.  Columns are materialised before CP construction so the
   construction step can run on a pool without touching any RNG. *)
let column n rng draw =
  let a = Array.make n 0. in
  for i = 0 to n - 1 do
    a.(i) <- draw rng
  done;
  a

let build ?pool n make =
  match pool with
  | None -> Array.init n make
  | Some pool -> Po_par.Pool.parallel_init pool n make

let paper_ensemble ?(n = 1000) ?(phi = Coupled_to_beta) ?pool ~seed () =
  if n <= 0 then invalid_arg "Ensemble.paper_ensemble: n <= 0";
  let root = Splitmix.of_int seed in
  let alpha_rng = Splitmix.split root in
  let theta_rng = Splitmix.split root in
  let beta_rng = Splitmix.split root in
  let v_rng = Splitmix.split root in
  let phi_rng = Splitmix.split root in
  let alphas = column n alpha_rng positive_unit in
  let thetas = column n theta_rng positive_unit in
  let betas = column n beta_rng (Splitmix.uniform ~lo:0. ~hi:10.) in
  let vs = column n v_rng Splitmix.float in
  let phis =
    match phi with
    | Coupled_to_beta ->
        let a = Array.make n 0. in
        for id = 0 to n - 1 do
          a.(id) <- Splitmix.uniform phi_rng ~lo:0. ~hi:betas.(id)
        done;
        a
    | Independent -> column n phi_rng (Dist.nested_uniform ~hi:10.)
  in
  build ?pool n (fun id ->
      Cp.make ~id ~alpha:alphas.(id) ~theta_hat:thetas.(id)
        ~demand:(Demand.exponential ~beta:betas.(id))
        ~v:vs.(id) ~phi:phis.(id) ())

(* ------------------------------------------------------------------ *)
(* Streaming / structure-of-arrays generation (DESIGN.md §12)         *)
(* ------------------------------------------------------------------ *)

(* The paper ensemble's five attribute streams, in their fixed split
   order off the root.  Immutable once derived: chunk generators only
   [Splitmix.jump] off them, never draw. *)
type paper_streams = {
  s_alpha : Splitmix.t;
  s_theta : Splitmix.t;
  s_beta : Splitmix.t;
  s_v : Splitmix.t;
  s_phi : Splitmix.t;
}

let paper_streams ~seed =
  let root = Splitmix.of_int seed in
  let s_alpha = Splitmix.split root in
  let s_theta = Splitmix.split root in
  let s_beta = Splitmix.split root in
  let s_v = Splitmix.split root in
  let s_phi = Splitmix.split root in
  { s_alpha; s_theta; s_beta; s_v; s_phi }

let default_chunk = 65536

(* One chunk of the paper columns, ids [first_id, first_id + len).
   Every attribute distribution consumes exactly one [Splitmix.float]
   per sample — except Independent phi, which consumes two — so
   [Splitmix.jump] positions each stream at the chunk start in O(1) and
   the chunk draws exactly the values the serial id-order loop of
   {!paper_ensemble} would.  That makes the output a pure function of
   (seed, phi, first_id, len): independent of the chunk size used for
   {e other} chunks, of generation order, and of how many domains
   generate chunks concurrently. *)
let paper_chunk streams ~phi ~first_id ~len =
  let col rng draw = column len (Splitmix.jump rng first_id) draw in
  let alphas = col streams.s_alpha positive_unit in
  let thetas = col streams.s_theta positive_unit in
  let betas = col streams.s_beta (Splitmix.uniform ~lo:0. ~hi:10.) in
  let vs = col streams.s_v Splitmix.float in
  let phis =
    match phi with
    | Coupled_to_beta ->
        let rng = Splitmix.jump streams.s_phi first_id in
        let a = Array.make len 0. in
        for k = 0 to len - 1 do
          a.(k) <- Splitmix.uniform rng ~lo:0. ~hi:betas.(k)
        done;
        a
    | Independent ->
        (* Two uniform draws per sample (Dist.nested_uniform). *)
        column len
          (Splitmix.jump streams.s_phi (2 * first_id))
          (Dist.nested_uniform ~hi:10.)
  in
  Cp_soa.make ~alpha:alphas ~theta_hat:thetas ~beta:betas ~v:vs ~phi:phis

let check_chunking ~fn ~n ~chunk =
  if n <= 0 then invalid_arg (fn ^ ": n <= 0");
  if chunk <= 0 then invalid_arg (fn ^ ": chunk <= 0")

let fold_paper_chunks ?(n = 1000) ?(phi = Coupled_to_beta)
    ?(chunk = default_chunk) ~seed ~init ~f () =
  check_chunking ~fn:"Ensemble.fold_paper_chunks" ~n ~chunk;
  let streams = paper_streams ~seed in
  let acc = ref init in
  let first = ref 0 in
  while !first < n do
    let len = Int.min chunk (n - !first) in
    acc := f !acc ~first_id:!first (paper_chunk streams ~phi ~first_id:!first ~len);
    first := !first + len
  done;
  !acc

let paper_ensemble_soa ?(n = 1000) ?(phi = Coupled_to_beta)
    ?(chunk = default_chunk) ?pool ~seed () =
  check_chunking ~fn:"Ensemble.paper_ensemble_soa" ~n ~chunk;
  let streams = paper_streams ~seed in
  let n_chunks = (n + chunk - 1) / chunk in
  let gen c =
    let first_id = c * chunk in
    paper_chunk streams ~phi ~first_id ~len:(Int.min chunk (n - first_id))
  in
  let chunks =
    match pool with
    | None -> Array.init n_chunks gen
    | Some pool ->
        (* Workers only read the frozen stream states (jump copies, no
           draw advances a shared generator) and write chunk-local
           arrays; concatenation happens on the caller's domain. *)
        Po_par.Pool.parallel_init pool n_chunks gen
  in
  Cp_soa.concat chunks

let heavy_tailed_ensemble ?(n = 1000) ?(zipf_exponent = 1.0)
    ?(pareto_shape = 1.5) ?pool ~seed () =
  if n <= 0 then invalid_arg "Ensemble.heavy_tailed_ensemble: n <= 0";
  let root = Splitmix.of_int (seed lxor 0x5eed) in
  let rank_rng = Splitmix.split root in
  let theta_rng = Splitmix.split root in
  let beta_rng = Splitmix.split root in
  let v_rng = Splitmix.split root in
  let phi_rng = Splitmix.split root in
  let ranks = Array.init n (fun i -> i + 1) in
  Dist.shuffle rank_rng ranks;
  let thetas =
    column n theta_rng (fun rng ->
        Float.min 20. (Dist.pareto rng ~shape:pareto_shape ~scale:0.2))
  in
  let betas =
    column n beta_rng (fun rng ->
        Float.min 10. (Dist.lognormal rng ~mu:0.5 ~sigma:1.0))
  in
  let vs = column n v_rng Splitmix.float in
  let phis =
    let a = Array.make n 0. in
    for id = 0 to n - 1 do
      a.(id) <- Splitmix.uniform phi_rng ~lo:0. ~hi:betas.(id)
    done;
    a
  in
  build ?pool n (fun id ->
      (* Zipf popularity over a shuffled rank (so id order is not rank
         order), normalised into (0, 1]. *)
      let alpha = 1. /. (float_of_int ranks.(id) ** zipf_exponent) in
      Cp.make ~id ~alpha ~theta_hat:thetas.(id)
        ~demand:(Demand.exponential ~beta:betas.(id))
        ~v:vs.(id) ~phi:phis.(id) ())

let saturation_nu cps =
  Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps

let total_value cps =
  Array.fold_left
    (fun acc (cp : Cp.t) ->
      acc +. (cp.Cp.phi *. cp.Cp.alpha *. cp.Cp.theta_hat))
    0. cps
