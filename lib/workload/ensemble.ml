open Po_model
open Po_prng

type phi_setting = Coupled_to_beta | Independent

(* A uniform draw on (0, 1]: the open lower end keeps alpha and theta_hat
   strictly positive as the model requires. *)
let positive_unit rng = 1. -. Splitmix.float rng

(* Draw the whole attribute column in id order.  Each attribute owns its
   stream, so drawing a column at once yields exactly the values the
   per-CP interleaved loop would: stream draws depend only on their own
   stream's position, and CP [i]'s attribute is always that stream's
   [i]-th value.  Columns are materialised before CP construction so the
   construction step can run on a pool without touching any RNG. *)
let column n rng draw =
  let a = Array.make n 0. in
  for i = 0 to n - 1 do
    a.(i) <- draw rng
  done;
  a

let build ?pool n make =
  match pool with
  | None -> Array.init n make
  | Some pool -> Po_par.Pool.parallel_init pool n make

let paper_ensemble ?(n = 1000) ?(phi = Coupled_to_beta) ?pool ~seed () =
  if n <= 0 then invalid_arg "Ensemble.paper_ensemble: n <= 0";
  let root = Splitmix.of_int seed in
  let alpha_rng = Splitmix.split root in
  let theta_rng = Splitmix.split root in
  let beta_rng = Splitmix.split root in
  let v_rng = Splitmix.split root in
  let phi_rng = Splitmix.split root in
  let alphas = column n alpha_rng positive_unit in
  let thetas = column n theta_rng positive_unit in
  let betas = column n beta_rng (Splitmix.uniform ~lo:0. ~hi:10.) in
  let vs = column n v_rng Splitmix.float in
  let phis =
    match phi with
    | Coupled_to_beta ->
        let a = Array.make n 0. in
        for id = 0 to n - 1 do
          a.(id) <- Splitmix.uniform phi_rng ~lo:0. ~hi:betas.(id)
        done;
        a
    | Independent -> column n phi_rng (Dist.nested_uniform ~hi:10.)
  in
  build ?pool n (fun id ->
      Cp.make ~id ~alpha:alphas.(id) ~theta_hat:thetas.(id)
        ~demand:(Demand.exponential ~beta:betas.(id))
        ~v:vs.(id) ~phi:phis.(id) ())

let heavy_tailed_ensemble ?(n = 1000) ?(zipf_exponent = 1.0)
    ?(pareto_shape = 1.5) ?pool ~seed () =
  if n <= 0 then invalid_arg "Ensemble.heavy_tailed_ensemble: n <= 0";
  let root = Splitmix.of_int (seed lxor 0x5eed) in
  let rank_rng = Splitmix.split root in
  let theta_rng = Splitmix.split root in
  let beta_rng = Splitmix.split root in
  let v_rng = Splitmix.split root in
  let phi_rng = Splitmix.split root in
  let ranks = Array.init n (fun i -> i + 1) in
  Dist.shuffle rank_rng ranks;
  let thetas =
    column n theta_rng (fun rng ->
        Float.min 20. (Dist.pareto rng ~shape:pareto_shape ~scale:0.2))
  in
  let betas =
    column n beta_rng (fun rng ->
        Float.min 10. (Dist.lognormal rng ~mu:0.5 ~sigma:1.0))
  in
  let vs = column n v_rng Splitmix.float in
  let phis =
    let a = Array.make n 0. in
    for id = 0 to n - 1 do
      a.(id) <- Splitmix.uniform phi_rng ~lo:0. ~hi:betas.(id)
    done;
    a
  in
  build ?pool n (fun id ->
      (* Zipf popularity over a shuffled rank (so id order is not rank
         order), normalised into (0, 1]. *)
      let alpha = 1. /. (float_of_int ranks.(id) ** zipf_exponent) in
      Cp.make ~id ~alpha ~theta_hat:thetas.(id)
        ~demand:(Demand.exponential ~beta:betas.(id))
        ~v:vs.(id) ~phi:phis.(id) ())

let saturation_nu cps =
  Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps

let total_value cps =
  Array.fold_left
    (fun acc (cp : Cp.t) ->
      acc +. (cp.Cp.phi *. cp.Cp.alpha *. cp.Cp.theta_hat))
    0. cps
