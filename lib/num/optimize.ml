type point1 = { x : float; fx : float }
type point2 = { x1 : float; x2 : float; f12 : float }

let golden = (sqrt 5. -. 1.) /. 2.

let golden_section_max ?(tol = 1e-9) ?(max_iter = 200) ~f ~lo ~hi () =
  let rec loop a b c fc d fd n =
    (* Invariant: a < c < d < b with c, d at golden ratios. *)
    if b -. a <= tol || n >= max_iter then
      if fc >= fd then { x = c; fx = fc } else { x = d; fx = fd }
    else if fc >= fd then
      let b = d in
      let d = c and fd = fc in
      let c = b -. (golden *. (b -. a)) in
      loop a b c (f c) d fd (n + 1)
    else
      let a = c in
      let c = d and fc = fd in
      let d = a +. (golden *. (b -. a)) in
      loop a b c fc d (f d) (n + 1)
  in
  let c = hi -. (golden *. (hi -. lo)) in
  let d = lo +. (golden *. (hi -. lo)) in
  loop lo hi c (f c) d (f d) 0

let grid_max ~f ~grid () =
  if Array.length grid = 0 then invalid_arg "Optimize.grid_max: empty grid";
  let best = ref { x = grid.(0); fx = f grid.(0) } in
  Array.iter
    (fun x ->
      let fx = f x in
      if fx > !best.fx then best := { x; fx })
    grid;
  !best

let grid_max2 ~f ~grid1 ~grid2 () =
  if Array.length grid1 = 0 || Array.length grid2 = 0 then
    invalid_arg "Optimize.grid_max2: empty grid";
  let best =
    ref { x1 = grid1.(0); x2 = grid2.(0); f12 = f grid1.(0) grid2.(0) }
  in
  Array.iter
    (fun x1 ->
      Array.iter
        (fun x2 ->
          let f12 = f x1 x2 in
          if f12 > !best.f12 then best := { x1; x2; f12 })
        grid2)
    grid1;
  !best

let refine_grid_max ?(levels = 3) ?(points = 33) ~f ~lo ~hi () =
  if points < 3 then invalid_arg "Optimize.refine_grid_max: points < 3";
  let rec loop lo hi level best =
    if level = 0 then best
    else begin
      let grid = Grid.linspace lo hi points in
      let local = grid_max ~f ~grid () in
      let best = if local.fx > best.fx then local else best in
      let step = (hi -. lo) /. float_of_int (points - 1) in
      let lo' = Float.max lo (best.x -. step) in
      let hi' = Float.min hi (best.x +. step) in
      if hi' -. lo' <= 0. then best else loop lo' hi' (level - 1) best
    end
  in
  let first = grid_max ~f ~grid:(Grid.linspace lo hi points) () in
  loop lo hi levels first

let refine_grid_max2 ?(levels = 3) ?(points = 17) ~f ~lo1 ~hi1 ~lo2 ~hi2 () =
  if points < 3 then invalid_arg "Optimize.refine_grid_max2: points < 3";
  let rec loop lo1 hi1 lo2 hi2 level best =
    if level = 0 then best
    else begin
      let grid1 = Grid.linspace lo1 hi1 points in
      let grid2 = Grid.linspace lo2 hi2 points in
      let local = grid_max2 ~f ~grid1 ~grid2 () in
      let best = if local.f12 > best.f12 then local else best in
      let s1 = (hi1 -. lo1) /. float_of_int (points - 1) in
      let s2 = (hi2 -. lo2) /. float_of_int (points - 1) in
      loop
        (Float.max lo1 (best.x1 -. s1))
        (Float.min hi1 (best.x1 +. s1))
        (Float.max lo2 (best.x2 -. s2))
        (Float.min hi2 (best.x2 +. s2))
        (level - 1) best
    end
  in
  let first =
    grid_max2 ~f
      ~grid1:(Grid.linspace lo1 hi1 points)
      ~grid2:(Grid.linspace lo2 hi2 points)
      ()
  in
  loop lo1 hi1 lo2 hi2 levels first

(* Standard Nelder-Mead with reflection 1, expansion 2, contraction 0.5,
   shrink 0.5. *)
let nelder_mead ?(tol = 1e-9) ?(max_iter = 2000) ~f ~init ?(step = 0.1) () =
  let n = Array.length init in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty init";
  let simplex =
    Array.init (n + 1) (fun i ->
        let v = Array.copy init in
        if i > 0 then v.(i - 1) <- v.(i - 1) +. step;
        v)
  in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    idx
  in
  let centroid exclude =
    let c = Array.make n 0. in
    Array.iteri
      (fun i v ->
        if i <> exclude then
          Array.iteri (fun j vj -> c.(j) <- c.(j) +. vj) v)
      simplex;
    Array.map (fun cj -> cj /. float_of_int n) c
  in
  let affine c x t = Array.mapi (fun j cj -> cj +. (t *. (x.(j) -. cj))) c in
  let iter = ref 0 in
  let spread () =
    let idx = order () in
    Float.abs (values.(idx.(n)) -. values.(idx.(0)))
  in
  while !iter < max_iter && spread () > tol do
    incr iter;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let c = centroid worst in
    let xr = affine c simplex.(worst) (-1.) in
    let fr = f xr in
    if fr < values.(best) then begin
      let xe = affine c simplex.(worst) (-2.) in
      let fe = f xe in
      if fe < fr then begin
        simplex.(worst) <- xe;
        values.(worst) <- fe
      end
      else begin
        simplex.(worst) <- xr;
        values.(worst) <- fr
      end
    end
    else if fr < values.(second_worst) then begin
      simplex.(worst) <- xr;
      values.(worst) <- fr
    end
    else begin
      let xc = affine c simplex.(worst) 0.5 in
      let fc = f xc in
      if fc < values.(worst) then begin
        simplex.(worst) <- xc;
        values.(worst) <- fc
      end
      else
        (* Shrink towards the best vertex. *)
        Array.iteri
          (fun i v ->
            if i <> best then begin
              let v' =
                Array.mapi
                  (fun j vj -> simplex.(best).(j) +. (0.5 *. (vj -. simplex.(best).(j))))
                  v
              in
              simplex.(i) <- v';
              values.(i) <- f v'
            end)
          simplex
    end
  done;
  let idx = order () in
  (Array.copy simplex.(idx.(0)), values.(idx.(0)))

let maximize_nelder_mead ?tol ?max_iter ~f ~init ?step () =
  let x, v = nelder_mead ?tol ?max_iter ~f:(fun x -> -.f x) ~init ?step () in
  (x, -.v)
