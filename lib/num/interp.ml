type t = { xs : float array; ys : float array }

let of_points ~xs ~ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Interp.of_points: empty";
  if n <> Array.length ys then invalid_arg "Interp.of_points: length mismatch";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Interp.of_points: abscissae not strictly increasing"
  done;
  { xs = Array.copy xs; ys = Array.copy ys }

(* Index of the segment [xs.(i), xs.(i+1)] containing x (clamped). *)
let segment t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then Stdlib.max 0 (n - 2)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let n = Array.length t.xs in
  if n = 1 then t.ys.(0)
  else if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else
    let i = segment t x in
    let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
    let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))

let eval_array t xs = Array.map (eval t) xs

let derivative t x =
  let n = Array.length t.xs in
  if n < 2 || x < t.xs.(0) || x > t.xs.(n - 1) then 0.
  else
    let i = segment t x in
    (t.ys.(i + 1) -. t.ys.(i)) /. (t.xs.(i + 1) -. t.xs.(i))

let inverse_monotone t y =
  let n = Array.length t.ys in
  if n = 1 then (if t.ys.(0) = y then Some t.xs.(0) else None)
  else begin
    let increasing = t.ys.(n - 1) >= t.ys.(0) in
    let ylo = if increasing then t.ys.(0) else t.ys.(n - 1) in
    let yhi = if increasing then t.ys.(n - 1) else t.ys.(0) in
    if y < ylo || y > yhi then None
    else begin
      (* Scan for the first segment whose ordinate range covers y. *)
      let found = ref None in
      let i = ref 0 in
      while Option.is_none !found && !i < n - 1 do
        let y0 = t.ys.(!i) and y1 = t.ys.(!i + 1) in
        let lo = Float.min y0 y1 and hi = Float.max y0 y1 in
        if y >= lo && y <= hi then
          if Float.equal y1 y0 then found := Some t.xs.(!i)
          else
            found :=
              Some
                (t.xs.(!i)
                +. ((t.xs.(!i + 1) -. t.xs.(!i)) *. (y -. y0) /. (y1 -. y0)));
        incr i
      done;
      !found
    end
  end

let xs t = Array.copy t.xs
let ys t = Array.copy t.ys
