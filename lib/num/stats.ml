type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  (* Float.compare totally orders nan (first), so quantiles of data
     containing nan cannot depend on the input order. *)
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let min xs =
  if Array.length xs = 0 then invalid_arg "Stats.min: empty array";
  Array.fold_left Float.min xs.(0) xs

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty array";
  Array.fold_left Float.max xs.(0) xs

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  { n; mean = mean xs; std = std xs; min = min xs; max = max xs;
    median = median xs }

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least 2 samples";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0. || Float.equal !syy 0. then 0.
  else !sxy /. sqrt (!sxx *. !syy)

let weighted_mean ~values ~weights =
  let n = Array.length values in
  if n <> Array.length weights then
    invalid_arg "Stats.weighted_mean: length mismatch";
  let sw = ref 0. and swx = ref 0. in
  for i = 0 to n - 1 do
    if weights.(i) < 0. then
      invalid_arg "Stats.weighted_mean: negative weight";
    sw := !sw +. weights.(i);
    swx := !swx +. (weights.(i) *. values.(i))
  done;
  if !sw <= 0. then invalid_arg "Stats.weighted_mean: zero total weight";
  !swx /. !sw

let max_downward_gap ys =
  let n = Array.length ys in
  if n < 2 then 0.
  else begin
    let running_max = ref ys.(0) and gap = ref 0. in
    for i = 1 to n - 1 do
      gap := Float.max !gap (!running_max -. ys.(i));
      running_max := Float.max !running_max ys.(i)
    done;
    Float.max !gap 0.
  end
