let linspace a b n =
  if n <= 0 then invalid_arg "Grid.linspace: n <= 0"
  else if n = 1 then [| a |]
  else
    let step = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i ->
        if i = n - 1 then b else a +. (float_of_int i *. step))

let logspace a b n =
  if a <= 0. || b <= 0. then invalid_arg "Grid.logspace: bounds must be > 0";
  Array.map exp (linspace (log a) (log b) n)

let arange start stop step =
  if Float.equal step 0. then invalid_arg "Grid.arange: step = 0";
  let n =
    let raw = (stop -. start) /. step in
    if raw <= 0. then 0 else int_of_float (ceil (raw -. 1e-9))
  in
  Array.init n (fun i -> start +. (float_of_int i *. step))

let midpoints xs =
  let n = Array.length xs in
  if n < 2 then [||]
  else Array.init (n - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let index_of_nearest xs x =
  if Array.length xs = 0 then invalid_arg "Grid.index_of_nearest: empty";
  let best = ref 0 and best_d = ref (Float.abs (xs.(0) -. x)) in
  Array.iteri
    (fun i xi ->
      let d = Float.abs (xi -. x) in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    xs;
  !best
