type outcome = {
  root : float;
  value : float;
  iterations : int;
  converged : bool;
}

let default_tol = 1e-10
let default_max_iter = 200

exception No_bracket of string

let same_sign a b = (a > 0. && b > 0.) || (a < 0. && b < 0.)

let bisect ?(tol = default_tol) ?(max_iter = default_max_iter) ~f ~lo ~hi () =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Roots.bisect: non-finite bracket";
  let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
  let flo = f lo and fhi = f hi in
  if Float.equal flo 0. then
    { root = lo; value = 0.; iterations = 0; converged = true }
  else if Float.equal fhi 0. then
    { root = hi; value = 0.; iterations = 0; converged = true }
  else if same_sign flo fhi then
    raise
      (No_bracket
         (Printf.sprintf "Roots.bisect: f(%g)=%g and f(%g)=%g have same sign"
            lo flo hi fhi))
  else
    let rec loop lo flo hi n =
      let mid = 0.5 *. (lo +. hi) in
      let fmid = f mid in
      if Float.equal fmid 0. || hi -. lo <= tol then
        { root = mid; value = fmid; iterations = n; converged = true }
      else if n >= max_iter then
        { root = mid; value = fmid; iterations = n; converged = false }
      else if same_sign flo fmid then loop mid fmid hi (n + 1)
      else loop lo flo mid (n + 1)
    in
    loop lo flo hi 0

let brent ?(tol = default_tol) ?(max_iter = default_max_iter) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if Float.equal !fa 0. then
    { root = !a; value = 0.; iterations = 0; converged = true }
  else if Float.equal !fb 0. then
    { root = !b; value = 0.; iterations = 0; converged = true }
  else if same_sign !fa !fb then
    raise
      (No_bracket
         (Printf.sprintf "Roots.brent: f(%g)=%g and f(%g)=%g have same sign"
            !a !fa !b !fb))
  else begin
    (* Ensure |f(b)| <= |f(a)|: b is the best guess. *)
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref None in
    let n = ref 0 in
    while Option.is_none !result && !n < max_iter do
      incr n;
      if same_sign !fb !fc then begin
        c := !a;
        fc := !fa;
        d := !b -. !a;
        e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b;
        b := !c;
        c := !a;
        fa := !fb;
        fb := !fc;
        fc := !fa
      end;
      let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || Float.equal !fb 0. then
        result := Some { root = !b; value = !fb; iterations = !n; converged = true }
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          (* Attempt inverse quadratic interpolation / secant. *)
          let s = !fb /. !fa in
          let p, q =
            if Float.equal !a !c then
              let p = 2. *. xm *. s in
              let q = 1. -. s in
              (p, q)
            else
              let q = !fa /. !fc in
              let r = !fb /. !fc in
              let p =
                s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.)))
              in
              let q = (q -. 1.) *. (r -. 1.) *. (s -. 1.) in
              (p, q)
          in
          let p, q = if p > 0. then (p, -.q) else (-.p, q) in
          let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2. *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := !d
          end
        end
        else begin
          d := xm;
          e := !d
        end;
        a := !b;
        fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. Float.copy_sign tol1 xm;
        fb := f !b
      end
    done;
    match !result with
    | Some r -> r
    | None -> { root = !b; value = !fb; iterations = !n; converged = false }
  end

let secant ?(tol = default_tol) ?(max_iter = default_max_iter) ~f ~x0 ~x1 () =
  let rec loop x0 f0 x1 f1 n =
    if Float.abs f1 <= tol || Float.abs (x1 -. x0) <= tol then
      { root = x1; value = f1; iterations = n; converged = true }
    else if n >= max_iter || Float.equal f1 f0 || not (Float.is_finite x1)
    then
      { root = x1; value = f1; iterations = n; converged = false }
    else
      let x2 = x1 -. (f1 *. (x1 -. x0) /. (f1 -. f0)) in
      loop x1 f1 x2 (f x2) (n + 1)
  in
  loop x0 (f x0) x1 (f x1) 0

let expand_bracket ?(factor = 1.6) ?(max_expand = 60) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Roots.expand_bracket: lo >= hi";
  let rec loop lo hi flo fhi n =
    if not (same_sign flo fhi) then (lo, hi)
    else if n >= max_expand then
      raise (No_bracket "Roots.expand_bracket: no sign change found")
    else
      let w = (hi -. lo) *. (factor -. 1.) in
      if Float.abs flo < Float.abs fhi then
        let lo' = lo -. w in
        loop lo' hi (f lo') fhi (n + 1)
      else
        let hi' = hi +. w in
        loop lo hi' flo (f hi') (n + 1)
  in
  loop lo hi (f lo) (f hi) 0

let find_monotone_level ?(tol = default_tol) ?(max_iter = default_max_iter) ~f
    ~level ~lo ~hi () =
  let g x = f x -. level in
  let glo = g lo and ghi = g hi in
  if glo >= 0. then { root = lo; value = glo; iterations = 0; converged = true }
  else if ghi <= 0. then
    { root = hi; value = ghi; iterations = 0; converged = true }
  else bisect ~tol ~max_iter ~f:g ~lo ~hi ()
