let escape_cell s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row_to_string row =
  String.concat "," (Array.to_list (Array.map escape_cell row))

let to_string ~headers ~rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row_to_string headers);
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      if Array.length row <> Array.length headers then
        invalid_arg "Csv.to_string: ragged row";
      Buffer.add_string buf (row_to_string row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let of_series ~x_header series =
  match series with
  | [] -> invalid_arg "Csv.of_series: no series"
  | first :: _ ->
      let n = Series.length first in
      List.iter
        (fun s ->
          if Series.length s <> n then
            invalid_arg "Csv.of_series: series length mismatch")
        series;
      let headers = Array.of_list (x_header :: List.map Series.label series) in
      let xs = Series.xs first in
      let columns = List.map Series.ys series in
      let rows =
        Array.init n (fun i ->
            Array.of_list
              (Printf.sprintf "%.17g" xs.(i)
              :: List.map (fun ys -> Printf.sprintf "%.17g" ys.(i)) columns))
      in
      to_string ~headers ~rows

let write_file ~path content = Writer.write_atomic ~path content
