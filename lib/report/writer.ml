(* The only module allowed to open files for writing (polint R6): every
   result write funnels through [write_atomic]'s temp-file + rename, so
   an interrupted run can never leave a truncated file behind. *)

let io_fail ?context ~path reason =
  Po_guard.Po_error.fail ?context (Po_guard.Po_error.Io_failure { path; reason })

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      io_fail ~path:dir "exists and is not a directory"
  end
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error msg ->
      (* A concurrent creator racing us to this component is fine. *)
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        io_fail ~path:dir msg
  end

(* Push a channel's flushed bytes to stable storage.  [flush] only moves
   them to the OS page cache; without the fsync a power loss after the
   rename could surface the {e new} name with {e old or no} data. *)
let fsync_out ~path oc =
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error (e, _, _) -> io_fail ~path (Unix.error_message e)

(* Make a completed rename durable: the directory entry itself lives in
   the parent directory's data.  Filesystems that refuse to fsync a
   directory handle (EINVAL) already order metadata themselves. *)
let fsync_dir dir =
  let dir = if dir = "" then "." else dir in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) -> io_fail ~path:dir (Unix.error_message e)
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          try Unix.fsync fd
          with Unix.Unix_error (Unix.EINVAL, _, _) -> ())

let write_atomic ~path content =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc content;
         flush oc;
         fsync_out ~path:tmp oc)
   with Sys_error msg -> io_fail ~path:tmp msg);
  (* The armed write fault fires in the crash window: temp written and
     synced, target not yet replaced — the reader-visible state must be
     "old content or nothing". *)
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Write ~key:0 then
    io_fail
      ~context:[ ("injected", "write") ]
      ~path "injected write failure before rename";
  (try Sys.rename tmp path with Sys_error msg -> io_fail ~path msg);
  fsync_dir (Filename.dirname path)

let append_line ~path line =
  mkdir_p (Filename.dirname path);
  try
    let oc =
      open_out_gen
        [ Open_append; Open_creat; Open_wronly; Open_binary ]
        0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc;
        fsync_out ~path oc)
  with Sys_error msg -> io_fail ~path msg

let remove_if_exists path =
  if Sys.file_exists path then
    try Sys.remove path with Sys_error msg -> io_fail ~path msg
