(** Crash-safe filesystem writes (DESIGN.md §10).

    Every result file in the repository goes through this module
    (enforced by polint rule R6): a reader can therefore assume that any
    file it finds is complete — an interrupted run leaves either the old
    content or nothing, never a truncated file.

    Failures surface as [Po_guard.Po_error.Error] with kind
    [Io_failure]; the armed fault site [write@k]
    ({!Po_guard.Faultinject}) makes the [k]-th {!write_atomic} fail
    between the temp write and the rename, which is exactly the window a
    crash would hit. *)

val mkdir_p : string -> unit
(** Create a directory and any missing ancestors ([mkdir -p]).  Racing
    creators are fine; a path component that exists as a non-directory
    raises [Io_failure]. *)

val write_atomic : path:string -> string -> unit
(** Write [content] to [path] whole-or-not-at-all: parents are created,
    the content goes to [path ^ ".tmp"], is flushed {e and fsynced}, and
    is renamed over [path] (atomic within a filesystem); the parent
    directory is fsynced after the rename so the new entry survives a
    power loss.  A crash at any point leaves [path] untouched or
    complete, never truncated — even across an OS crash, not just a
    process one. *)

val append_line : path:string -> string -> unit
(** Append [line ^ "\n"] to [path] (created if missing, parents too),
    flush and fsync before closing — the journal primitive.  Appends are
    not atomic across processes; callers serialise concurrent appenders
    (the checkpoint journal holds a mutex).  A torn final line from a
    crash is detected by the journal's per-line length/checksum prefix
    and truncated away on load. *)

val remove_if_exists : string -> unit
(** Delete a file, ignoring only "it was not there". *)
