let markers = [| '*'; '+'; 'o'; '#'; '@'; 'x'; '%'; '&' |]

let finite_fold f init arr =
  Array.fold_left (fun acc v -> if Float.is_finite v then f acc v else acc) init arr

let render ?(width = 72) ?(height = 20) ?title series =
  if width < 8 || height < 4 then invalid_arg "Asciiplot.render: too small";
  if List.is_empty series then invalid_arg "Asciiplot.render: no series";
  let xmin =
    List.fold_left (fun acc s -> finite_fold Float.min acc (Series.xs s))
      Float.infinity series
  in
  let xmax =
    List.fold_left (fun acc s -> finite_fold Float.max acc (Series.xs s))
      Float.neg_infinity series
  in
  let ymin =
    List.fold_left (fun acc s -> finite_fold Float.min acc (Series.ys s))
      Float.infinity series
  in
  let ymax =
    List.fold_left (fun acc s -> finite_fold Float.max acc (Series.ys s))
      Float.neg_infinity series
  in
  let xspan = if xmax > xmin then xmax -. xmin else 1. in
  let yspan = if ymax > ymin then ymax -. ymin else 1. in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun k s ->
      let marker = markers.(k mod Array.length markers) in
      let xs = Series.xs s and ys = Series.ys s in
      Array.iteri
        (fun i x ->
          let y = ys.(i) in
          if Float.is_finite x && Float.is_finite y then begin
            let col =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float
                  ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            if col >= 0 && col < width && row >= 0 && row < height then
              grid.(row).(col) <- marker
          end)
        xs)
    series;
  let buf = Buffer.create ((width + 8) * (height + 4)) in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "%.4g\n" ymax);
  Array.iter
    (fun row ->
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%.4g%s%.4g  (y: %.4g .. %.4g)\n" xmin
       (String.make (max 1 (width - 24)) ' ')
       xmax ymin ymax);
  List.iteri
    (fun k s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n"
           markers.(k mod Array.length markers)
           (Series.label s)))
    series;
  Buffer.contents buf
