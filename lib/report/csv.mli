(** Minimal CSV output for the figure series (RFC 4180-style quoting). *)

val escape_cell : string -> string
(** Quote a cell when it contains a comma, quote or newline. *)

val to_string : headers:string array -> rows:string array array -> string

val of_series : x_header:string -> Series.t list -> string
(** Same column layout as {!Table.of_series}, full float precision. *)

val write_file : path:string -> string -> unit
(** Write content to [path] through {!Writer.write_atomic}: parent
    directories are created recursively and the content lands via
    temp-file + rename, so an interrupted run never leaves a truncated
    CSV. *)
