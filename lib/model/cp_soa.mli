(** Structure-of-arrays CP population (DESIGN.md §12).

    The record representation ({!Cp.t} arrays) boxes every CP behind a
    pointer and a demand closure; at the million-CP tier that layout is
    the bottleneck — cache-hostile traversals and a closure call per
    demand evaluation.  This module stores a population as five unboxed
    [float array] columns ([alpha], [theta_hat], [beta], [v], [phi]),
    with the array index serving as the CP's identity, and restricts
    demands to the exponential family [d(omega) = exp (-beta (1/omega -
    1))] that every ensemble in the paper draws from.

    {b Equivalence invariant.}  Every evaluation here replicates the
    record path's float operations in the same order, so for any
    population representable both ways the SoA solvers and the record
    solvers are bit-identical; [test/test_soa.ml] enforces this
    differentially.  {!of_cps} / {!to_cps} convert losslessly (records
    with non-exponential demands are rejected). *)

type t
(** An immutable SoA population.  Treat the columns as frozen: the
    accessors never copy, and solver contexts alias them. *)

val make :
  alpha:float array -> theta_hat:float array -> beta:float array ->
  v:float array -> phi:float array -> t
(** Build a population from equal-length columns.  Validates the same
    domains as {!Cp.make} ([alpha] in (0, 1], [theta_hat > 0], [beta >=
    0], [v >= 0], [phi >= 0]); the columns are adopted, not copied. *)

val length : t -> int

val alpha : t -> int -> float
val theta_hat : t -> int -> float
val beta : t -> int -> float
val v : t -> int -> float
val phi : t -> int -> float

val of_cps : Cp.t array -> t
(** Columnise a record population.  [Invalid_argument] if any CP's
    demand is outside the exponential family (its [Demand.beta] is
    [None]); record ids are dropped — the SoA identity is the index. *)

val to_cps : t -> Cp.t array
(** Materialise records (with [id = index]).  Intended for small-n
    differential tests and interop, not for the large-n hot path. *)

val get : t -> int -> Cp.t
(** The single CP at an index, as a record. *)

val gather : t -> int array -> t
(** [gather t indices] is the sub-population whose position [s] is CP
    [indices.(s)] of [t] — the SoA analogue of
    [Partition.ordinary_members]; O(|indices|), no re-validation. *)

val concat : t array -> t
(** Concatenate populations in array order (chunk assembly of the
    streaming generators); O(total size), no re-validation. *)

val append_one : t -> t -> int -> t
(** [append_one members src i] extends [members] with CP [i] of [src] in
    the last position — the SoA analogue of
    [Array.append members [| cp |]] in ex-post deviation solves. *)

val demand_curve : beta:float -> float -> float
(** The exponential-family curve [d(omega) = exp (-beta (1/omega - 1))]
    on a throughput ratio, clamped into [0, 1] — {!Demand.exponential}'s
    arithmetic inlined (bit-identical, no closure); the solver's hot
    loop evaluates this directly from the [beta] column. *)

val demand_at : t -> int -> float -> float
(** [demand_at t i theta]: demand of CP [i] at throughput [theta]
    (clamped into [0, theta_hat]); bit-identical to {!Cp.demand_at}. *)

val rho : t -> int -> theta:float -> float
(** Per-user per-capita throughput [d_i(theta) * theta]. *)

val lambda_per_capita : t -> int -> theta:float -> float
(** [alpha_i * rho_i(theta)]. *)

val lambda_hat_per_capita : t -> int -> float
(** [alpha_i * theta_hat_i]. *)

val saturation_nu : t -> float
(** [sum_i alpha_i theta_hat_i], accumulated in index order —
    bit-identical to [Ensemble.saturation_nu] on the record form. *)

val total_value : t -> float
(** [sum_i phi_i alpha_i theta_hat_i], accumulated in index order. *)
