type t = { name : string; f : float -> float; beta : float option }

let name t = t.name
let beta t = t.beta

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let eval t omega = t.f (clamp01 omega)

let eval_throughput t ~theta_hat theta =
  if theta_hat <= 0. then invalid_arg "Demand.eval_throughput: theta_hat <= 0";
  eval t (theta /. theta_hat)

let exponential ~beta =
  if beta < 0. then invalid_arg "Demand.exponential: beta < 0";
  let f omega =
    if omega <= 0. then if Float.equal beta 0. then 1. else 0.
    else
      let exponent = -.beta *. ((1. /. omega) -. 1.) in
      (* exp of a large negative argument is both negligible (< 1e-26) and
         slow to evaluate once it reaches the denormal range; cut it off. *)
      if exponent < -60. then 0. else exp exponent
  in
  { name = Printf.sprintf "exp(beta=%g)" beta; f; beta = Some beta }

let inelastic =
  { name = "inelastic"; f = (fun omega -> if omega > 0. then 1. else 0.);
    beta = None }

let linear = { name = "linear"; f = (fun omega -> omega); beta = None }

let power ~gamma =
  if gamma < 0. then invalid_arg "Demand.power: gamma < 0";
  { name = Printf.sprintf "power(gamma=%g)" gamma;
    f = (fun omega -> omega ** gamma); beta = None }

let affine_floor ~floor =
  if floor < 0. || floor > 1. then
    invalid_arg "Demand.affine_floor: floor outside [0,1]";
  { name = Printf.sprintf "affine_floor(%g)" floor;
    f =
      (fun omega ->
        if omega <= 0. then 0. else floor +. ((1. -. floor) *. omega));
    beta = None }

let step ~threshold =
  if threshold < 0. || threshold > 1. then
    invalid_arg "Demand.step: threshold outside [0,1]";
  { name = Printf.sprintf "step(%g)" threshold;
    f = (fun omega -> if omega >= threshold then 1. else 0.); beta = None }

let of_fun ~name f = { name; f = (fun omega -> f (clamp01 omega)); beta = None }

let check_assumption1 ?(samples = 400) t =
  if samples < 3 then invalid_arg "Demand.check_assumption1: samples < 3";
  let err fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt in
  let n = samples in
  let omega i = float_of_int i /. float_of_int (n - 1) in
  let values = Array.init n (fun i -> eval t (omega i)) in
  let rec scan i =
    if i >= n then Ok ()
    else if not (Float.is_finite values.(i)) then
      err "non-finite demand at omega=%g" (omega i)
    else if values.(i) < 0. then err "negative demand at omega=%g" (omega i)
    else if i > 0 && values.(i) < values.(i - 1) -. 1e-12 then
      err "demand decreases between omega=%g and omega=%g" (omega (i - 1))
        (omega i)
    else if i > 1 && values.(i) -. values.(i - 1) > 0.25 then
      (* Over a 1/(n-1)-wide step, a continuous monotone function bounded by
         1 cannot jump by a macroscopic amount once n is large.  The first
         step (away from omega = 0) is exempt: the value at exactly zero
         throughput never matters, since lambda = d * theta vanishes there
         regardless. *)
      err "suspected discontinuity near omega=%g (jump %.3f)" (omega i)
        (values.(i) -. values.(i - 1))
    else scan (i + 1)
  in
  match scan 0 with
  | Error _ as e -> e
  | Ok () ->
      if Float.abs (values.(n - 1) -. 1.) > 1e-9 then
        err "d(1) = %g, expected 1" values.(n - 1)
      else Ok ()
