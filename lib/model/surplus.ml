let check_aligned cps (sol : Equilibrium.solution) =
  if Array.length cps <> Array.length sol.Equilibrium.theta then
    invalid_arg "Surplus: solution does not match CP array"

let consumer cps sol =
  check_aligned cps sol;
  let acc = ref 0. in
  Array.iteri
    (fun i (cp : Cp.t) ->
      acc := !acc +. (cp.Cp.phi *. cp.Cp.alpha *. sol.Equilibrium.rho.(i)))
    cps;
  !acc

let consumer_soa soa sol =
  let n = Cp_soa.length soa in
  if n <> Array.length sol.Equilibrium.theta then
    invalid_arg "Surplus: solution does not match CP array";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc :=
      !acc
      +. (Cp_soa.phi soa i *. Cp_soa.alpha soa i *. sol.Equilibrium.rho.(i))
  done;
  !acc

let consumer_at ?(mechanism = Maxmin.mechanism) ~nu cps =
  consumer cps (mechanism.Alloc.solve ~nu cps)

let isp ~c cps sol =
  if c < 0. then invalid_arg "Surplus.isp: c < 0";
  check_aligned cps sol;
  let acc = ref 0. in
  Array.iteri
    (fun i (cp : Cp.t) ->
      acc := !acc +. (cp.Cp.alpha *. sol.Equilibrium.rho.(i)))
    cps;
  c *. !acc

let cp_utilities ~c cps sol =
  if c < 0. then invalid_arg "Surplus.cp_utilities: c < 0";
  check_aligned cps sol;
  Array.mapi
    (fun i (cp : Cp.t) ->
      (cp.Cp.v -. c) *. cp.Cp.alpha *. sol.Equilibrium.rho.(i))
    cps

let utilization ~nu sol =
  if nu < 0. then invalid_arg "Surplus.utilization: nu < 0";
  if Float.equal nu 0. then 1.
  else Float.min 1. (Float.max 0. (sol.Equilibrium.per_capita_rate /. nu))

let aggregate_rate cps sol =
  check_aligned cps sol;
  let acc = ref 0. in
  Array.iteri
    (fun i (cp : Cp.t) ->
      acc := !acc +. (cp.Cp.alpha *. sol.Equilibrium.rho.(i)))
    cps;
  !acc
