let validate_order n order =
  if Array.length order <> n then
    invalid_arg "Priority: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Priority: order index out of range";
      if seen.(i) then invalid_arg "Priority: duplicate order index";
      seen.(i) <- true)
    order

(* Throughput that makes CP's per-capita contribution equal [budget]. *)
let throttle (cp : Cp.t) budget =
  let contribution theta = Cp.lambda_per_capita cp ~theta in
  if contribution cp.Cp.theta_hat <= budget then cp.Cp.theta_hat
  else
    let outcome =
      Po_num.Roots.find_monotone_level ~tol:1e-12 ~f:contribution
        ~level:budget ~lo:0. ~hi:cp.Cp.theta_hat ()
    in
    outcome.Po_num.Roots.root

let solve ?order ~nu cps =
  if nu < 0. then invalid_arg "Priority.solve: nu < 0";
  let n = Array.length cps in
  if n = 0 then Equilibrium.empty
  else begin
    let order =
      match order with
      | Some o ->
          validate_order n o;
          o
      | None -> Array.init n (fun i -> i)
    in
    let theta = Array.make n 0. in
    let remaining = ref nu in
    let marginal_cap = ref Float.infinity in
    Array.iter
      (fun i ->
        let cp = cps.(i) in
        let full = Cp.lambda_hat_per_capita cp in
        if full <= !remaining then begin
          theta.(i) <- cp.Cp.theta_hat;
          remaining := !remaining -. full
        end
        else begin
          let th = throttle cp !remaining in
          theta.(i) <- th;
          if !remaining > 0. && Float.equal !marginal_cap Float.infinity then
            marginal_cap := th;
          remaining := 0.
        end)
      order;
    let demand = Array.init n (fun i -> Cp.demand_at cps.(i) theta.(i)) in
    let rho = Array.init n (fun i -> demand.(i) *. theta.(i)) in
    let per_capita_rate =
      let acc = ref 0. in
      Array.iteri (fun i cp -> acc := !acc +. (cp.Cp.alpha *. rho.(i))) cps;
      !acc
    in
    let unconstrained =
      Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
    in
    { Equilibrium.theta; demand; rho; per_capita_rate;
      congested = nu < unconstrained;
      cap = (if nu < unconstrained then !marginal_cap else Float.infinity) }
  end

let mechanism ?order () =
  { Alloc.name = "strict-priority";
    solve = (fun ~nu cps -> solve ?order ~nu cps) }
