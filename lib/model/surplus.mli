(** Welfare accounting (Sec. II-C, III-A).

    Per-capita consumer surplus (Eq. 2):
    [Phi = sum_i phi_i alpha_i d_i(theta_i) theta_i];
    per-capita ISP surplus from a charged class:
    [Psi = c * sum_{i in P} alpha_i d_i(theta_i) theta_i]. *)

val consumer : Cp.t array -> Equilibrium.solution -> float
(** [Phi] of a (sub)system and its rate equilibrium.  Arrays must be
    positionally aligned. *)

val consumer_soa : Cp_soa.t -> Equilibrium.solution -> float
(** {!consumer} over a structure-of-arrays population (same index-order
    accumulation, hence bit-identical to the record form on equal
    populations); pairs with {!Equilibrium.solve_soa}. *)

val consumer_at : ?mechanism:Alloc.t -> nu:float -> Cp.t array -> float
(** Solve the system (default: max-min) then evaluate [consumer]. *)

val isp : c:float -> Cp.t array -> Equilibrium.solution -> float
(** [Psi] collected at price [c >= 0] from the given (premium) subsystem. *)

val cp_utilities : c:float -> Cp.t array -> Equilibrium.solution -> float array
(** Per-CP utility [ (v_i - c) * alpha_i * rho_i ] for members of a class
    charged at [c] (Eq. 4; pass [c = 0.] for the ordinary class).  The
    factor [M] is omitted throughout, consistent with per-capita
    accounting. *)

val utilization : nu:float -> Equilibrium.solution -> float
(** Fraction of capacity carried: [per_capita_rate / nu] clamped to
    [[0, 1]]; defined as [1.] when [nu = 0]. *)

val aggregate_rate : Cp.t array -> Equilibrium.solution -> float
(** Per-capita aggregate throughput [sum alpha_i rho_i] (sanity mirror of
    [solution.per_capita_rate], recomputed from the profile). *)
