(* Structure-of-arrays CP population (DESIGN.md §12).

   One float column per attribute, all demands drawn from the
   exponential family d(omega) = exp (-beta (1/omega - 1)) parameterised
   by the [beta] column — the family every ensemble in the paper uses.
   Index [i] of every column describes the same CP, and the index
   doubles as the CP's identity (the record representation's [id]).

   The demand arithmetic below replicates {!Demand.exponential} and
   {!Cp.demand_at} operation for operation, so a column evaluation is
   bit-identical to the boxed-record path; test/test_soa.ml pins it. *)

type t = {
  n : int;
  alpha : float array;
  theta_hat : float array;
  beta : float array;
  v : float array;
  phi : float array;
}

let length t = t.n

let make ~alpha ~theta_hat ~beta ~v ~phi =
  let n = Array.length alpha in
  if
    Array.length theta_hat <> n || Array.length beta <> n
    || Array.length v <> n || Array.length phi <> n
  then invalid_arg "Cp_soa.make: column length mismatch";
  for i = 0 to n - 1 do
    if not (alpha.(i) > 0. && alpha.(i) <= 1.) then
      invalid_arg "Cp_soa.make: alpha outside (0, 1]";
    if theta_hat.(i) <= 0. then invalid_arg "Cp_soa.make: theta_hat <= 0";
    if beta.(i) < 0. then invalid_arg "Cp_soa.make: beta < 0";
    if v.(i) < 0. then invalid_arg "Cp_soa.make: v < 0";
    if phi.(i) < 0. then invalid_arg "Cp_soa.make: phi < 0"
  done;
  { n; alpha; theta_hat; beta; v; phi }

let alpha t i = t.alpha.(i)
let theta_hat t i = t.theta_hat.(i)
let beta t i = t.beta.(i)
let v t i = t.v.(i)
let phi t i = t.phi.(i)

(* ------------------------------------------------------------------ *)
(* Record interop                                                     *)
(* ------------------------------------------------------------------ *)

let of_cps cps =
  let n = Array.length cps in
  let col f = Array.init n (fun i -> f cps.(i)) in
  let beta =
    Array.init n (fun i ->
        match Demand.beta cps.(i).Cp.demand with
        | Some b -> b
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Cp_soa.of_cps: CP %d has non-exponential demand %s" i
                 (Demand.name cps.(i).Cp.demand)))
  in
  make
    ~alpha:(col (fun cp -> cp.Cp.alpha))
    ~theta_hat:(col (fun cp -> cp.Cp.theta_hat))
    ~beta
    ~v:(col (fun cp -> cp.Cp.v))
    ~phi:(col (fun cp -> cp.Cp.phi))

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Cp_soa.get: index out of bounds";
  Cp.make ~id:i ~alpha:t.alpha.(i) ~theta_hat:t.theta_hat.(i)
    ~demand:(Demand.exponential ~beta:t.beta.(i))
    ~v:t.v.(i) ~phi:t.phi.(i) ()

let to_cps t = Array.init t.n (get t)

let concat parts =
  let n = Array.fold_left (fun acc p -> acc + p.n) 0 parts in
  let col f =
    let out = Array.make n 0. in
    let off = ref 0 in
    Array.iter
      (fun p ->
        Array.blit (f p) 0 out !off p.n;
        off := !off + p.n)
      parts;
    out
  in
  (* Parts were validated at construction. *)
  { n;
    alpha = col (fun p -> p.alpha);
    theta_hat = col (fun p -> p.theta_hat);
    beta = col (fun p -> p.beta);
    v = col (fun p -> p.v);
    phi = col (fun p -> p.phi) }

let append_one t src i =
  let col c s = Array.append c [| s.(i) |] in
  (* Both inputs were validated at construction. *)
  { n = t.n + 1; alpha = col t.alpha src.alpha;
    theta_hat = col t.theta_hat src.theta_hat; beta = col t.beta src.beta;
    v = col t.v src.v; phi = col t.phi src.phi }

let gather t indices =
  let m = Array.length indices in
  let col c = Array.init m (fun s -> c.(indices.(s))) in
  (* Columns were validated at construction; gathering cannot invalidate
     them, so skip the O(m) re-checks of [make]. *)
  { n = m; alpha = col t.alpha; theta_hat = col t.theta_hat;
    beta = col t.beta; v = col t.v; phi = col t.phi }

(* ------------------------------------------------------------------ *)
(* Demand evaluation (bit-identical to the record path)               *)
(* ------------------------------------------------------------------ *)

(* [Demand.exponential]'s curve, inlined: the operation sequence —
   clamp, reciprocal, cutoff, [exp] — is exactly the closure's, so the
   result bits match the record path on every input. *)
let demand_curve ~beta omega =
  let omega = if omega < 0. then 0. else if omega > 1. then 1. else omega in
  if omega <= 0. then if Float.equal beta 0. then 1. else 0.
  else begin
    let exponent = -.beta *. ((1. /. omega) -. 1.) in
    if exponent < -60. then 0. else exp exponent
  end

(* [Cp.cap_theta]: clamp a throughput into [0, theta_hat]. *)
let cap_theta t i theta =
  Float.min (Float.max theta 0.) t.theta_hat.(i)

let demand_at t i theta =
  demand_curve ~beta:t.beta.(i) (cap_theta t i theta /. t.theta_hat.(i))

let rho t i ~theta =
  let theta = cap_theta t i theta in
  demand_at t i theta *. theta

let lambda_per_capita t i ~theta = t.alpha.(i) *. rho t i ~theta
let lambda_hat_per_capita t i = t.alpha.(i) *. t.theta_hat.(i)

(* ------------------------------------------------------------------ *)
(* Population aggregates                                              *)
(* ------------------------------------------------------------------ *)

let saturation_nu t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    acc := !acc +. (t.alpha.(i) *. t.theta_hat.(i))
  done;
  !acc

let total_value t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    acc := !acc +. (t.phi.(i) *. t.alpha.(i) *. t.theta_hat.(i))
  done;
  !acc
