type t = {
  name : string;
  solve : nu:float -> Cp.t array -> Equilibrium.solution;
}

let solve_absolute t ~m ~mu cps =
  if m <= 0. then invalid_arg "Alloc.solve_absolute: m <= 0";
  if mu < 0. then invalid_arg "Alloc.solve_absolute: mu < 0";
  t.solve ~nu:(mu /. m) cps

let errf t fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt

let check_axiom1 ?(tol = 1e-9) t ~nu cps =
  let sol = t.solve ~nu cps in
  let violation = ref None in
  Array.iteri
    (fun i (cp : Cp.t) ->
      if
        Option.is_none !violation
        && sol.Equilibrium.theta.(i) > cp.Cp.theta_hat +. tol
      then violation := Some (i, sol.Equilibrium.theta.(i), cp.Cp.theta_hat))
    cps;
  match !violation with
  | None -> Ok ()
  | Some (i, theta, theta_hat) ->
      errf t "axiom 1 violated at nu=%g: theta_%d=%g > theta_hat=%g" nu i
        theta theta_hat

let check_axiom2 ?(tol = 1e-6) t ~nu cps =
  let sol = t.solve ~nu cps in
  let unconstrained =
    Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
  in
  let expected = Float.min nu unconstrained in
  let scale = Float.max expected 1. in
  if Float.abs (sol.Equilibrium.per_capita_rate -. expected) > tol *. scale
  then
    errf t "axiom 2 violated at nu=%g: aggregate=%g expected=%g" nu
      sol.Equilibrium.per_capita_rate expected
  else Ok ()

let check_axiom3 ?(tol = 1e-9) t ~nus cps =
  let n = Array.length nus in
  let rec scan i prev =
    if i >= n then Ok ()
    else begin
      let sol = t.solve ~nu:nus.(i) cps in
      match prev with
      | None -> scan (i + 1) (Some sol)
      | Some prev_sol ->
          if nus.(i) < nus.(i - 1) then
            invalid_arg "Alloc.check_axiom3: capacities must be increasing";
          let bad = ref None in
          Array.iteri
            (fun j th ->
              if
                Option.is_none !bad
                && th < prev_sol.Equilibrium.theta.(j) -. tol
              then bad := Some (j, prev_sol.Equilibrium.theta.(j), th))
            sol.Equilibrium.theta;
          (match !bad with
          | Some (j, before, after) ->
              errf t
                "axiom 3 violated: theta_%d drops from %g to %g as nu rises \
                 %g -> %g"
                j before after nus.(i - 1) nus.(i)
          | None -> scan (i + 1) (Some sol))
    end
  in
  scan 0 None

let check_axiom4 ?(tol = 1e-9) t ~m ~mu ~scales cps =
  let reference = solve_absolute t ~m ~mu cps in
  let rec scan i =
    if i >= Array.length scales then Ok ()
    else begin
      let xi = scales.(i) in
      if xi <= 0. then invalid_arg "Alloc.check_axiom4: scale <= 0";
      let scaled = solve_absolute t ~m:(xi *. m) ~mu:(xi *. mu) cps in
      let bad = ref None in
      Array.iteri
        (fun j th ->
          if
            Option.is_none !bad
            && Float.abs (th -. reference.Equilibrium.theta.(j)) > tol
          then bad := Some (j, reference.Equilibrium.theta.(j), th))
        scaled.Equilibrium.theta;
      match !bad with
      | Some (j, base, other) ->
          errf t "axiom 4 violated at scale %g: theta_%d %g <> %g" xi j base
            other
      | None -> scan (i + 1)
    end
  in
  scan 0

let check_all ?tol t ~nus cps =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let rec per_point i =
    if i >= Array.length nus then Ok ()
    else
      let* () = check_axiom1 ?tol t ~nu:nus.(i) cps in
      let* () = check_axiom2 ?tol:None t ~nu:nus.(i) cps in
      per_point (i + 1)
  in
  let* () = per_point 0 in
  let* () = check_axiom3 ?tol t ~nus cps in
  if Array.length nus = 0 then Ok ()
  else
    let median = nus.(Array.length nus / 2) in
    check_axiom4 ?tol t ~m:1000. ~mu:(median *. 1000.)
      ~scales:[| 0.1; 0.5; 2.; 10. |] cps
