let effective_weights ~alpha weights =
  if alpha <= 0. then invalid_arg "Alphafair.effective_weights: alpha <= 0";
  Array.map
    (fun w ->
      if w <= 0. then invalid_arg "Alphafair.effective_weights: weight <= 0";
      if Float.equal alpha Float.infinity then 1. else w ** (1. /. alpha))
    weights

let solve ?weights ~alpha ~nu cps =
  let weights =
    match weights with
    | None -> None
    | Some w -> Some (effective_weights ~alpha w)
  in
  Equilibrium.solve ?weights ~nu cps

let mechanism ?weights ~alpha () =
  let name =
    if Float.equal alpha Float.infinity then "alpha-fair(max-min)"
    else Printf.sprintf "alpha-fair(%g)" alpha
  in
  { Alloc.name; solve = (fun ~nu cps -> solve ?weights ~alpha ~nu cps) }
