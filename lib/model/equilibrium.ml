type solution = {
  theta : float array;
  demand : float array;
  rho : float array;
  per_capita_rate : float;
  congested : bool;
  cap : float;
}

let empty =
  { theta = [||]; demand = [||]; rho = [||]; per_capita_rate = 0.;
    congested = false; cap = Float.infinity }

let unit_weights n = Array.make n 1.

let check_weights_n n weights =
  if Array.length weights <> n then
    invalid_arg "Equilibrium: weights length mismatch";
  Array.iter
    (fun w -> if w <= 0. then invalid_arg "Equilibrium: weight <= 0")
    weights

let check_weights cps weights = check_weights_n (Array.length cps) weights

(* Observability counters (DESIGN.md §11).  All are incremented once
   per logical solve/decision, independent of which domain runs the
   solve, so snapshots are jobs-invariant; disarmed they cost one
   atomic load each. *)
let m_solves = Po_obs.Metrics.counter "equilibrium.solves"

let m_iterations = Po_obs.Metrics.counter "equilibrium.iterations"

let m_uncongested = Po_obs.Metrics.counter "equilibrium.uncongested"

let m_hint_used = Po_obs.Metrics.counter "equilibrium.bracket_hint_used"

let m_hint_discarded = Po_obs.Metrics.counter "equilibrium.bracket_hint_discarded"

let theta_at_cap (cp : Cp.t) w cap =
  if Float.equal cap Float.infinity then cp.Cp.theta_hat
  else Float.min cp.Cp.theta_hat (w *. cap)

let theta_at_cap_col th w cap =
  if Float.equal cap Float.infinity then th else Float.min th (w *. cap)

let aggregate_at_cap ?weights ~cap cps =
  let weights =
    match weights with
    | Some w ->
        check_weights cps w;
        w
    | None -> unit_weights (Array.length cps)
  in
  let acc = ref 0. in
  Array.iteri
    (fun i cp ->
      let theta = theta_at_cap cp weights.(i) cap in
      acc := !acc +. Cp.lambda_per_capita cp ~theta)
    cps;
  !acc

let of_cap cps weights ~congested cap =
  let n = Array.length cps in
  let theta = Array.init n (fun i -> theta_at_cap cps.(i) weights.(i) cap) in
  let demand = Array.init n (fun i -> Cp.demand_at cps.(i) theta.(i)) in
  let rho = Array.init n (fun i -> demand.(i) *. theta.(i)) in
  let per_capita_rate =
    let acc = ref 0. in
    Array.iteri (fun i cp -> acc := !acc +. (cp.Cp.alpha *. rho.(i))) cps;
    !acc
  in
  { theta; demand; rho; per_capita_rate; congested; cap }

let of_cap_soa soa weights ~congested cap =
  let n = Cp_soa.length soa in
  let theta =
    Array.init n (fun i ->
        theta_at_cap_col (Cp_soa.theta_hat soa i) weights.(i) cap)
  in
  let demand = Array.init n (fun i -> Cp_soa.demand_at soa i theta.(i)) in
  let rho = Array.init n (fun i -> demand.(i) *. theta.(i)) in
  let per_capita_rate =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (Cp_soa.alpha soa i *. rho.(i))
    done;
    !acc
  in
  { theta; demand; rho; per_capita_rate; congested; cap }

(* ------------------------------------------------------------------ *)
(* Sorted-prefix solver context (structure-of-arrays, DESIGN.md §12)  *)
(* ------------------------------------------------------------------ *)

(* The water-filling aggregate sum_i alpha_i d_i(theta_i(cap)) theta_i(cap)
   splits at any cap into two populations: CPs whose saturation threshold
   theta_hat_i / w_i lies at or below the water level contribute the
   {e constant} alpha_i d_i(theta_hat_i) theta_hat_i, the rest contribute a
   cap-dependent term.  Presorting by threshold turns the constant part
   into one binary search plus one prefix-sum lookup, so each evaluation
   costs O(log n + #unsaturated) instead of O(n); in paper ensembles the
   water level sits above most thresholds, leaving a short tail.

   Since the million-CP tier (DESIGN.md §12) the context stores the
   sorted population as unboxed float {e columns} rather than boxed
   [Cp.t] records: the tail loop touches flat arrays only, and for the
   exponential demand family the curve is evaluated inline from the
   [beta] column with no closure call.  Every float operation replicates
   the record path's sequence exactly, so the column evaluator is
   bit-identical to the retained record-based reference evaluator; the
   accumulation order is the sorted one (saturated prefix first, then
   the unsaturated tail) in both.  See DESIGN.md §9 and §12. *)
type demand_col =
  | Dexp of float array
      (* per-sorted-position beta of the exponential family *)
  | Dfun of Demand.t array  (* general demands, one closure per position *)

type context = {
  thresholds : float array;  (* ascending theta_hat_i / w_i *)
  sat : float array;  (* contribution of sorted CP s once saturated *)
  sat_prefix : float array;  (* sat_prefix.(k) = left fold of sat.(0..k-1) *)
  s_alpha : float array;  (* sorted alpha column *)
  s_theta_hat : float array;  (* sorted theta_hat column *)
  s_weights : float array;  (* sorted weight column *)
  s_demand : demand_col;  (* sorted demand parameters *)
}

(* Sort order by (key, original index): ties are ordered by original
   index so the accumulation order — and with it every downstream bit —
   is independent of the sort algorithm. *)
let sort_order keys =
  let order = Array.init (Array.length keys) Fun.id in
  Array.sort
    (fun i j ->
      let c = Float.compare keys.(i) keys.(j) in
      if c <> 0 then c else Int.compare i j)
    order;
  order

(* Demand value of sorted position [s] at a clamped throughput ratio
   [omega]; the [Dexp] arm inlines [Demand.exponential]'s curve
   (bit-identical — see Cp_soa.demand_curve), the [Dfun] arm calls the
   stored closure exactly as the record path did. *)
let demand_value demand s omega =
  match demand with
  | Dexp betas -> Cp_soa.demand_curve ~beta:betas.(s) omega
  | Dfun demands -> Demand.eval demands.(s) omega

(* One cap-dependent tail term: exactly [Cp.lambda_per_capita cp
   ~theta:(theta_at_cap cp w cap)] of the record path, rebuilt from
   columns — same clamps, same operation order. *)
let tail_term ctx s cap =
  let th = ctx.s_theta_hat.(s) in
  let theta0 = theta_at_cap_col th ctx.s_weights.(s) cap in
  (* [Cp.cap_theta]'s clamp, idempotent here but kept for bit parity. *)
  let theta = Float.min (Float.max theta0 0.) th in
  let d = demand_value ctx.s_demand s (theta /. th) in
  ctx.s_alpha.(s) *. (d *. theta)

let build_context ~n ~alpha ~theta_hat ~weights ~demand =
  let keys = Array.init n (fun i -> theta_hat i /. weights.(i)) in
  let order = sort_order keys in
  let s_alpha = Array.map (fun i -> alpha i) order in
  let s_theta_hat = Array.map (fun i -> theta_hat i) order in
  let s_weights = Array.map (fun i -> weights.(i)) order in
  let thresholds = Array.map (fun i -> keys.(i)) order in
  let s_demand = demand order in
  let ctx_no_sat =
    { thresholds; sat = [||]; sat_prefix = [||]; s_alpha; s_theta_hat;
      s_weights; s_demand }
  in
  (* Saturated contribution = the tail term at an infinite water level
     (theta pinned to theta_hat), exactly the record path's
     [Cp.lambda_per_capita cp ~theta:theta_hat]. *)
  let sat = Array.init n (fun s -> tail_term ctx_no_sat s Float.infinity) in
  let sat_prefix = Array.make (n + 1) 0. in
  for s = 0 to n - 1 do
    sat_prefix.(s + 1) <- sat_prefix.(s) +. sat.(s)
  done;
  { ctx_no_sat with sat; sat_prefix }

let context ?weights cps =
  let n = Array.length cps in
  let weights =
    match weights with
    | Some w ->
        check_weights cps w;
        w
    | None -> unit_weights n
  in
  (* The exponential family gets the closure-free column evaluator; any
     other demand keeps its closure (both arms are bit-identical to the
     record path, the Dexp one is just faster). *)
  let all_exponential =
    Array.for_all (fun (cp : Cp.t) -> Option.is_some (Demand.beta cp.Cp.demand))
      cps
  in
  let demand order =
    if all_exponential then
      Dexp
        (Array.map
           (fun i ->
             match Demand.beta cps.(i).Cp.demand with
             | Some b -> b
             | None -> 0. (* unreachable: all_exponential *))
           order)
    else Dfun (Array.map (fun i -> cps.(i).Cp.demand) order)
  in
  build_context ~n
    ~alpha:(fun i -> cps.(i).Cp.alpha)
    ~theta_hat:(fun i -> cps.(i).Cp.theta_hat)
    ~weights ~demand

let context_soa ?weights soa =
  let n = Cp_soa.length soa in
  let weights =
    match weights with
    | Some w ->
        check_weights_n n w;
        w
    | None -> unit_weights n
  in
  build_context ~n
    ~alpha:(Cp_soa.alpha soa)
    ~theta_hat:(Cp_soa.theta_hat soa)
    ~weights
    ~demand:(fun order ->
      Dexp (Array.map (fun i -> Cp_soa.beta soa i) order))

(* Number of sorted CPs whose threshold is <= cap (first sorted position
   strictly above the water level). *)
let saturated_count thresholds cap =
  let lo = ref 0 and hi = ref (Array.length thresholds) in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if thresholds.(mid) <= cap then lo := mid + 1 else hi := mid
  done;
  !lo

(* Optimized evaluator: prefix-sum lookup + unsaturated tail over flat
   columns. *)
let aggregate_sorted ctx ~cap =
  let n = Array.length ctx.thresholds in
  let k = saturated_count ctx.thresholds cap in
  let acc = ref ctx.sat_prefix.(k) in
  (match ctx.s_demand with
  | Dexp betas ->
      (* Hot loop of the large-n tier: flat float-array reads and one
         inlined curve evaluation per unsaturated CP. *)
      for s = k to n - 1 do
        let th = ctx.s_theta_hat.(s) in
        let theta0 = theta_at_cap_col th ctx.s_weights.(s) cap in
        let theta = Float.min (Float.max theta0 0.) th in
        let d = Cp_soa.demand_curve ~beta:betas.(s) (theta /. th) in
        acc := !acc +. (ctx.s_alpha.(s) *. (d *. theta))
      done
  | Dfun _ ->
      for s = k to n - 1 do
        acc := !acc +. tail_term ctx s cap
      done);
  !acc

(* ------------------------------------------------------------------ *)
(* Canonical segment search                                           *)
(* ------------------------------------------------------------------ *)

(* Between two consecutive thresholds the saturated set is fixed, so the
   root of g(cap) = aggregate(cap) - nu lives in a canonical segment:
   the one bracketed by the last grid point with g < 0 and the first
   with g >= 0 over the grid 0, t_1, ..., t_n.  Locating that segment by
   binary search over the monotone predicate g(x_k) < 0 — optionally
   narrowed by a caller-supplied bracket hint — and only then running
   Brent inside it keeps the final root-finding call {e independent} of
   how the segment was found: any valid hint yields bit-identical
   results, which is what lets the CP game warm-start aggressively
   without breaking determinism.

   [aggregate] closes over its own population data (column context or
   the reference's record context); only [thresholds] is needed here. *)
let congested_cap ~thresholds ~aggregate ~bracket ~tol ~nu =
  let n = Array.length thresholds in
  let grid_point k = if k = 0 then 0. else thresholds.(k - 1) in
  let g cap = aggregate ~cap -. nu in
  let g_at k = g (grid_point k) in
  (* g(0) = -nu exactly — every term of the aggregate is d_i(0) *. 0. = 0.
     — so the zero-capacity check needs no O(n) evaluation. *)
  if Float.equal nu 0. then
    { Po_num.Roots.root = 0.; value = 0.; iterations = 0; converged = true }
  else if g_at n < 0. then
    (* Can only happen for demands violating d(1) = 1 (Assumption 1):
       even a level saturating every CP falls short of nu.  The seed
       solver raised [Roots.No_bracket] here; since PR 4 the condition
       travels the typed error channel instead (same taxonomy case). *)
    Po_guard.Po_error.fail
      (Po_guard.Po_error.No_bracket
         (Printf.sprintf
            "Equilibrium.solve: aggregate at cap_max falls short of nu=%g" nu))
  else begin
    (* Largest k with g(x_k) < 0, sought over [0, n]; a bracket hint that
       provably straddles the sign change narrows the search range, and
       one that does not is discarded after two cheap probes. *)
    let lo, hi =
      match bracket with
      | None -> (0, n)
      | Some (b_lo, b_hi) ->
          let b_lo = Float.max b_lo 0. in
          let b_hi = Float.min b_hi (grid_point n) in
          if not (b_lo < b_hi && Float.is_finite b_lo) then begin
            Po_obs.Metrics.incr m_hint_discarded;
            (0, n)
          end
          else begin
            let k_lo = saturated_count thresholds b_lo in
            let k_hi =
              (* Smallest k with grid_point k >= b_hi. *)
              min n (saturated_count thresholds b_hi + 1)
            in
            if k_lo < k_hi && g_at k_lo < 0. && g_at k_hi >= 0. then begin
              Po_obs.Metrics.incr m_hint_used;
              (k_lo, k_hi)
            end
            else begin
              Po_obs.Metrics.incr m_hint_discarded;
              (0, n)
            end
          end
    in
    let lo = ref lo and hi = ref hi in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if g_at mid < 0. then lo := mid else hi := mid
    done;
    Po_num.Roots.brent ~tol ~max_iter:200 ~f:g ~lo:(grid_point !lo)
      ~hi:(grid_point !hi) ()
  end

(* Shared congested-solve flow: fault site, context frames, the segment
   search, and the convergence check.  Returns the water level.

   [budget] is the cooperative deadline/cancellation check of the
   supervision layer (DESIGN.md §13): every aggregate evaluation is one
   iteration of the segment search or of Brent, so checking inside the
   closure bounds the time between checks by a single O(log n + tail)
   evaluation.  [None] costs nothing. *)
let solve_congested ?budget ~thresholds ~aggregate ~bracket ~tol ~nu ~n () =
  let aggregate =
    match budget with
    | None -> aggregate
    | Some b ->
        fun ~cap ->
          Po_sup.Budget.check b;
          aggregate ~cap
  in
  let frames =
    [ ("solver", "equilibrium"); ("nu", Printf.sprintf "%.17g" nu);
      ("cps", string_of_int n) ]
  in
  (* Armed fault site solver@k: the k-th guarded solve reports
     non-convergence, exercising the whole propagation path without
     needing a pathological input. *)
  if Po_guard.Faultinject.fire Po_guard.Faultinject.Solver ~key:0 then
    Po_guard.Po_error.fail
      ~context:(("injected", "solver") :: frames)
      (Po_guard.Po_error.Non_convergence
         { residual = Float.infinity; iterations = 0 });
  let outcome =
    Po_guard.Po_error.with_context frames (fun () ->
        congested_cap ~thresholds ~aggregate ~bracket ~tol ~nu)
  in
  (* The seed discarded [converged] and used the last iterate; a
     water level that silently missed its tolerance would poison
     every welfare number downstream, so surface it. *)
  Po_obs.Metrics.add m_iterations outcome.Po_num.Roots.iterations;
  if not outcome.Po_num.Roots.converged then
    Po_guard.Po_error.fail ~context:frames
      (Po_guard.Po_error.Non_convergence
         { residual = Float.abs outcome.Po_num.Roots.value;
           iterations = outcome.Po_num.Roots.iterations });
  outcome.Po_num.Roots.root

let solve ?budget ?context:ctx ?bracket ?weights ?(tol = 1e-12) ~nu cps =
  if nu < 0. then invalid_arg "Equilibrium.solve: nu < 0";
  let n = Array.length cps in
  if n = 0 then empty
  else begin
    Po_obs.Metrics.incr m_solves;
    let weights =
      match weights with
      | Some w ->
          check_weights cps w;
          w
      | None -> unit_weights n
    in
    let unconstrained =
      Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
    in
    if nu >= unconstrained then begin
      Po_obs.Metrics.incr m_uncongested;
      of_cap cps weights ~congested:false Float.infinity
    end
    else begin
      let ctx = match ctx with Some c -> c | None -> context ~weights cps in
      let cap =
        solve_congested ?budget ~thresholds:ctx.thresholds
          ~aggregate:(fun ~cap -> aggregate_sorted ctx ~cap)
          ~bracket ~tol ~nu ~n ()
      in
      of_cap cps weights ~congested:true cap
    end
  end

let solve_soa ?budget ?context:ctx ?bracket ?weights ?(tol = 1e-12) ~nu soa =
  if nu < 0. then invalid_arg "Equilibrium.solve_soa: nu < 0";
  let n = Cp_soa.length soa in
  if n = 0 then empty
  else begin
    Po_obs.Metrics.incr m_solves;
    let weights =
      match weights with
      | Some w ->
          check_weights_n n w;
          w
      | None -> unit_weights n
    in
    let unconstrained =
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. Cp_soa.lambda_hat_per_capita soa i
      done;
      !acc
    in
    if nu >= unconstrained then begin
      Po_obs.Metrics.incr m_uncongested;
      of_cap_soa soa weights ~congested:false Float.infinity
    end
    else begin
      let ctx =
        match ctx with Some c -> c | None -> context_soa ~weights soa
      in
      let cap =
        solve_congested ?budget ~thresholds:ctx.thresholds
          ~aggregate:(fun ~cap -> aggregate_sorted ctx ~cap)
          ~bracket ~tol ~nu ~n ()
      in
      of_cap_soa soa weights ~congested:true cap
    end
  end

let solve_checked ?budget ?context ?bracket ?weights ?tol ~nu cps =
  match solve ?budget ?context ?bracket ?weights ?tol ~nu cps with
  | solution -> Ok solution
  | exception Po_guard.Po_error.Error e -> Error e
  | exception Invalid_argument msg ->
      Error (Po_guard.Po_error.v (Po_guard.Po_error.Invalid_scenario msg))

let solve_soa_checked ?budget ?context ?bracket ?weights ?tol ~nu soa =
  match solve_soa ?budget ?context ?bracket ?weights ?tol ~nu soa with
  | solution -> Ok solution
  | exception Po_guard.Po_error.Error e -> Error e
  | exception Invalid_argument msg ->
      Error (Po_guard.Po_error.v (Po_guard.Po_error.Invalid_scenario msg))

(* ------------------------------------------------------------------ *)
(* Record-based reference solver (retained, DESIGN.md §9 and §12)     *)
(* ------------------------------------------------------------------ *)

(* The reference path deliberately keeps boxed [Cp.t] records and walks
   all [n] of them on every aggregate evaluation, deriving each term
   through the record accessors with no prefix table and no inlined
   demand curve.  It is the anchor of the bit-identity contract: the
   column paths above must agree with it bit for bit on every input
   (test/test_perf_kernel.ml, test/test_soa.ml). *)
type reference_context = {
  r_thresholds : float array;
  r_sat : float array;
  r_cps : Cp.t array;
  r_weights : float array;
}

let reference_context weights cps =
  let n = Array.length cps in
  let keys = Array.init n (fun i -> cps.(i).Cp.theta_hat /. weights.(i)) in
  let order = sort_order keys in
  let r_cps = Array.map (fun i -> cps.(i)) order in
  let r_weights = Array.map (fun i -> weights.(i)) order in
  let r_thresholds = Array.map (fun i -> keys.(i)) order in
  let r_sat =
    Array.map
      (fun (cp : Cp.t) -> Cp.lambda_per_capita cp ~theta:cp.Cp.theta_hat)
      r_cps
  in
  { r_thresholds; r_sat; r_cps; r_weights }

(* Reference evaluator: same branch condition and accumulation order as
   [aggregate_sorted] — the saturated CPs form a prefix of the sorted
   order and [sat_prefix] folds exactly their [sat] values — so the two
   are bit-identical by construction. *)
let aggregate_sorted_reference rctx ~cap =
  let n = Array.length rctx.r_thresholds in
  let acc = ref 0. in
  for s = 0 to n - 1 do
    let cp = rctx.r_cps.(s) in
    if rctx.r_thresholds.(s) <= cap then acc := !acc +. rctx.r_sat.(s)
    else begin
      let theta = theta_at_cap cp rctx.r_weights.(s) cap in
      acc := !acc +. Cp.lambda_per_capita cp ~theta
    end
  done;
  !acc

let solve_reference ?weights ?(tol = 1e-12) ~nu cps =
  if nu < 0. then invalid_arg "Equilibrium.solve: nu < 0";
  let n = Array.length cps in
  if n = 0 then empty
  else begin
    Po_obs.Metrics.incr m_solves;
    let weights =
      match weights with
      | Some w ->
          check_weights cps w;
          w
      | None -> unit_weights n
    in
    let unconstrained =
      Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
    in
    if nu >= unconstrained then begin
      Po_obs.Metrics.incr m_uncongested;
      of_cap cps weights ~congested:false Float.infinity
    end
    else begin
      let rctx = reference_context weights cps in
      let cap =
        solve_congested ~thresholds:rctx.r_thresholds
          ~aggregate:(fun ~cap -> aggregate_sorted_reference rctx ~cap)
          ~bracket:None ~tol ~nu ~n ()
      in
      of_cap cps weights ~congested:true cap
    end
  end

let solve_absolute ?budget ?weights ?tol ~m ~mu cps =
  if m <= 0. then invalid_arg "Equilibrium.solve_absolute: m <= 0";
  if mu < 0. then invalid_arg "Equilibrium.solve_absolute: mu < 0";
  solve ?budget ?weights ?tol ~nu:(mu /. m) cps

let theta_for sol i =
  if i < 0 || i >= Array.length sol.theta then
    invalid_arg "Equilibrium.theta_for: index out of bounds";
  sol.theta.(i)
