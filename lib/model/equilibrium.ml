type solution = {
  theta : float array;
  demand : float array;
  rho : float array;
  per_capita_rate : float;
  congested : bool;
  cap : float;
}

let empty =
  { theta = [||]; demand = [||]; rho = [||]; per_capita_rate = 0.;
    congested = false; cap = Float.infinity }

let unit_weights n = Array.make n 1.

let check_weights cps weights =
  if Array.length weights <> Array.length cps then
    invalid_arg "Equilibrium: weights length mismatch";
  Array.iter
    (fun w -> if w <= 0. then invalid_arg "Equilibrium: weight <= 0")
    weights

(* Observability counters (DESIGN.md §11).  All are incremented once
   per logical solve/decision, independent of which domain runs the
   solve, so snapshots are jobs-invariant; disarmed they cost one
   atomic load each. *)
let m_solves = Po_obs.Metrics.counter "equilibrium.solves"

let m_iterations = Po_obs.Metrics.counter "equilibrium.iterations"

let m_uncongested = Po_obs.Metrics.counter "equilibrium.uncongested"

let m_hint_used = Po_obs.Metrics.counter "equilibrium.bracket_hint_used"

let m_hint_discarded = Po_obs.Metrics.counter "equilibrium.bracket_hint_discarded"

let theta_at_cap (cp : Cp.t) w cap =
  if Float.equal cap Float.infinity then cp.Cp.theta_hat
  else Float.min cp.Cp.theta_hat (w *. cap)

let aggregate_at_cap ?weights ~cap cps =
  let weights =
    match weights with
    | Some w ->
        check_weights cps w;
        w
    | None -> unit_weights (Array.length cps)
  in
  let acc = ref 0. in
  Array.iteri
    (fun i cp ->
      let theta = theta_at_cap cp weights.(i) cap in
      acc := !acc +. Cp.lambda_per_capita cp ~theta)
    cps;
  !acc

let of_cap cps weights ~congested cap =
  let n = Array.length cps in
  let theta = Array.init n (fun i -> theta_at_cap cps.(i) weights.(i) cap) in
  let demand = Array.init n (fun i -> Cp.demand_at cps.(i) theta.(i)) in
  let rho = Array.init n (fun i -> demand.(i) *. theta.(i)) in
  let per_capita_rate =
    let acc = ref 0. in
    Array.iteri (fun i cp -> acc := !acc +. (cp.Cp.alpha *. rho.(i))) cps;
    !acc
  in
  { theta; demand; rho; per_capita_rate; congested; cap }

(* ------------------------------------------------------------------ *)
(* Sorted-prefix solver context                                       *)
(* ------------------------------------------------------------------ *)

(* The water-filling aggregate sum_i alpha_i d_i(theta_i(cap)) theta_i(cap)
   splits at any cap into two populations: CPs whose saturation threshold
   theta_hat_i / w_i lies at or below the water level contribute the
   {e constant} alpha_i d_i(theta_hat_i) theta_hat_i, the rest contribute a
   cap-dependent term.  Presorting by threshold turns the constant part
   into one binary search plus one prefix-sum lookup, so each evaluation
   costs O(log n + #unsaturated) instead of O(n); in paper ensembles the
   water level sits above most thresholds, leaving a short tail.

   The accumulation order is the sorted one (saturated prefix first, then
   the unsaturated tail) in both the optimized and the reference
   evaluator, so the two are bit-identical by construction; see
   DESIGN.md §9. *)
type context = {
  thresholds : float array;  (* ascending theta_hat_i / w_i *)
  sat : float array;  (* contribution of sorted CP s once saturated *)
  sat_prefix : float array;  (* sat_prefix.(k) = left fold of sat.(0..k-1) *)
  sorted_cps : Cp.t array;
  sorted_weights : float array;
}

let context ?weights cps =
  let n = Array.length cps in
  let weights =
    match weights with
    | Some w ->
        check_weights cps w;
        w
    | None -> unit_weights n
  in
  let order = Array.init n Fun.id in
  (* Thresholds are computed once up front: recomputing the division in
     the comparator costs ~50% more across the n log n comparisons. *)
  let keys = Array.init n (fun i -> cps.(i).Cp.theta_hat /. weights.(i)) in
  (* Ties are ordered by original index so the accumulation order — and
     with it every downstream bit — is independent of the sort algorithm. *)
  Array.sort
    (fun i j ->
      let c = Float.compare keys.(i) keys.(j) in
      if c <> 0 then c else Int.compare i j)
    order;
  let sorted_cps = Array.map (fun i -> cps.(i)) order in
  let sorted_weights = Array.map (fun i -> weights.(i)) order in
  let thresholds = Array.map (fun i -> keys.(i)) order in
  let sat =
    Array.map
      (fun (cp : Cp.t) -> Cp.lambda_per_capita cp ~theta:cp.Cp.theta_hat)
      sorted_cps
  in
  let sat_prefix = Array.make (n + 1) 0. in
  for s = 0 to n - 1 do
    sat_prefix.(s + 1) <- sat_prefix.(s) +. sat.(s)
  done;
  { thresholds; sat; sat_prefix; sorted_cps; sorted_weights }

(* Number of sorted CPs whose threshold is <= cap (first sorted position
   strictly above the water level). *)
let saturated_count ctx cap =
  let lo = ref 0 and hi = ref (Array.length ctx.thresholds) in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if ctx.thresholds.(mid) <= cap then lo := mid + 1 else hi := mid
  done;
  !lo

(* Optimized evaluator: prefix-sum lookup + unsaturated tail. *)
let aggregate_sorted ctx ~cap =
  let n = Array.length ctx.thresholds in
  let k = saturated_count ctx cap in
  let acc = ref ctx.sat_prefix.(k) in
  for s = k to n - 1 do
    let cp = ctx.sorted_cps.(s) in
    let theta = theta_at_cap cp ctx.sorted_weights.(s) cap in
    acc := !acc +. Cp.lambda_per_capita cp ~theta
  done;
  !acc

(* Reference evaluator: same branch condition and accumulation order, no
   prefix table — every term re-derived.  Bit-identical to
   [aggregate_sorted] because the saturated CPs form a prefix of the
   sorted order and [sat_prefix] folds exactly their [sat] values. *)
let aggregate_sorted_reference ctx ~cap =
  let n = Array.length ctx.thresholds in
  let acc = ref 0. in
  for s = 0 to n - 1 do
    let cp = ctx.sorted_cps.(s) in
    if ctx.thresholds.(s) <= cap then acc := !acc +. ctx.sat.(s)
    else begin
      let theta = theta_at_cap cp ctx.sorted_weights.(s) cap in
      acc := !acc +. Cp.lambda_per_capita cp ~theta
    end
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Canonical segment search                                           *)
(* ------------------------------------------------------------------ *)

(* Between two consecutive thresholds the saturated set is fixed, so the
   root of g(cap) = aggregate(cap) - nu lives in a canonical segment:
   the one bracketed by the last grid point with g < 0 and the first
   with g >= 0 over the grid 0, t_1, ..., t_n.  Locating that segment by
   binary search over the monotone predicate g(x_k) < 0 — optionally
   narrowed by a caller-supplied bracket hint — and only then running
   Brent inside it keeps the final root-finding call {e independent} of
   how the segment was found: any valid hint yields bit-identical
   results, which is what lets the CP game warm-start aggressively
   without breaking determinism. *)
let congested_cap ~aggregate ~bracket ~tol ~nu ctx =
  let n = Array.length ctx.thresholds in
  let grid_point k = if k = 0 then 0. else ctx.thresholds.(k - 1) in
  let g cap = aggregate ctx ~cap -. nu in
  let g_at k = g (grid_point k) in
  (* g(0) = -nu exactly — every term of the aggregate is d_i(0) *. 0. = 0.
     — so the zero-capacity check needs no O(n) evaluation. *)
  if Float.equal nu 0. then
    { Po_num.Roots.root = 0.; value = 0.; iterations = 0; converged = true }
  else if g_at n < 0. then
    (* Can only happen for demands violating d(1) = 1 (Assumption 1):
       even a level saturating every CP falls short of nu.  The seed
       solver raised [Roots.No_bracket] here; since PR 4 the condition
       travels the typed error channel instead (same taxonomy case). *)
    Po_guard.Po_error.fail
      (Po_guard.Po_error.No_bracket
         (Printf.sprintf
            "Equilibrium.solve: aggregate at cap_max falls short of nu=%g" nu))
  else begin
    (* Largest k with g(x_k) < 0, sought over [0, n]; a bracket hint that
       provably straddles the sign change narrows the search range, and
       one that does not is discarded after two cheap probes. *)
    let lo, hi =
      match bracket with
      | None -> (0, n)
      | Some (b_lo, b_hi) ->
          let b_lo = Float.max b_lo 0. in
          let b_hi = Float.min b_hi (grid_point n) in
          if not (b_lo < b_hi && Float.is_finite b_lo) then begin
            Po_obs.Metrics.incr m_hint_discarded;
            (0, n)
          end
          else begin
            let k_lo = saturated_count ctx b_lo in
            let k_hi =
              (* Smallest k with grid_point k >= b_hi. *)
              min n (saturated_count ctx b_hi + 1)
            in
            if k_lo < k_hi && g_at k_lo < 0. && g_at k_hi >= 0. then begin
              Po_obs.Metrics.incr m_hint_used;
              (k_lo, k_hi)
            end
            else begin
              Po_obs.Metrics.incr m_hint_discarded;
              (0, n)
            end
          end
    in
    let lo = ref lo and hi = ref hi in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if g_at mid < 0. then lo := mid else hi := mid
    done;
    Po_num.Roots.brent ~tol ~max_iter:200 ~f:g ~lo:(grid_point !lo)
      ~hi:(grid_point !hi) ()
  end

let solve_generic ~aggregate ?context:ctx ?bracket ?weights ?(tol = 1e-12)
    ~nu cps =
  if nu < 0. then invalid_arg "Equilibrium.solve: nu < 0";
  let n = Array.length cps in
  if n = 0 then empty
  else begin
    Po_obs.Metrics.incr m_solves;
    let weights =
      match weights with
      | Some w ->
          check_weights cps w;
          w
      | None -> unit_weights n
    in
    let unconstrained =
      Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
    in
    if nu >= unconstrained then begin
      Po_obs.Metrics.incr m_uncongested;
      of_cap cps weights ~congested:false Float.infinity
    end
    else begin
      let frames =
        [ ("solver", "equilibrium"); ("nu", Printf.sprintf "%.17g" nu);
          ("cps", string_of_int n) ]
      in
      (* Armed fault site solver@k: the k-th guarded solve reports
         non-convergence, exercising the whole propagation path without
         needing a pathological input. *)
      if Po_guard.Faultinject.fire Po_guard.Faultinject.Solver ~key:0 then
        Po_guard.Po_error.fail
          ~context:(("injected", "solver") :: frames)
          (Po_guard.Po_error.Non_convergence
             { residual = Float.infinity; iterations = 0 });
      let ctx =
        match ctx with Some c -> c | None -> context ~weights cps
      in
      let outcome =
        Po_guard.Po_error.with_context frames (fun () ->
            congested_cap ~aggregate ~bracket ~tol ~nu ctx)
      in
      (* The seed discarded [converged] and used the last iterate; a
         water level that silently missed its tolerance would poison
         every welfare number downstream, so surface it. *)
      Po_obs.Metrics.add m_iterations outcome.Po_num.Roots.iterations;
      if not outcome.Po_num.Roots.converged then
        Po_guard.Po_error.fail ~context:frames
          (Po_guard.Po_error.Non_convergence
             { residual = Float.abs outcome.Po_num.Roots.value;
               iterations = outcome.Po_num.Roots.iterations });
      of_cap cps weights ~congested:true outcome.Po_num.Roots.root
    end
  end

let solve ?context ?bracket ?weights ?tol ~nu cps =
  solve_generic ~aggregate:aggregate_sorted ?context ?bracket ?weights ?tol
    ~nu cps

let solve_checked ?context ?bracket ?weights ?tol ~nu cps =
  match solve ?context ?bracket ?weights ?tol ~nu cps with
  | solution -> Ok solution
  | exception Po_guard.Po_error.Error e -> Error e
  | exception Invalid_argument msg ->
      Error (Po_guard.Po_error.v (Po_guard.Po_error.Invalid_scenario msg))

let solve_reference ?weights ?tol ~nu cps =
  solve_generic ~aggregate:aggregate_sorted_reference ?weights ?tol ~nu cps

let solve_absolute ?weights ?tol ~m ~mu cps =
  if m <= 0. then invalid_arg "Equilibrium.solve_absolute: m <= 0";
  if mu < 0. then invalid_arg "Equilibrium.solve_absolute: mu < 0";
  solve ?weights ?tol ~nu:(mu /. m) cps

let theta_for sol i =
  if i < 0 || i >= Array.length sol.theta then
    invalid_arg "Equilibrium.theta_for: index out of bounds";
  sol.theta.(i)
