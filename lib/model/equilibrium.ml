type solution = {
  theta : float array;
  demand : float array;
  rho : float array;
  per_capita_rate : float;
  congested : bool;
  cap : float;
}

let empty =
  { theta = [||]; demand = [||]; rho = [||]; per_capita_rate = 0.;
    congested = false; cap = Float.infinity }

let unit_weights n = Array.make n 1.

let check_weights cps weights =
  if Array.length weights <> Array.length cps then
    invalid_arg "Equilibrium: weights length mismatch";
  Array.iter
    (fun w -> if w <= 0. then invalid_arg "Equilibrium: weight <= 0")
    weights

let theta_at_cap (cp : Cp.t) w cap =
  if Float.equal cap Float.infinity then cp.Cp.theta_hat
  else Float.min cp.Cp.theta_hat (w *. cap)

let aggregate_at_cap ?weights ~cap cps =
  let weights =
    match weights with
    | Some w ->
        check_weights cps w;
        w
    | None -> unit_weights (Array.length cps)
  in
  let acc = ref 0. in
  Array.iteri
    (fun i cp ->
      let theta = theta_at_cap cp weights.(i) cap in
      acc := !acc +. Cp.lambda_per_capita cp ~theta)
    cps;
  !acc

let of_cap cps weights ~congested cap =
  let n = Array.length cps in
  let theta = Array.init n (fun i -> theta_at_cap cps.(i) weights.(i) cap) in
  let demand = Array.init n (fun i -> Cp.demand_at cps.(i) theta.(i)) in
  let rho = Array.init n (fun i -> demand.(i) *. theta.(i)) in
  let per_capita_rate =
    let acc = ref 0. in
    Array.iteri (fun i cp -> acc := !acc +. (cp.Cp.alpha *. rho.(i))) cps;
    !acc
  in
  { theta; demand; rho; per_capita_rate; congested; cap }

let solve ?weights ?(tol = 1e-12) ~nu cps =
  if nu < 0. then invalid_arg "Equilibrium.solve: nu < 0";
  let n = Array.length cps in
  if n = 0 then empty
  else begin
    let weights =
      match weights with
      | Some w ->
          check_weights cps w;
          w
      | None -> unit_weights n
    in
    let unconstrained =
      Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps
    in
    if nu >= unconstrained then
      of_cap cps weights ~congested:false Float.infinity
    else begin
      (* Water level that saturates every cap: above it the aggregate is
         flat at [unconstrained]. *)
      let cap_max =
        Array.to_seq cps
        |> Seq.mapi (fun i cp -> cp.Cp.theta_hat /. weights.(i))
        |> Seq.fold_left Float.max 0.
      in
      let g cap = aggregate_at_cap ~weights ~cap cps -. nu in
      (* g is continuous, non-decreasing, g(0) <= 0 < g(cap_max); Brent
         converges superlinearly where bisection would need ~40 evals. *)
      let outcome =
        if g 0. >= 0. then
          { Po_num.Roots.root = 0.; value = 0.; iterations = 0;
            converged = true }
        else Po_num.Roots.brent ~tol ~max_iter:200 ~f:g ~lo:0. ~hi:cap_max ()
      in
      of_cap cps weights ~congested:true outcome.Po_num.Roots.root
    end
  end

let solve_absolute ?weights ?tol ~m ~mu cps =
  if m <= 0. then invalid_arg "Equilibrium.solve_absolute: m <= 0";
  if mu < 0. then invalid_arg "Equilibrium.solve_absolute: mu < 0";
  solve ?weights ?tol ~nu:(mu /. m) cps

let theta_for sol i =
  if i < 0 || i >= Array.length sol.theta then
    invalid_arg "Equilibrium.theta_for: index out of bounds";
  sol.theta.(i)
