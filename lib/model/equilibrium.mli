(** The system rate equilibrium (Theorem 1).

    The interplay between a rate-allocation mechanism and the demand
    functions pins down a unique throughput profile.  For the whole family
    of mechanisms used in this repository — max-min fair and weighted
    alpha-fair with homogeneous flows — the allocation has the
    {e common-cap} form

    {v theta_i = min (theta_hat_i, w_i * cap) v}

    for a scalar [cap >= 0] and per-CP weights [w_i > 0]: every flow is
    throttled at the same (weighted) water level, and flows whose
    unconstrained throughput lies below the level are unconstrained.  The
    equilibrium cap solves the work-conservation equation (Axiom 2)

    {v sum_i alpha_i d_i(theta_i(cap)) theta_i(cap) = min (nu, sum_i alpha_i theta_hat_i) v}

    whose left side is continuous and non-decreasing in [cap] under
    Assumption 1, so root-finding converges to the unique solution.

    {b Kernel layout (DESIGN.md §9 and §12).}  The solver presorts CPs
    by saturation threshold [theta_hat_i / w_i] and prefix-sums their
    saturated contributions, making every aggregate evaluation a binary
    search plus a loop over only the unsaturated tail.  Since the
    million-CP tier the {!context} holds the sorted population as
    unboxed float columns (structure of arrays): the tail loop reads
    flat arrays and, for exponential-family demands, evaluates the curve
    inline with no closure call — whether the population arrived as
    records ({!solve}) or as a {!Cp_soa.t} ({!solve_soa}).  The root is
    located in two stages: a binary search over the threshold grid pins
    the canonical segment containing the sign change, then Brent runs
    inside that segment.  Because the segment is canonical, a [?bracket]
    hint (or its absence) can only change {e how fast} the segment is
    found, never the segment itself — warm-started solves are
    bit-identical to cold ones, and both are bit-identical to
    {!solve_reference}, which deliberately keeps boxed records and
    closure-based demand evaluation.

    All quantities are per-capita ([nu = mu / M]); Lemma 1 (independence of
    scale) is then true by construction, and absolute systems [(M, mu)] are
    handled by dividing. *)

type solution = {
  theta : float array;  (** achievable throughput per CP *)
  demand : float array;  (** [d_i theta_i] *)
  rho : float array;  (** per-user per-capita throughput [d_i theta_i * theta_i] (Eq. 5) *)
  per_capita_rate : float;  (** [lambda_N / M = sum_i alpha_i rho_i] *)
  congested : bool;  (** whether [nu < sum_i alpha_i theta_hat_i] *)
  cap : float;  (** the water level; [infinity] when unconstrained *)
}

val empty : solution
(** Equilibrium of a system with no CPs. *)

val aggregate_at_cap :
  ?weights:float array -> cap:float -> Cp.t array -> float
(** Per-capita aggregate throughput [sum_i alpha_i d_i(theta_i) theta_i]
    when every CP is throttled at [min (theta_hat_i, w_i * cap)], summed
    in CP-array order (the pre-optimization accumulation; retained for
    external callers and for audits of the solver's work-conservation
    residual). *)

type context
(** Presorted saturation thresholds and prefix-summed saturated
    contributions for a fixed population and weight vector — the
    per-solve setup work, reusable across solves over the same CPs. *)

val context : ?weights:float array -> Cp.t array -> context
(** Build the sorted-prefix context.  [weights] defaults to all ones and
    must match the [weights] later passed to {!solve} alongside this
    context. *)

val context_soa : ?weights:float array -> Cp_soa.t -> context
(** {!context} built directly from SoA columns — no record
    materialisation; for equal populations the resulting context is
    bit-equivalent to [context (Cp_soa.to_cps soa)]. *)

val solve :
  ?budget:Po_sup.Budget.t -> ?context:context -> ?bracket:float * float ->
  ?weights:float array -> ?tol:float -> nu:float -> Cp.t array -> solution
(** Compute the rate equilibrium of the per-capita system [(nu, cps)].
    [weights] defaults to all ones (max-min fairness); entries must be
    [> 0].  [nu >= 0].  [tol] (default [1e-12]) is the absolute tolerance
    on the water level.

    [context] reuses a presorted {!context} built from the same [cps] and
    [weights] (unchecked — a mismatched context silently solves the wrong
    system).  [bracket] is a warm-start hint [(lo, hi)] for the water
    level, typically the previous solve's cap padded to the known side of
    a monotone perturbation; a hint that does not straddle the root is
    detected in two probes and discarded, and {e any} hint — valid,
    invalid, or absent — yields bit-identical output.

    Failure travels the typed error channel (DESIGN.md §10): an
    unbracketable work-conservation equation raises
    [Po_guard.Po_error.Error] with kind [No_bracket] (the seed raised
    {!Po_num.Roots.No_bracket}), and a Brent run that exhausts its
    iteration budget raises kind [Non_convergence] instead of silently
    returning the last iterate.  Context frames carry the solver name,
    [nu] and the population size.

    [budget] is a [Po_sup.Budget] deadline/cancellation token
    (DESIGN.md §13), checked cooperatively at every aggregate
    evaluation — i.e. at each iteration of the segment search and of
    Brent — and surfacing as kind [Deadline_exceeded] or [Cancelled]
    with the same context frames.  A budget never changes a completed
    solve's output. *)

val solve_soa :
  ?budget:Po_sup.Budget.t -> ?context:context -> ?bracket:float * float ->
  ?weights:float array -> ?tol:float -> nu:float -> Cp_soa.t -> solution
(** {!solve} over a structure-of-arrays population: no [Cp.t] records
    are allocated anywhere on the solve path, which is what lets the
    n = 10^6 tier run with bounded memory.  Bit-identical to
    [solve ~nu (Cp_soa.to_cps soa)] on every input (test/test_soa.ml);
    same option semantics, error taxonomy and observability counters as
    {!solve}. *)

val solve_checked :
  ?budget:Po_sup.Budget.t -> ?context:context -> ?bracket:float * float ->
  ?weights:float array -> ?tol:float -> nu:float -> Cp.t array ->
  (solution, Po_guard.Po_error.t) result
(** {!solve} with the error channel reified: [Error] carries the typed
    failure ({!solve}'s [Po_guard.Po_error.Error] payload, or
    [Invalid_scenario] for domain errors such as bad weights). *)

val solve_soa_checked :
  ?budget:Po_sup.Budget.t -> ?context:context -> ?bracket:float * float ->
  ?weights:float array -> ?tol:float -> nu:float -> Cp_soa.t ->
  (solution, Po_guard.Po_error.t) result
(** {!solve_soa} with the error channel reified, mirroring
    {!solve_checked}. *)

val solve_reference :
  ?weights:float array -> ?tol:float -> nu:float -> Cp.t array -> solution
(** The retained differential-testing reference: identical segment
    search and Brent call, but every aggregate evaluation walks all [n]
    CPs with no prefix table and no bracket narrowing ever applies.
    {!solve} must agree with it bit for bit on every input; the
    [test_perf_kernel] suite enforces this. *)

val solve_absolute :
  ?budget:Po_sup.Budget.t -> ?weights:float array -> ?tol:float -> m:float ->
  mu:float -> Cp.t array -> solution
(** Equilibrium of an absolute system of [m > 0] consumers and capacity
    [mu >= 0]; equals [solve ~nu:(mu /. m)] by Axiom 4. *)

val theta_for : solution -> int -> float
(** Bounds-checked accessor. *)
