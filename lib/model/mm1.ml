type solution = {
  lambda : float;
  delay : float;
  quality : float;
  demand : float array;
  collapse : bool;
}

let quality_of_delay ~delay_ref delay =
  if Float.equal delay Float.infinity then 0.
  else 1. /. (1. +. (delay /. delay_ref))

let offered_load cps q =
  Array.fold_left
    (fun acc (cp : Cp.t) ->
      acc
      +. (cp.Cp.alpha
         *. Demand.eval cp.Cp.demand q
         *. cp.Cp.theta_hat))
    0. cps

let solution_at ~delay_ref cps lambda ~nu ~collapse =
  let delay =
    if collapse || lambda >= nu then Float.infinity else 1. /. (nu -. lambda)
  in
  let quality = quality_of_delay ~delay_ref delay in
  let demand =
    Array.map (fun (cp : Cp.t) -> Demand.eval cp.Cp.demand quality) cps
  in
  { lambda; delay; quality; demand; collapse }

let solve ?(delay_ref = 1.0) ?(tol = 1e-12) ~nu cps =
  if nu <= 0. then invalid_arg "Mm1.solve: nu <= 0";
  if delay_ref <= 0. then invalid_arg "Mm1.solve: delay_ref <= 0";
  let n = Array.length cps in
  if n = 0 then
    { lambda = 0.; delay = 1. /. nu; quality = quality_of_delay ~delay_ref (1. /. nu);
      demand = [||]; collapse = false }
  else begin
    (* Excess demand h(lambda) = offered(q(D(lambda))) - lambda is
       decreasing; a root below capacity is the stable operating point. *)
    let h lambda =
      let q = quality_of_delay ~delay_ref (1. /. (nu -. lambda)) in
      offered_load cps q -. lambda
    in
    let hi = nu *. (1. -. 1e-9) in
    if h 0. <= 0. then solution_at ~delay_ref cps 0. ~nu ~collapse:false
    else if h hi > 0. then
      (* Even at (numerically) infinite delay the offered load exceeds
         capacity: open-loop congestion collapse. *)
      solution_at ~delay_ref cps nu ~nu ~collapse:true
    else begin
      let outcome =
        Po_num.Roots.bisect ~tol ~max_iter:200 ~f:h ~lo:0. ~hi ()
      in
      solution_at ~delay_ref cps outcome.Po_num.Roots.root ~nu
        ~collapse:false
    end
  end

let consumer_surplus cps sol =
  if Array.length cps <> Array.length sol.demand then
    invalid_arg "Mm1.consumer_surplus: CP array mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i (cp : Cp.t) ->
      acc :=
        !acc
        +. (cp.Cp.phi *. cp.Cp.alpha *. sol.demand.(i) *. cp.Cp.theta_hat
           *. sol.quality))
    cps;
  !acc

let phi_curve ?delay_ref ~nus cps =
  Array.map (fun nu -> consumer_surplus cps (solve ?delay_ref ~nu cps)) nus
