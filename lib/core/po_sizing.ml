type point = {
  po_share : float;
  commercial_strategy : Strategy.t;
  commercial_share : float;
  phi : float;
  psi_commercial : float;
}

let sweep ?pool ?(levels = 2) ?(points = 7) ~nu ~po_shares cps =
  Po_par.Pool.maybe_map pool
    (fun po_share ->
      if not (po_share > 0. && po_share < 1.) then
        invalid_arg "Po_sizing.sweep: share outside (0, 1)";
      let cfg =
        Duopoly.config ~gamma_i:(1. -. po_share) ~nu
          ~strategy_i:Strategy.public_option ()
      in
      let strategy, eq =
        Duopoly.best_response_market_share ~levels ~points ~config:cfg cps
      in
      { po_share; commercial_strategy = strategy;
        commercial_share = eq.Duopoly.m_i; phi = eq.Duopoly.phi;
        psi_commercial = eq.Duopoly.psi_i })
    po_shares

type effectiveness = {
  sweep : point array;
  phi_unregulated : float;
  phi_neutral : float;
  minimum_effective_share : float option;
}

let effectiveness ?pool ?levels ?points ?(slack = 1e-3) ~nu ~po_shares cps =
  let swept = sweep ?pool ?levels ?points ~nu ~po_shares cps in
  let unregulated = Public_option.unregulated ?levels ?points ~nu cps in
  let neutral = Public_option.neutral ~nu cps in
  let phi_neutral = neutral.Public_option.phi in
  let minimum_effective_share =
    Array.fold_left
      (fun acc p ->
        match acc with
        | Some _ -> acc
        | None ->
            if p.phi >= phi_neutral *. (1. -. slack) then Some p.po_share
            else None)
      None swept
  in
  { sweep = swept;
    phi_unregulated = unregulated.Public_option.phi;
    phi_neutral;
    minimum_effective_share }
