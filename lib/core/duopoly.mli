(** Duopoly with consumer migration (Sec. IV-A).

    Two ISPs share a consumer population of (normalised) size 1 and total
    per-capita capacity [nu]; ISP [I] holds capacity share [gamma_i] and
    plays [s_I], ISP [J] holds [1 - gamma_i] and plays [s_J] (a Public
    Option plays [(0,0)]).  Consumers migrate towards the ISP delivering
    higher per-capita consumer surplus until surpluses equalise
    (Assumption 5); with market share [m] for ISP [I], per-capita
    capacities are [nu_I = gamma_i nu / m] and
    [nu_J = (1-gamma_i) nu / (1-m)].

    [Phi_I(m)] is non-increasing in [m] and [Phi_J(m)] non-decreasing
    (Theorem 2), so the equal-surplus condition is solved by bisection;
    corner equilibria ([m = 0] or [1]) arise when one ISP dominates at any
    split. *)

type config = {
  nu : float;  (** total per-capita capacity [mu / M] *)
  gamma_i : float;  (** ISP I's capacity share, in [(0, 1)] *)
  strategy_i : Strategy.t;
  strategy_j : Strategy.t;
}

val config :
  ?gamma_i:float -> ?strategy_j:Strategy.t -> nu:float ->
  strategy_i:Strategy.t -> unit -> config
(** [gamma_i] defaults to [0.5] (the paper's equal-capacity setting);
    [strategy_j] defaults to the Public Option. *)

type equilibrium = {
  m_i : float;  (** ISP I's market share *)
  nu_i : float;  (** ISP I's per-capita capacity ([infinity] at [m_i = 0]) *)
  nu_j : float;
  outcome_i : Cp_game.outcome;  (** CP game at ISP I (at the equilibrium split) *)
  outcome_j : Cp_game.outcome;
  phi : float;  (** population per-capita consumer surplus
                    [m Phi_I + (1-m) Phi_J] (equal to both in the interior) *)
  psi_i : float;  (** ISP I's surplus per head of the {e total} population *)
  psi_j : float;
  interior : bool;  (** whether the equilibrium is interior (equal surplus) *)
}

val solve : ?tol:float -> config -> Po_model.Cp.t array -> equilibrium
(** Find the migration equilibrium.  [tol] (default [1e-6]) is on the
    market share. *)

val price_sweep :
  ?pool:Po_par.Pool.t -> ?kappa_i:float -> config:config -> cs:float array ->
  Po_model.Cp.t array -> equilibrium array
(** Sweep ISP I's premium price, re-solving the migration equilibrium at
    each point (Fig. 7 generator).  [kappa_i] (default 1) overrides the
    kappa in [config.strategy_i].  Points are independent solves, so
    [pool] parallelises them with bit-identical results. *)

val capacity_sweep :
  ?pool:Po_par.Pool.t -> config:config -> nus:float array ->
  Po_model.Cp.t array -> equilibrium array
(** Sweep the total per-capita capacity (Fig. 8 generator); [pool] as in
    {!price_sweep}. *)

val best_response_market_share :
  ?levels:int -> ?points:int -> config:config -> Po_model.Cp.t array ->
  Strategy.t * equilibrium
(** ISP I's market-share-maximising strategy against [config.strategy_j]
    (grid refinement over the strategy square). *)

val best_response_consumer_surplus :
  ?levels:int -> ?points:int -> config:config -> Po_model.Cp.t array ->
  Strategy.t * equilibrium
(** ISP I's strategy maximising the population consumer surplus — the
    benchmark Theorem 5 compares against. *)

val check_theorem5 :
  ?tol:float -> ?strategies:Strategy.t array -> config:config ->
  Po_model.Cp.t array -> (unit, string) result
(** Audit Theorem 5 on a strategy sample: when ISP J is a Public Option,
    any strategy with (weakly) larger market share for ISP I also yields
    (weakly, within [tol]) larger consumer surplus than strategies with
    smaller shares — i.e. share maximisation and surplus maximisation
    coincide at the top. *)
