(** Oligopolistic ISP competition (Sec. IV-B).

    A set of ISPs with capacity shares [gamma_I] (summing to 1) and
    strategies [s_I] compete for consumers; consumers equalise per-capita
    surplus across ISPs (Definition 4).  Key results reproduced:

    - Lemma 4: homogeneous strategies give market shares proportional to
      capacity shares;
    - Theorem 6 / Corollary 1: market-share best responses are
      [epsilon]-best responses for consumer surplus, with [epsilon] the
      largest downward jump of the rivals' surplus curves (Eq. 9).

    The equal-surplus equilibrium is computed by bisecting the common
    surplus level [Phi*]: each ISP's surplus-vs-capacity curve is sampled
    once (warm-started) and inverted, giving the share it would hold at a
    candidate [Phi*]; the level is adjusted until shares sum to one. *)

type isp = {
  label : string;
  gamma : float;  (** capacity share, in (0, 1] *)
  strategy : Strategy.t;
}

type config = { nu : float; isps : isp array }

val config : nu:float -> isp array -> config
(** Validates: at least one ISP, every [gamma > 0], shares summing to 1
    within [1e-9]. *)

val homogeneous :
  ?gammas:float array -> nu:float -> n:int -> strategy:Strategy.t -> unit ->
  config
(** [n] ISPs playing the same strategy; [gammas] defaults to equal
    shares. *)

type equilibrium = {
  shares : float array;  (** market share per ISP (sums to 1) *)
  nus : float array;  (** per-capita capacity per ISP at the equilibrium *)
  phis : float array;  (** per-capita consumer surplus per ISP *)
  phi_star : float;  (** the common surplus level *)
  outcomes : Cp_game.outcome array;
  psis : float array;  (** ISP surplus per head of the total population *)
  over_provisioned : bool;
  (** [true] when total capacity lets every ISP deliver its maximum
      surplus; shares are then set proportionally to the capacity each
      would need at saturation. *)
}

val solve :
  ?pool:Po_par.Pool.t -> ?curve_points:int -> ?prices:float array -> config ->
  Po_model.Cp.t array -> equilibrium
(** [pool] parallelises the surplus-curve sampling across fixed chunks of
    warm-start chains without changing the result
    ({!Monopoly.capacity_sweep}).
    [curve_points] (default 140) controls the sampling of each ISP's
    surplus curve.  [prices] (default all zero) are consumer-side
    subscription prices in surplus units, one per ISP; consumers then
    equalise {e net} surplus [Phi_I - p_I] (Sec. VI discusses ISPs
    subsidising consumer fees from CP-side revenue — a negative price).
    [equilibrium.phi_star] is the common net level; [phis] stay gross.

    Every CP-game solve feeding the equilibrium — the surplus-curve
    samples and the final per-ISP outcomes — travels the typed error
    channel: a non-converged solve raises [Po_guard.Po_error.Error]
    with its sweep/stage context frames (DESIGN.md §10). *)

val solve_checked :
  ?pool:Po_par.Pool.t -> ?curve_points:int -> ?prices:float array -> config ->
  Po_model.Cp.t array -> (equilibrium, Po_guard.Po_error.t) result
(** {!solve} with the error channel reified: [Error] carries the typed
    failure of the first non-converged inner solve, or
    [Invalid_scenario] for domain errors (e.g. a prices length
    mismatch). *)

val best_response :
  ?pool:Po_par.Pool.t -> ?levels:int -> ?points:int -> ?curve_points:int ->
  i:int -> config -> Po_model.Cp.t array -> Strategy.t * equilibrium
(** ISP [i]'s market-share-maximising strategy against the others' fixed
    strategies (grid refinement). *)

val market_share_nash :
  ?pool:Po_par.Pool.t -> ?rounds:int -> ?strategies:Strategy.t array ->
  ?curve_points:int -> config -> Po_model.Cp.t array ->
  config * equilibrium * bool
(** Best-response dynamics over a finite strategy menu (default a coarse
    grid): ISPs revise in round-robin order until no ISP can improve its
    share, or [rounds] (default 10) passes elapse.  Returns the final
    profile, its equilibrium, and whether the dynamics converged —
    a (menu-restricted) market-share Nash equilibrium per Definition 6. *)

val market_share_nash_checked :
  ?pool:Po_par.Pool.t -> ?rounds:int -> ?strategies:Strategy.t array ->
  ?curve_points:int -> config -> Po_model.Cp.t array ->
  (config * equilibrium, Po_guard.Po_error.t) result
(** {!market_share_nash} with the convergence flag promoted into the
    typed error channel: dynamics that still move after [rounds] passes
    return [Error] with kind [Non_convergence] instead of a silently
    unconverged profile. *)

val check_lemma4 : ?tol:float -> config -> Po_model.Cp.t array -> (unit, string) result
(** For a homogeneous-strategy config, audit that equilibrium shares equal
    capacity shares within [tol] (default [5e-3]). *)

type alignment_audit = {
  share_best : Strategy.t;  (** strategy maximising ISP [i]'s market share *)
  surplus_best : Strategy.t;  (** strategy maximising the common surplus *)
  phi_deficit : float;
  (** [max_s Phi*(s) - Phi*(share_best)] — how much surplus share-chasing
      sacrifices (Theorem 6 bounds this by the rivals' epsilon) *)
  share_deficit : float;
  (** [max_s m(s) - m(surplus_best)] — how much share surplus-chasing
      sacrifices *)
  epsilon_rivals : float;
  (** measured largest downward jump of the rivals' surplus curves *)
}

val theorem6_audit :
  ?pool:Po_par.Pool.t -> ?strategies:Strategy.t array ->
  ?epsilon_nus:float array -> i:int -> config -> Po_model.Cp.t array ->
  alignment_audit
(** Evaluate the Theorem 6 alignment empirically over a strategy sample for
    ISP [i].  [epsilon_nus] is the capacity grid used to measure the
    rivals' surplus-curve jumps (defaults to 120 points spanning
    saturation). *)
