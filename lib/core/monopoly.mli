(** Monopolistic ISP analysis (Sec. III).

    A single last-mile ISP with per-capita capacity [nu] picks
    [s_I = (kappa, c)] to maximise its premium revenue
    [Psi = c * lambda_P / M]; the CPs then play the second-stage game.
    The section's analytical findings reproduced here:

    - Theorem 4: [s = (kappa, c)] is dominated by [(1, c)] — the
      unregulated monopolist starves the free class;
    - with abundant capacity the revenue-optimal price under-utilises the
      link and depresses consumer surplus (Fig. 4/5), motivating either
      network-neutral regulation or the Public Option. *)

type price_point = {
  c : float;
  psi : float;  (** per-capita ISP surplus at this price *)
  phi : float;  (** per-capita consumer surplus at this price *)
  premium_count : int;
  premium_load : float;  (** per-capita traffic carried by the premium class *)
  utilization : float;  (** carried fraction of total capacity [nu] *)
}

val point_of_outcome : Cp_game.outcome -> price_point
(** Project a CP-game outcome to the monopoly sweep observables. *)

val price_sweep :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> ?kappa:float -> nu:float ->
  cs:float array -> Po_model.Cp.t array -> price_point array
(** Sweep the premium price at fixed [kappa] (default 1, the dominant
    choice), warm-starting each CP-game solve from the previous price's
    partition within fixed chunks ({!Po_par.Pool.chain_map}; Fig. 4
    generator).  [pool] parallelises across chunks without changing the
    result. *)

val capacity_sweep :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> strategy:Strategy.t ->
  nus:float array -> Po_model.Cp.t array -> Cp_game.outcome array
(** Sweep per-capita capacity at a fixed strategy with chunked warm
    starts (Fig. 5 generator); same contract as {!price_sweep}. *)

val price_sweep_checked :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> ?kappa:float -> nu:float ->
  cs:float array -> Po_model.Cp.t array ->
  (price_point array, Po_guard.Po_error.t) result
(** {!price_sweep} with the typed error channel reified: the first
    non-converged or failed CP-game solve aborts the sweep and is
    returned as [Error] with its sweep/solver context frames
    (DESIGN.md §10).  Both sweeps raise on [converged = false] rather
    than silently folding a best-effort outcome into a figure. *)

val capacity_sweep_checked :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> strategy:Strategy.t ->
  nus:float array -> Po_model.Cp.t array ->
  (Cp_game.outcome array, Po_guard.Po_error.t) result
(** {!capacity_sweep} through the typed error channel (see
    {!price_sweep_checked}). *)

val optimal_price :
  ?kappa:float -> ?levels:int -> ?points:int -> nu:float ->
  Po_model.Cp.t array -> price_point
(** Revenue-maximising price at fixed [kappa] by multilevel grid refinement
    over [[0, max_i v_i]]. *)

val optimal_strategy :
  ?levels:int -> ?points:int -> nu:float -> Po_model.Cp.t array ->
  Strategy.t * Cp_game.outcome
(** Revenue-maximising [(kappa, c)] over the full strategy square. *)

type regime =
  | Unregulated  (** the ISP plays its revenue-optimal strategy *)
  | Neutral  (** regulation imposes [(0, 0)] *)
  | Capped of float  (** regulation caps [kappa]; ISP optimises below the cap *)
  | Fixed of Strategy.t  (** the ISP is committed to a given strategy *)

val regime_outcome : nu:float -> regime -> Po_model.Cp.t array -> Cp_game.outcome
(** Equilibrium outcome of the CP game under each regulatory regime.
    Grid probes during strategy optimisation are best-effort; the
    returned outcome itself may carry [converged = false] — use
    {!regime_outcome_checked} to reject that case. *)

val regime_outcome_checked :
  nu:float -> regime -> Po_model.Cp.t array ->
  (Cp_game.outcome, Po_guard.Po_error.t) result
(** {!regime_outcome} through the typed error channel: [Error] carries
    [Non_convergence] when the final outcome is best-effort and
    [Invalid_scenario] for domain errors (e.g. a kappa cap outside
    [0, 1]). *)

val check_theorem4 :
  ?tol:float -> nu:float -> c:float -> kappas:float array ->
  Po_model.Cp.t array -> (unit, string) result
(** Audit Theorem 4 numerically: at price [c], no [kappa] in the list
    earns more revenue than [kappa = 1]. *)
