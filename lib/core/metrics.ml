let sweep ?pool ?chunk_size ~strategy ~nus cps proj =
  Array.map proj
    (Monopoly.capacity_sweep ?pool ?chunk_size ~strategy ~nus cps)

let phi_curve ?pool ?chunk_size ~strategy ~nus cps =
  sweep ?pool ?chunk_size ~strategy ~nus cps (fun o -> o.Cp_game.phi)

let psi_curve ?pool ?chunk_size ~strategy ~nus cps =
  sweep ?pool ?chunk_size ~strategy ~nus cps (fun o -> o.Cp_game.psi)

let epsilon_of_curve phis = Po_num.Stats.max_downward_gap phis

let epsilon ?pool ?chunk_size ~strategy ~nus cps =
  let sorted = Array.copy nus in
  Array.sort Float.compare sorted;
  epsilon_of_curve (phi_curve ?pool ?chunk_size ~strategy ~nus:sorted cps)

let alignment_gap ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Metrics.alignment_gap: length mismatch";
  let gap = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if ys.(i) <= ys.(j) then gap := Float.max !gap (xs.(i) -. xs.(j))
    done
  done;
  Float.max 0. !gap
