open Po_model

type t = {
  consumer : float;
  isp : float;
  cp : float;
  total : float;
}

let zero = { consumer = 0.; isp = 0.; cp = 0.; total = 0. }

let add a b =
  { consumer = a.consumer +. b.consumer;
    isp = a.isp +. b.isp;
    cp = a.cp +. b.cp;
    total = a.total +. b.total }

let scale k a =
  { consumer = k *. a.consumer; isp = k *. a.isp; cp = k *. a.cp;
    total = k *. a.total }

let of_outcome cps (o : Cp_game.outcome) =
  if Array.length cps <> Array.length o.Cp_game.rho then
    invalid_arg "Welfare.of_outcome: CP array mismatch";
  let c = Strategy.c o.Cp_game.strategy in
  let cp_surplus = ref 0. in
  Array.iteri
    (fun i (cp : Cp.t) ->
      let price =
        if Partition.in_premium o.Cp_game.partition i then c else 0.
      in
      cp_surplus :=
        !cp_surplus +. ((cp.Cp.v -. price) *. cp.Cp.alpha *. o.Cp_game.rho.(i)))
    cps;
  let consumer = o.Cp_game.phi and isp = o.Cp_game.psi in
  { consumer; isp; cp = !cp_surplus; total = consumer +. isp +. !cp_surplus }

let of_duopoly cps (eq : Duopoly.equilibrium) =
  let m = eq.Duopoly.m_i in
  add
    (scale m (of_outcome cps eq.Duopoly.outcome_i))
    (scale (1. -. m) (of_outcome cps eq.Duopoly.outcome_j))

let of_oligopoly cps (eq : Oligopoly.equilibrium) =
  let acc = ref zero in
  Array.iteri
    (fun i outcome ->
      acc := add !acc (scale eq.Oligopoly.shares.(i) (of_outcome cps outcome)))
    eq.Oligopoly.outcomes;
  !acc

let regime_table ?pool ?(po_share = 0.5) ?(levels = 2) ?(points = 9) ~nu cps =
  let unregulated () =
    let _, outcome = Monopoly.optimal_strategy ~levels ~points ~nu cps in
    ("unregulated monopoly", of_outcome cps outcome)
  in
  let neutral () =
    let outcome = Cp_game.solve ~nu ~strategy:Strategy.public_option cps in
    ("network-neutral regulation", of_outcome cps outcome)
  in
  let public_option () =
    let cfg =
      Duopoly.config ~gamma_i:(1. -. po_share) ~nu
        ~strategy_i:Strategy.public_option ()
    in
    let _, eq = Duopoly.best_response_market_share ~levels ~points ~config:cfg cps in
    (Printf.sprintf "public option (share %g)" po_share, of_duopoly cps eq)
  in
  (* The regimes are independent solves; evaluate them as three pool
     tasks, keeping the published order. *)
  Array.to_list
    (Po_par.Pool.maybe_map pool
       (fun regime -> regime ())
       [| unregulated; neutral; public_option |])

let pp fmt t =
  Format.fprintf fmt
    "@[<h>consumer %.4g + isp %.4g + cp %.4g = %.4g@]" t.consumer t.isp t.cp
    t.total
