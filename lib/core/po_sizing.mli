(** Sizing the Public Option (Sec. VI discussion).

    The paper argues the Public Option works as a {e safety net}: "the
    more ISPs competing in a market, the less capacity we need to deploy
    for the Public Option to be effective", and even a slice comparable
    to the market share the monopolist cannot afford to lose (their
    example: 10%) suffices, because its mere existence re-aligns the
    commercial ISP with consumer surplus.

    This module quantifies that claim: sweep the capacity share carved
    out for the Public Option, let the commercial ISP best-respond for
    market share at each point, and compare the resulting consumer
    surplus against the two regulatory baselines. *)

type point = {
  po_share : float;  (** capacity share given to the Public Option *)
  commercial_strategy : Strategy.t;  (** the commercial ISP's best response *)
  commercial_share : float;  (** its equilibrium market share *)
  phi : float;  (** population per-capita consumer surplus *)
  psi_commercial : float;  (** commercial ISP revenue per total capita *)
}

val sweep :
  ?pool:Po_par.Pool.t -> ?levels:int -> ?points:int -> nu:float ->
  po_shares:float array -> Po_model.Cp.t array -> point array
(** One equilibrium per Public-Option share; [levels]/[points] control the
    commercial ISP's best-response grid (as in
    {!Duopoly.best_response_market_share}).  Shares are independent
    solves, so [pool] parallelises them with bit-identical results. *)

type effectiveness = {
  sweep : point array;
  phi_unregulated : float;  (** the no-PO monopoly baseline *)
  phi_neutral : float;  (** the neutrality-regulation baseline *)
  minimum_effective_share : float option;
  (** smallest swept share whose [phi] already (weakly) beats neutral
      regulation — the paper predicts this is small *)
}

val effectiveness :
  ?pool:Po_par.Pool.t -> ?levels:int -> ?points:int -> ?slack:float ->
  nu:float -> po_shares:float array -> Po_model.Cp.t array -> effectiveness
(** Full comparison; [slack] (default 1e-3, relative) is the tolerance on
    "beats neutral regulation". *)
