type monopoly_point = {
  nu : float;
  optimal_price : float;
  psi : float;
  phi : float;
}

let monopoly_revenue_curve ?pool ?(levels = 3) ?(points = 25) ~nus cps =
  Po_par.Pool.maybe_map pool
    (fun nu ->
      let best = Monopoly.optimal_price ~levels ~points ~nu cps in
      { nu; optimal_price = best.Monopoly.c; psi = best.Monopoly.psi;
        phi = best.Monopoly.phi })
    nus

type competition_point = {
  gamma : float;
  market_share : float;
  psi : float;
  phi : float;
}

let competition_share_curve ?pool ?(strategy = Strategy.make ~kappa:0.5 ~c:0.3)
    ~nu ~gammas cps =
  Po_par.Pool.maybe_map pool
    (fun gamma ->
      if not (gamma > 0. && gamma < 1.) then
        invalid_arg "Investment.competition_share_curve: gamma outside (0, 1)";
      let cfg =
        Duopoly.config ~gamma_i:gamma ~nu ~strategy_i:strategy
          ~strategy_j:strategy ()
      in
      let eq = Duopoly.solve cfg cps in
      { gamma; market_share = eq.Duopoly.m_i; psi = eq.Duopoly.psi_i;
        phi = eq.Duopoly.phi })
    gammas

let monopoly_expansion_profitable ?levels ?points ?(threshold = 0.02) ~nu_lo
    ~nu_hi cps =
  if nu_lo >= nu_hi then
    invalid_arg "Investment.monopoly_expansion_profitable: nu_lo >= nu_hi";
  let curve =
    monopoly_revenue_curve ?levels ?points ~nus:[| nu_lo; nu_hi |] cps
  in
  curve.(1).psi > curve.(0).psi *. (1. +. threshold)

type duopoly_point = {
  nu : float;
  optimal_price : float;
  psi : float;
  market_share : float;
}

let duopoly_revenue_curve ?pool ?(levels = 2) ?(points = 11) ~nus cps =
  let hi =
    Array.fold_left (fun acc (cp : Po_model.Cp.t) -> Float.max acc cp.Po_model.Cp.v) 0. cps
  in
  Po_par.Pool.maybe_map pool
    (fun nu ->
      let revenue c =
        let cfg =
          Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c) ()
        in
        (Duopoly.solve cfg cps).Duopoly.psi_i
      in
      let best =
        Po_num.Optimize.refine_grid_max ~levels ~points ~f:revenue ~lo:0.
          ~hi:(Float.max hi 1e-9) ()
      in
      let cfg =
        Duopoly.config ~nu
          ~strategy_i:(Strategy.make ~kappa:1. ~c:best.Po_num.Optimize.x)
          ()
      in
      let eq = Duopoly.solve cfg cps in
      { nu; optimal_price = best.Po_num.Optimize.x; psi = eq.Duopoly.psi_i;
        market_share = eq.Duopoly.m_i })
    nus
