open Po_model

type isp = {
  label : string;
  gamma : float;
  strategy : Strategy.t;
}

type config = { nu : float; isps : isp array }

let config ~nu isps =
  if nu < 0. then invalid_arg "Oligopoly.config: nu < 0";
  if Array.length isps = 0 then invalid_arg "Oligopoly.config: no ISPs";
  let total = Array.fold_left (fun acc i -> acc +. i.gamma) 0. isps in
  Array.iter
    (fun i -> if i.gamma <= 0. then invalid_arg "Oligopoly.config: gamma <= 0")
    isps;
  if Float.abs (total -. 1.) > 1e-9 then
    invalid_arg "Oligopoly.config: capacity shares must sum to 1";
  { nu; isps }

let homogeneous ?gammas ~nu ~n ~strategy () =
  if n <= 0 then invalid_arg "Oligopoly.homogeneous: n <= 0";
  let gammas =
    match gammas with
    | Some g ->
        if Array.length g <> n then
          invalid_arg "Oligopoly.homogeneous: gammas length mismatch";
        g
    | None -> Array.make n (1. /. float_of_int n)
  in
  config ~nu
    (Array.init n (fun i ->
         { label = Printf.sprintf "isp-%d" i; gamma = gammas.(i); strategy }))

type equilibrium = {
  shares : float array;
  nus : float array;
  phis : float array;
  phi_star : float;
  outcomes : Cp_game.outcome array;
  psis : float array;
  over_provisioned : bool;
}

let unconstrained_nu cps =
  Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps

(* Sampled, monotonised surplus-vs-capacity curve of one ISP strategy. *)
type curve = { nus : float array; phis : float array (* cumulative max *) }

let surplus_curve ?pool ?chunk_size ~curve_points ~nu_sat ~strategy cps =
  let nu_hi = (4. *. nu_sat) +. 1. in
  let nus = Po_num.Grid.linspace 0. nu_hi curve_points in
  (* The hand-rolled warm-start loop this used to carry is now the
     general chunked-chain sweep, so the curve parallelises across chunks
     with the same chain structure on any pool. *)
  let phis =
    Array.map
      (fun (o : Cp_game.outcome) -> o.Cp_game.phi)
      (Monopoly.capacity_sweep ?pool ?chunk_size ~strategy ~nus cps)
  in
  for i = 1 to Array.length phis - 1 do
    phis.(i) <- Float.max phis.(i) phis.(i - 1)
  done;
  { nus; phis }

(* Smallest sampled capacity delivering surplus >= level (linear
   interpolation inside the bracketing segment); None when the strategy
   cannot deliver [level] at any capacity. *)
let capacity_for_level curve level =
  let n = Array.length curve.nus in
  if level <= curve.phis.(0) then Some curve.nus.(0)
  else if level > curve.phis.(n - 1) then None
  else begin
    let idx = ref 1 in
    while curve.phis.(!idx) < level do
      incr idx
    done;
    let i = !idx in
    let y0 = curve.phis.(i - 1) and y1 = curve.phis.(i) in
    if Float.equal y1 y0 then Some curve.nus.(i)
    else
      Some
        (curve.nus.(i - 1)
        +. ((curve.nus.(i) -. curve.nus.(i - 1)) *. (level -. y0)
            /. (y1 -. y0)))
  end

let solve_given_curves ~nu_sat ~curves ?prices config cps =
  let n = Array.length config.isps in
  let prices =
    match prices with
    | None -> Array.make n 0.
    | Some p ->
        if Array.length p <> n then
          invalid_arg "Oligopoly.solve: prices length mismatch";
        p
  in
  (* Share ISP i would hold if consumers demanded a common {e net} surplus
     level (gross surplus minus the ISP's consumer-side price; a negative
     price is a subsidy). *)
  let share_at level i =
    let gross = level +. prices.(i) in
    if gross <= 0. then Float.infinity
    else
      match capacity_for_level curves.(i) gross with
      | None -> 0.
      | Some nu_i ->
          if nu_i <= 0. then Float.infinity
          else config.isps.(i).gamma *. config.nu /. nu_i
  in
  let total_share level =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. share_at level i
    done;
    !acc
  in
  let phi_max =
    let acc = ref 0. in
    Array.iteri
      (fun i (c : curve) ->
        acc := Float.max !acc (c.phis.(Array.length c.phis - 1) -. prices.(i)))
      curves;
    Float.max !acc 0.
  in
  let over_provisioned = phi_max <= 0. || total_share phi_max >= 1. in
  let phi_star, raw_shares =
    if over_provisioned then begin
      (* Everyone can deliver the max; split in proportion to the capacity
         each ISP would need at saturation. *)
      let at_max = Array.init n (fun i -> share_at phi_max i) in
      let finite =
        Array.map (fun s -> if Float.is_finite s then s else 1.) at_max
      in
      let total = Array.fold_left ( +. ) 0. finite in
      let shares =
        if total <= 0. then Array.make n (1. /. float_of_int n)
        else Array.map (fun s -> s /. total) finite
      in
      (phi_max, shares)
    end
    else begin
      (* total_share is decreasing in the level; bisect total = 1. *)
      let lo = ref 1e-12 and hi = ref phi_max in
      for _ = 1 to 100 do
        let mid = 0.5 *. (!lo +. !hi) in
        if total_share mid >= 1. then lo := mid else hi := mid
      done;
      let level = 0.5 *. (!lo +. !hi) in
      let shares = Array.init n (fun i -> share_at level i) in
      let shares =
        Array.map (fun s -> if Float.is_finite s then s else 1.) shares
      in
      let total = Array.fold_left ( +. ) 0. shares in
      let shares =
        if total <= 0. then Array.make n (1. /. float_of_int n)
        else Array.map (fun s -> s /. total) shares
      in
      (level, shares)
    end
  in
  let nu_big = (4. *. nu_sat) +. 1. in
  let nus =
    Array.init n (fun i ->
        if raw_shares.(i) <= 1e-12 then nu_big
        else
          Float.min nu_big
            (config.isps.(i).gamma *. config.nu /. raw_shares.(i)))
  in
  let outcomes =
    Array.init n (fun i ->
        Cp_game.ensure_converged
          ~context:
            [ ("stage", "oligopoly"); ("isp", config.isps.(i).label) ]
          (Cp_game.solve ~nu:nus.(i) ~strategy:config.isps.(i).strategy cps))
  in
  let phis = Array.map (fun (o : Cp_game.outcome) -> o.Cp_game.phi) outcomes in
  let psis =
    Array.init n (fun i -> raw_shares.(i) *. outcomes.(i).Cp_game.psi)
  in
  { shares = raw_shares; nus; phis; phi_star; outcomes; psis;
    over_provisioned }

let solve ?pool ?(curve_points = 140) ?prices config cps =
  let nu_sat = Float.max (unconstrained_nu cps) 1e-9 in
  let curves =
    Array.map
      (fun isp ->
        surplus_curve ?pool ~curve_points ~nu_sat ~strategy:isp.strategy cps)
      config.isps
  in
  solve_given_curves ~nu_sat ~curves ?prices config cps

let solve_checked ?pool ?curve_points ?prices config cps =
  Po_guard.Po_error.capture (fun () ->
      match solve ?pool ?curve_points ?prices config cps with
      | eq -> eq
      | exception Invalid_argument msg ->
          Po_guard.Po_error.fail
            (Po_guard.Po_error.Invalid_scenario msg))

(* The surplus curve of a strategy is independent of the rival profile, so
   searches over a strategy menu cache one curve per strategy. *)
(* R2-audit (no directive needed; only find_opt/add/mem/replace): the curve cache is keyed by
   Strategy.to_string and only ever read back through find_opt/add; it is
   never iterated, so Hashtbl order cannot reach any result. *)
let cached_solve ?pool ~curve_points ~nu_sat ~cache config cps =
  let curves =
    Array.map
      (fun isp ->
        let key = Strategy.to_string isp.strategy in
        match Hashtbl.find_opt cache key with
        | Some curve -> curve
        | None ->
            let curve =
              surplus_curve ?pool ~curve_points ~nu_sat ~strategy:isp.strategy
                cps
            in
            Hashtbl.add cache key curve;
            curve)
      config.isps
  in
  solve_given_curves ~nu_sat ~curves config cps

let max_revenue_price cps =
  Array.fold_left (fun acc (cp : Cp.t) -> Float.max acc cp.Cp.v) 0. cps

let with_strategy config i strategy =
  { config with
    isps =
      Array.mapi
        (fun j isp -> if j = i then { isp with strategy } else isp)
        config.isps }

let best_response ?pool ?(levels = 2) ?(points = 7) ?curve_points ~i config
    cps =
  if i < 0 || i >= Array.length config.isps then
    invalid_arg "Oligopoly.best_response: ISP index out of bounds";
  let hi_c = Float.max (max_revenue_price cps) 1e-9 in
  let share kappa c =
    let cfg = with_strategy config i (Strategy.make ~kappa ~c) in
    (solve ?pool ?curve_points cfg cps).shares.(i)
  in
  let best =
    Po_num.Optimize.refine_grid_max2 ~levels ~points ~f:share ~lo1:0. ~hi1:1.
      ~lo2:0. ~hi2:hi_c ()
  in
  let strategy =
    Strategy.make ~kappa:best.Po_num.Optimize.x1 ~c:best.Po_num.Optimize.x2
  in
  (strategy, solve ?pool ?curve_points (with_strategy config i strategy) cps)

let market_share_nash ?pool ?(rounds = 10) ?strategies ?(curve_points = 90)
    config cps =
  let menu =
    match strategies with
    | Some s ->
        if Array.length s = 0 then
          invalid_arg "Oligopoly.market_share_nash: empty strategy menu";
        s
    | None ->
        Strategy.grid
          ~kappas:(Po_num.Grid.linspace 0. 1. 3)
          ~cs:
            (Po_num.Grid.linspace 0.
               (Float.max (max_revenue_price cps) 1e-9)
               4)
          ()
  in
  let n = Array.length config.isps in
  let nu_sat = Float.max (unconstrained_nu cps) 1e-9 in
  (* R2-audit (no directive needed; only find_opt/add/mem/replace): per-search curve cache, find_opt/add
     only (see cached_solve); never iterated. *)
  let cache = Hashtbl.create 16 in
  let solve_cached cfg =
    cached_solve ?pool ~curve_points ~nu_sat ~cache cfg cps
  in
  let current = ref config in
  let converged = ref false in
  let round = ref 0 in
  while (not !converged) && !round < rounds do
    incr round;
    let moved = ref false in
    for i = 0 to n - 1 do
      let base_share = (solve_cached !current).shares.(i) in
      let best_s = ref (!current).isps.(i).strategy in
      let best_share = ref base_share in
      Array.iter
        (fun s ->
          if not (Strategy.equal s !best_s) then begin
            let share = (solve_cached (with_strategy !current i s)).shares.(i) in
            if share > !best_share +. 1e-9 then begin
              best_s := s;
              best_share := share
            end
          end)
        menu;
      if not (Strategy.equal !best_s (!current).isps.(i).strategy) then begin
        current := with_strategy !current i !best_s;
        moved := true
      end
    done;
    if not !moved then converged := true
  done;
  (!current, solve_cached !current, !converged)

let market_share_nash_checked ?pool ?rounds ?strategies ?curve_points config
    cps =
  Po_guard.Po_error.capture (fun () ->
      match market_share_nash ?pool ?rounds ?strategies ?curve_points config
              cps
      with
      | cfg, eq, true -> (cfg, eq)
      | _, _, false ->
          Po_guard.Po_error.fail
            ~context:[ ("stage", "market_share_nash") ]
            (Po_guard.Po_error.Non_convergence
               { residual = Float.nan;
                 iterations = Option.value rounds ~default:10 })
      | exception Invalid_argument msg ->
          Po_guard.Po_error.fail
            (Po_guard.Po_error.Invalid_scenario msg))

let check_lemma4 ?(tol = 5e-3) config cps =
  let s0 = config.isps.(0).strategy in
  Array.iter
    (fun isp ->
      if not (Strategy.equal isp.strategy s0) then
        invalid_arg "Oligopoly.check_lemma4: strategies are not homogeneous")
    config.isps;
  let eq = solve config cps in
  let bad = ref None in
  Array.iteri
    (fun i isp ->
      if Option.is_none !bad && Float.abs (eq.shares.(i) -. isp.gamma) > tol
      then bad := Some (i, isp.gamma, eq.shares.(i)))
    config.isps;
  match !bad with
  | None -> Ok ()
  | Some (i, gamma, share) ->
      Error
        (Printf.sprintf
           "lemma 4 violated: ISP %d has capacity share %g but market \
            share %g"
           i gamma share)

type alignment_audit = {
  share_best : Strategy.t;
  surplus_best : Strategy.t;
  phi_deficit : float;
  share_deficit : float;
  epsilon_rivals : float;
}

let theorem6_audit ?pool ?strategies ?epsilon_nus ~i config cps =
  if i < 0 || i >= Array.length config.isps then
    invalid_arg "Oligopoly.theorem6_audit: ISP index out of bounds";
  let menu =
    match strategies with
    | Some s -> s
    | None ->
        Strategy.grid
          ~kappas:(Po_num.Grid.linspace 0. 1. 4)
          ~cs:
            (Po_num.Grid.linspace 0.
               (Float.max (max_revenue_price cps) 1e-9)
               4)
          ()
  in
  let nu_sat = Float.max (unconstrained_nu cps) 1e-9 in
  (* R2-audit (no directive needed; only find_opt/add/mem/replace): per-audit curve cache, find_opt/add only
     (see cached_solve); never iterated. *)
  let cache = Hashtbl.create 16 in
  let evaluated =
    Array.map
      (fun s ->
        let eq =
          cached_solve ?pool ~curve_points:120 ~nu_sat ~cache
            (with_strategy config i s) cps
        in
        (s, eq.shares.(i), eq.phi_star))
      menu
  in
  let argmax proj =
    Array.fold_left
      (fun ((_, _, _) as acc) ((_, _, _) as r) ->
        if proj r > proj acc then r else acc)
      evaluated.(0) evaluated
  in
  let share_best, _, phi_at_share_best = argmax (fun (_, m, _) -> m) in
  let surplus_best, m_at_surplus_best, _ = argmax (fun (_, _, p) -> p) in
  let _, _, max_phi = argmax (fun (_, _, p) -> p) in
  let _, max_share, _ = argmax (fun (_, m, _) -> m) in
  let epsilon_nus =
    match epsilon_nus with
    | Some g -> g
    | None -> Po_num.Grid.linspace 0. ((4. *. nu_sat) +. 1.) 120
  in
  let epsilon_rivals =
    let eps = ref 0. in
    Array.iteri
      (fun j isp ->
        if j <> i then begin
          let phis =
            Metrics.phi_curve ?pool ~strategy:isp.strategy ~nus:epsilon_nus
              cps
          in
          eps := Float.max !eps (Po_num.Stats.max_downward_gap phis)
        end)
      config.isps;
    !eps
  in
  { share_best; surplus_best;
    phi_deficit = Float.max 0. (max_phi -. phi_at_share_best);
    share_deficit = Float.max 0. (max_share -. m_at_surplus_best);
    epsilon_rivals }
