open Po_model

let log_src = Logs.Src.create "po.cp_game" ~doc:"CP-game equilibrium solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type solution_concept =
  | Competitive of float
  | Expost_nash

type outcome = {
  strategy : Strategy.t;
  nu : float;
  partition : Partition.t;
  theta : float array;
  rho : float array;
  cap_ordinary : float;
  cap_premium : float;
  lambda_ordinary : float;
  lambda_premium : float;
  phi : float;
  psi : float;
  converged : bool;
  iterations : int;
  concept : solution_concept;
}

let class_solution ~nu_class cps =
  if nu_class < 0. then invalid_arg "Cp_game.class_solution: nu_class < 0";
  if Float.equal nu_class 0. then
    (* Zero capacity throttles everyone to zero, including the view an
       entrant would take of the class. *)
    let n = Array.length cps in
    { Equilibrium.theta = Array.make n 0.; demand = Array.make n 0.;
      rho = Array.make n 0.; per_capita_rate = 0.; congested = n > 0;
      cap = 0. }
  else Equilibrium.solve ~nu:nu_class cps

(* Water level an entrant perceives (Assumption 3): the class's current cap,
   0 when it has no capacity. *)
let entrant_cap ~nu_class (sol : Equilibrium.solution) =
  if Float.equal nu_class 0. then 0. else sol.Equilibrium.cap

let rho_at_cap (cp : Cp.t) cap =
  let theta = Float.min cp.Cp.theta_hat (Float.max cap 0.) in
  Cp.rho cp ~theta

(* Throughput-taking estimate (Assumption 3) of the per-user rate a CP
   expects in a class whose current water level is [cap].  An {e empty}
   class has no level to take — its cap is formally infinite, which would
   lure every CP simultaneously and destabilise the iteration — so the
   entrant anticipates its own solo equilibrium there instead. *)
let estimate_rho (cp : Cp.t) ~nu_class ~occupied cap =
  if Float.equal nu_class 0. then 0.
  else if occupied then rho_at_cap cp cap
  else (Equilibrium.solve ~nu:nu_class [| cp |]).Equilibrium.rho.(0)

let class_capacities ~nu ~strategy =
  let kappa = Strategy.kappa strategy in
  ((1. -. kappa) *. nu, kappa *. nu)

let outcome_of_partition ~nu ~strategy cps partition =
  if nu < 0. then invalid_arg "Cp_game.outcome_of_partition: nu < 0";
  let n = Array.length cps in
  if Partition.size partition <> n then
    invalid_arg "Cp_game.outcome_of_partition: partition size mismatch";
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let ordinary = Partition.ordinary_members partition cps in
  let premium = Partition.premium_members partition cps in
  let sol_o = class_solution ~nu_class:nu_o ordinary in
  let sol_p = class_solution ~nu_class:nu_p premium in
  let theta = Array.make n 0. and rho = Array.make n 0. in
  let fill indices (sol : Equilibrium.solution) =
    Array.iteri
      (fun pos idx ->
        theta.(idx) <- sol.Equilibrium.theta.(pos);
        rho.(idx) <- sol.Equilibrium.rho.(pos))
      indices
  in
  fill (Partition.ordinary_indices partition) sol_o;
  fill (Partition.premium_indices partition) sol_p;
  let phi = Surplus.consumer ordinary sol_o +. Surplus.consumer premium sol_p in
  let lambda_premium = sol_p.Equilibrium.per_capita_rate in
  { strategy; nu; partition; theta; rho;
    cap_ordinary = entrant_cap ~nu_class:nu_o sol_o;
    cap_premium = entrant_cap ~nu_class:nu_p sol_p;
    lambda_ordinary = sol_o.Equilibrium.per_capita_rate; lambda_premium;
    phi; psi = Strategy.c strategy *. lambda_premium; converged = true;
    iterations = 0; concept = Competitive 0. }

(* One simultaneous best-response round: every CP re-decides against the
   current water levels.  Returns the new membership vector. *)
let simultaneous_round ~nu ~strategy cps partition =
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let sol_o =
    class_solution ~nu_class:nu_o (Partition.ordinary_members partition cps)
  in
  let sol_p =
    class_solution ~nu_class:nu_p (Partition.premium_members partition cps)
  in
  let cap_o = entrant_cap ~nu_class:nu_o sol_o in
  let cap_p = entrant_cap ~nu_class:nu_p sol_p in
  let occupied_o = Partition.ordinary_count partition > 0 in
  let occupied_p = Partition.premium_count partition > 0 in
  Partition.of_premium_indicator
    (Array.map
       (fun (cp : Cp.t) ->
         let u_ordinary =
           cp.Cp.v *. estimate_rho cp ~nu_class:nu_o ~occupied:occupied_o cap_o
         in
         let u_premium =
           (cp.Cp.v -. c)
           *. estimate_rho cp ~nu_class:nu_p ~occupied:occupied_p cap_p
         in
         u_premium > u_ordinary)
       cps)

let default_hysteresis = 1e-3

(* Asynchronous pass: CPs re-decide one at a time in index order.  Water
   levels are cached and recomputed only after a CP actually moves, so a
   quiescent pass costs two class solves total.  [hysteresis] is a relative
   switching threshold: a CP moves only when the other class improves its
   utility by that margin — the finite-population analogue of the
   throughput-taking assumption, without which a marginal CP whose own
   membership shifts the water level past its indifference point would
   flip for ever.  Returns the partition and whether any CP moved. *)
let asynchronous_pass ?(hysteresis = 0.) ~nu ~strategy cps partition =
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let current = ref partition in
  let moved = ref false in
  let caps = ref None in
  let current_caps () =
    match !caps with
    | Some pair -> pair
    | None ->
        let sol_o =
          class_solution ~nu_class:nu_o
            (Partition.ordinary_members !current cps)
        in
        let sol_p =
          class_solution ~nu_class:nu_p
            (Partition.premium_members !current cps)
        in
        let pair =
          (entrant_cap ~nu_class:nu_o sol_o, entrant_cap ~nu_class:nu_p sol_p)
        in
        caps := Some pair;
        pair
  in
  Array.iteri
    (fun i (cp : Cp.t) ->
      let cap_o, cap_p = current_caps () in
      let occupied_o = Partition.ordinary_count !current > 0 in
      let occupied_p = Partition.premium_count !current > 0 in
      let u_ordinary =
        cp.Cp.v *. estimate_rho cp ~nu_class:nu_o ~occupied:occupied_o cap_o
      in
      let u_premium =
        (cp.Cp.v -. c)
        *. estimate_rho cp ~nu_class:nu_p ~occupied:occupied_p cap_p
      in
      let in_premium = Partition.in_premium !current i in
      let margin u = Float.abs u *. hysteresis in
      let wants_premium =
        if in_premium then u_premium >= u_ordinary -. margin u_premium
        else u_premium > u_ordinary +. margin u_ordinary
      in
      if wants_premium <> in_premium then begin
        current := Partition.move !current i ~premium:wants_premium;
        moved := true;
        caps := None
      end)
    cps;
  (!current, !moved)

let default_init ~strategy cps =
  if Float.equal (Strategy.kappa strategy) 0. then
    Partition.all_ordinary (Array.length cps)
  else
    Partition.of_premium_pred cps (fun cp ->
        cp.Cp.v > Strategy.c strategy)

(* Ex-post per-capita throughput a deviator obtains in a target class. *)
let expost_rho ~nu_class members (cp : Cp.t) =
  if Float.equal nu_class 0. then 0.
  else begin
    let extended = Array.append members [| cp |] in
    let sol = Equilibrium.solve ~nu:nu_class extended in
    sol.Equilibrium.rho.(Array.length members)
  end

(* Actual per-capita throughput of CP [i] inside its own class. *)
let own_rho partition cps (sol_o : Equilibrium.solution)
    (sol_p : Equilibrium.solution) i =
  let indices, sol =
    if Partition.in_premium partition i then
      (Partition.premium_indices partition, sol_p)
    else (Partition.ordinary_indices partition, sol_o)
  in
  let pos = ref (-1) in
  Array.iteri (fun p idx -> if idx = i then pos := p) indices;
  assert (!pos >= 0);
  ignore cps;
  sol.Equilibrium.rho.(!pos)

let solve_nash ?init ?(max_rounds = 100) ~nu ~strategy cps =
  if nu < 0. then invalid_arg "Cp_game.solve_nash: nu < 0";
  let init =
    match init with Some p -> p | None -> default_init ~strategy cps
  in
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let pass partition =
    let current = ref partition in
    let moved = ref false in
    Array.iteri
      (fun i (cp : Cp.t) ->
        let ordinary = Partition.ordinary_members !current cps in
        let premium = Partition.premium_members !current cps in
        let sol_o = class_solution ~nu_class:nu_o ordinary in
        let sol_p = class_solution ~nu_class:nu_p premium in
        let rho_own = own_rho !current cps sol_o sol_p i in
        let wants_premium =
          if Partition.in_premium !current i then
            let rho_dev = expost_rho ~nu_class:nu_o ordinary cp in
            (cp.Cp.v -. c) *. rho_own > cp.Cp.v *. rho_dev
          else
            let rho_dev = expost_rho ~nu_class:nu_p premium cp in
            (cp.Cp.v -. c) *. rho_dev > cp.Cp.v *. rho_own
        in
        if wants_premium <> Partition.in_premium !current i then begin
          current := Partition.move !current i ~premium:wants_premium;
          moved := true
        end)
      cps;
    (!current, !moved)
  in
  let rec loop partition round =
    if round >= max_rounds then
      { (outcome_of_partition ~nu ~strategy cps partition) with
        converged = false; iterations = round; concept = Expost_nash }
    else
      let partition', moved = pass partition in
      if not moved then
        { (outcome_of_partition ~nu ~strategy cps partition') with
          converged = true; iterations = round + 1; concept = Expost_nash }
      else loop partition' (round + 1)
  in
  loop init 0

let solve ?init ?(max_iter = 200) ~nu ~strategy cps =
  if nu < 0. then invalid_arg "Cp_game.solve: nu < 0";
  let init =
    match init with Some p -> p | None -> default_init ~strategy cps
  in
  if Partition.size init <> Array.length cps then
    invalid_arg "Cp_game.solve: init partition size mismatch";
  (* polint: allow R2 — audited: cycle-detection set over partition keys;
     only mem/add are used, nothing is ever iterated, so Hashtbl order
     cannot influence which partition the solver settles on. *)
  let seen = Hashtbl.create 64 in
  let finish ?(tolerance = 0.) partition ~converged ~iterations =
    { (outcome_of_partition ~nu ~strategy cps partition) with
      converged; iterations; concept = Competitive tolerance }
  in
  (* Phase 3: tolerant asynchronous passes.  A quiescent pass at threshold
     [h] is an eps-competitive equilibrium with eps = h.  The threshold
     escalates geometrically every few passes because the displacement one
     CP causes to a class's water level — the force behind persistent
     flipping — scales with 1/|class| and can exceed any fixed margin. *)
  let rec tolerant partition rounds_used passes =
    if passes > 60 then begin
      (* Throughput-taking best responses refuse to settle: with few CPs a
         single provider can be a large fraction of a class's load, and a
         competitive equilibrium need not exist at all.  Ex-post (Nash)
         best responses are well defined at any population size, and the
         paper treats both concepts as interchangeable equilibria. *)
      Log.debug (fun m ->
          m "tolerant phase exhausted at nu=%g %s; falling back to ex-post \
             Nash" nu
            (Strategy.to_string strategy));
      let nash = solve_nash ~init:partition ~nu ~strategy cps in
      { nash with
        iterations = rounds_used + passes + nash.iterations }
    end
    else
      let hysteresis =
        default_hysteresis *. (2. ** float_of_int (passes / 6))
      in
      let partition', moved =
        asynchronous_pass ~hysteresis ~nu ~strategy cps partition
      in
      if not moved then
        finish ~tolerance:hysteresis partition' ~converged:true
          ~iterations:(rounds_used + passes + 1)
      else tolerant partition' rounds_used (passes + 1)
  in
  (* Phase 2: strict asynchronous damping after a cycle; if marginal CPs
     keep flipping (their own membership moves the water level past their
     indifference point), fall through to the tolerant phase. *)
  let rec async partition rounds_used passes =
    if passes > 8 then tolerant partition (rounds_used + passes) 0
    else
      let partition', moved = asynchronous_pass ~nu ~strategy cps partition in
      if not moved then
        finish partition' ~converged:true ~iterations:(rounds_used + passes + 1)
      else async partition' rounds_used (passes + 1)
  in
  (* Phase 1: fast simultaneous rounds with cycle detection.  On a cycle,
     continue from the cycle iterate with the larger premium class: cycles
     typically alternate with a degenerate near-empty class (whose infinite
     entrant estimate lures everyone back in), and the populous iterate is
     the one near the equilibrium, sparing the asynchronous phase most of
     its one-CP-at-a-time walk. *)
  let rec sync partition previous n =
    if n >= max_iter then finish partition ~converged:false ~iterations:n
    else begin
      let key = Partition.key partition in
      if Hashtbl.mem seen key then begin
        Log.debug (fun m ->
            m "cycle detected after %d simultaneous rounds at nu=%g %s" n nu
              (Strategy.to_string strategy));
        let start =
          match previous with
          | Some p
            when Partition.premium_count p
                 > Partition.premium_count partition ->
              p
          | _ -> partition
        in
        async start n 0
      end
      else begin
        Hashtbl.add seen key ();
        let partition' = simultaneous_round ~nu ~strategy cps partition in
        if Partition.equal partition partition' then
          finish partition' ~converged:true ~iterations:(n + 1)
        else sync partition' (Some partition) (n + 1)
      end
    end
  in
  sync init None 0

let check_competitive ?(tol = 1e-9) ?(rel_tol = 0.) ~nu ~strategy cps
    partition =
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let sol_o =
    class_solution ~nu_class:nu_o (Partition.ordinary_members partition cps)
  in
  let sol_p =
    class_solution ~nu_class:nu_p (Partition.premium_members partition cps)
  in
  let cap_o = entrant_cap ~nu_class:nu_o sol_o in
  let cap_p = entrant_cap ~nu_class:nu_p sol_p in
  let occupied_o = Partition.ordinary_count partition > 0 in
  let occupied_p = Partition.premium_count partition > 0 in
  let bad = ref None in
  Array.iteri
    (fun i (cp : Cp.t) ->
      if !bad = None then begin
        let u_ordinary =
          cp.Cp.v *. estimate_rho cp ~nu_class:nu_o ~occupied:occupied_o cap_o
        in
        let u_premium =
          (cp.Cp.v -. c)
          *. estimate_rho cp ~nu_class:nu_p ~occupied:occupied_p cap_p
        in
        (* Ties (within the slack) are acceptable in either class; only a
           clear preference for the other class is a violation. *)
        if Partition.in_premium partition i then begin
          if u_premium < u_ordinary -. tol -. (rel_tol *. Float.abs u_premium)
          then
            bad :=
              Some
                (Printf.sprintf "CP %d in premium but u_p=%g < u_o=%g" i
                   u_premium u_ordinary)
        end
        else if u_premium > u_ordinary +. tol +. (rel_tol *. Float.abs u_ordinary)
        then
          bad :=
            Some
              (Printf.sprintf "CP %d in ordinary but u_p=%g > u_o=%g" i
                 u_premium u_ordinary)
      end)
    cps;
  match !bad with None -> Ok () | Some msg -> Error msg

let check_nash ?(tol = 1e-9) ~nu ~strategy cps partition =
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let ordinary = Partition.ordinary_members partition cps in
  let premium = Partition.premium_members partition cps in
  let sol_o = class_solution ~nu_class:nu_o ordinary in
  let sol_p = class_solution ~nu_class:nu_p premium in
  let bad = ref None in
  Array.iteri
    (fun i (cp : Cp.t) ->
      if !bad = None then begin
        let rho_own = own_rho partition cps sol_o sol_p i in
        if Partition.in_premium partition i then begin
          (* Deviating to ordinary: evaluated with i included there. *)
          let rho_dev = expost_rho ~nu_class:nu_o ordinary cp in
          let u_stay = (cp.Cp.v -. c) *. rho_own in
          let u_dev = cp.Cp.v *. rho_dev in
          if u_stay < u_dev -. tol then
            bad :=
              Some
                (Printf.sprintf
                   "CP %d in premium gains by leaving (stay=%g, deviate=%g)"
                   i u_stay u_dev)
        end
        else begin
          let rho_dev = expost_rho ~nu_class:nu_p premium cp in
          let u_stay = cp.Cp.v *. rho_own in
          let u_dev = (cp.Cp.v -. c) *. rho_dev in
          if u_dev > u_stay +. tol then
            bad :=
              Some
                (Printf.sprintf
                   "CP %d in ordinary strictly gains by joining premium \
                    (stay=%g, deviate=%g)"
                   i u_stay u_dev)
        end
      end)
    cps;
  match !bad with None -> Ok () | Some msg -> Error msg
