open Po_model

let log_src = Logs.Src.create "po.cp_game" ~doc:"CP-game equilibrium solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type solution_concept =
  | Competitive of float
  | Expost_nash

(* Observability counters (DESIGN.md §11).  Every increment is tied to
   a logical step of one game solve — a pure function of that solve's
   inputs — so totals are jobs-invariant; disarmed each costs one
   atomic load. *)
let m_solves = Po_obs.Metrics.counter "cp_game.solves"

let m_sync_rounds = Po_obs.Metrics.counter "cp_game.sync_rounds"

let m_async_passes = Po_obs.Metrics.counter "cp_game.async_passes"

let m_nash_passes = Po_obs.Metrics.counter "cp_game.nash_passes"

let m_moves = Po_obs.Metrics.counter "cp_game.moves"

let m_class_hits = Po_obs.Metrics.counter "cp_game.class_memo_hits"

let m_class_misses = Po_obs.Metrics.counter "cp_game.class_memo_misses"

let m_solo_hits = Po_obs.Metrics.counter "cp_game.solo_memo_hits"

let m_solo_misses = Po_obs.Metrics.counter "cp_game.solo_memo_misses"

type outcome = {
  strategy : Strategy.t;
  nu : float;
  partition : Partition.t;
  theta : float array;
  rho : float array;
  cap_ordinary : float;
  cap_premium : float;
  lambda_ordinary : float;
  lambda_premium : float;
  phi : float;
  psi : float;
  converged : bool;
  iterations : int;
  concept : solution_concept;
}

let zero_class_solution n =
  (* Zero capacity throttles everyone to zero, including the view an
     entrant would take of the class. *)
  { Equilibrium.theta = Array.make n 0.; demand = Array.make n 0.;
    rho = Array.make n 0.; per_capita_rate = 0.; congested = n > 0;
    cap = 0. }

let class_solution ~nu_class cps =
  if nu_class < 0. then invalid_arg "Cp_game.class_solution: nu_class < 0";
  if Float.equal nu_class 0. then zero_class_solution (Array.length cps)
  else Equilibrium.solve ~nu:nu_class cps

(* Water level an entrant perceives (Assumption 3): the class's current cap,
   0 when it has no capacity. *)
let entrant_cap ~nu_class (sol : Equilibrium.solution) =
  if Float.equal nu_class 0. then 0. else sol.Equilibrium.cap

let rho_at_cap (cp : Cp.t) cap =
  let theta = Float.min cp.Cp.theta_hat (Float.max cap 0.) in
  Cp.rho cp ~theta

let class_capacities ~nu ~strategy =
  let kappa = Strategy.kappa strategy in
  ((1. -. kappa) *. nu, kappa *. nu)

(* ------------------------------------------------------------------ *)
(* Population operations                                              *)
(* ------------------------------------------------------------------ *)

(* The search phases below never touch a population directly: they see
   it through this vtable, abstract in the storage type ['pop].  Two
   families instantiate it — boxed [Cp.t] arrays (the optimized record
   engine and the retained reference engine, which differ only in the
   equilibrium kernel behind [solve_class]) and {!Cp_soa.t} float
   columns (DESIGN.md §12), whose class solves run {!Equilibrium.solve_soa}
   with no record materialisation anywhere on the hot path.  Every
   operation is bit-identical across the families on equal populations,
   so the game solver is too (test/test_soa.ml pins it). *)
type 'pop ops = {
  size : 'pop -> int;
  id_at : 'pop -> int -> int;  (* memo identity of CP [i] *)
  v_at : 'pop -> int -> float;
  rho_at_cap : 'pop -> int -> float -> float;
  members : 'pop -> Partition.t -> premium:bool -> 'pop;
  solve_class :
    bracket:(float * float) option -> nu:float -> 'pop ->
    Equilibrium.solution;
  solve_solo : nu:float -> 'pop -> int -> Equilibrium.solution;
  solve_extended :
    bracket:(float * float) option -> nu:float -> 'pop -> 'pop -> int ->
    Equilibrium.solution;
      (* members extended with CP [i] of the population, in last position *)
  consumer : 'pop -> Equilibrium.solution -> float;
}

let record_ops kernel =
  { size = Array.length;
    id_at = (fun cps i -> cps.(i).Cp.id);
    v_at = (fun cps i -> cps.(i).Cp.v);
    rho_at_cap = (fun cps i cap -> rho_at_cap cps.(i) cap);
    members =
      (fun cps partition ~premium ->
        if premium then Partition.premium_members partition cps
        else Partition.ordinary_members partition cps);
    solve_class = kernel;
    solve_solo = (fun ~nu cps i -> kernel ~bracket:None ~nu [| cps.(i) |]);
    solve_extended =
      (fun ~bracket ~nu members cps i ->
        kernel ~bracket ~nu (Array.append members [| cps.(i) |]));
    consumer = (fun cps sol -> Surplus.consumer cps sol) }

let soa_ops =
  { size = Cp_soa.length;
    id_at = (fun _ i -> i);  (* the index is the SoA identity *)
    v_at = Cp_soa.v;
    rho_at_cap =
      (fun soa i cap ->
        let theta = Float.min (Cp_soa.theta_hat soa i) (Float.max cap 0.) in
        Cp_soa.rho soa i ~theta);
    members =
      (fun soa partition ~premium ->
        Cp_soa.gather soa
          (if premium then Partition.premium_indices partition
           else Partition.ordinary_indices partition));
    solve_class =
      (fun ~bracket ~nu soa -> Equilibrium.solve_soa ?bracket ~nu soa);
    solve_solo =
      (fun ~nu soa i -> Equilibrium.solve_soa ~nu (Cp_soa.gather soa [| i |]));
    solve_extended =
      (fun ~bracket ~nu members soa i ->
        Equilibrium.solve_soa ?bracket ~nu (Cp_soa.append_one members soa i));
    consumer = (fun soa sol -> Surplus.consumer_soa soa sol) }

(* ------------------------------------------------------------------ *)
(* Solver engine                                                      *)
(* ------------------------------------------------------------------ *)

(* One engine lives for the duration of one equilibrium search.  It owns

   - the population vtable, whose [solve_class] is the equilibrium
     kernel (the optimized {!Equilibrium.solve}, the column
     {!Equilibrium.solve_soa}, or the retained
     {!Equilibrium.solve_reference} for differential testing),
   - a partition-keyed memo of class solutions — the phases of the
     search revisit partitions (cycle iterates, the finishing
     [outcome_of_partition], quiescent passes), and a class re-solve is
     a pure function of the membership,
   - a per-class solo-entrant memo: the rate an entrant anticipates in
     an {e empty} class is its solo equilibrium, a pure function of
     (CP, nu_class) re-requested for every CP every round,
   - per-class warm-start brackets: when a single CP moves, the donor
     class's water level can only rise and the recipient's only fall,
     so the next re-solve starts from a one-sided interval around the
     previous level.

   All four are bit-transparent: caches replay pure results, and bracket
   hints cannot change {!Equilibrium.solve}'s output (see equilibrium.mli),
   so an engine with everything enabled matches the reference engine bit
   for bit — test/test_perf_kernel.ml holds it to that. *)
type 'pop engine = {
  ops : 'pop ops;
  (* R2-audit (no directive needed; only find_opt/add/mem/replace): all three engine tables are pure memos
     used through find_opt/replace only, never iterated, so Hashtbl order
     cannot reach any result. *)
  class_memo :
    (string, Equilibrium.solution * Equilibrium.solution) Hashtbl.t option;
  solo_o : (int, float) Hashtbl.t option;  (* CP identity -> solo rho at nu_o *)
  solo_p : (int, float) Hashtbl.t option;
  mutable hint_o : (float * float) option;
  mutable hint_p : (float * float) option;
}

let cached_engine ops =
  { ops;
    class_memo = Some (Hashtbl.create 64);
    solo_o = Some (Hashtbl.create 64);
    solo_p = Some (Hashtbl.create 64);
    hint_o = None; hint_p = None }

let optimized_engine () =
  cached_engine
    (record_ops (fun ~bracket ~nu cps -> Equilibrium.solve ?bracket ~nu cps))

let soa_engine () = cached_engine soa_ops

let reference_engine () =
  { ops =
      record_ops (fun ~bracket:_ ~nu cps -> Equilibrium.solve_reference ~nu cps);
    class_memo = None; solo_o = None; solo_p = None;
    hint_o = None; hint_p = None }

let class_solution_eng eng ~premium ~nu_class members =
  if Float.equal nu_class 0. then zero_class_solution (eng.ops.size members)
  else begin
    let bracket = if premium then eng.hint_p else eng.hint_o in
    if premium then eng.hint_p <- None else eng.hint_o <- None;
    eng.ops.solve_class ~bracket ~nu:nu_class members
  end

(* Both class solutions at a partition, memoised on the membership key
   (with a fixed population the key pins both member sets). *)
let class_solutions eng ~nu_o ~nu_p pop partition =
  let compute () =
    let sol_o =
      class_solution_eng eng ~premium:false ~nu_class:nu_o
        (eng.ops.members pop partition ~premium:false)
    in
    let sol_p =
      class_solution_eng eng ~premium:true ~nu_class:nu_p
        (eng.ops.members pop partition ~premium:true)
    in
    (sol_o, sol_p)
  in
  match eng.class_memo with
  | None -> compute ()
  | Some memo -> (
      let key = Partition.key partition in
      match Hashtbl.find_opt memo key with
      | Some pair ->
          Po_obs.Metrics.incr m_class_hits;
          pair
      | None ->
          Po_obs.Metrics.incr m_class_misses;
          let pair = compute () in
          Hashtbl.replace memo key pair;
          pair)

(* Record that CP [i] just moved: the class it left can only see its
   water level rise, the class it joined can only see it fall.  [cap_o]
   and [cap_p] are the entrant caps {e before} the move; non-finite or
   zero levels (empty, uncongested or capacity-less classes) carry no
   information and leave the next solve cold. *)
let note_move eng ~to_premium ~cap_o ~cap_p =
  let one_sided ~rising cap =
    if Float.is_finite cap && cap > 0. then
      Some (if rising then (cap, Float.infinity) else (0., cap))
    else None
  in
  if to_premium then begin
    eng.hint_o <- one_sided ~rising:true cap_o;
    eng.hint_p <- one_sided ~rising:false cap_p
  end
  else begin
    eng.hint_o <- one_sided ~rising:false cap_o;
    eng.hint_p <- one_sided ~rising:true cap_p
  end

(* Throughput-taking estimate (Assumption 3) of the per-user rate a CP
   expects in a class whose current water level is [cap].  An {e empty}
   class has no level to take — its cap is formally infinite, which would
   lure every CP simultaneously and destabilise the iteration — so the
   entrant anticipates its own solo equilibrium there instead.  Solo
   equilibria depend only on (CP, nu_class); the engine memoises them by
   CP identity (record ids are unique within a population by
   construction; the SoA identity is the index). *)
let solo_rho eng ~premium ~nu_class pop i =
  let compute () =
    (eng.ops.solve_solo ~nu:nu_class pop i).Equilibrium.rho.(0)
  in
  match if premium then eng.solo_p else eng.solo_o with
  | None -> compute ()
  | Some memo -> (
      let id = eng.ops.id_at pop i in
      match Hashtbl.find_opt memo id with
      | Some rho ->
          Po_obs.Metrics.incr m_solo_hits;
          rho
      | None ->
          Po_obs.Metrics.incr m_solo_misses;
          let rho = compute () in
          Hashtbl.replace memo id rho;
          rho)

let estimate_rho_eng eng ~premium ~nu_class ~occupied cap pop i =
  if Float.equal nu_class 0. then 0.
  else if occupied then eng.ops.rho_at_cap pop i cap
  else solo_rho eng ~premium ~nu_class pop i

let estimate_rho (cp : Cp.t) ~nu_class ~occupied cap =
  estimate_rho_eng (reference_engine ()) ~premium:false ~nu_class ~occupied
    cap [| cp |] 0

let outcome_of_partition_eng eng ~nu ~strategy pop partition =
  if nu < 0. then invalid_arg "Cp_game.outcome_of_partition: nu < 0";
  let n = eng.ops.size pop in
  if Partition.size partition <> n then
    invalid_arg "Cp_game.outcome_of_partition: partition size mismatch";
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let sol_o, sol_p = class_solutions eng ~nu_o ~nu_p pop partition in
  let ordinary = eng.ops.members pop partition ~premium:false in
  let premium = eng.ops.members pop partition ~premium:true in
  let theta = Array.make n 0. and rho = Array.make n 0. in
  let fill indices (sol : Equilibrium.solution) =
    Array.iteri
      (fun pos idx ->
        theta.(idx) <- sol.Equilibrium.theta.(pos);
        rho.(idx) <- sol.Equilibrium.rho.(pos))
      indices
  in
  fill (Partition.ordinary_indices partition) sol_o;
  fill (Partition.premium_indices partition) sol_p;
  let phi =
    eng.ops.consumer ordinary sol_o +. eng.ops.consumer premium sol_p
  in
  let lambda_premium = sol_p.Equilibrium.per_capita_rate in
  { strategy; nu; partition; theta; rho;
    cap_ordinary = entrant_cap ~nu_class:nu_o sol_o;
    cap_premium = entrant_cap ~nu_class:nu_p sol_p;
    lambda_ordinary = sol_o.Equilibrium.per_capita_rate; lambda_premium;
    phi; psi = Strategy.c strategy *. lambda_premium; converged = true;
    iterations = 0; concept = Competitive 0. }

let outcome_of_partition ~nu ~strategy cps partition =
  outcome_of_partition_eng (optimized_engine ()) ~nu ~strategy cps partition

(* One simultaneous best-response round: every CP re-decides against the
   current water levels.  Returns the new membership vector. *)
let simultaneous_round eng ~nu ~strategy pop partition =
  Po_obs.Metrics.incr m_sync_rounds;
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let sol_o, sol_p = class_solutions eng ~nu_o ~nu_p pop partition in
  let cap_o = entrant_cap ~nu_class:nu_o sol_o in
  let cap_p = entrant_cap ~nu_class:nu_p sol_p in
  let occupied_o = Partition.ordinary_count partition > 0 in
  let occupied_p = Partition.premium_count partition > 0 in
  Partition.of_premium_indicator
    (Array.init (eng.ops.size pop) (fun i ->
         let v = eng.ops.v_at pop i in
         let u_ordinary =
           v
           *. estimate_rho_eng eng ~premium:false ~nu_class:nu_o
                ~occupied:occupied_o cap_o pop i
         in
         let u_premium =
           (v -. c)
           *. estimate_rho_eng eng ~premium:true ~nu_class:nu_p
                ~occupied:occupied_p cap_p pop i
         in
         u_premium > u_ordinary))

let default_hysteresis = 1e-3

(* Asynchronous pass: CPs re-decide one at a time in index order.  Water
   levels are cached and recomputed only after a CP actually moves — with
   warm-start brackets recording which way each level can go — so a
   quiescent pass costs two class solves total.  [hysteresis] is a relative
   switching threshold: a CP moves only when the other class improves its
   utility by that margin — the finite-population analogue of the
   throughput-taking assumption, without which a marginal CP whose own
   membership shifts the water level past its indifference point would
   flip for ever.  Returns the partition and whether any CP moved. *)
let asynchronous_pass ?(hysteresis = 0.) eng ~nu ~strategy pop partition =
  Po_obs.Metrics.incr m_async_passes;
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let current = ref partition in
  let moved = ref false in
  (* Occupancy is tracked incrementally: recounting the premium class for
     every CP made each pass quadratic in the population and dominated the
     whole solve at n = 1000. *)
  let n_total = Partition.size partition in
  let n_premium = ref (Partition.premium_count partition) in
  let caps = ref None in
  let current_caps () =
    match !caps with
    | Some pair -> pair
    | None ->
        let sol_o, sol_p = class_solutions eng ~nu_o ~nu_p pop !current in
        let pair =
          (entrant_cap ~nu_class:nu_o sol_o, entrant_cap ~nu_class:nu_p sol_p)
        in
        caps := Some pair;
        pair
  in
  for i = 0 to eng.ops.size pop - 1 do
    let cap_o, cap_p = current_caps () in
    let occupied_o = n_total - !n_premium > 0 in
    let occupied_p = !n_premium > 0 in
    let v = eng.ops.v_at pop i in
    let u_ordinary =
      v
      *. estimate_rho_eng eng ~premium:false ~nu_class:nu_o
           ~occupied:occupied_o cap_o pop i
    in
    let u_premium =
      (v -. c)
      *. estimate_rho_eng eng ~premium:true ~nu_class:nu_p
           ~occupied:occupied_p cap_p pop i
    in
    let in_premium = Partition.in_premium !current i in
    let margin u = Float.abs u *. hysteresis in
    let wants_premium =
      if in_premium then u_premium >= u_ordinary -. margin u_premium
      else u_premium > u_ordinary +. margin u_ordinary
    in
    if wants_premium <> in_premium then begin
      Po_obs.Metrics.incr m_moves;
      current := Partition.move !current i ~premium:wants_premium;
      n_premium := !n_premium + (if wants_premium then 1 else -1);
      moved := true;
      note_move eng ~to_premium:wants_premium ~cap_o ~cap_p;
      caps := None
    end
  done;
  (!current, !moved)

(* Cooperative deadline/cancellation check of the supervision layer
   (DESIGN.md §13), placed at the phase boundaries of the search — the
   start of every simultaneous round, asynchronous/tolerant pass and
   Nash pass — so an expiring budget surfaces as a typed error carrying
   the solver frames, never as a hang mid-phase. *)
let check_budget budget ~nu ~strategy =
  match budget with
  | None -> ()
  | Some b ->
      Po_guard.Po_error.with_context
        [ ("solver", "cp_game"); ("nu", Printf.sprintf "%.17g" nu);
          ("strategy", Strategy.to_string strategy) ]
        (fun () -> Po_sup.Budget.check b)

let default_init_ops ops ~strategy pop =
  let n = ops.size pop in
  if Float.equal (Strategy.kappa strategy) 0. then Partition.all_ordinary n
  else
    let c = Strategy.c strategy in
    Partition.of_premium_indicator
      (Array.init n (fun i -> ops.v_at pop i > c))

(* Ex-post per-capita throughput a deviator obtains in a target class.
   Joining can only push the target's water level down, so the target's
   current cap (when finite) bounds the re-solve from above. *)
let expost_rho_eng eng ~nu_class ~cap_hint members pop i =
  if Float.equal nu_class 0. then 0.
  else begin
    let bracket =
      if Float.is_finite cap_hint && cap_hint > 0. then Some (0., cap_hint)
      else None
    in
    let sol = eng.ops.solve_extended ~bracket ~nu:nu_class members pop i in
    sol.Equilibrium.rho.(eng.ops.size members)
  end

let expost_rho ~nu_class members (cp : Cp.t) =
  expost_rho_eng (reference_engine ()) ~nu_class ~cap_hint:Float.nan members
    [| cp |] 0

(* Position of every CP inside its class's member array — shared by the
   Nash pass and audits, replacing the per-CP linear rediscovery that
   made each pass quadratic. *)
let class_positions partition =
  let n = Partition.size partition in
  let pos = Array.make n 0 in
  let next_o = ref 0 and next_p = ref 0 in
  for i = 0 to n - 1 do
    if Partition.in_premium partition i then begin
      pos.(i) <- !next_p;
      incr next_p
    end
    else begin
      pos.(i) <- !next_o;
      incr next_o
    end
  done;
  pos

(* Actual per-capita throughput of CP [i] inside its own class. *)
let own_rho partition positions (sol_o : Equilibrium.solution)
    (sol_p : Equilibrium.solution) i =
  let sol = if Partition.in_premium partition i then sol_p else sol_o in
  sol.Equilibrium.rho.(positions.(i))

let solve_nash_eng eng ?budget ?init ?(max_rounds = 100) ~nu ~strategy pop =
  if nu < 0. then invalid_arg "Cp_game.solve_nash: nu < 0";
  let init =
    match init with
    | Some p -> p
    | None -> default_init_ops eng.ops ~strategy pop
  in
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let pass partition =
    check_budget budget ~nu ~strategy;
    Po_obs.Metrics.incr m_nash_passes;
    let current = ref partition in
    let moved = ref false in
    (* Class membership, solutions and the index->position map change
       only when a CP moves; between moves every deviation check reuses
       them. *)
    let state = ref None in
    let current_state () =
      match !state with
      | Some s -> s
      | None ->
          let ordinary = eng.ops.members pop !current ~premium:false in
          let premium = eng.ops.members pop !current ~premium:true in
          let sol_o, sol_p = class_solutions eng ~nu_o ~nu_p pop !current in
          let s = (ordinary, premium, sol_o, sol_p, class_positions !current) in
          state := Some s;
          s
    in
    for i = 0 to eng.ops.size pop - 1 do
      let ordinary, premium, sol_o, sol_p, positions = current_state () in
      let rho_own = own_rho !current positions sol_o sol_p i in
      let v = eng.ops.v_at pop i in
      let wants_premium =
        if Partition.in_premium !current i then
          let rho_dev =
            expost_rho_eng eng ~nu_class:nu_o
              ~cap_hint:(entrant_cap ~nu_class:nu_o sol_o)
              ordinary pop i
          in
          (v -. c) *. rho_own > v *. rho_dev
        else
          let rho_dev =
            expost_rho_eng eng ~nu_class:nu_p
              ~cap_hint:(entrant_cap ~nu_class:nu_p sol_p)
              premium pop i
          in
          (v -. c) *. rho_dev > v *. rho_own
      in
      if wants_premium <> Partition.in_premium !current i then begin
        Po_obs.Metrics.incr m_moves;
        current := Partition.move !current i ~premium:wants_premium;
        moved := true;
        note_move eng ~to_premium:wants_premium
          ~cap_o:(entrant_cap ~nu_class:nu_o sol_o)
          ~cap_p:(entrant_cap ~nu_class:nu_p sol_p);
        state := None
      end
    done;
    (!current, !moved)
  in
  let rec loop partition round =
    if round >= max_rounds then
      { (outcome_of_partition_eng eng ~nu ~strategy pop partition) with
        converged = false; iterations = round; concept = Expost_nash }
    else
      let partition', moved = pass partition in
      if not moved then
        { (outcome_of_partition_eng eng ~nu ~strategy pop partition') with
          converged = true; iterations = round + 1; concept = Expost_nash }
      else loop partition' (round + 1)
  in
  loop init 0

let solve_nash ?budget ?init ?max_rounds ~nu ~strategy cps =
  solve_nash_eng (optimized_engine ()) ?budget ?init ?max_rounds ~nu ~strategy
    cps

let solve_eng eng ?budget ?init ?(max_iter = 200) ~nu ~strategy pop =
  if nu < 0. then invalid_arg "Cp_game.solve: nu < 0";
  Po_obs.Metrics.incr m_solves;
  let init =
    match init with
    | Some p -> p
    | None -> default_init_ops eng.ops ~strategy pop
  in
  if Partition.size init <> eng.ops.size pop then
    invalid_arg "Cp_game.solve: init partition size mismatch";
  (* R2-audit (no directive needed; only find_opt/add/mem/replace): cycle-detection set over partition keys;
     only mem/add are used, nothing is ever iterated, so Hashtbl order
     cannot influence which partition the solver settles on. *)
  let seen = Hashtbl.create 64 in
  let finish ?(tolerance = 0.) partition ~converged ~iterations =
    { (outcome_of_partition_eng eng ~nu ~strategy pop partition) with
      converged; iterations; concept = Competitive tolerance }
  in
  (* Phase 3: tolerant asynchronous passes.  A quiescent pass at threshold
     [h] is an eps-competitive equilibrium with eps = h.  The threshold
     escalates geometrically every few passes because the displacement one
     CP causes to a class's water level — the force behind persistent
     flipping — scales with 1/|class| and can exceed any fixed margin. *)
  let rec tolerant partition rounds_used passes =
    check_budget budget ~nu ~strategy;
    if passes > 60 then begin
      (* Throughput-taking best responses refuse to settle: with few CPs a
         single provider can be a large fraction of a class's load, and a
         competitive equilibrium need not exist at all.  Ex-post (Nash)
         best responses are well defined at any population size, and the
         paper treats both concepts as interchangeable equilibria. *)
      Log.debug (fun m ->
          m "tolerant phase exhausted at nu=%g %s; falling back to ex-post \
             Nash" nu
            (Strategy.to_string strategy));
      let nash = solve_nash_eng eng ?budget ~init:partition ~nu ~strategy pop in
      { nash with
        iterations = rounds_used + passes + nash.iterations }
    end
    else
      let hysteresis =
        default_hysteresis *. (2. ** float_of_int (passes / 6))
      in
      let partition', moved =
        asynchronous_pass ~hysteresis eng ~nu ~strategy pop partition
      in
      if not moved then
        finish ~tolerance:hysteresis partition' ~converged:true
          ~iterations:(rounds_used + passes + 1)
      else tolerant partition' rounds_used (passes + 1)
  in
  (* Phase 2: strict asynchronous damping after a cycle; if marginal CPs
     keep flipping (their own membership moves the water level past their
     indifference point), fall through to the tolerant phase. *)
  let rec async partition rounds_used passes =
    check_budget budget ~nu ~strategy;
    if passes > 8 then tolerant partition (rounds_used + passes) 0
    else
      let partition', moved =
        asynchronous_pass eng ~nu ~strategy pop partition
      in
      if not moved then
        finish partition' ~converged:true ~iterations:(rounds_used + passes + 1)
      else async partition' rounds_used (passes + 1)
  in
  (* Phase 1: fast simultaneous rounds with cycle detection.  On a cycle,
     continue from the cycle iterate with the larger premium class: cycles
     typically alternate with a degenerate near-empty class (whose infinite
     entrant estimate lures everyone back in), and the populous iterate is
     the one near the equilibrium, sparing the asynchronous phase most of
     its one-CP-at-a-time walk. *)
  let rec sync partition previous n =
    check_budget budget ~nu ~strategy;
    if n >= max_iter then finish partition ~converged:false ~iterations:n
    else begin
      let key = Partition.key partition in
      if Hashtbl.mem seen key then begin
        Log.debug (fun m ->
            m "cycle detected after %d simultaneous rounds at nu=%g %s" n nu
              (Strategy.to_string strategy));
        let start =
          match previous with
          | Some p
            when Partition.premium_count p
                 > Partition.premium_count partition ->
              p
          | _ -> partition
        in
        async start n 0
      end
      else begin
        Hashtbl.add seen key ();
        let partition' = simultaneous_round eng ~nu ~strategy pop partition in
        if Partition.equal partition partition' then
          finish partition' ~converged:true ~iterations:(n + 1)
        else sync partition' (Some partition) (n + 1)
      end
    end
  in
  sync init None 0

let solve ?budget ?init ?max_iter ~nu ~strategy cps =
  solve_eng (optimized_engine ()) ?budget ?init ?max_iter ~nu ~strategy cps

let solve_reference ?init ?max_iter ~nu ~strategy cps =
  solve_eng (reference_engine ()) ?init ?max_iter ~nu ~strategy cps

let solve_soa ?budget ?init ?max_iter ~nu ~strategy soa =
  solve_eng (soa_engine ()) ?budget ?init ?max_iter ~nu ~strategy soa

let solve_nash_reference ?init ?max_rounds ~nu ~strategy cps =
  solve_nash_eng (reference_engine ()) ?init ?max_rounds ~nu ~strategy cps

let solve_nash_soa ?budget ?init ?max_rounds ~nu ~strategy soa =
  solve_nash_eng (soa_engine ()) ?budget ?init ?max_rounds ~nu ~strategy soa

(* ------------------------------------------------------------------ *)
(* Typed error channel (DESIGN.md §10)                                *)
(* ------------------------------------------------------------------ *)

let ensure_converged ?(context = []) outcome =
  if outcome.converged then outcome
  else
    Po_guard.Po_error.fail
      ~context:
        (context
        @ [ ("solver", "cp_game");
            ("nu", Printf.sprintf "%.17g" outcome.nu);
            ("strategy", Strategy.to_string outcome.strategy) ])
      (Po_guard.Po_error.Non_convergence
         { residual =
             (match outcome.concept with
             | Competitive eps -> eps
             | Expost_nash -> Float.nan);
           iterations = outcome.iterations })

let checked run =
  Po_guard.Po_error.capture (fun () ->
      match run () with
      | o -> ensure_converged o
      | exception Invalid_argument msg ->
          Po_guard.Po_error.fail
            (Po_guard.Po_error.Invalid_scenario msg))

let solve_checked ?budget ?init ?max_iter ~nu ~strategy cps =
  checked (fun () -> solve ?budget ?init ?max_iter ~nu ~strategy cps)

let solve_soa_checked ?budget ?init ?max_iter ~nu ~strategy soa =
  checked (fun () -> solve_soa ?budget ?init ?max_iter ~nu ~strategy soa)

let solve_nash_checked ?budget ?init ?max_rounds ~nu ~strategy cps =
  checked (fun () -> solve_nash ?budget ?init ?max_rounds ~nu ~strategy cps)

let solve_nash_soa_checked ?budget ?init ?max_rounds ~nu ~strategy soa =
  checked (fun () ->
      solve_nash_soa ?budget ?init ?max_rounds ~nu ~strategy soa)

(* ------------------------------------------------------------------ *)
(* Equilibrium audits                                                 *)
(* ------------------------------------------------------------------ *)

let check_competitive ?(tol = 1e-9) ?(rel_tol = 0.) ~nu ~strategy cps
    partition =
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let sol_o =
    class_solution ~nu_class:nu_o (Partition.ordinary_members partition cps)
  in
  let sol_p =
    class_solution ~nu_class:nu_p (Partition.premium_members partition cps)
  in
  let cap_o = entrant_cap ~nu_class:nu_o sol_o in
  let cap_p = entrant_cap ~nu_class:nu_p sol_p in
  let occupied_o = Partition.ordinary_count partition > 0 in
  let occupied_p = Partition.premium_count partition > 0 in
  let n = Array.length cps in
  let rec scan i =
    if i >= n then Ok ()
    else begin
      let cp = cps.(i) in
      let u_ordinary =
        cp.Cp.v *. estimate_rho cp ~nu_class:nu_o ~occupied:occupied_o cap_o
      in
      let u_premium =
        (cp.Cp.v -. c)
        *. estimate_rho cp ~nu_class:nu_p ~occupied:occupied_p cap_p
      in
      (* Ties (within the slack) are acceptable in either class; only a
         clear preference for the other class is a violation. *)
      if Partition.in_premium partition i then
        if u_premium < u_ordinary -. tol -. (rel_tol *. Float.abs u_premium)
        then
          Error
            ( i,
              Printf.sprintf "CP %d in premium but u_p=%g < u_o=%g" i
                u_premium u_ordinary )
        else scan (i + 1)
      else if u_premium > u_ordinary +. tol +. (rel_tol *. Float.abs u_ordinary)
      then
        Error
          ( i,
            Printf.sprintf "CP %d in ordinary but u_p=%g > u_o=%g" i
              u_premium u_ordinary )
      else scan (i + 1)
    end
  in
  scan 0

let check_nash ?(tol = 1e-9) ~nu ~strategy cps partition =
  let nu_o, nu_p = class_capacities ~nu ~strategy in
  let c = Strategy.c strategy in
  let ordinary = Partition.ordinary_members partition cps in
  let premium = Partition.premium_members partition cps in
  let sol_o = class_solution ~nu_class:nu_o ordinary in
  let sol_p = class_solution ~nu_class:nu_p premium in
  let positions = class_positions partition in
  let n = Array.length cps in
  let rec scan i =
    if i >= n then Ok ()
    else begin
      let cp = cps.(i) in
      let rho_own = own_rho partition positions sol_o sol_p i in
      if Partition.in_premium partition i then begin
        (* Deviating to ordinary: evaluated with i included there. *)
        let rho_dev = expost_rho ~nu_class:nu_o ordinary cp in
        let u_stay = (cp.Cp.v -. c) *. rho_own in
        let u_dev = cp.Cp.v *. rho_dev in
        if u_stay < u_dev -. tol then
          Error
            ( i,
              Printf.sprintf
                "CP %d in premium gains by leaving (stay=%g, deviate=%g)" i
                u_stay u_dev )
        else scan (i + 1)
      end
      else begin
        let rho_dev = expost_rho ~nu_class:nu_p premium cp in
        let u_stay = cp.Cp.v *. rho_own in
        let u_dev = (cp.Cp.v -. c) *. rho_dev in
        if u_dev > u_stay +. tol then
          Error
            ( i,
              Printf.sprintf
                "CP %d in ordinary strictly gains by joining premium \
                 (stay=%g, deviate=%g)"
                i u_stay u_dev )
        else scan (i + 1)
      end
    end
  in
  scan 0
