open Po_model

type price_point = {
  c : float;
  psi : float;
  phi : float;
  premium_count : int;
  premium_load : float;
  utilization : float;
}

let point_of_outcome (o : Cp_game.outcome) =
  { c = Strategy.c o.Cp_game.strategy;
    psi = o.Cp_game.psi;
    phi = o.Cp_game.phi;
    premium_count = Partition.premium_count o.Cp_game.partition;
    premium_load = o.Cp_game.lambda_premium;
    utilization =
      (if o.Cp_game.nu <= 0. then 1.
       else
         (o.Cp_game.lambda_ordinary +. o.Cp_game.lambda_premium)
         /. o.Cp_game.nu) }

let warm_init (prev : Cp_game.outcome option) =
  Option.map (fun (o : Cp_game.outcome) -> o.Cp_game.partition) prev

let price_sweep ?pool ?chunk_size ?(kappa = 1.) ~nu ~cs cps =
  Array.map point_of_outcome
    (Po_par.Pool.chain_map ?chunk_size pool
       ~step:(fun prev c ->
         let strategy = Strategy.make ~kappa ~c in
         Cp_game.ensure_converged ~context:[ ("sweep", "price") ]
           (Cp_game.solve ?init:(warm_init prev) ~nu ~strategy cps))
       cs)

let capacity_sweep ?pool ?chunk_size ~strategy ~nus cps =
  Po_par.Pool.chain_map ?chunk_size pool
    ~step:(fun prev nu ->
      Cp_game.ensure_converged ~context:[ ("sweep", "capacity") ]
        (Cp_game.solve ?init:(warm_init prev) ~nu ~strategy cps))
    nus

let price_sweep_checked ?pool ?chunk_size ?kappa ~nu ~cs cps =
  Po_guard.Po_error.capture (fun () ->
      price_sweep ?pool ?chunk_size ?kappa ~nu ~cs cps)

let capacity_sweep_checked ?pool ?chunk_size ~strategy ~nus cps =
  Po_guard.Po_error.capture (fun () ->
      capacity_sweep ?pool ?chunk_size ~strategy ~nus cps)

let max_revenue_price cps =
  Array.fold_left (fun acc (cp : Cp.t) -> Float.max acc cp.Cp.v) 0. cps

let optimal_price ?(kappa = 1.) ?(levels = 3) ?(points = 41) ~nu cps =
  let hi = Float.max (max_revenue_price cps) 1e-9 in
  let revenue c =
    let strategy = Strategy.make ~kappa ~c in
    (Cp_game.solve ~nu ~strategy cps).Cp_game.psi
  in
  let best = Po_num.Optimize.refine_grid_max ~levels ~points ~f:revenue ~lo:0. ~hi () in
  let strategy = Strategy.make ~kappa ~c:best.Po_num.Optimize.x in
  point_of_outcome (Cp_game.solve ~nu ~strategy cps)

let optimal_strategy ?(levels = 3) ?(points = 17) ~nu cps =
  let hi = Float.max (max_revenue_price cps) 1e-9 in
  let revenue kappa c =
    let strategy = Strategy.make ~kappa ~c in
    (Cp_game.solve ~nu ~strategy cps).Cp_game.psi
  in
  let best =
    Po_num.Optimize.refine_grid_max2 ~levels ~points ~f:revenue ~lo1:0. ~hi1:1.
      ~lo2:0. ~hi2:hi ()
  in
  let strategy =
    Strategy.make ~kappa:best.Po_num.Optimize.x1 ~c:best.Po_num.Optimize.x2
  in
  (strategy, Cp_game.solve ~nu ~strategy cps)

type regime =
  | Unregulated
  | Neutral
  | Capped of float
  | Fixed of Strategy.t

let regime_outcome ~nu regime cps =
  match regime with
  | Neutral -> Cp_game.solve ~nu ~strategy:Strategy.public_option cps
  | Fixed strategy -> Cp_game.solve ~nu ~strategy cps
  | Unregulated ->
      let _, outcome = optimal_strategy ~nu cps in
      outcome
  | Capped kappa_cap ->
      if kappa_cap < 0. || kappa_cap > 1. then
        invalid_arg "Monopoly.regime_outcome: kappa cap outside [0, 1]";
      let hi = Float.max (max_revenue_price cps) 1e-9 in
      let revenue kappa c =
        (Cp_game.solve ~nu ~strategy:(Strategy.make ~kappa ~c) cps)
          .Cp_game.psi
      in
      let best =
        Po_num.Optimize.refine_grid_max2 ~levels:3 ~points:13 ~f:revenue
          ~lo1:0. ~hi1:kappa_cap ~lo2:0. ~hi2:hi ()
      in
      Cp_game.solve ~nu
        ~strategy:
          (Strategy.make ~kappa:best.Po_num.Optimize.x1
             ~c:best.Po_num.Optimize.x2)
        cps

let regime_outcome_checked ~nu regime cps =
  Po_guard.Po_error.capture (fun () ->
      match regime_outcome ~nu regime cps with
      | o -> Cp_game.ensure_converged ~context:[ ("stage", "regime") ] o
      | exception Invalid_argument msg ->
          Po_guard.Po_error.fail
            (Po_guard.Po_error.Invalid_scenario msg))

let check_theorem4 ?(tol = 1e-6) ~nu ~c ~kappas cps =
  let revenue kappa =
    (Cp_game.solve ~nu ~strategy:(Strategy.make ~kappa ~c) cps).Cp_game.psi
  in
  let full = revenue 1. in
  let rec scan i =
    if i >= Array.length kappas then Ok ()
    else begin
      let psi = revenue kappas.(i) in
      if psi > full +. tol then
        Error
          (Printf.sprintf
             "theorem 4 violated at nu=%g c=%g: Psi(kappa=%g)=%g > \
              Psi(1)=%g"
             nu c kappas.(i) psi full)
      else scan (i + 1)
    end
  in
  scan 0
