type t = { kappa : float; c : float }

let make ~kappa ~c =
  if not (kappa >= 0. && kappa <= 1.) then
    invalid_arg "Strategy.make: kappa outside [0, 1]";
  if not (c >= 0.) then invalid_arg "Strategy.make: c < 0";
  { kappa; c }

let kappa t = t.kappa
let c t = t.c

let public_option = { kappa = 0.; c = 0. }
let is_public_option t = Float.equal t.kappa 0. && Float.equal t.c 0.
let is_neutral t = Float.equal t.kappa 0. || Float.equal t.c 0.

let equal a b = Float.equal a.kappa b.kappa && Float.equal a.c b.c

let compare a b =
  match Float.compare a.kappa b.kappa with
  | 0 -> Float.compare a.c b.c
  | n -> n

let pp fmt t = Format.fprintf fmt "(kappa=%g, c=%g)" t.kappa t.c
let to_string t = Format.asprintf "%a" pp t

let grid ?kappas ?cs () =
  let default () = Po_num.Grid.linspace 0. 1. 11 in
  let kappas = match kappas with Some k -> k | None -> default () in
  let cs = match cs with Some c -> c | None -> default () in
  Array.concat
    (Array.to_list
       (Array.map (fun k -> Array.map (fun c -> make ~kappa:k ~c) cs) kappas))
