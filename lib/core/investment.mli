(** Capacity-investment incentives (Sec. I bullet 5, Sec. V).

    Two of the paper's claims concern investment:

    - under a {b monopoly}, the CP-side revenue motive can make extra
      capacity {e unprofitable}: expansion relieves congestion, CPs leave
      the premium class, and the optimal premium revenue falls (the
      Choi-Kim effect the paper cites; visible as the declining branches
      of Figs. 5 and 7);
    - under {b competition}, market shares are proportional to capacity
      shares (Lemma 4), so capacity buys customers: "ISPs do have
      incentives to invest and expand capacity so as to increase their
      market shares".

    The generators here measure both: the monopolist's {e optimised}
    revenue as a function of installed capacity, and a competitor's
    market share / revenue as a function of its capacity share. *)

type monopoly_point = {
  nu : float;
  optimal_price : float;  (** revenue-maximising [c] at [kappa = 1] *)
  psi : float;  (** the optimised revenue *)
  phi : float;  (** consumer surplus at the ISP's optimum *)
}

val monopoly_revenue_curve :
  ?pool:Po_par.Pool.t -> ?levels:int -> ?points:int -> nus:float array ->
  Po_model.Cp.t array -> monopoly_point array
(** The monopolist's optimised CP-side revenue across installed capacity.
    The optimised revenue is non-decreasing (more capacity can always be
    sold at the old price), but it {e saturates} while the optimal price
    falls — the Choi-Kim price effect; the investment return vanishes. *)

type competition_point = {
  gamma : float;  (** ISP I's capacity share *)
  market_share : float;
  psi : float;  (** ISP I's premium revenue per total capita *)
  phi : float;  (** population consumer surplus *)
}

val competition_share_curve :
  ?pool:Po_par.Pool.t -> ?strategy:Strategy.t -> nu:float ->
  gammas:float array -> Po_model.Cp.t array -> competition_point array
(** ISP I's equilibrium market share and revenue as its capacity share
    grows, against a rival with the same strategy on the remaining
    capacity (default strategy: [(0.5, 0.3)]).  Lemma 4 predicts
    [market_share = gamma] along the whole curve. *)

val monopoly_expansion_profitable :
  ?levels:int -> ?points:int -> ?threshold:float -> nu_lo:float ->
  nu_hi:float -> Po_model.Cp.t array -> bool
(** Whether expanding from [nu_lo] to [nu_hi] raises the monopolist's
    optimised revenue by more than [threshold] (relative, default 2%) —
    [false] marks the saturation region where investment no longer pays
    on the CP side. *)

type duopoly_point = {
  nu : float;  (** total per-capita capacity of the market *)
  optimal_price : float;  (** ISP I's revenue-maximising [c] at [kappa=1] *)
  psi : float;  (** ISP I's optimised revenue per total capita *)
  market_share : float;  (** ISP I's share at that optimum *)
}

val duopoly_revenue_curve :
  ?pool:Po_par.Pool.t -> ?levels:int -> ?points:int -> nus:float array ->
  Po_model.Cp.t array -> duopoly_point array
(** ISP I ([kappa = 1], optimised price) against an equal-capacity Public
    Option, across total capacity.  Here optimised revenue genuinely
    {e declines} past a peak — the paper's Fig. 7 observation that
    "capacity expansion could reduce ISP I's revenue from the CPs". *)
