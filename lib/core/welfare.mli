(** Welfare decomposition across all three parties.

    The paper optimises consumer surplus; regulators and the related work
    it cites (Sidak's consumer-welfare approach, Economides-Tag) also
    weigh ISP revenue and content-provider profit.  This module
    decomposes any game outcome into the three per-capita surpluses

    - consumer: [Phi = sum phi_i alpha_i rho_i] (Eq. 2),
    - ISP:      [Psi = c * lambda_P] (the premium-class revenue),
    - CP:       [sum_i (v_i - c 1{i in P}) alpha_i rho_i] (Eq. 4 summed),

    whose sum is the total per-capita welfare.  Note the ISP and CP terms
    are a pure transfer of [c * lambda_P]: total welfare equals
    [sum (phi_i + v_i) alpha_i rho_i], so differentiation affects it only
    through the allocation. *)

type t = {
  consumer : float;
  isp : float;
  cp : float;
  total : float;
}

val zero : t
val add : t -> t -> t
val scale : float -> t -> t

val of_outcome : Po_model.Cp.t array -> Cp_game.outcome -> t
(** Decompose a single-ISP outcome (per capita of that ISP's
    consumers). *)

val of_duopoly : Po_model.Cp.t array -> Duopoly.equilibrium -> t
(** Population-weighted decomposition across both ISPs (per capita of the
    whole population). *)

val of_oligopoly : Po_model.Cp.t array -> Oligopoly.equilibrium -> t
(** Population-weighted decomposition across all ISPs. *)

val regime_table :
  ?pool:Po_par.Pool.t -> ?po_share:float -> ?levels:int -> ?points:int ->
  nu:float -> Po_model.Cp.t array -> (string * t) list
(** The three regulatory regimes of {!Public_option.compare_regimes} with
    full three-party decompositions: who pays for each regime's consumer
    gains. *)

val pp : Format.formatter -> t -> unit
