(** Discontinuity and alignment metrics (Eq. 9 and Theorem 6).

    Under a fixed strategy the consumer-surplus curve [Phi(nu)] is
    non-decreasing except at capacities where CPs re-equilibrate between
    classes, where it can drop.  Eq. (9) measures the worst such drop,

    {v epsilon_s = sup { Phi(nu1) - Phi(nu2) : nu1 < nu2 } v}

    and Theorem 6 uses it to bound how far market-share maximisation can
    stray from consumer-surplus maximisation. *)

val phi_curve :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> strategy:Strategy.t ->
  nus:float array -> Po_model.Cp.t array -> float array
(** Per-capita consumer surplus along a capacity grid (chunked
    warm-started CP-game solves; see {!Monopoly.capacity_sweep}). *)

val psi_curve :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> strategy:Strategy.t ->
  nus:float array -> Po_model.Cp.t array -> float array
(** Per-capita ISP surplus along a capacity grid. *)

val epsilon :
  ?pool:Po_par.Pool.t -> ?chunk_size:int -> strategy:Strategy.t ->
  nus:float array -> Po_model.Cp.t array -> float
(** Empirical Eq. (9) on the sampled curve: the largest drop of
    [Phi(nu)] when scanning the (increasing) capacity grid. *)

val epsilon_of_curve : float array -> float
(** Same, on an already-sampled curve (ordered by increasing [nu]). *)

val alignment_gap : xs:float array -> ys:float array -> float
(** [sup { xs.(i) - xs.(j) : ys.(i) <= ys.(j) }] clamped at 0, over all
    sample pairs.  With [xs] the market shares and [ys] the surpluses of a
    strategy sample this is the empirical [delta_s] of Theorem 6 (how much
    share a weakly-surplus-dominated strategy can still gain); with the
    roles swapped it is the empirical [epsilon]-deficit. *)
