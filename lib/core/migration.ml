open Po_model

type state = {
  shares : float array;
  phis : float array;
  time : int;
}

let unconstrained_nu cps =
  Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps

let phis_at (config : Oligopoly.config) cps shares =
  let nu_sat = Float.max (unconstrained_nu cps) 1e-9 in
  let nu_big = (4. *. nu_sat) +. 1. in
  Array.mapi
    (fun i (isp : Oligopoly.isp) ->
      let nu_i =
        if shares.(i) <= 1e-12 then nu_big
        else Float.min nu_big (isp.Oligopoly.gamma *. config.Oligopoly.nu /. shares.(i))
      in
      (Cp_game.ensure_converged
         ~context:[ ("stage", "migration"); ("isp", isp.Oligopoly.label) ]
         (Cp_game.solve ~nu:nu_i ~strategy:isp.Oligopoly.strategy cps))
        .Cp_game.phi)
    config.Oligopoly.isps

let init_with ~shares config cps =
  let n = Array.length config.Oligopoly.isps in
  if Array.length shares <> n then
    invalid_arg "Migration.init_with: shares length mismatch";
  Array.iter
    (fun m -> if m <= 0. then invalid_arg "Migration.init_with: share <= 0")
    shares;
  let total = Array.fold_left ( +. ) 0. shares in
  if Float.abs (total -. 1.) > 1e-9 then
    invalid_arg "Migration.init_with: shares must sum to 1";
  { shares = Array.copy shares; phis = phis_at config cps shares; time = 0 }

let init config cps =
  let shares =
    Array.map (fun (isp : Oligopoly.isp) -> isp.Oligopoly.gamma)
      config.Oligopoly.isps
  in
  init_with ~shares config cps

let step ?(eta = 0.5) config cps state =
  if eta <= 0. then invalid_arg "Migration.step: eta <= 0";
  let n = Array.length state.shares in
  let avg =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (state.shares.(i) *. state.phis.(i))
    done;
    !acc
  in
  let scale = Float.max (Array.fold_left Float.max 0. state.phis) 1e-12 in
  let updated =
    Array.mapi
      (fun i m ->
        let growth = 1. +. (eta *. (state.phis.(i) -. avg) /. scale) in
        Float.max 1e-6 (m *. Float.max 0. growth))
      state.shares
  in
  let total = Array.fold_left ( +. ) 0. updated in
  let shares = Array.map (fun m -> m /. total) updated in
  { shares; phis = phis_at config cps shares; time = state.time + 1 }

let surplus_spread state =
  if Array.length state.phis = 0 then 0.
  else
    Array.fold_left Float.max state.phis.(0) state.phis
    -. Array.fold_left Float.min state.phis.(0) state.phis

let run ?eta ?(tol = 1e-4) ?(max_steps = 500) config cps state =
  let scale st =
    Float.max (Array.fold_left Float.max 0. st.phis) 1e-12
  in
  let rec loop st steps =
    if surplus_spread st <= tol *. scale st then (st, true)
    else if steps >= max_steps then (st, false)
    else loop (step ?eta config cps st) (steps + 1)
  in
  loop state 0

let run_checked ?eta ?tol ?max_steps config cps state =
  Po_guard.Po_error.capture (fun () ->
      match run ?eta ?tol ?max_steps config cps state with
      | final, true -> final
      | final, false ->
          Po_guard.Po_error.fail
            ~context:[ ("stage", "migration") ]
            (Po_guard.Po_error.Non_convergence
               { residual = surplus_spread final; iterations = final.time })
      | exception Invalid_argument msg ->
          Po_guard.Po_error.fail
            (Po_guard.Po_error.Invalid_scenario msg))

let run_continuous ?(dt = 0.2) ?(tol = 1e-4) ?(max_steps = 2000) config cps
    state =
  let n = Array.length state.shares in
  let steps_taken = ref 0 in
  let derivative ~t:_ shares =
    let phis = phis_at config cps shares in
    let avg =
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (shares.(i) *. phis.(i))
      done;
      !acc
    in
    let scale = Float.max (Array.fold_left Float.max 0. phis) 1e-12 in
    Array.mapi (fun i m -> m *. (phis.(i) -. avg) /. scale) shares
  in
  (* Keep the state strictly inside the simplex: an extinct ISP could
     never win consumers back, whereas real consumers re-evaluate. *)
  let renormalise shares =
    let floored = Array.map (Float.max 1e-6) shares in
    let total = Array.fold_left ( +. ) 0. floored in
    Array.map (fun m -> m /. total) floored
  in
  let stop shares =
    let phis = phis_at config cps shares in
    let spread =
      Array.fold_left Float.max phis.(0) phis
      -. Array.fold_left Float.min phis.(0) phis
    in
    incr steps_taken;
    spread <= tol *. Float.max (Array.fold_left Float.max 0. phis) 1e-12
  in
  let shares, converged =
    Po_num.Ode.integrate_until ~post:renormalise ~max_steps ~f:derivative ~dt
      ~stop state.shares
  in
  ( { shares; phis = phis_at config cps shares;
      time = state.time + !steps_taken },
    converged )
