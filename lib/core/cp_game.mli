(** The second-stage CP game (Sec. III-B to III-D).

    Given an ISP strategy [s = (kappa, c)] and the ISP's per-capita
    capacity [nu], every CP simultaneously chooses the ordinary class
    (capacity [(1-kappa) nu], free) or the premium class (capacity
    [kappa nu], charged [c] per unit traffic).  A CP's payoff is
    [v_i lambda_i] in the ordinary class and [(v_i - c) lambda_i] in the
    premium class (Eq. 4).

    Two solution concepts are implemented:

    - {b competitive equilibrium} (Definition 3): CPs are
      throughput-takers (Assumption 3) — under max-min fairness a CP
      estimates its achievable throughput in a class from the class's
      current water level, [theta~ = min (theta_hat, cap)].  This is the
      concept the paper evaluates numerically and the default solver here.
    - {b Nash equilibrium} (Definition 2): deviations are evaluated
      ex-post, re-solving the target class with the deviator included.

    Ties are broken toward the ordinary class throughout, as in the
    paper. *)

type solution_concept =
  | Competitive of float
      (** Definition 3, satisfied up to the given relative eps (0 when the
          strict iteration converged).  With finitely many CPs an exact
          competitive equilibrium need not exist — a marginal CP's own
          membership can move a class's water level past its indifference
          point — so the solver settles for an eps-equilibrium. *)
  | Expost_nash
      (** Definition 2: no CP gains by switching when the deviation is
          evaluated ex-post (deviator included).  The solver falls back to
          this concept when throughput-taking refuses to settle, which
          happens only in small populations where single CPs carry a
          macroscopic share of a class's load. *)

type outcome = {
  strategy : Strategy.t;
  nu : float;  (** the ISP's per-capita capacity during this game *)
  partition : Partition.t;
  theta : float array;  (** per-CP achievable throughput (full population) *)
  rho : float array;  (** per-CP per-user per-capita throughput [d theta] *)
  cap_ordinary : float;  (** ordinary-class water level; 0 when no capacity *)
  cap_premium : float;
  lambda_ordinary : float;  (** per-capita traffic carried by the ordinary class *)
  lambda_premium : float;  (** per-capita traffic carried by the premium class *)
  phi : float;  (** per-capita consumer surplus (Eq. 2) across both classes *)
  psi : float;  (** per-capita ISP surplus [c * lambda_premium] *)
  converged : bool;
  iterations : int;
  concept : solution_concept;
  (** which equilibrium notion this outcome satisfies; audit
      [Competitive eps] with [check_competitive ~rel_tol:eps] and
      [Expost_nash] with [check_nash] *)
}

val class_solution :
  nu_class:float -> Po_model.Cp.t array -> Po_model.Equilibrium.solution
(** Max-min rate equilibrium of one service class; a class with zero
    capacity yields zero throughput (cap 0) even when empty. *)

val outcome_of_partition :
  nu:float -> strategy:Strategy.t -> Po_model.Cp.t array -> Partition.t ->
  outcome
(** Evaluate rates and welfare at a {e fixed} partition (no equilibrium
    search); [converged] is [true], [iterations] 0. *)

val default_hysteresis : float
(** Relative switching threshold of the tolerant solver phase ([1e-3]):
    with finitely many CPs a marginal CP's own membership can move a
    class's water level past its indifference point, so an {e exact}
    competitive equilibrium need not exist; the solver then settles for an
    eps-equilibrium in which no CP can gain more than this fraction of its
    utility by switching. *)

val solve :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_iter:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp.t array -> outcome
(** Competitive equilibrium via simultaneous best-response iteration with
    cycle detection; on a cycle the solver falls back to one-CP-at-a-time
    (asynchronous) updates, which dampen the overshoot.  [init] warm-starts
    the partition (useful along parameter sweeps); the default start is the
    affordable set [{i : v_i > c}] (or all-ordinary when [kappa = 0]).
    [max_iter] (default 200) bounds simultaneous rounds; asynchronous
    passes are bounded separately.  [converged = false] flags a best-effort
    outcome.

    Internally the search runs on an {e engine} that memoises class
    solutions by partition key, memoises solo-entrant equilibria by CP id,
    and warm-starts every class re-solve after a single-CP move from a
    one-sided bracket around the previous water level (the level moves
    monotonically when one CP enters or leaves; DESIGN.md §9).  All of
    these are bit-transparent, so {!solve} agrees with {!solve_reference}
    bit for bit.  The engine is polymorphic in the population storage
    (DESIGN.md §12): the same search phases run over boxed [Cp.t] arrays
    or over {!Po_model.Cp_soa.t} columns ({!solve_soa}).

    [budget] is a [Po_sup.Budget] deadline/cancellation token
    (DESIGN.md §13), checked cooperatively at the start of every
    simultaneous round and every asynchronous/tolerant/Nash pass; on
    expiry the search raises a typed [Deadline_exceeded] (or
    [Cancelled]) stamped with the solver frames rather than hanging.
    A budget never changes the outcome of a search that completes. *)

val solve_soa :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_iter:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp_soa.t -> outcome
(** {!solve} over a structure-of-arrays population: class solves run
    {!Po_model.Equilibrium.solve_soa} on gathered columns and no [Cp.t]
    record is allocated anywhere in the search.  Bit-identical to
    [solve ~nu ~strategy (Cp_soa.to_cps soa)] on every input
    (test/test_soa.ml). *)

val solve_reference :
  ?init:Partition.t -> ?max_iter:int -> nu:float -> strategy:Strategy.t ->
  Po_model.Cp.t array -> outcome
(** {!solve} on the differential-testing engine: every class re-solve goes
    through {!Po_model.Equilibrium.solve_reference}, cold, with no caches
    and no bracket hints.  [test_perf_kernel] pins {!solve} to this bit for
    bit. *)

val check_competitive :
  ?tol:float -> ?rel_tol:float -> nu:float -> strategy:Strategy.t ->
  Po_model.Cp.t array -> Partition.t -> (unit, int * string) result
(** Audit Definition 3 at a partition: no CP prefers the other class under
    throughput-taking estimates by more than [tol] (absolute, default
    [1e-9]) plus [rel_tol] (relative to its current utility, default 0 —
    pass {!default_hysteresis} to audit the solver's eps-equilibria).
    Stops at the first violation and returns its CP index alongside the
    message. *)

val check_nash :
  ?tol:float -> nu:float -> strategy:Strategy.t -> Po_model.Cp.t array ->
  Partition.t -> (unit, int * string) result
(** Audit Definition 2 at a partition: deviations evaluated ex-post with
    the deviator included in the target class.  Stops at the first
    violation and returns its CP index alongside the message. *)

val solve_nash :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_rounds:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp.t array -> outcome
(** Nash equilibrium search by asynchronous ex-post best responses
    (round-robin).  Converges when a full pass makes no move.  Runs on the
    same caching/warm-starting engine as {!solve}. *)

val solve_nash_reference :
  ?init:Partition.t -> ?max_rounds:int -> nu:float -> strategy:Strategy.t ->
  Po_model.Cp.t array -> outcome
(** {!solve_nash} on the cold reference engine (see {!solve_reference}). *)

val solve_nash_soa :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_rounds:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp_soa.t -> outcome
(** {!solve_nash} over a structure-of-arrays population (see
    {!solve_soa}); deviation re-solves extend the target class's columns
    in place of appending a record. *)

val ensure_converged : ?context:(string * string) list -> outcome -> outcome
(** Identity on a converged outcome; raises [Po_guard.Po_error.Error]
    with kind [Non_convergence] (stamped with the solver name, [nu] and
    the strategy, plus the caller's [context] frames) on a best-effort
    one — the guard call sites use so that a dropped [converged] flag
    can never silently feed a figure (DESIGN.md §10). *)

val solve_checked :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_iter:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp.t array ->
  (outcome, Po_guard.Po_error.t) result
(** {!solve} through the typed error channel: [Error] carries
    [Non_convergence] when the iteration budget ran out (where {!solve}
    returns [converged = false]), [Invalid_scenario] for domain errors,
    and any typed error the inner equilibrium solves raised. *)

val solve_soa_checked :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_iter:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp_soa.t ->
  (outcome, Po_guard.Po_error.t) result
(** {!solve_soa} through the typed error channel (see
    {!solve_checked}). *)

val solve_nash_checked :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_rounds:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp.t array ->
  (outcome, Po_guard.Po_error.t) result
(** {!solve_nash} through the typed error channel (see
    {!solve_checked}). *)

val solve_nash_soa_checked :
  ?budget:Po_sup.Budget.t -> ?init:Partition.t -> ?max_rounds:int ->
  nu:float -> strategy:Strategy.t -> Po_model.Cp_soa.t ->
  (outcome, Po_guard.Po_error.t) result
(** {!solve_nash_soa} through the typed error channel (see
    {!solve_checked}). *)
