(** Explicit consumer-migration dynamics (Assumption 5).

    The equilibrium solvers in {!Duopoly} and {!Oligopoly} jump straight to
    the equal-surplus fixed point; this module simulates the migration
    {e process} itself — consumers flow from ISPs offering lower per-capita
    surplus towards those offering higher — and is used to demonstrate
    that the process converges to the same equilibria (and to study speeds
    and transients).

    The update is a replicator-style rule: with shares [m_I] and surpluses
    [Phi_I], mean surplus [avg = sum m_I Phi_I],

    {v m_I <- m_I * (1 + eta * (Phi_I - avg) / scale) v}

    followed by renormalisation; [scale] is the current maximum surplus
    (or 1 when all surpluses vanish), making [eta] a dimensionless step
    size. *)

type state = {
  shares : float array;
  phis : float array;  (** per-ISP per-capita consumer surplus at these shares *)
  time : int;
}

val init : Oligopoly.config -> Po_model.Cp.t array -> state
(** Start from shares proportional to capacity. *)

val init_with : shares:float array -> Oligopoly.config -> Po_model.Cp.t array -> state
(** Start from given shares (positive, summing to 1 within [1e-9]). *)

val step :
  ?eta:float -> Oligopoly.config -> Po_model.Cp.t array -> state -> state
(** One migration step ([eta] defaults to [0.5]).  Shares are floored at
    [1e-6] before renormalisation so an ISP can always win consumers
    back. *)

val run :
  ?eta:float -> ?tol:float -> ?max_steps:int -> Oligopoly.config ->
  Po_model.Cp.t array -> state -> state * bool
(** Iterate until the largest surplus spread [max Phi - min Phi] falls
    below [tol] (default [1e-4] relative to the max surplus) or
    [max_steps] (default 500) elapse.  Returns the final state and whether
    the spread converged. *)

val run_checked :
  ?eta:float -> ?tol:float -> ?max_steps:int -> Oligopoly.config ->
  Po_model.Cp.t array -> state ->
  (state, Po_guard.Po_error.t) result
(** {!run} with the convergence flag promoted into the typed error
    channel: a spread still above tolerance after [max_steps] becomes
    [Error] with kind [Non_convergence] carrying the residual spread and
    the step count (DESIGN.md §10).  Per-ISP CP-game solves inside
    {!step} already raise on [converged = false]. *)

val surplus_spread : state -> float
(** [max phis - min phis]. *)

val run_continuous :
  ?dt:float -> ?tol:float -> ?max_steps:int -> Oligopoly.config ->
  Po_model.Cp.t array -> state -> state * bool
(** The continuous-time replicator form of Assumption 5,

    {v dm_I/dt = m_I * (Phi_I - avg) / scale v}

    integrated with classical RK4 ([dt] defaults to [0.2], renormalising
    onto the simplex after every step).  Stops when the surplus spread
    falls below [tol] (default [1e-4], relative to the max surplus) or
    after [max_steps] (default 2000) RK4 steps.  Converges to the same
    equal-surplus equilibria as {!run}; exposed to study trajectories and
    adjustment speeds without step-size artefacts. *)
