open Po_model

type config = {
  nu : float;
  gamma_i : float;
  strategy_i : Strategy.t;
  strategy_j : Strategy.t;
}

let config ?(gamma_i = 0.5) ?(strategy_j = Strategy.public_option) ~nu
    ~strategy_i () =
  if nu < 0. then invalid_arg "Duopoly.config: nu < 0";
  if not (gamma_i > 0. && gamma_i < 1.) then
    invalid_arg "Duopoly.config: gamma_i outside (0, 1)";
  { nu; gamma_i; strategy_i; strategy_j }

type equilibrium = {
  m_i : float;
  nu_i : float;
  nu_j : float;
  outcome_i : Cp_game.outcome;
  outcome_j : Cp_game.outcome;
  phi : float;
  psi_i : float;
  psi_j : float;
  interior : bool;
}

let unconstrained_nu cps =
  Array.fold_left (fun acc cp -> acc +. Cp.lambda_hat_per_capita cp) 0. cps

(* Per-capita capacity of an ISP holding capacity share [gamma] and market
   share [m]; an (almost) empty ISP is effectively unconstrained, which we
   represent with a finite capacity comfortably above saturation. *)
let isp_nu ~nu ~gamma ~nu_sat m =
  if m <= 1e-12 then (4. *. nu_sat) +. 1.
  else Float.min (((4. *. nu_sat) +. 1.)) (gamma *. nu /. m)

let solve ?(tol = 1e-6) config cps =
  let nu_sat = unconstrained_nu cps in
  let warm_i = ref None and warm_j = ref None in
  let eval_i m =
    let nu_i = isp_nu ~nu:config.nu ~gamma:config.gamma_i ~nu_sat m in
    let o =
      Cp_game.solve ?init:!warm_i ~nu:nu_i ~strategy:config.strategy_i cps
    in
    warm_i := Some o.Cp_game.partition;
    (nu_i, o)
  in
  let eval_j m =
    let nu_j =
      isp_nu ~nu:config.nu ~gamma:(1. -. config.gamma_i) ~nu_sat (1. -. m)
    in
    let o =
      Cp_game.solve ?init:!warm_j ~nu:nu_j ~strategy:config.strategy_j cps
    in
    warm_j := Some o.Cp_game.partition;
    (nu_j, o)
  in
  let gap m =
    let _, oi = eval_i m and _, oj = eval_j m in
    oi.Cp_game.phi -. oj.Cp_game.phi
  in
  let finish m ~interior =
    let nu_i, outcome_i = eval_i m in
    let nu_j, outcome_j = eval_j m in
    let phi_i = outcome_i.Cp_game.phi and phi_j = outcome_j.Cp_game.phi in
    { m_i = m; nu_i; nu_j; outcome_i; outcome_j;
      phi = (m *. phi_i) +. ((1. -. m) *. phi_j);
      psi_i = m *. outcome_i.Cp_game.psi;
      psi_j = (1. -. m) *. outcome_j.Cp_game.psi;
      interior }
  in
  let m_lo = 1e-9 and m_hi = 1. -. 1e-9 in
  let g_lo = gap m_lo in
  if g_lo <= 0. then finish 0. ~interior:false
  else begin
    let g_hi = gap m_hi in
    if g_hi >= 0. then finish 1. ~interior:false
    else begin
      (* gap is non-increasing in m: bisect the sign change. *)
      let rec bisect lo hi n =
        if hi -. lo <= tol || n > 80 then finish (0.5 *. (lo +. hi)) ~interior:true
        else
          let mid = 0.5 *. (lo +. hi) in
          if gap mid > 0. then bisect mid hi (n + 1)
          else bisect lo mid (n + 1)
      in
      bisect m_lo m_hi 0
    end
  end

(* Each sweep point is an independent [solve] (the warm-start refs above
   live inside a single solve), so the points can be evaluated on a pool
   in any order without changing a single bit of the result. *)
let price_sweep ?pool ?(kappa_i = 1.) ~config:cfg ~cs cps =
  Po_par.Pool.maybe_map pool
    (fun c ->
      let cfg = { cfg with strategy_i = Strategy.make ~kappa:kappa_i ~c } in
      solve cfg cps)
    cs

let capacity_sweep ?pool ~config:cfg ~nus cps =
  Po_par.Pool.maybe_map pool (fun nu -> solve { cfg with nu } cps) nus

let max_revenue_price cps =
  Array.fold_left (fun acc (cp : Cp.t) -> Float.max acc cp.Cp.v) 0. cps

let best_response_generic ~objective ?(levels = 2) ?(points = 9) ~config:cfg
    cps =
  let hi_c = Float.max (max_revenue_price cps) 1e-9 in
  let value kappa c =
    let cfg = { cfg with strategy_i = Strategy.make ~kappa ~c } in
    objective (solve cfg cps)
  in
  let best =
    Po_num.Optimize.refine_grid_max2 ~levels ~points ~f:value ~lo1:0. ~hi1:1.
      ~lo2:0. ~hi2:hi_c ()
  in
  let strategy =
    Strategy.make ~kappa:best.Po_num.Optimize.x1 ~c:best.Po_num.Optimize.x2
  in
  (strategy, solve { cfg with strategy_i = strategy } cps)

let best_response_market_share ?levels ?points ~config cps =
  best_response_generic ~objective:(fun eq -> eq.m_i) ?levels ?points ~config
    cps

let best_response_consumer_surplus ?levels ?points ~config cps =
  best_response_generic ~objective:(fun eq -> eq.phi) ?levels ?points ~config
    cps

let check_theorem5 ?(tol = 1e-3) ?strategies ~config:cfg cps =
  let strategies =
    match strategies with
    | Some s -> s
    | None ->
        Strategy.grid
          ~kappas:(Po_num.Grid.linspace 0. 1. 5)
          ~cs:(Po_num.Grid.linspace 0. (Float.max (max_revenue_price cps) 1e-9) 5)
          ()
  in
  if not (Strategy.is_public_option cfg.strategy_j) then
    invalid_arg "Duopoly.check_theorem5: ISP J must be the Public Option";
  let results =
    Array.map
      (fun s ->
        let eq = solve { cfg with strategy_i = s } cps in
        (s, eq.m_i, eq.phi))
      strategies
  in
  let _, _, best_phi =
    Array.fold_left
      (fun ((_, _, bphi) as acc) ((_, _, phi) as r) ->
        if phi > bphi then r else acc)
      results.(0) results
  in
  let share_max_s, _, share_max_phi =
    Array.fold_left
      (fun ((_, bm, _) as acc) ((_, m, _) as r) -> if m > bm then r else acc)
      results.(0) results
  in
  if share_max_phi < best_phi -. tol then
    Error
      (Printf.sprintf
         "theorem 5 violated: share-maximising %s yields Phi=%g < max \
          Phi=%g"
         (Strategy.to_string share_max_s) share_max_phi best_phi)
  else Ok ()
