(** po_lint orchestration: parse, check, suppress, report.

    The library never prints and never exits; drivers ([bin/polint], the
    [ponet lint] subcommand, [test/test_lint]) decide how to render the
    returned diagnostics and which exit code to use. *)

val default_paths : string list
(** [lib; bin; bench; test; examples] — the standard source roots. *)

val lint_source :
  file:string ->
  ?has_mli:bool ->
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  string ->
  Diagnostic.t list
(** [lint_source ~file src] lints implementation text [src] presented as
    repo-relative path [file] (which determines rule scoping, see
    {!Rule.applies_to}).  [has_mli] (default [true]) tells the R5 check
    whether a matching interface exists — callers linting real files pass
    the filesystem truth, fixtures pass what the test needs.  Diagnostics
    come back sorted by {!Diagnostic.compare}. *)

val lint_file :
  ?root:string ->
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  string ->
  Diagnostic.t list
(** [lint_file ~root file] reads [root/file] ([root] defaults to ["."])
    and lints it as [file]; R5 consults [Sys.file_exists (file ^ "i")]. *)

val collect_ml_files : root:string -> string list -> string list
(** Recursively collect [.ml] files under the given repo-relative files
    or directories, sorted, skipping [_build], [_opam] and dot
    directories. *)

val lint_tree :
  ?root:string ->
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  string list ->
  Diagnostic.t list
(** Lint every [.ml] under the given paths; the union of per-file
    diagnostics, stable-sorted and deduplicated. *)

val run :
  ?root:string ->
  ?allowlist_path:string ->
  ?rules:Rule.id list ->
  ?paths:string list ->
  unit ->
  (Diagnostic.t list, string) result
(** Driver entry point: loads the allowlist ([allowlist_path], defaulting
    to [root/polint.allow] when that file exists), defaults [paths] to
    the existing members of {!default_paths}, and lints.  [Error] carries
    a configuration problem (unreadable allowlist, unknown path) as
    opposed to lint findings. *)
