(** po_lint orchestration: parse, check, suppress, report.

    The library never prints and never exits; drivers ([bin/polint], the
    [ponet lint] subcommand, [test/test_lint]) decide how to render the
    returned diagnostics and which exit code to use.

    Two stages.  The parsetree stage (R1-R6) parses each file with the
    compiler front end — no build required.  The typed stage (R7-R10)
    loads the [.cmt] trees dune wrote during the last build, builds the
    cross-module call graph and runs the interprocedural rules; it is
    only active through {!run} with [~typed:true] (or
    {!lint_typed_units} for explicitly supplied units). *)

val default_paths : string list
(** [lib; bin; bench; test; examples] — the standard source roots. *)

val lint_source :
  file:string ->
  ?has_mli:bool ->
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  string ->
  Diagnostic.t list
(** [lint_source ~file src] runs the parsetree stage on implementation
    text [src] presented as repo-relative path [file] (which determines
    rule scoping, see {!Rule.applies_to}).  [has_mli] (default [true])
    tells the R5 check whether a matching interface exists — callers
    linting real files pass the filesystem truth, fixtures pass what the
    test needs.  Diagnostics come back sorted by {!Diagnostic.compare}. *)

val lint_file :
  ?root:string ->
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  string ->
  Diagnostic.t list
(** [lint_file ~root file] reads [root/file] ([root] defaults to ["."])
    and lints it as [file]; R5 consults [Sys.file_exists (file ^ "i")]. *)

val collect_ml_files : root:string -> string list -> string list
(** Recursively collect [.ml] files under the given repo-relative files
    or directories, sorted, skipping [_build], [_opam] and dot
    directories. *)

val lint_tree :
  ?root:string ->
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  ?jobs:int ->
  string list ->
  Diagnostic.t list
(** Parsetree stage over every [.ml] under the given paths; the union of
    per-file diagnostics, stable-sorted and deduplicated.  [jobs > 1]
    fans the per-file work out on a po_par pool (parsing itself is
    serialized on the compiler's global lexer state); output is
    identical for any job count. *)

val lint_typed_units :
  ?rules:Rule.id list ->
  ?allowlist:Suppress.allowlist ->
  Cmt_loader.unit_info list ->
  Diagnostic.t list
(** Typed stage over explicitly provided units (typically from
    {!Cmt_loader.typecheck_impl} in tests).  [rules] defaults to
    {!Rule.typed}.  Inline suppressions in the units' comments and the
    allowlist apply exactly as in {!run}; malformed directives surface
    as ["suppress"] diagnostics. *)

type report = {
  diagnostics : Diagnostic.t list;
      (** final stable-sorted findings, meta ("parse"/"suppress")
          included *)
  stale_allows : Suppress.allow_entry list;
      (** allowlist entries that matched nothing this run *)
  stale_directives : (string * int) list;
      (** (file, line) of inline [polint: allow] comments that
          suppressed nothing this run *)
  typed_units : int;  (** compilation units the typed pass analyzed *)
  typed_notes : string list;
      (** non-fatal typed-pass observations: unreadable cmts, missing
          build directory *)
}

val run :
  ?root:string ->
  ?allowlist_path:string ->
  ?rules:Rule.id list ->
  ?paths:string list ->
  ?typed:bool ->
  ?build_dir:string ->
  ?jobs:int ->
  unit ->
  (report, string) result
(** Driver entry point: loads the allowlist ([allowlist_path],
    defaulting to [root/polint.allow] when that file exists), defaults
    [paths] to the existing members of {!default_paths}, runs the
    parsetree stage, and with [typed] also the typed stage over the
    [.cmt]s under [build_dir] (default [root/_build/default]) —
    restricted to files under [paths].  While the typed pass has units
    to analyze, R9 supersedes R1 (the syntactic float-compare heuristic
    stands down for the type-grounded rule).  [Error] carries a
    configuration problem (unreadable allowlist, unknown path) as
    opposed to lint findings. *)
