(* Loading the compiler's typed trees for the second analysis stage.

   The parsetree pass (R1-R6) sees one file at a time and no types; the
   typed pass (R7-R10) needs what the compiler knew: resolved paths,
   inferred types and cross-module references.  Dune already writes that
   knowledge to `.cmt` files under `_build/default/**/.objs/byte` on
   every build, so the loader's job is discovery and bookkeeping — find
   the cmts, read them with [Cmt_format], and map each compilation unit
   back to its repo-relative source file so diagnostics, suppressions
   and the allowlist all speak the same paths as the parsetree pass.

   For tests there is also [typecheck_impl], which runs the compiler's
   own type checker in process on a fixture string (against the real
   build tree's cmis, so fixtures can capture e.g. a genuine
   [Po_par.Pool.parallel_map] closure) and yields the same [unit_info]
   shape as a cmt read from disk. *)

type unit_info = {
  modname : string;  (* compilation unit name, e.g. "Po_core__Cp_game" *)
  canonical : string list;  (* display path, e.g. ["Po_core"; "Cp_game"] *)
  file : string;  (* repo-relative source path *)
  structure : Typedtree.structure;
  comments : (string * Location.t) list;
}

(* "Po_core__Cp_game" -> ["Po_core"; "Cp_game"]: dune's wrapped-library
   mangling uses a double underscore between the library namespace and
   the module.  A trailing "__" (the generated alias module of some dune
   versions) collapses to the bare namespace. *)
let canonical_of_modname modname =
  let rec split acc start i =
    if i + 1 >= String.length modname then
      List.rev (String.sub modname start (String.length modname - start) :: acc)
    else if Char.equal modname.[i] '_' && Char.equal modname.[i + 1] '_' then
      split (String.sub modname start (i - start) :: acc) (i + 2) (i + 2)
    else split acc start (i + 1)
  in
  let parts =
    List.filter (fun s -> not (String.equal s "")) (split [] 0 0)
  in
  (* Executables get a "Dune__exe__" prefix; it carries no information
     for witnesses, so "Dune__exe__Ponet" reads as plain "Ponet". *)
  match parts with "Dune" :: "exe" :: (_ :: _ as rest) -> rest | _ -> parts

let normalize_slashes file =
  if String.starts_with ~prefix:"./" file then
    String.sub file 2 (String.length file - 2)
  else file

(* Map [cmt_sourcefile] (recorded relative to the compilation directory,
   which for dune is the _build context root) to a repo-relative path.
   The build context mirrors the source layout, so the relative path is
   usually already the answer; absolute paths and paths escaping through
   the build dir are stripped down to the mirror-relative form. *)
let source_file ~root (cmt : Cmt_format.cmt_infos) =
  match cmt.Cmt_format.cmt_sourcefile with
  | None -> None
  | Some src ->
      let src = normalize_slashes src in
      let strip_prefix prefix s =
        let prefix =
          if String.ends_with ~suffix:"/" prefix then prefix else prefix ^ "/"
        in
        if String.starts_with ~prefix s then
          Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
        else None
      in
      let candidates =
        src
        :: List.filter_map Fun.id
             [ strip_prefix cmt.Cmt_format.cmt_builddir src;
               strip_prefix root src ]
      in
      let existing =
        List.find_opt
          (fun c ->
            Filename.is_relative c
            && Sys.file_exists (Filename.concat root c))
          candidates
      in
      (match existing with
      | Some c -> Some (normalize_slashes c)
      | None ->
          (* Generated sources (dune module aliases) have no checkout
             counterpart; report them under their recorded name. *)
          List.find_opt Filename.is_relative candidates)

let skip_dir entry =
  String.equal entry ".git" || String.equal entry "_opam"
  || String.equal entry ".sandbox"

let find_cmts ~build_dir =
  let out = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun entry ->
            if not (skip_dir entry) then begin
              let path = Filename.concat dir entry in
              if Sys.is_directory path then walk path
              else if Filename.check_suffix entry ".cmt" then
                out := path :: !out
            end)
          entries
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists build_dir && Sys.is_directory build_dir then
    walk build_dir;
  List.sort String.compare !out

let load_cmt ~root path =
  match Cmt_format.read_cmt path with
  | exception _ ->
      Error (Printf.sprintf "%s: unreadable or stale cmt" path)
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure -> (
          match source_file ~root cmt with
          | None -> Error (Printf.sprintf "%s: no source file recorded" path)
          | Some file ->
              Ok
                { modname = cmt.Cmt_format.cmt_modname;
                  canonical = canonical_of_modname cmt.Cmt_format.cmt_modname;
                  file;
                  structure;
                  comments = cmt.Cmt_format.cmt_comments })
      | _ -> Error (Printf.sprintf "%s: not an implementation" path))

(* A generated module (dune's `Lib__` aliases, *.ml-gen) has no checkout
   source; it still feeds the call graph (its aliases resolve paths) but
   is never a diagnostic target. *)
let generated info =
  Filename.check_suffix info.file ".ml-gen"
  || not (Filename.check_suffix info.file ".ml")

let load ~root ~build_dir =
  let units, errors =
    List.fold_left
      (fun (units, errors) path ->
        match load_cmt ~root path with
        | Ok info -> (info :: units, errors)
        | Error e -> (units, e :: errors))
      ([], [])
      (find_cmts ~build_dir)
  in
  (* Several executables can embed a module of the same name (dune
     copies shared sources per target); keep the first occurrence in
     path order — the trees are identical for linting purposes. *)
  let seen = Hashtbl.create 64 in
  let units =
    List.filter
      (fun u ->
        if Hashtbl.mem seen (u.modname, u.file) then false
        else begin
          Hashtbl.add seen (u.modname, u.file) ();
          true
        end)
      (List.rev units)
  in
  (units, List.rev errors)

(* ---------------- in-process type checking (fixtures) -------------- *)

let typecheck_initialized = ref false

let init_typecheck ~load_dirs =
  (* Idempotent global compiler state: the standard library plus the
     caller's cmi directories (typically the repo's own .objs dirs, so
     fixtures can reference Po_par and friends). *)
  if not !typecheck_initialized then begin
    typecheck_initialized := true;
    Compmisc.init_path ()
  end;
  List.iter Load_path.add_dir load_dirs

let typecheck_impl ?(load_dirs = []) ~file source =
  init_typecheck ~load_dirs;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  let ast = Parse.implementation lexbuf in
  let comments = Lexer.comments () in
  let structure, _, _, _, _ = Typemod.type_structure env ast in
  let modname =
    String.capitalize_ascii
      (Filename.remove_extension (Filename.basename file))
  in
  { modname;
    canonical = canonical_of_modname modname;
    file = normalize_slashes file;
    structure;
    comments }
