(** The AST-driven rule checks (R1-R4).

    Purely syntactic: a violation must be evident from the parse tree
    alone (float literals/annotations for R1, module paths for R2/R4,
    wildcard handler patterns for R3).  R5 is a filesystem property and is
    checked by {!Lint}. *)

val run :
  file:string ->
  rules:Rule.id list ->
  Parsetree.structure ->
  Diagnostic.t list
(** [run ~file ~rules ast] returns the raw findings for the rules listed
    in [rules] (already scoped to [file] by the caller), in no particular
    order and before suppression filtering. *)
