(* AST-driven rule checks (R1-R4, R6).  R5 is a filesystem property and lives
   in [Lint].  The traversal is a plain [Ast_iterator] over the 5.1
   Parsetree: purely syntactic, no typing — which is exactly the point of
   the catalogue: every rule is stated so that a violation is evident from
   the source text alone. *)

open Parsetree

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ---------------- R1: float evidence ---------------- *)

let float_operator = function
  | "+." | "-." | "*." | "/." | "**" | "~-." | "~+." -> true
  | _ -> false

let float_constant_ident = function
  | "nan" | "infinity" | "neg_infinity" | "epsilon_float" | "max_float"
  | "min_float" ->
      true
  | _ -> false

let float_function_ident = function
  | "sqrt" | "exp" | "log" | "log10" | "floor" | "ceil" | "abs_float"
  | "float_of_int" | "float_of_string" ->
      true
  | _ -> false

let last_component lid =
  match List.rev (Longident.flatten lid) with
  | last :: _ -> last
  | [] -> ""

let floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint
      ( _,
        { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []);
          _ } ) ->
      true
  | Pexp_ident { txt; _ } -> float_constant_ident (last_component txt)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let f = last_component txt in
      float_operator f || float_function_ident f
  | _ -> false

(* ---------------- the iterator ---------------- *)

let polymorphic_compare lid =
  match Longident.flatten lid with
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
      true
  | _ -> false

let ambient_random = function
  | "self_init" | "bits" | "int" | "full_int" | "int32" | "int64"
  | "nativeint" | "float" | "bool" ->
      true
  | _ -> false

let raw_write = function
  | "open_out" | "open_out_bin" | "open_out_gen" -> true
  | _ -> false

let direct_print = function
  | "print_string" | "print_endline" | "print_newline" | "print_char"
  | "print_int" | "print_float" | "print_bytes" | "prerr_string"
  | "prerr_endline" | "prerr_newline" ->
      true
  | _ -> false

let rec wildcard_pattern (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> wildcard_pattern p
  | Ppat_or (a, b) -> wildcard_pattern a || wildcard_pattern b
  | _ -> false

let run ~file ~rules structure =
  let diags = ref [] in
  let add loc rule message =
    if List.exists (Rule.equal rule) rules then begin
      let line, col = line_col loc in
      diags :=
        Diagnostic.v ~file ~line ~col ~rule:(Rule.to_string rule) ~message ()
        :: !diags
    end
  in
  let check_ident loc lid =
    if polymorphic_compare lid then
      add loc Rule.R1
        "polymorphic compare is NaN-unsafe and boxes its operands; use \
         Float.compare / Int.compare / String.compare or a type-specific \
         comparator"
    else
      match Longident.flatten lid with
      | [ "Random"; fn ] when ambient_random fn ->
          add loc Rule.R2
            (Printf.sprintf
               "Random.%s draws from ambient global PRNG state; use \
                Po_prng.Splitmix (or Random.State) with an explicit seed"
               fn)
      | [ "Sys"; "time" ] ->
          add loc Rule.R2
            "Sys.time reads the process clock; results must be a function \
             of --seed only"
      | [ "Unix"; (("gettimeofday" | "time") as fn) ] ->
          add loc Rule.R2
            (Printf.sprintf
               "Unix.%s reads the wall clock; results must be a function \
                of --seed only"
               fn)
      | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
          add loc Rule.R2
            (Printf.sprintf
               "Hashtbl.%s visits bindings in unspecified order; if the \
                result provably cannot depend on that order, suppress \
                with a justified 'polint: allow R2' comment"
               fn)
      | [ "Printf"; (("printf" | "eprintf") as fn) ] ->
          add loc Rule.R4
            (Printf.sprintf
               "Printf.%s writes to the console from library code; build \
                output through po_report instead"
               fn)
      | [ "Format"; (("printf" | "eprintf") as fn) ] ->
          add loc Rule.R4
            (Printf.sprintf
               "Format.%s writes to the console from library code; build \
                output through po_report instead"
               fn)
      | [ fn ] when direct_print fn ->
          add loc Rule.R4
            (Printf.sprintf
               "%s writes to the console from library code; build output \
                through po_report instead"
               fn)
      | [ ("Sys" | "Unix"); "mkdir" ] ->
          add loc Rule.R6
            "direct mkdir bypasses the crash-safe writer (which creates \
             parent directories itself); route writes through \
             Po_report.Writer or Po_report.Csv"
      | [ fn ] | [ "Stdlib"; fn ] when raw_write fn ->
          add loc Rule.R6
            (Printf.sprintf
               "%s writes a file in place — a killed run leaves a torn \
                file; use Po_report.Writer.write_atomic (temp file + \
                rename) or Po_report.Csv.write_file"
               fn)
      | _ -> ()
  in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident loc txt
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
          [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] )
      when (match op with "=" | "==" | "<>" | "!=" -> true | _ -> false)
           && (floatish a || floatish b) ->
        add e.pexp_loc Rule.R1
          (Printf.sprintf
             "polymorphic %s on a float operand; use Float.equal (negated \
              for inequality) or Float.compare"
             op)
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if wildcard_pattern c.pc_lhs then
              add c.pc_lhs.ppat_loc Rule.R3
                "wildcard handler swallows every exception (including \
                 Out_of_memory and Stack_overflow); match the specific \
                 exceptions this expression can raise")
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator structure;
  !diags
