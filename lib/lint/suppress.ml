(* Inline suppression comments and the per-rule allowlist file.

   An inline suppression is an ordinary comment whose trimmed body starts
   with the marker "polint:", e.g.

     [* polint: allow R2 -- cache is only read back through find_opt *]

   (brackets stand for the usual comment delimiters).  It silences the
   listed rules on the comment's own line(s) and on the line that follows,
   so it can sit either at the end of the offending line or just above
   it.  A justification after the rule ids is mandatory: suppressions are
   the audit trail for every exception to the catalogue. *)

type entry = { rules : Rule.id list; first_line : int; last_line : int }
type t = entry list

let empty = []

(* Whitespace/comma tokenizer shared by comment bodies and allowlist
   lines. *)
let tokens s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\n' | '\r' | ',' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

(* Pure punctuation tokens that may separate the rule ids from the
   justification: "-", "--", ":", an em or en dash. *)
let is_separator tok =
  match tok with
  | "-" | "--" | ":" | "\xe2\x80\x94" | "\xe2\x80\x93" -> true
  | _ -> false

let marker = "polint:"

type parsed =
  | Not_polint
  | Allow of Rule.id list
  | Malformed of string

let parse_comment body =
  let trimmed = String.trim body in
  if not (String.starts_with ~prefix:marker trimmed) then Not_polint
  else
    let rest =
      String.sub trimmed (String.length marker)
        (String.length trimmed - String.length marker)
    in
    match tokens rest with
    | "allow" :: args -> (
        (* A token shaped like a rule id that is not in the catalogue is
           the silent-typo footgun: 'allow R99' used to parse as a
           justification word and suppress nothing.  Reject it loudly —
           a suppression that does not do what it says is worse than a
           missing one. *)
        let rec take_rules acc = function
          | tok :: more as remaining -> (
              match Rule.of_string tok with
              | Some r -> take_rules (r :: acc) more
              | None ->
                  if Rule.looks_like_id tok then
                    Error
                      (Printf.sprintf
                         "unknown rule id %S in suppression; the catalogue \
                          is R1-R%d (see --list-rules)"
                         tok (List.length Rule.all))
                  else Ok (List.rev acc, remaining))
          | [] -> Ok (List.rev acc, [])
        in
        match take_rules [] args with
        | Error msg -> Malformed msg
        | Ok (rules, reason) -> (
            let reason =
              List.filter (fun t -> not (is_separator t)) reason
            in
            match (rules, reason) with
            | [], _ ->
                Malformed
                  "suppression lists no valid rule id; expected 'polint: \
                   allow <RULE-ID>... <justification>'"
            | _, [] ->
                Malformed
                  "suppression must carry a justification after the rule \
                   ids"
            | rules, _ -> Allow rules))
    | _ ->
        Malformed
          "unknown polint directive; the only one is 'polint: allow \
           <RULE-ID>... <justification>'"

let of_comments comments =
  List.fold_left
    (fun (sup, errs) (body, (loc : Location.t)) ->
      let line = loc.Location.loc_start.Lexing.pos_lnum in
      match parse_comment body with
      | Not_polint -> (sup, errs)
      | Allow rules ->
          ( { rules; first_line = line;
              last_line = loc.Location.loc_end.Lexing.pos_lnum + 1 }
            :: sup,
            errs )
      | Malformed msg ->
          let col =
            loc.Location.loc_start.Lexing.pos_cnum
            - loc.Location.loc_start.Lexing.pos_bol
          in
          (sup, (line, col, msg) :: errs))
    ([], []) comments

let active t ~rule ~line =
  List.exists
    (fun e ->
      e.first_line <= line && line <= e.last_line
      && List.exists (Rule.equal rule) e.rules)
    t

let to_list t = t

(* ---------------- allowlist file ---------------- *)

type allow_entry = {
  rule : Rule.id;
  path : string;
  reason : string;
  lineno : int;  (* 1-based line in the allowlist file, for reporting *)
}

type allowlist = allow_entry list

let empty_allowlist = []

let allowlist_entries t = t

let allowlist_of_string ~src text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match tokens line with
        | [] -> go (lineno + 1) acc rest
        | rule_tok :: path :: (_ :: _ as reason) -> (
            match Rule.of_string rule_tok with
            | Some rule ->
                go (lineno + 1)
                  ({ rule; path; reason = String.concat " " reason; lineno }
                  :: acc)
                  rest
            | None ->
                Error
                  (Printf.sprintf "%s:%d: unknown rule id %S" src lineno
                     rule_tok))
        | _ ->
            Error
              (Printf.sprintf
                 "%s:%d: expected '<RULE-ID> <path> <justification>'" src
                 lineno))
  in
  go 1 [] lines

let load_allowlist path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> allowlist_of_string ~src:path text
  | exception Sys_error msg -> Error msg

let entry_matches e ~rule ~file =
  Rule.equal e.rule rule
  && (String.equal e.path file
     || (String.length e.path > 0
        && Char.equal e.path.[String.length e.path - 1] '/'
        && String.starts_with ~prefix:e.path file))

let allows allowlist ~rule ~file =
  List.exists (fun e -> entry_matches e ~rule ~file) allowlist
