(** The interprocedural rules (R7-R10) over a built call graph.

    Produces raw diagnostics — suppression comments, the allowlist and
    per-rule/per-file applicability beyond {!Rule.applies_to} are the
    orchestrator's concern.  Output order is deterministic (graph node
    order, then fact order within a node). *)

val run : Callgraph.t -> Diagnostic.t list
