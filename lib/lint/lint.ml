(* Orchestration: walk the tree, parse each implementation with the
   compiler's own front end, run the checks, apply suppressions and the
   allowlist, and report stable-sorted diagnostics. *)

let default_paths = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let normalize file =
  if String.starts_with ~prefix:"./" file then
    String.sub file 2 (String.length file - 2)
  else file

(* [Parse.implementation] resets the lexer's comment store, so reading
   [Lexer.comments] right after parsing yields exactly this file's
   comments.  Linting is sequential; the global store is never shared. *)
let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  let ast = Parse.implementation lexbuf in
  (ast, Lexer.comments ())

let lint_source ~file ?(has_mli = true) ?(rules = Rule.all)
    ?(allowlist = Suppress.empty_allowlist) source =
  let file = normalize file in
  let rules =
    List.filter
      (fun r ->
        Rule.applies_to r ~file
        && not (Suppress.allows allowlist ~rule:r ~file))
      rules
  in
  match parse_structure ~file source with
  | exception _ ->
      [ Diagnostic.v ~file ~line:1 ~col:0 ~rule:"parse"
          ~message:
            "file does not parse with the OCaml 5.1 grammar; polint \
             cannot check it" ]
  | ast, comments ->
      let suppressions, malformed = Suppress.of_comments comments in
      let ast_rules =
        List.filter (fun r -> not (Rule.equal r Rule.R5)) rules
      in
      let found = Checks.run ~file ~rules:ast_rules ast in
      let found =
        if List.exists (Rule.equal Rule.R5) rules && not has_mli then
          Diagnostic.v ~file ~line:1 ~col:0 ~rule:"R5"
            ~message:
              (Printf.sprintf
                 "missing interface %si: every lib/**/*.ml must pin its \
                  contract in an .mli"
                 file)
          :: found
        else found
      in
      let kept =
        List.filter
          (fun (d : Diagnostic.t) ->
            match Rule.of_string d.Diagnostic.rule with
            | Some rule ->
                not
                  (Suppress.active suppressions ~rule ~line:d.Diagnostic.line)
            | None -> true)
          found
      in
      let suppression_errors =
        List.map
          (fun (line, col, message) ->
            Diagnostic.v ~file ~line ~col ~rule:"suppress" ~message)
          malformed
      in
      List.sort Diagnostic.compare (suppression_errors @ kept)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let lint_file ?(root = ".") ?rules ?allowlist file =
  let file = normalize file in
  let path = Filename.concat root file in
  let has_mli = Sys.file_exists (path ^ "i") in
  lint_source ~file ~has_mli ?rules ?allowlist (read_file path)

(* Deterministic walk: readdir output is sorted, and _build/_opam/.git
   style directories are skipped so linting the checkout and linting the
   dune sandbox copy agree. *)
let skip_entry entry =
  String.length entry = 0
  || Char.equal entry.[0] '.'
  || String.equal entry "_build"
  || String.equal entry "_opam"

let collect_ml_files ~root paths =
  let rec walk rel acc =
    let path = Filename.concat root rel in
    if Sys.is_directory path then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          if skip_entry entry then acc else walk (rel ^ "/" ^ entry) acc)
        acc entries
    end
    else if Filename.check_suffix rel ".ml" then rel :: acc
    else acc
  in
  let files =
    List.fold_left
      (fun acc p -> walk (normalize p) acc)
      []
      (List.sort_uniq String.compare paths)
  in
  List.sort String.compare files

let lint_tree ?(root = ".") ?rules ?allowlist paths =
  let files = collect_ml_files ~root paths in
  let diags =
    List.concat_map (fun file -> lint_file ~root ?rules ?allowlist file) files
  in
  List.sort_uniq Diagnostic.compare diags

let run ?(root = ".") ?allowlist_path ?rules ?paths () =
  let allowlist =
    match allowlist_path with
    | Some path -> Suppress.load_allowlist path
    | None ->
        let default = Filename.concat root "polint.allow" in
        if Sys.file_exists default then Suppress.load_allowlist default
        else Ok Suppress.empty_allowlist
  in
  match allowlist with
  | Error msg -> Error msg
  | Ok allowlist ->
      let paths =
        match paths with
        | Some (_ :: _ as p) -> p
        | Some [] | None ->
            List.filter
              (fun p -> Sys.file_exists (Filename.concat root p))
              default_paths
      in
      let missing =
        List.filter
          (fun p -> not (Sys.file_exists (Filename.concat root p)))
          paths
      in
      (match missing with
      | [] -> Ok (lint_tree ~root ?rules ~allowlist paths)
      | p :: _ -> Error (Printf.sprintf "no such file or directory: %s" p))
