(* Orchestration: walk the tree, parse each implementation with the
   compiler's own front end, run the parsetree checks, optionally load
   the build's typed trees for the interprocedural rules, apply
   suppressions and the allowlist, and report stable-sorted
   diagnostics together with which suppressions actually earned their
   keep. *)

let default_paths = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let normalize file =
  if String.starts_with ~prefix:"./" file then
    String.sub file 2 (String.length file - 2)
  else file

(* [Parse.implementation] resets the lexer's comment store, so reading
   [Lexer.comments] right after parsing yields exactly this file's
   comments.  The store is process-global compiler state, hence the
   mutex: with [--jobs] several domains lint concurrently and only the
   checks themselves are parallel-safe. *)
let parse_mutex = Mutex.create ()

let parse_structure ~file source =
  Mutex.protect parse_mutex (fun () ->
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf file;
      let ast = Parse.implementation lexbuf in
      (ast, Lexer.comments ()))

(* Raw per-file analysis: parsetree findings before any suppression or
   allowlist filtering, the file's suppression table, and meta
   diagnostics ("parse", "suppress") that can never be silenced. *)
let analyze_source ~file ~has_mli ~rules source =
  let file = normalize file in
  let rules = List.filter (fun r -> Rule.applies_to r ~file) rules in
  match parse_structure ~file source with
  | exception _ ->
      ( [],
        Suppress.empty,
        [ Diagnostic.v ~file ~line:1 ~col:0 ~rule:"parse"
            ~message:
              "file does not parse with the OCaml 5.1 grammar; polint \
               cannot check it"
            () ] )
  | ast, comments ->
      let suppressions, malformed = Suppress.of_comments comments in
      let ast_rules =
        List.filter
          (fun r -> not (Rule.equal r Rule.R5 || Rule.is_typed r))
          rules
      in
      let found = Checks.run ~file ~rules:ast_rules ast in
      let found =
        if List.exists (Rule.equal Rule.R5) rules && not has_mli then
          Diagnostic.v ~file ~line:1 ~col:0 ~rule:"R5"
            ~message:
              (Printf.sprintf
                 "missing interface %si: every lib/**/*.ml must pin its \
                  contract in an .mli"
                 file)
            ()
          :: found
        else found
      in
      let meta =
        List.map
          (fun (line, col, message) ->
            Diagnostic.v ~file ~line ~col ~rule:"suppress" ~message ())
          malformed
      in
      (found, suppressions, meta)

let suppressed_by suppressions (d : Diagnostic.t) =
  match Rule.of_string d.Diagnostic.rule with
  | None -> false
  | Some rule ->
      Suppress.active suppressions ~rule ~line:d.Diagnostic.line

let lint_source ~file ?(has_mli = true) ?(rules = Rule.all)
    ?(allowlist = Suppress.empty_allowlist) source =
  let file = normalize file in
  let found, suppressions, meta = analyze_source ~file ~has_mli ~rules source in
  let kept =
    List.filter
      (fun (d : Diagnostic.t) ->
        (not (suppressed_by suppressions d))
        &&
        match Rule.of_string d.Diagnostic.rule with
        | Some rule -> not (Suppress.allows allowlist ~rule ~file)
        | None -> true)
      found
  in
  List.sort Diagnostic.compare (meta @ kept)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let lint_file ?(root = ".") ?rules ?allowlist file =
  let file = normalize file in
  let path = Filename.concat root file in
  let has_mli = Sys.file_exists (path ^ "i") in
  lint_source ~file ~has_mli ?rules ?allowlist (read_file path)

(* Deterministic walk: readdir output is sorted, and _build/_opam/.git
   style directories are skipped so linting the checkout and linting the
   dune sandbox copy agree. *)
let skip_entry entry =
  String.length entry = 0
  || Char.equal entry.[0] '.'
  || String.equal entry "_build"
  || String.equal entry "_opam"

let collect_ml_files ~root paths =
  let rec walk rel acc =
    let path = Filename.concat root rel in
    if Sys.is_directory path then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          if skip_entry entry then acc else walk (rel ^ "/" ^ entry) acc)
        acc entries
    end
    else if Filename.check_suffix rel ".ml" then rel :: acc
    else acc
  in
  let files =
    List.fold_left
      (fun acc p -> walk (normalize p) acc)
      []
      (List.sort_uniq String.compare paths)
  in
  List.sort String.compare files

(* Per-file work fans out on the po_par pool when [jobs] asks for it;
   parsing stays serialized (see [parse_mutex]) and the final sort makes
   the output independent of worker count. *)
let map_files ?jobs f files =
  match jobs with
  | Some j when j > 1 && List.length files > 1 ->
      Po_par.Pool.with_pool
        ~domains:(min j (List.length files))
        (fun pool -> Po_par.Pool.parallel_map pool f (Array.of_list files))
      |> Array.to_list
  | _ -> List.map f files

let lint_tree ?(root = ".") ?rules ?allowlist ?jobs paths =
  let files = collect_ml_files ~root paths in
  let per_file = map_files ?jobs (fun f -> lint_file ~root ?rules ?allowlist f) files in
  List.sort_uniq Diagnostic.compare (List.concat per_file)

(* ---------------------- full-repo run ----------------------- *)

type file_result = {
  fr_file : string;
  fr_found : Diagnostic.t list;
  fr_supp : Suppress.t;
  fr_meta : Diagnostic.t list;
}

let analyze_file ~root ~rules file =
  let file = normalize file in
  let path = Filename.concat root file in
  let has_mli = Sys.file_exists (path ^ "i") in
  let found, supp, meta =
    analyze_source ~file ~has_mli ~rules (read_file path)
  in
  { fr_file = file; fr_found = found; fr_supp = supp; fr_meta = meta }

type report = {
  diagnostics : Diagnostic.t list;
  stale_allows : Suppress.allow_entry list;
  stale_directives : (string * int) list;
  typed_units : int;
  typed_notes : string list;
}

let default_build_dir root = Filename.concat root "_build/default"

let typed_pass ~root ~build_dir ~rules ~paths =
  let units, notes = Cmt_loader.load ~root ~build_dir in
  let units = List.filter (fun u -> not (Cmt_loader.generated u)) units in
  if units = [] then
    ( [],
      0,
      notes
      @ [ Printf.sprintf
            "typed pass found no .cmt files under %s; run 'dune build' \
             first"
            build_dir ] )
  else begin
    let g = Callgraph.build units in
    let under file =
      List.exists
        (fun p ->
          let p = normalize p in
          String.equal file p || String.starts_with ~prefix:(p ^ "/") file)
        paths
    in
    let typed_rules = List.filter Rule.is_typed rules in
    let diags =
      Typed_checks.run g
      |> List.filter (fun (d : Diagnostic.t) ->
             under d.Diagnostic.file
             && List.exists
                  (fun r -> String.equal (Rule.to_string r) d.Diagnostic.rule)
                  typed_rules)
    in
    (diags, List.length units, notes)
  end

(* Fixture entry point: run the typed rules over explicitly provided
   units (from {!Cmt_loader.typecheck_impl} or hand-picked cmts), with
   the same suppression semantics as the full run. *)
let lint_typed_units ?(rules = Rule.typed)
    ?(allowlist = Suppress.empty_allowlist) units =
  let g = Callgraph.build units in
  let supp = Hashtbl.create 8 in
  let meta = ref [] in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let s, malformed = Suppress.of_comments u.Cmt_loader.comments in
      Hashtbl.replace supp u.Cmt_loader.file s;
      List.iter
        (fun (line, col, message) ->
          meta :=
            Diagnostic.v ~file:u.Cmt_loader.file ~line ~col ~rule:"suppress"
              ~message ()
            :: !meta)
        malformed)
    units;
  let kept =
    Typed_checks.run g
    |> List.filter (fun (d : Diagnostic.t) ->
           List.exists
             (fun r -> String.equal (Rule.to_string r) d.Diagnostic.rule)
             rules
           && (not
                 (match Hashtbl.find_opt supp d.Diagnostic.file with
                 | Some s -> suppressed_by s d
                 | None -> false))
           &&
           match Rule.of_string d.Diagnostic.rule with
           | Some rule ->
               not (Suppress.allows allowlist ~rule ~file:d.Diagnostic.file)
           | None -> true)
  in
  List.sort Diagnostic.compare (!meta @ kept)

let run ?(root = ".") ?allowlist_path ?(rules = Rule.all) ?paths
    ?(typed = false) ?build_dir ?jobs () =
  let allowlist =
    match allowlist_path with
    | Some path -> Suppress.load_allowlist path
    | None ->
        let default = Filename.concat root "polint.allow" in
        if Sys.file_exists default then Suppress.load_allowlist default
        else Ok Suppress.empty_allowlist
  in
  match allowlist with
  | Error msg -> Error msg
  | Ok allowlist -> (
      let paths =
        match paths with
        | Some (_ :: _ as p) -> p
        | Some [] | None ->
            List.filter
              (fun p -> Sys.file_exists (Filename.concat root p))
              default_paths
      in
      let missing =
        List.filter
          (fun p -> not (Sys.file_exists (Filename.concat root p)))
          paths
      in
      match missing with
      | p :: _ -> Error (Printf.sprintf "no such file or directory: %s" p)
      | [] ->
          let files = collect_ml_files ~root paths in
          let frs = map_files ?jobs (analyze_file ~root ~rules) files in
          let typed_found, typed_units, typed_notes =
            if typed then
              typed_pass ~root
                ~build_dir:(Option.value build_dir ~default:(default_build_dir root))
                ~rules ~paths
            else ([], 0, [])
          in
          (* R9 re-grounds R1 in actual types; while the typed pass ran,
             the syntactic heuristic stands down. *)
          let retire_r1 =
            typed_units > 0 && List.exists (Rule.equal Rule.R9) rules
          in
          let supp_of =
            let tbl = Hashtbl.create 64 in
            List.iter (fun fr -> Hashtbl.replace tbl fr.fr_file fr.fr_supp) frs;
            fun file -> Hashtbl.find_opt tbl file
          in
          let found_all =
            List.concat_map
              (fun fr ->
                if retire_r1 then
                  List.filter
                    (fun (d : Diagnostic.t) ->
                      not (String.equal d.Diagnostic.rule "R1"))
                    fr.fr_found
                else fr.fr_found)
              frs
            @ typed_found
          in
          (* Inline suppressions: filter and, for --check-allowlist,
             record which directives actually covered something. *)
          let used_directives = Hashtbl.create 16 in
          let kept =
            List.filter
              (fun (d : Diagnostic.t) ->
                match
                  (Rule.of_string d.Diagnostic.rule, supp_of d.Diagnostic.file)
                with
                | Some rule, Some supp ->
                    let covering =
                      List.filter
                        (fun (e : Suppress.entry) ->
                          e.Suppress.first_line <= d.Diagnostic.line
                          && d.Diagnostic.line <= e.Suppress.last_line
                          && List.exists (Rule.equal rule) e.Suppress.rules)
                        (Suppress.to_list supp)
                    in
                    List.iter
                      (fun (e : Suppress.entry) ->
                        Hashtbl.replace used_directives
                          (d.Diagnostic.file, e.Suppress.first_line)
                          ())
                      covering;
                    covering = []
                | _ -> true)
              found_all
          in
          let used_allows = Hashtbl.create 16 in
          let final =
            List.filter
              (fun (d : Diagnostic.t) ->
                match Rule.of_string d.Diagnostic.rule with
                | None -> true
                | Some rule ->
                    let matching =
                      List.filter
                        (fun e ->
                          Suppress.entry_matches e ~rule
                            ~file:d.Diagnostic.file)
                        (Suppress.allowlist_entries allowlist)
                    in
                    List.iter
                      (fun (e : Suppress.allow_entry) ->
                        Hashtbl.replace used_allows e.Suppress.lineno ())
                      matching;
                    matching = [])
              kept
          in
          let stale_directives =
            List.concat_map
              (fun fr ->
                List.filter_map
                  (fun (e : Suppress.entry) ->
                    if
                      Hashtbl.mem used_directives
                        (fr.fr_file, e.Suppress.first_line)
                    then None
                    else Some (fr.fr_file, e.Suppress.first_line))
                  (Suppress.to_list fr.fr_supp))
              frs
            |> List.sort (fun (f1, l1) (f2, l2) ->
                   match String.compare f1 f2 with
                   | 0 -> Int.compare l1 l2
                   | c -> c)
          in
          let stale_allows =
            List.filter
              (fun (e : Suppress.allow_entry) ->
                not (Hashtbl.mem used_allows e.Suppress.lineno))
              (Suppress.allowlist_entries allowlist)
          in
          let meta = List.concat_map (fun fr -> fr.fr_meta) frs in
          Ok
            { diagnostics =
                List.sort_uniq Diagnostic.compare (meta @ final);
              stale_allows;
              stale_directives;
              typed_units;
              typed_notes })
