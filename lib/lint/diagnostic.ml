type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let v ~file ~line ~col ~rule ~message = { file; line; col; rule; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.message
