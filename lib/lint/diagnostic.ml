type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  witness : string list;
}

let v ?(witness = []) ~file ~line ~col ~rule ~message () =
  { file; line; col; rule; message; witness }

let rec compare_witness a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys -> (
      match String.compare x y with 0 -> compare_witness xs ys | c -> c)

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> (
                  match String.compare a.message b.message with
                  | 0 -> compare_witness a.witness b.witness
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  let base =
    Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.message
  in
  match d.witness with
  | [] -> base
  | frames ->
      base ^ "\n  call chain: " ^ String.concat "\n           -> " frames

(* ---------------- machine-readable output ---------------- *)

(* Self-contained JSON escaping: po_lint stays dependency-free (beyond
   compiler-libs) so the linter can never be broken by the code it
   lints. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let witness =
    match d.witness with
    | [] -> ""
    | frames ->
        Printf.sprintf ",\"witness\":[%s]"
          (String.concat ","
             (List.map (fun f -> "\"" ^ json_escape f ^ "\"") frames))
  in
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"%s}"
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (json_escape d.message) witness

let list_to_json diags =
  Printf.sprintf
    "{\"schema\":\"polint-v1\",\"count\":%d,\"diagnostics\":[%s]}"
    (List.length diags)
    (String.concat "," (List.map to_json diags))
