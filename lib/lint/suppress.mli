(** Inline suppression comments and the per-rule allowlist file.

    Inline form: a comment whose trimmed body starts with the marker
    ["polint:"] followed by [allow], one or more rule ids and a mandatory
    justification.  It silences the listed rules on the comment's own
    line(s) and on the next line, so it works both trailing the offending
    expression and on the line above it.  A token shaped like a rule id
    that is not in the catalogue (e.g. [allow R99]) is a parse error, not
    a justification word — the silent-typo footgun is closed.

    File form ([polint.allow] at the repository root): one entry per
    line, [<RULE-ID> <path> <justification>], where [path] is relative to
    the repository root and a trailing ['/'] exempts a whole subtree.
    ['#'] starts a comment. *)

type entry = { rules : Rule.id list; first_line : int; last_line : int }

type t
(** Suppressions collected from one file's comments. *)

val empty : t

val of_comments : (string * Location.t) list -> t * (int * int * string) list
(** [of_comments comments] parses the comments the compiler's lexer
    collected while parsing a file (body text without delimiters, plus
    location).  Returns the suppression table and a list of
    [(line, col, message)] for malformed polint directives — those are
    reported as ["suppress"] diagnostics, cannot be silenced, and make
    the drivers exit 2 (a broken suppression is a configuration error,
    not a lint finding). *)

val active : t -> rule:Rule.id -> line:int -> bool
(** Whether a suppression for [rule] covers [line]. *)

val to_list : t -> entry list
(** The parsed directives, for [--check-allowlist]'s staleness audit. *)

type allow_entry = {
  rule : Rule.id;
  path : string;
  reason : string;
  lineno : int;  (** 1-based line in the allowlist file *)
}

type allowlist

val empty_allowlist : allowlist

val allowlist_of_string :
  src:string -> string -> (allowlist, string) result
(** Parse allowlist text; [src] names the file in error messages. *)

val load_allowlist : string -> (allowlist, string) result

val allowlist_entries : allowlist -> allow_entry list

val entry_matches : allow_entry -> rule:Rule.id -> file:string -> bool
(** Whether one entry exempts [file] (repo-relative) from [rule]. *)

val allows : allowlist -> rule:Rule.id -> file:string -> bool
(** Whether any allowlist entry exempts [file] from [rule]. *)
