type id = R1 | R2 | R3 | R4 | R5 | R6

let all = [ R1; R2; R3; R4; R5; R6 ]

let to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let of_string = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | _ -> None

let equal (a : id) (b : id) = a = b

type meta = { id : id; title : string; rationale : string }

let catalogue =
  [ { id = R1; title = "no polymorphic compare/equality on floats";
      rationale =
        "Polymorphic compare is NaN-unsafe (it treats nan inconsistently \
         with (=)), boxes its operands on hot quantile and simplex paths, \
         and silently changes meaning when a type gains a custom order.  \
         Use Float.compare / Float.equal or another monomorphic \
         comparator." };
    { id = R2; title = "no nondeterminism sources outside test/";
      rationale =
        "Every figure must be bit-reproducible from --seed for any --jobs \
         (DESIGN.md section 6).  Ambient PRNG state (Random.self_init, \
         Random.int), wall-clock reads (Sys.time, Unix.gettimeofday) and \
         Hashtbl iteration order all break that contract.  Draw from \
         Po_prng.Splitmix with an explicit seed; use Hashtbl only as a \
         find_opt/add cache whose iteration order never escapes." };
    { id = R3; title = "no wildcard exception swallowing";
      rationale =
        "try ... with _ -> hides Out_of_memory, Stack_overflow and logic \
         bugs as silent data corruption.  Match the specific exceptions \
         the expression can raise." };
    { id = R4; title = "no direct console output inside lib/";
      rationale =
        "All human-facing output is built through po_report (tables, \
         series, CSV, ASCII plots) so figures stay machine-checkable and \
         redirectable; a printf inside the libraries interleaves with the \
         report stream." };
    { id = R5; title = "every lib/**/*.ml has a matching .mli";
      rationale =
        "Interfaces are the unit of review for numeric code: an .mli pins \
         which helpers are part of the contract and keeps internal state \
         (caches, pools) private." };
    { id = R6; title = "no raw file writes outside lib/report";
      rationale =
        "Every result write must be crash-safe: Po_report.Writer writes a \
         temp file and renames it into place, so a killed or faulted run \
         can never leave a torn CSV or journal (DESIGN.md section 10).  A \
         direct open_out or mkdir bypasses that guarantee (and the \
         write-failure fault site); route writes through Po_report.Writer \
         or Po_report.Csv." } ]

let find id = List.find (fun m -> equal m.id id) catalogue

let under ~dir file =
  let prefix = dir ^ "/" in
  String.length file > String.length prefix
  && String.equal (String.sub file 0 (String.length prefix)) prefix

let applies_to id ~file =
  match id with
  | R1 | R3 -> true
  | R2 -> not (under ~dir:"test" file)
  | R4 -> under ~dir:"lib" file && not (under ~dir:"lib/report" file)
  | R5 -> under ~dir:"lib" file
  | R6 -> not (under ~dir:"lib/report" file) && not (under ~dir:"test" file)
