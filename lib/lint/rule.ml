type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

let all = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10 ]

(* The parsetree rules run from source text alone; the typed rules need
   the compiler's .cmt output (a built tree) and the cross-module call
   graph.  [Lint] uses the split to decide which pass owns which rule. *)
let typed = [ R7; R8; R9; R10 ]

let is_typed r = List.exists (fun t -> t = r) typed

let to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"

let of_string = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "R10" -> Some R10
  | _ -> None

(* A token that is shaped like a rule id ("R" followed by digits) but is
   not in the catalogue — the raw material of the silent-typo footgun in
   suppression directives and allowlist lines. *)
let looks_like_id tok =
  String.length tok >= 2
  && Char.equal tok.[0] 'R'
  && String.for_all (function '0' .. '9' -> true | _ -> false)
       (String.sub tok 1 (String.length tok - 1))

let equal (a : id) (b : id) = a = b

type meta = { id : id; title : string; rationale : string }

let catalogue =
  [ { id = R1; title = "no polymorphic compare/equality on floats";
      rationale =
        "Polymorphic compare is NaN-unsafe (it treats nan inconsistently \
         with (=)), boxes its operands on hot quantile and simplex paths, \
         and silently changes meaning when a type gains a custom order.  \
         Use Float.compare / Float.equal or another monomorphic \
         comparator." };
    { id = R2; title = "no nondeterminism sources outside test/";
      rationale =
        "Every figure must be bit-reproducible from --seed for any --jobs \
         (DESIGN.md section 6).  Ambient PRNG state (Random.self_init, \
         Random.int), wall-clock reads (Sys.time, Unix.gettimeofday) and \
         Hashtbl iteration order all break that contract.  Draw from \
         Po_prng.Splitmix with an explicit seed; use Hashtbl only as a \
         find_opt/add cache whose iteration order never escapes." };
    { id = R3; title = "no wildcard exception swallowing";
      rationale =
        "try ... with _ -> hides Out_of_memory, Stack_overflow and logic \
         bugs as silent data corruption.  Match the specific exceptions \
         the expression can raise." };
    { id = R4; title = "no direct console output inside lib/";
      rationale =
        "All human-facing output is built through po_report (tables, \
         series, CSV, ASCII plots) so figures stay machine-checkable and \
         redirectable; a printf inside the libraries interleaves with the \
         report stream." };
    { id = R5; title = "every lib/**/*.ml has a matching .mli";
      rationale =
        "Interfaces are the unit of review for numeric code: an .mli pins \
         which helpers are part of the contract and keeps internal state \
         (caches, pools) private." };
    { id = R6; title = "no raw file writes outside lib/report";
      rationale =
        "Every result write must be crash-safe: Po_report.Writer writes a \
         temp file and renames it into place, so a killed or faulted run \
         can never leave a torn CSV or journal (DESIGN.md section 10).  A \
         direct open_out or mkdir bypasses that guarantee (and the \
         write-failure fault site); route writes through Po_report.Writer \
         or Po_report.Csv." };
    { id = R7; title = "no shared mutable state reachable from pool work";
      rationale =
        "po_par promises bit-identical sweep results for any --jobs \
         (DESIGN.md section 6), which only holds if the closures handed \
         to Pool.parallel_map / map_reduce / chain_map / run_chunks never \
         race on shared state.  R7 walks the typed call graph from every \
         closure passed to a pool combinator and flags ref assignment, \
         Hashtbl / Buffer / Queue / Stack mutation and mutable-field \
         writes whose target is not local to the function performing \
         them, with the caller -> ... -> mutation-site chain as a \
         witness.  Atomic and Domain.DLS state is exempt; deliberately \
         shared state that is externally synchronised (a mutex-guarded \
         journal, the pool's own work queue) carries a justified allow." };
    { id = R8; title = "no silently discarded solver failures";
      rationale =
        "The ensembles behind every figure are only trustworthy because \
         no solver failure is swallowed (DESIGN.md section 10).  In \
         figure/experiment code, a solver that has a _checked companion \
         (Cp_game.solve, Cp_game.solve_nash, Equilibrium.solve and their \
         _soa variants, Oligopoly.solve, Monopoly.regime_outcome, ...) \
         must be called through it or have its outcome fed to \
         ensure_converged; the ?budget-threaded entry points of the \
         supervision layer (DESIGN.md section 13) keep the same _checked \
         companions, and their Deadline_exceeded / Cancelled failures \
         are result payloads like any other — a caller must not flatten \
         them away.  Anywhere outside test/, a result-typed value must \
         not be dropped (sequenced away, passed to ignore, bound to _) \
         or matched with a bare 'Error _ ->' arm that forgets which \
         error occurred." };
    { id = R9; title = "no polymorphic compare on float-bearing types";
      rationale =
        "The typed replacement for R1's syntactic heuristic: polymorphic \
         compare/equality is flagged whenever the compared type's \
         structure actually contains a float — through aliases, records, \
         variants, tuples and functor-bound abbreviations that no \
         syntactic rule can see.  NaN makes polymorphic compare \
         order-unstable on exactly those types; use Float.compare / \
         Float.equal or a type-specific comparator." };
    { id = R10; title = "metrics emitted only under a span or figure scope";
      rationale =
        "po_obs data is attributable because every metric increment \
         happens under a figure scope or trace span (DESIGN.md section \
         11), so a snapshot can always be traced to the run that \
         produced it.  R10 flags an entry point in lib/experiments that \
         transitively emits metrics when no node on the call chain opens \
         a Trace.with_span / Common.with_figure_scope and nothing in the \
         tree calls the entry (registered figures inherit their scope \
         from Registry's guarded wrapper; a rogue unregistered entry \
         point does not)." } ]

let find id = List.find (fun m -> equal m.id id) catalogue

let under ~dir file =
  let prefix = dir ^ "/" in
  String.length file > String.length prefix
  && String.equal (String.sub file 0 (String.length prefix)) prefix

let applies_to id ~file =
  match id with
  | R1 | R3 | R9 -> true
  | R2 -> not (under ~dir:"test" file)
  | R4 -> under ~dir:"lib" file && not (under ~dir:"lib/report" file)
  | R5 -> under ~dir:"lib" file
  | R6 -> not (under ~dir:"lib/report" file) && not (under ~dir:"test" file)
  | R7 -> not (under ~dir:"test" file)
  | R8 -> not (under ~dir:"test" file) && not (under ~dir:"bench" file)
  | R10 -> under ~dir:"lib/experiments" file
