(** A single lint finding, rendered as [file:line:col [rule-id] message].

    [rule] is a string rather than a {!Rule.id} so the reporting layer can
    also carry meta findings that have no catalogue entry: ["parse"] for a
    file that does not parse, ["suppress"] for a malformed
    [polint: allow] comment. *)

type t = {
  file : string;  (** path relative to the repository root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports columns *)
  rule : string;  (** "R1".."R10", "parse" or "suppress" *)
  message : string;
  witness : string list;
      (** call chain from a pool/entry root to the flagged site, outermost
          first, each frame rendered as ["Name (file:line)"]; empty for
          the intraprocedural rules. *)
}

val v :
  ?witness:string list ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  message:string ->
  unit ->
  t

val compare : t -> t -> int
(** Orders by file, then line, column, rule id, message and witness — the
    stable report order, independent of discovery order or worker
    count. *)

val to_string : t -> string
(** ["file:line:col [rule] message"], with the call chain on follow-up
    indented lines when present. *)

val to_json : t -> string
(** One JSON object; locations are precise ([line] 1-based, [col]
    0-based) and the witness chain is included when present. *)

val list_to_json : t list -> string
(** The [polint-v1] envelope:
    [{"schema":"polint-v1","count":n,"diagnostics":[...]}]. *)
