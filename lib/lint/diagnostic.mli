(** A single lint finding, rendered as [file:line:col [rule-id] message].

    [rule] is a string rather than a {!Rule.id} so the reporting layer can
    also carry meta findings that have no catalogue entry: ["parse"] for a
    file that does not parse, ["suppress"] for a malformed
    [polint: allow] comment. *)

type t = {
  file : string;  (** path relative to the repository root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports columns *)
  rule : string;  (** "R1".."R5", "parse" or "suppress" *)
  message : string;
}

val v :
  file:string -> line:int -> col:int -> rule:string -> message:string -> t

val compare : t -> t -> int
(** Orders by file, then line, column, rule id and message — the stable
    report order. *)

val to_string : t -> string
